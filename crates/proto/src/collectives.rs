//! Collective operations built purely from `message_send` /
//! `message_receive` over a [`CommGroup`].
//!
//! These are the textbook message-passing collectives of the era — the
//! ones the paper's applications hand-roll (the Gauss-Jordan arbiter is a
//! reduce + one-to-one + broadcast; the SOR monitor is a gather +
//! broadcast):
//!
//! * [`barrier`] — dissemination barrier, ⌈log₂ n⌉ rounds;
//! * [`broadcast`] — binomial tree from `root`;
//! * [`reduce_f64`] — binomial tree to `root` with an elementwise
//!   combiner;
//! * [`allreduce_sum_f64`] — reduce to rank 0, then broadcast;
//! * [`gather`] / [`scatter`] — hub-based, rank order preserved.
//!
//! All of them assume every member calls the same collectives in the same
//! order (the usual SPMD contract).

use mpf::{MpfError, Result};

use crate::group::CommGroup;

fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes")))
        .collect()
}

/// Number of rounds for `size` participants.
fn rounds(size: usize) -> u32 {
    usize::BITS - (size - 1).leading_zeros()
}

/// Dissemination barrier: after ⌈log₂ n⌉ exchange rounds every member has
/// transitively heard from every other.
pub fn barrier(group: &CommGroup<'_>) -> Result<()> {
    let (rank, size) = (group.rank(), group.size());
    if size == 1 {
        return Ok(());
    }
    for k in 0..rounds(size) {
        let stride = 1usize << k;
        let to = (rank + stride) % size;
        let from = (rank + size - stride % size) % size;
        group.send_to(to, &[k as u8])?;
        let token = group.recv_from(from)?;
        debug_assert_eq!(token, vec![k as u8]);
    }
    Ok(())
}

/// Binomial-tree broadcast: `root`'s `data` reaches everyone; returns the
/// received (or original) payload.
pub fn broadcast(group: &CommGroup<'_>, root: usize, data: &[u8]) -> Result<Vec<u8>> {
    let size = group.size();
    assert!(root < size);
    if size == 1 {
        return Ok(data.to_vec());
    }
    // Work in root-relative ranks so any root uses the same tree.
    let rel = (group.rank() + size - root) % size;
    let abs = |r: usize| (r + root) % size;

    let mut payload = if rel == 0 { data.to_vec() } else { Vec::new() };
    let total_rounds = rounds(size);
    // Receive: a node with relative rank r (r > 0) hears from r - 2^k,
    // where 2^k is r's highest set bit.
    if rel > 0 {
        let k = usize::BITS - 1 - rel.leading_zeros();
        let parent = rel - (1 << k);
        payload = group.recv_from(abs(parent))?;
    }
    // Send onward: after hearing in round k, forward in rounds k+1…
    let first_round = if rel == 0 {
        0
    } else {
        usize::BITS - rel.leading_zeros()
    };
    for k in first_round..total_rounds {
        let child = rel + (1 << k);
        if child < size {
            group.send_to(abs(child), &payload)?;
        }
    }
    Ok(payload)
}

/// Binomial-tree reduce to `root`: every member contributes an equal-
/// length `f64` vector; `root` receives the elementwise combination and
/// others receive an empty vector.
pub fn reduce_f64(
    group: &CommGroup<'_>,
    root: usize,
    contribution: &[f64],
    op: impl Fn(f64, f64) -> f64,
) -> Result<Vec<f64>> {
    let size = group.size();
    assert!(root < size);
    let rel = (group.rank() + size - root) % size;
    let abs = |r: usize| (r + root) % size;
    let mut acc = contribution.to_vec();

    for k in 0..rounds(size.max(2)) {
        let bit = 1usize << k;
        if rel & (bit - 1) != 0 {
            break;
        }
        if rel & bit != 0 {
            // Send up to the parent and leave.
            group.send_to(abs(rel & !bit), &f64s_to_bytes(&acc))?;
            return Ok(Vec::new());
        }
        let child = rel | bit;
        if child < size {
            let theirs = bytes_to_f64s(&group.recv_from(abs(child))?);
            if theirs.len() != acc.len() {
                return Err(MpfError::BufferTooSmall {
                    needed: acc.len() * 8,
                });
            }
            for (a, b) in acc.iter_mut().zip(theirs) {
                *a = op(*a, b);
            }
        }
    }
    Ok(acc)
}

/// All-reduce (sum): reduce to the group's rank 0, broadcast the result.
pub fn allreduce_sum_f64(group: &CommGroup<'_>, contribution: &[f64]) -> Result<Vec<f64>> {
    let reduced = reduce_f64(group, 0, contribution, |a, b| a + b)?;
    let wire = if group.rank() == 0 {
        f64s_to_bytes(&reduced)
    } else {
        Vec::new()
    };
    Ok(bytes_to_f64s(&broadcast(group, 0, &wire)?))
}

/// All-to-all personalized exchange: member `i` supplies one chunk per
/// destination; returns the chunks every peer addressed to us, ordered by
/// source rank.  (Our own chunk to ourselves comes back in place.)
pub fn alltoall(group: &CommGroup<'_>, chunks: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
    let (rank, size) = (group.rank(), group.size());
    assert_eq!(chunks.len(), size, "one chunk per destination");
    // Phase 1: fire all sends (asynchronous — no deadlock possible).
    for (dst, chunk) in chunks.iter().enumerate() {
        if dst != rank {
            group.send_to(dst, chunk)?;
        }
    }
    // Phase 2: collect in source order.
    let mut out = Vec::with_capacity(size);
    for src in 0..size {
        if src == rank {
            out.push(chunks[rank].clone());
        } else {
            out.push(group.recv_from(src)?);
        }
    }
    Ok(out)
}

/// Gather: everyone's `data` arrives at `root`, ordered by rank; others
/// get an empty vector.
pub fn gather(group: &CommGroup<'_>, root: usize, data: &[u8]) -> Result<Vec<Vec<u8>>> {
    if group.rank() == root {
        let mut out = Vec::with_capacity(group.size());
        for r in 0..group.size() {
            if r == root {
                out.push(data.to_vec());
            } else {
                out.push(group.recv_from(r)?);
            }
        }
        Ok(out)
    } else {
        group.send_to(root, data)?;
        Ok(Vec::new())
    }
}

/// Scatter: `root` distributes `chunks[r]` to rank `r`; returns this
/// member's chunk.
pub fn scatter(group: &CommGroup<'_>, root: usize, chunks: Option<&[Vec<u8>]>) -> Result<Vec<u8>> {
    if group.rank() == root {
        let chunks = chunks.expect("root must supply the chunks");
        assert_eq!(chunks.len(), group.size(), "one chunk per rank");
        for (r, chunk) in chunks.iter().enumerate() {
            if r != root {
                group.send_to(r, chunk)?;
            }
        }
        Ok(chunks[root].clone())
    } else {
        group.recv_from(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf::{Mpf, MpfConfig, ProcessId};
    use mpf_shm::process::run_processes_collect;

    fn facility(procs: u32) -> Mpf {
        Mpf::init(
            MpfConfig::new(4 * procs * procs + 16, procs)
                .with_max_connections(8 * procs * procs + 64),
        )
        .expect("init")
    }

    fn with_group<T: Send>(
        procs: usize,
        tag: &str,
        f: impl Fn(&CommGroup<'_>) -> T + Sync,
    ) -> Vec<T> {
        let mpf = facility(procs as u32);
        run_processes_collect(procs, |pid: ProcessId| {
            let g = CommGroup::create(&mpf, pid, pid.index(), procs, tag).unwrap();
            f(&g)
        })
    }

    #[test]
    fn barrier_completes_at_many_sizes() {
        for procs in [1usize, 2, 3, 4, 5, 8] {
            with_group(procs, &format!("bar{procs}"), |g| {
                for _ in 0..3 {
                    barrier(g).unwrap();
                }
            });
        }
    }

    #[test]
    fn barrier_actually_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let arrived = AtomicUsize::new(0);
        let arrived_ref = &arrived;
        with_group(4, "barsync", move |g| {
            for phase in 1..=5usize {
                arrived_ref.fetch_add(1, Ordering::SeqCst);
                barrier(g).unwrap();
                assert!(
                    arrived_ref.load(Ordering::SeqCst) >= phase * 4,
                    "barrier released before all arrived"
                );
                barrier(g).unwrap();
            }
        });
    }

    #[test]
    fn broadcast_from_every_root() {
        for procs in [2usize, 3, 5, 8] {
            for root in 0..procs {
                let results = with_group(procs, &format!("bc{procs}r{root}"), move |g| {
                    let data = if g.rank() == root {
                        format!("hello from {root}").into_bytes()
                    } else {
                        Vec::new()
                    };
                    broadcast(g, root, &data).unwrap()
                });
                for r in results {
                    assert_eq!(r, format!("hello from {root}").into_bytes());
                }
            }
        }
    }

    #[test]
    fn reduce_sums_to_root() {
        for procs in [1usize, 2, 3, 4, 7] {
            let results = with_group(procs, &format!("rd{procs}"), move |g| {
                reduce_f64(g, 0, &[g.rank() as f64 + 1.0, 1.0], |a, b| a + b).unwrap()
            });
            let expected: f64 = (1..=procs).map(|v| v as f64).sum();
            assert_eq!(results[0], vec![expected, procs as f64]);
            for r in &results[1..] {
                assert!(r.is_empty());
            }
        }
    }

    #[test]
    fn reduce_respects_the_operator() {
        let results = with_group(4, "rdmax", |g| {
            reduce_f64(g, 0, &[g.rank() as f64], f64::max).unwrap()
        });
        assert_eq!(results[0], vec![3.0]);
    }

    #[test]
    fn allreduce_gives_everyone_the_sum() {
        for procs in [2usize, 4, 6] {
            let results = with_group(procs, &format!("ar{procs}"), |g| {
                allreduce_sum_f64(g, &[g.rank() as f64 + 1.0]).unwrap()[0]
            });
            let expected: f64 = (1..=procs).map(|v| v as f64).sum();
            assert!(results.iter().all(|&s| s == expected), "{results:?}");
        }
    }

    #[test]
    fn gather_preserves_rank_order() {
        let results = with_group(5, "ga", |g| gather(g, 2, &[g.rank() as u8; 3]).unwrap());
        let at_root = &results[2];
        assert_eq!(at_root.len(), 5);
        for (r, chunk) in at_root.iter().enumerate() {
            assert_eq!(chunk, &vec![r as u8; 3]);
        }
    }

    #[test]
    fn scatter_distributes_chunks() {
        let results = with_group(4, "sc", |g| {
            let chunks: Option<Vec<Vec<u8>>> =
                (g.rank() == 1).then(|| (0..4).map(|r| vec![r as u8 * 10; 2]).collect());
            scatter(g, 1, chunks.as_deref()).unwrap()
        });
        for (r, chunk) in results.iter().enumerate() {
            assert_eq!(chunk, &vec![r as u8 * 10; 2]);
        }
    }

    #[test]
    fn alltoall_full_exchange() {
        let results = with_group(4, "a2a", |g| {
            let chunks: Vec<Vec<u8>> = (0..4)
                .map(|dst| vec![g.rank() as u8 * 16 + dst as u8; 3])
                .collect();
            alltoall(g, &chunks).unwrap()
        });
        for (me, received) in results.iter().enumerate() {
            for (src, chunk) in received.iter().enumerate() {
                let expected = vec![src as u8 * 16 + me as u8; 3];
                assert_eq!(chunk, &expected, "rank {me} from {src}");
            }
        }
    }

    #[test]
    fn collectives_compose_in_sequence() {
        // A miniature iterative algorithm: local work, allreduce, barrier,
        // repeated — the SOR control pattern.
        let results = with_group(4, "seq", |g| {
            let mut value = g.rank() as f64;
            for _ in 0..5 {
                value = allreduce_sum_f64(g, &[value]).unwrap()[0];
                barrier(g).unwrap();
            }
            value
        });
        // 0+1+2+3 = 6; then 6×4 = 24; 96; 384; 1536.
        assert!(results.iter().all(|&v| v == 1536.0), "{results:?}");
    }
}
