//! # mpf-proto — a prototyping environment over MPF
//!
//! The paper's closing claim: "Programs destined for message passing
//! systems can be easily prototyped in the MPF environment" (§5), citing
//! the Purtilo/Reed/Grunwald prototyping-environment work [PuRG86].  This
//! crate is that environment: the structured layer a 1987 group would
//! have grown on top of the eight raw primitives.
//!
//! * [`topology`] — virtual interconnects (ring, 2-D mesh, hypercube,
//!   star) with neighbour arithmetic, so an algorithm written for a
//!   message-passing machine keeps its communication structure when
//!   prototyped on the shared-memory machine.
//! * [`group`] — [`group::CommGroup`]: ranked point-to-point messaging
//!   over dedicated pairwise LNVCs, with connection caching (which also
//!   defuses the paper's §3.2 lost-message hazard: connections live as
//!   long as the group).
//! * [`collectives`] — barrier (dissemination), broadcast and reduce
//!   (binomial trees), all-reduce, gather and scatter, all built purely
//!   from `message_send`/`message_receive`.
//!
//! ```
//! use mpf::{Mpf, MpfConfig};
//! use mpf_proto::group::CommGroup;
//! use mpf_shm::process::run_processes_collect;
//!
//! let mpf = Mpf::init(MpfConfig::new(64, 8).with_max_connections(512)).unwrap();
//! let sums = run_processes_collect(4, |pid| {
//!     let group = CommGroup::create(&mpf, pid, pid.index(), 4, "demo").unwrap();
//!     mpf_proto::collectives::allreduce_sum_f64(&group, &[pid.index() as f64 + 1.0]).unwrap()[0]
//! });
//! assert!(sums.iter().all(|&s| s == 10.0));
//! ```

pub mod collectives;
pub mod group;
pub mod topology;

pub use group::CommGroup;
pub use topology::Topology;
