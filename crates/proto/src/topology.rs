//! Virtual interconnect topologies.
//!
//! An algorithm destined for a hypercube or a mesh is written against its
//! topology's neighbour structure; prototyping it over MPF means keeping
//! that structure and merely renaming "physical link" to "LNVC".  These
//! types provide the neighbour arithmetic for the interconnects of the
//! era (the paper's SOR solver came from a hypercube; the Balance's rival
//! machines were meshes and cubes).

/// A virtual interconnect over ranks `0..size`.
///
/// ```
/// use mpf_proto::Topology;
/// let cube = Topology::Hypercube { dim: 3 };
/// assert_eq!(cube.size(), 8);
/// assert_eq!(cube.neighbors(5), vec![4, 7, 1]);
/// assert_eq!(cube.diameter(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Topology {
    /// Bidirectional ring.
    Ring {
        /// Number of nodes.
        size: usize,
    },
    /// Non-wrapping 2-D mesh, row-major ranks.
    Mesh2D {
        /// Columns.
        width: usize,
        /// Rows.
        height: usize,
    },
    /// d-dimensional hypercube (2^d nodes).
    Hypercube {
        /// Dimension.
        dim: u32,
    },
    /// Star: rank 0 is the hub, all others are leaves.
    Star {
        /// Number of nodes (hub included).
        size: usize,
    },
}

impl Topology {
    /// Number of nodes.
    pub fn size(&self) -> usize {
        match *self {
            Topology::Ring { size } => size,
            Topology::Mesh2D { width, height } => width * height,
            Topology::Hypercube { dim } => 1 << dim,
            Topology::Star { size } => size,
        }
    }

    /// The ranks directly connected to `rank`, in a deterministic order.
    ///
    /// # Panics
    /// If `rank` is out of range.
    pub fn neighbors(&self, rank: usize) -> Vec<usize> {
        assert!(rank < self.size(), "rank {rank} out of range");
        match *self {
            Topology::Ring { size } => {
                if size <= 1 {
                    Vec::new()
                } else if size == 2 {
                    vec![1 - rank]
                } else {
                    vec![(rank + size - 1) % size, (rank + 1) % size]
                }
            }
            Topology::Mesh2D { width, height } => {
                let (r, c) = (rank / width, rank % width);
                let mut out = Vec::with_capacity(4);
                if r > 0 {
                    out.push(rank - width);
                }
                if r + 1 < height {
                    out.push(rank + width);
                }
                if c > 0 {
                    out.push(rank - 1);
                }
                if c + 1 < width {
                    out.push(rank + 1);
                }
                out
            }
            Topology::Hypercube { dim } => (0..dim).map(|k| rank ^ (1 << k)).collect(),
            Topology::Star { size } => {
                if rank == 0 {
                    (1..size).collect()
                } else {
                    vec![0]
                }
            }
        }
    }

    /// True when `a` and `b` share a link.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        self.neighbors(a).contains(&b)
    }

    /// Network diameter (longest shortest path), by BFS — prototyping aid
    /// for estimating collective round counts.
    pub fn diameter(&self) -> usize {
        let n = self.size();
        let mut worst = 0;
        for start in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[start] = 0;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        queue.push_back(v);
                    }
                }
            }
            worst = worst.max(
                *dist
                    .iter()
                    .filter(|&&d| d != usize::MAX)
                    .max()
                    .unwrap_or(&0),
            );
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_neighbors_wrap() {
        let t = Topology::Ring { size: 5 };
        assert_eq!(t.neighbors(0), vec![4, 1]);
        assert_eq!(t.neighbors(4), vec![3, 0]);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn tiny_rings_do_not_duplicate_links() {
        assert_eq!(Topology::Ring { size: 1 }.neighbors(0), Vec::<usize>::new());
        assert_eq!(Topology::Ring { size: 2 }.neighbors(0), vec![1]);
    }

    #[test]
    fn mesh_corners_edges_interior() {
        let t = Topology::Mesh2D {
            width: 3,
            height: 3,
        };
        assert_eq!(t.neighbors(0).len(), 2, "corner");
        assert_eq!(t.neighbors(1).len(), 3, "edge");
        assert_eq!(t.neighbors(4).len(), 4, "interior");
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn hypercube_neighbors_differ_in_one_bit() {
        let t = Topology::Hypercube { dim: 3 };
        for rank in 0..8 {
            for nb in t.neighbors(rank) {
                assert_eq!((rank ^ nb).count_ones(), 1);
            }
        }
        assert_eq!(t.diameter(), 3);
    }

    #[test]
    fn star_hub_and_leaves() {
        let t = Topology::Star { size: 6 };
        assert_eq!(t.neighbors(0), vec![1, 2, 3, 4, 5]);
        assert_eq!(t.neighbors(3), vec![0]);
        assert_eq!(t.diameter(), 2);
    }

    #[test]
    fn connectivity_is_symmetric() {
        for t in [
            Topology::Ring { size: 6 },
            Topology::Mesh2D {
                width: 4,
                height: 2,
            },
            Topology::Hypercube { dim: 3 },
            Topology::Star { size: 5 },
        ] {
            for a in 0..t.size() {
                for b in 0..t.size() {
                    assert_eq!(t.connected(a, b), t.connected(b, a), "{t:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_rank_panics() {
        Topology::Ring { size: 3 }.neighbors(3);
    }
}
