//! Ranked communicators over pairwise LNVCs.
//!
//! A [`CommGroup`] gives each participant a dense rank in `0..size` and
//! point-to-point FIFO channels to every other rank, each channel being a
//! dedicated FCFS LNVC named `p:<tag>:<src>-><dst>`.  Connections are
//! opened lazily and cached for the group's lifetime, which both
//! amortizes `open_*` cost and keeps every conversation alive until the
//! group drops — so a fast peer finishing early can never trigger the
//! paper's §3.2 message-discard hazard mid-algorithm.

use std::cell::RefCell;
use std::collections::HashMap;

use mpf::{Mpf, ProcessId, Protocol, Receiver, Result, Sender};

/// One process's endpoint in a ranked group.
pub struct CommGroup<'a> {
    mpf: &'a Mpf,
    pid: ProcessId,
    rank: usize,
    size: usize,
    tag: String,
    senders: RefCell<HashMap<usize, Sender<'a>>>,
    receivers: RefCell<HashMap<usize, Receiver<'a>>>,
}

impl<'a> CommGroup<'a> {
    /// Joins the group `tag` as `rank` of `size`.  Every member must call
    /// this with the same `tag` and `size` and a distinct rank/process.
    ///
    /// `create` is a **collective**: it eagerly opens this member's
    /// receive connection from every peer and then runs a join barrier, so
    /// it returns only when *all* members have joined.  From then on every
    /// pairwise conversation has a live receiver connection for the
    /// group's lifetime — a member that races ahead and drops its group
    /// can never trigger the paper's §3.2 discard (which would silently
    /// lose in-flight messages) for the others.
    pub fn create(
        mpf: &'a Mpf,
        pid: ProcessId,
        rank: usize,
        size: usize,
        tag: &str,
    ) -> Result<Self> {
        assert!(rank < size, "rank {rank} out of range for size {size}");
        let group = Self {
            mpf,
            pid,
            rank,
            size,
            tag: tag.to_string(),
            senders: RefCell::new(HashMap::new()),
            receivers: RefCell::new(HashMap::new()),
        };
        // Eager inboxes: our receive side of every pairwise channel.
        for src in 0..size {
            if src != rank {
                let name = group.channel_name(src, rank);
                group
                    .receivers
                    .borrow_mut()
                    .insert(src, mpf.receiver(pid, &name, Protocol::Fcfs)?);
            }
        }
        group.join_barrier()?;
        Ok(group)
    }

    /// Dissemination barrier over the group's own channels (used by
    /// `create`; the public collective lives in [`crate::collectives`]).
    fn join_barrier(&self) -> Result<()> {
        if self.size == 1 {
            return Ok(());
        }
        let rounds = usize::BITS - (self.size - 1).leading_zeros();
        for k in 0..rounds {
            let stride = 1usize << k;
            let to = (self.rank + stride) % self.size;
            let from = (self.rank + self.size - stride) % self.size;
            self.send_to(to, &[0xB0 | k as u8])?;
            self.recv_from(from)?;
        }
        Ok(())
    }

    /// This member's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.size
    }

    fn channel_name(&self, src: usize, dst: usize) -> String {
        format!("p:{}:{}->{}", self.tag, src, dst)
    }

    /// Sends `data` to `dst` (FIFO per src→dst pair, asynchronous).
    pub fn send_to(&self, dst: usize, data: &[u8]) -> Result<()> {
        assert!(dst < self.size && dst != self.rank, "bad destination {dst}");
        let mut senders = self.senders.borrow_mut();
        if let std::collections::hash_map::Entry::Vacant(e) = senders.entry(dst) {
            let name = self.channel_name(self.rank, dst);
            e.insert(self.mpf.sender(self.pid, &name)?);
        }
        senders[&dst].send(data)
    }

    /// Blocking receive of the next message from `src`.
    pub fn recv_from(&self, src: usize) -> Result<Vec<u8>> {
        assert!(src < self.size && src != self.rank, "bad source {src}");
        let mut receivers = self.receivers.borrow_mut();
        if let std::collections::hash_map::Entry::Vacant(e) = receivers.entry(src) {
            let name = self.channel_name(src, self.rank);
            e.insert(self.mpf.receiver(self.pid, &name, Protocol::Fcfs)?);
        }
        receivers[&src].recv_vec()
    }

    /// Sends to `dst` and receives from `src` — the exchange step of
    /// neighbour algorithms.  Send first (asynchronous), then block.
    pub fn exchange(&self, dst: usize, data: &[u8], src: usize) -> Result<Vec<u8>> {
        self.send_to(dst, data)?;
        self.recv_from(src)
    }
}

impl std::fmt::Debug for CommGroup<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommGroup")
            .field("tag", &self.tag)
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf::MpfConfig;
    use mpf_shm::process::run_processes_collect;

    fn facility(procs: u32) -> Mpf {
        Mpf::init(
            MpfConfig::new(4 * procs * procs + 16, procs)
                .with_max_connections(8 * procs * procs + 64),
        )
        .expect("init")
    }

    #[test]
    fn pairwise_fifo_and_isolation() {
        let mpf = facility(3);
        let results = run_processes_collect(3, |pid| {
            let g = CommGroup::create(&mpf, pid, pid.index(), 3, "t1").unwrap();
            match g.rank() {
                0 => {
                    // Interleaved sends to two destinations stay FIFO per
                    // destination and never cross.
                    for i in 0..10u8 {
                        g.send_to(1, &[1, i]).unwrap();
                        g.send_to(2, &[2, i]).unwrap();
                    }
                    Vec::new()
                }
                me => {
                    let mut got = Vec::new();
                    for _ in 0..10 {
                        let m = g.recv_from(0).unwrap();
                        assert_eq!(m[0] as usize, me, "stream crossed groups");
                        got.push(m[1]);
                    }
                    got
                }
            }
        });
        assert_eq!(results[1], (0..10).collect::<Vec<u8>>());
        assert_eq!(results[2], (0..10).collect::<Vec<u8>>());
    }

    #[test]
    fn exchange_swaps_between_two_ranks() {
        let mpf = facility(2);
        let results = run_processes_collect(2, |pid| {
            let g = CommGroup::create(&mpf, pid, pid.index(), 2, "t2").unwrap();
            let peer = 1 - g.rank();
            let mine = [g.rank() as u8; 4];
            g.exchange(peer, &mine, peer).unwrap()
        });
        assert_eq!(results[0], vec![1u8; 4]);
        assert_eq!(results[1], vec![0u8; 4]);
    }

    #[test]
    fn distinct_tags_are_distinct_universes() {
        let mpf = facility(2);
        run_processes_collect(2, |pid| {
            let a = CommGroup::create(&mpf, pid, pid.index(), 2, "ta").unwrap();
            let b = CommGroup::create(&mpf, pid, pid.index(), 2, "tb").unwrap();
            let peer = 1 - a.rank();
            a.send_to(peer, b"from-a").unwrap();
            b.send_to(peer, b"from-b").unwrap();
            assert_eq!(b.recv_from(peer).unwrap(), b"from-b");
            assert_eq!(a.recv_from(peer).unwrap(), b"from-a");
        });
    }

    #[test]
    #[should_panic(expected = "bad destination")]
    fn self_send_rejected() {
        let mpf = facility(1);
        let g = CommGroup::create(&mpf, ProcessId::from_index(0), 0, 1, "t3").unwrap();
        let _ = g.send_to(0, b"loop");
    }
}
