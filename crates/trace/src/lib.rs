//! Offline causal-trace reconstruction for MPF trace rings.
//!
//! Both backends (`mpf::Mpf` and `mpf_ipc::IpcMpf`) stamp a 64-bit trace id
//! into every message descriptor at send time and append fixed-size records
//! to per-process crash-persistent trace rings (`mpf_shm::tracering`).  This
//! crate consumes those records — live or post-mortem, via
//! [`mpf_ipc::RegionInspector`] or directly from a backend handle — and
//! rebuilds three views:
//!
//! - **causal chains**: all events sharing a trace id, ordered by hop, so a
//!   request that bounced through three processes reads as one story;
//! - **per-LNVC streams**: every traced send and delivery on a conversation,
//!   in global stamp order;
//! - **a conformance report**: the paper's §3 delivery contract checked
//!   offline (FCFS order per receiver, exactly-once FCFS delivery, broadcast
//!   completeness against the population fixed at send, no receive without a
//!   matching send, no reclaim before the obligations were met).
//!
//! ## Truncation horizon
//!
//! Trace rings are bounded: once a writer wraps, the oldest records are gone.
//! The checker is careful never to report a violation that a lost record
//! could explain — if *any* contributing ring has overwritten records, rules
//! that depend on seeing the whole history (missing send, missing delivery)
//! are suppressed and the report notes the horizon instead.  Order rules
//! (FCFS monotonicity, duplicate delivery, broadcast over-delivery) need only
//! the surviving records and stay active.
//!
//! Everything here is read-only and lock-free: safe to point at the region of
//! a SIGKILLed process.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use mpf_shm::faultplane::FaultSite;
use mpf_shm::tracering::{
    trace_event_name, TraceEvent, TR_CLOSE_RECV, TR_FAULT, TR_POISON, TR_RECLAIM, TR_RECV,
    TR_RECV_B, TR_SEND,
};

const NIL: u32 = u32::MAX;

/// One process's contribution to a trace log.
#[derive(Debug, Clone)]
pub struct PidEvents {
    /// MPF process id that owns the ring.
    pub pid: u32,
    /// True when the ring wrapped and records were lost.
    pub truncated: bool,
    /// Chains never recorded because sampling skipped them.
    pub sampled_out: u64,
    /// Surviving records in ring (seq) order.
    pub events: Vec<TraceEvent>,
}

/// An event paired with the MPF pid whose ring recorded it.
#[derive(Debug, Clone, Copy)]
pub struct Rec {
    pub pid: u32,
    pub ev: TraceEvent,
}

/// A causal chain: every recorded event sharing one trace id, across all
/// rings, ordered by hop then time.
#[derive(Debug, Clone)]
pub struct Chain {
    pub id: u64,
    pub events: Vec<Rec>,
}

impl Chain {
    /// Number of send hops observed in the chain.
    pub fn hops(&self) -> u32 {
        self.events
            .iter()
            .filter(|r| r.ev.kind == TR_SEND)
            .map(|r| r.ev.hop + 1)
            .max()
            .unwrap_or(0)
    }
}

/// Per-LNVC send/receive history in global stamp order.
#[derive(Debug, Clone)]
pub struct LnvcStream {
    pub lnvc: u32,
    pub sends: Vec<Rec>,
    pub recvs: Vec<Rec>,
}

/// Conformance rules checked by [`TraceLog::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A receiver's FCFS deliveries from one LNVC went backwards in stamp
    /// order (paper §3: FCFS messages are consumed first-come-first-served).
    FcfsOrder,
    /// The same FCFS message was delivered twice.
    DoubleFcfsDelivery,
    /// The same broadcast copy was delivered twice to one receiver.
    DoubleBcastDelivery,
    /// A delivery was recorded for a message no surviving ring ever sent.
    RecvWithoutSend,
    /// More distinct receivers saw a broadcast than were registered when it
    /// was sent.
    BcastOverDelivery,
    /// A reclaimed broadcast reached fewer receivers than its population,
    /// with no poison/close event to explain the shortfall.
    BcastUnderDelivery,
    /// A message owing an FCFS delivery was reclaimed undelivered, with no
    /// poison/close event to explain it.
    ReclaimBeforeDelivery,
    /// An error-class fault injection (pool-exhaust, peer-died) recorded no
    /// surfaced status: the fault plane claims the caller was told, but the
    /// record carries `arg2 == 0`.  Delay-class faults (notify-drop,
    /// lock-stall) legitimately surface nothing and are exempt.
    SilentErrorFault,
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rule::FcfsOrder => "fcfs-order",
            Rule::DoubleFcfsDelivery => "double-fcfs-delivery",
            Rule::DoubleBcastDelivery => "double-bcast-delivery",
            Rule::RecvWithoutSend => "recv-without-send",
            Rule::BcastOverDelivery => "bcast-over-delivery",
            Rule::BcastUnderDelivery => "bcast-under-delivery",
            Rule::ReclaimBeforeDelivery => "reclaim-before-delivery",
            Rule::SilentErrorFault => "silent-error-fault",
        };
        f.write_str(s)
    }
}

/// One conformance violation.
#[derive(Debug, Clone)]
pub struct Violation {
    pub rule: Rule,
    pub trace: u64,
    pub stamp: u64,
    pub lnvc: u32,
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] trace {:#x} stamp {} lnvc {}: {}",
            self.rule,
            self.trace,
            self.stamp,
            if self.lnvc == NIL {
                -1
            } else {
                self.lnvc as i64
            },
            self.detail
        )
    }
}

/// Conformance report: violations found plus horizon bookkeeping.
#[derive(Debug, Clone)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// True when a ring wrapped: completeness rules were suppressed.
    pub truncated: bool,
    /// Messages (send records) examined.
    pub messages: usize,
    /// Deliveries examined.
    pub deliveries: usize,
    /// Injected-fault records examined.
    pub faults: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// A merged, immutable trace log assembled from per-process rings.
#[derive(Debug, Clone)]
pub struct TraceLog {
    rings: Vec<PidEvents>,
}

impl TraceLog {
    /// Builds a log from raw per-process ring snapshots.
    pub fn new(rings: Vec<PidEvents>) -> Self {
        TraceLog { rings }
    }

    /// Snapshots every trace ring of a shared region (live or post-mortem).
    pub fn from_inspector(ins: &mpf_ipc::RegionInspector) -> Self {
        let infos = ins.trace_rings();
        let rings = infos
            .iter()
            .map(|info| PidEvents {
                pid: info.pid,
                truncated: info.overwritten > 0,
                sampled_out: info.sampled_out,
                events: ins.trace_events(info.pid),
            })
            .collect();
        TraceLog { rings }
    }

    /// Snapshots every trace ring of a thread-backend facility.
    pub fn from_mpf(mpf: &mpf::Mpf) -> Self {
        let n = mpf.config().max_processes;
        let mut rings = Vec::with_capacity(n as usize);
        for idx in 0..n as usize {
            let pid = mpf_shm::process::ProcessId::from_index(idx);
            let events = mpf.trace_events(pid).unwrap_or_default();
            let (head, skipped) = mpf.trace_ring_stats(pid).unwrap_or((0, 0));
            rings.push(PidEvents {
                pid: idx as u32,
                truncated: head > mpf_shm::tracering::TRACE_RING_SLOTS as u64,
                sampled_out: skipped,
                events,
            });
        }
        TraceLog { rings }
    }

    /// Snapshots every trace ring of a multi-process facility handle.
    pub fn from_ipc(ipc: &mpf_ipc::IpcMpf) -> Self {
        let n = ipc.max_processes();
        let mut rings = Vec::with_capacity(n as usize);
        for pid in 0..n {
            let (head, skipped) = ipc.trace_ring_stats(pid).unwrap_or((0, 0));
            rings.push(PidEvents {
                pid,
                truncated: head > mpf_shm::tracering::TRACE_RING_SLOTS as u64,
                sampled_out: skipped,
                events: ipc.trace_events(pid),
            });
        }
        TraceLog { rings }
    }

    /// Per-process ring snapshots, in pid order.
    pub fn rings(&self) -> &[PidEvents] {
        &self.rings
    }

    /// Total surviving records.
    pub fn len(&self) -> usize {
        self.rings.iter().map(|r| r.events.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when any contributing ring lost records to wrap-around.
    pub fn truncated(&self) -> bool {
        self.rings.iter().any(|r| r.truncated)
    }

    fn recs(&self) -> impl Iterator<Item = Rec> + '_ {
        self.rings
            .iter()
            .flat_map(|r| r.events.iter().map(move |&ev| Rec { pid: r.pid, ev }))
    }

    /// Groups traced events into causal chains, ordered by first stamp.
    pub fn chains(&self) -> Vec<Chain> {
        let mut by_id: BTreeMap<u64, Vec<Rec>> = BTreeMap::new();
        for rec in self.recs() {
            if rec.ev.trace != 0 {
                by_id.entry(rec.ev.trace).or_default().push(rec);
            }
        }
        let mut chains: Vec<Chain> = by_id
            .into_iter()
            .map(|(id, mut events)| {
                events.sort_by_key(|r| (r.ev.hop, r.ev.stamp, kind_rank(r.ev.kind), r.ev.tstamp));
                Chain { id, events }
            })
            .collect();
        chains.sort_by_key(|c| c.events.first().map(|r| r.ev.stamp).unwrap_or(u64::MAX));
        chains
    }

    /// Per-LNVC send/receive streams in stamp order.
    pub fn streams(&self) -> Vec<LnvcStream> {
        let mut by_lnvc: BTreeMap<u32, LnvcStream> = BTreeMap::new();
        for rec in self.recs() {
            if rec.ev.lnvc == NIL {
                continue;
            }
            let s = by_lnvc.entry(rec.ev.lnvc).or_insert_with(|| LnvcStream {
                lnvc: rec.ev.lnvc,
                sends: Vec::new(),
                recvs: Vec::new(),
            });
            match rec.ev.kind {
                TR_SEND => s.sends.push(rec),
                TR_RECV | TR_RECV_B => s.recvs.push(rec),
                _ => {}
            }
        }
        let mut streams: Vec<LnvcStream> = by_lnvc.into_values().collect();
        for s in &mut streams {
            s.sends.sort_by_key(|r| r.ev.stamp);
            s.recvs.sort_by_key(|r| r.ev.stamp);
        }
        streams
    }

    /// Runs the offline conformance checker (see module docs and DESIGN.md).
    pub fn check(&self) -> Report {
        let truncated = self.truncated();

        // Per-message views keyed by (trace, stamp): the stamp is globally
        // unique per message, the trace id ties hops of one chain together.
        #[derive(Default)]
        struct Msg {
            send: Option<Rec>,
            fcfs: Vec<Rec>,
            bcast: Vec<Rec>,
            reclaimed: bool,
        }
        let mut msgs: BTreeMap<(u64, u64), Msg> = BTreeMap::new();
        // LNVCs with lifecycle markers that legitimately void obligations.
        let mut poisoned: BTreeSet<u32> = BTreeSet::new();
        let mut closed: BTreeSet<u32> = BTreeSet::new();
        let mut global_poison = false;
        let mut fault_recs: Vec<Rec> = Vec::new();

        for rec in self.recs() {
            match rec.ev.kind {
                TR_SEND => {
                    msgs.entry((rec.ev.trace, rec.ev.stamp)).or_default().send = Some(rec);
                }
                TR_RECV => msgs
                    .entry((rec.ev.trace, rec.ev.stamp))
                    .or_default()
                    .fcfs
                    .push(rec),
                TR_RECV_B => msgs
                    .entry((rec.ev.trace, rec.ev.stamp))
                    .or_default()
                    .bcast
                    .push(rec),
                TR_RECLAIM => {
                    msgs.entry((rec.ev.trace, rec.ev.stamp))
                        .or_default()
                        .reclaimed = true;
                }
                TR_POISON => {
                    if rec.ev.lnvc == NIL {
                        global_poison = true;
                    } else {
                        poisoned.insert(rec.ev.lnvc);
                    }
                }
                TR_CLOSE_RECV => {
                    closed.insert(rec.ev.lnvc);
                }
                TR_FAULT => {
                    // An injected peer-death on a conversation voids its
                    // delivery obligations exactly like a real poison.
                    if rec.ev.arg == FaultSite::PeerDied.code() && rec.ev.lnvc != NIL {
                        poisoned.insert(rec.ev.lnvc);
                    }
                    fault_recs.push(rec);
                }
                _ => {}
            }
        }

        let excused = |lnvc: u32| -> bool {
            truncated || global_poison || poisoned.contains(&lnvc) || closed.contains(&lnvc)
        };

        let mut violations = Vec::new();
        let mut deliveries = 0usize;
        let mut messages = 0usize;

        // Rule: error-class fault injections must carry the status they
        // surfaced (`arg2` = magnitude of the typed error code).  A zero
        // here means the plane injected pool-exhaust or peer-died but the
        // caller was never told — a silently swallowed failure.
        for rec in &fault_recs {
            let site = FaultSite::from_code(rec.ev.arg);
            if site.is_some_and(|s| s.is_error_fault()) && rec.ev.arg2 == 0 {
                violations.push(Violation {
                    rule: Rule::SilentErrorFault,
                    trace: rec.ev.trace,
                    stamp: rec.ev.stamp,
                    lnvc: rec.ev.lnvc,
                    detail: format!(
                        "pid {} injected {} but recorded no surfaced status",
                        rec.pid,
                        site.map_or("?", |s| s.name())
                    ),
                });
            }
        }

        for (&(trace, stamp), msg) in &msgs {
            deliveries += msg.fcfs.len() + msg.bcast.len();
            if msg.send.is_some() {
                messages += 1;
            }

            // Rule: exactly-once FCFS delivery.
            if msg.fcfs.len() > 1 {
                violations.push(Violation {
                    rule: Rule::DoubleFcfsDelivery,
                    trace,
                    stamp,
                    lnvc: msg.fcfs[0].ev.lnvc,
                    detail: format!(
                        "delivered {} times (pids {:?})",
                        msg.fcfs.len(),
                        msg.fcfs.iter().map(|r| r.pid).collect::<Vec<_>>()
                    ),
                });
            }

            // Rule: one broadcast copy per receiver.
            let mut seen_pids = BTreeSet::new();
            for r in &msg.bcast {
                if !seen_pids.insert(r.pid) {
                    violations.push(Violation {
                        rule: Rule::DoubleBcastDelivery,
                        trace,
                        stamp,
                        lnvc: r.ev.lnvc,
                        detail: format!("pid {} received the same broadcast twice", r.pid),
                    });
                }
            }

            match msg.send {
                None => {
                    // Rule: every delivery needs a sender — unless the send
                    // record fell past the truncation horizon.
                    if (!msg.fcfs.is_empty() || !msg.bcast.is_empty()) && !truncated {
                        let r = msg.fcfs.first().or(msg.bcast.first()).unwrap();
                        violations.push(Violation {
                            rule: Rule::RecvWithoutSend,
                            trace,
                            stamp,
                            lnvc: r.ev.lnvc,
                            detail: format!(
                                "{} recorded by pid {} but no ring holds the send",
                                trace_event_name(r.ev.kind),
                                r.pid
                            ),
                        });
                    }
                }
                Some(send) => {
                    // Obligations fixed at send: arg2 = (needs_fcfs << 16) | n_bcast.
                    let needs_fcfs = (send.ev.arg2 >> 16) & 1 == 1;
                    let n_bcast = send.ev.arg2 & 0xffff;
                    let lnvc = send.ev.lnvc;

                    if seen_pids.len() as u32 > n_bcast {
                        violations.push(Violation {
                            rule: Rule::BcastOverDelivery,
                            trace,
                            stamp,
                            lnvc,
                            detail: format!(
                                "{} receivers saw it, population at send was {}",
                                seen_pids.len(),
                                n_bcast
                            ),
                        });
                    }
                    if msg.reclaimed {
                        // Once reclaimed the delivery set is final.
                        if (seen_pids.len() as u32) < n_bcast && !excused(lnvc) {
                            violations.push(Violation {
                                rule: Rule::BcastUnderDelivery,
                                trace,
                                stamp,
                                lnvc,
                                detail: format!(
                                    "reclaimed after {}/{} broadcast deliveries",
                                    seen_pids.len(),
                                    n_bcast
                                ),
                            });
                        }
                        if needs_fcfs && msg.fcfs.is_empty() && !excused(lnvc) {
                            violations.push(Violation {
                                rule: Rule::ReclaimBeforeDelivery,
                                trace,
                                stamp,
                                lnvc,
                                detail: "reclaimed before its FCFS delivery".to_string(),
                            });
                        }
                    }
                }
            }
        }

        // Rule: FCFS deliveries to one receiver from one LNVC arrive in
        // stamp (enqueue) order.  Checked per ring in record order; sampling
        // only thins the sequence, which preserves monotonicity.
        for ring in &self.rings {
            let mut last: BTreeMap<u32, u64> = BTreeMap::new();
            for ev in &ring.events {
                if ev.kind != TR_RECV {
                    continue;
                }
                if let Some(&prev) = last.get(&ev.lnvc) {
                    if ev.stamp <= prev {
                        violations.push(Violation {
                            rule: Rule::FcfsOrder,
                            trace: ev.trace,
                            stamp: ev.stamp,
                            lnvc: ev.lnvc,
                            detail: format!(
                                "pid {} received stamp {} after stamp {}",
                                ring.pid, ev.stamp, prev
                            ),
                        });
                    }
                }
                last.insert(ev.lnvc, ev.stamp);
            }
        }

        violations.sort_by_key(|v| (v.stamp, v.trace));
        Report {
            violations,
            truncated,
            messages,
            deliveries,
            faults: fault_recs.len(),
        }
    }

    /// Renders the log as Chrome `trace_event` JSON (Perfetto-loadable).
    ///
    /// Every record becomes a 1 µs complete slice on track
    /// `pid = MPF pid`, `tid = LNVC`; each send→receive pair additionally
    /// emits a flow arrow keyed by the message stamp, so causal chains draw
    /// as connected arcs across process tracks.
    pub fn chrome_json(&self) -> String {
        let mut out = String::with_capacity(4096 + self.len() * 160);
        out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let push = |out: &mut String, first: &mut bool, ev: String| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&ev);
        };

        for ring in &self.rings {
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"args\":{{\"name\":\"mpf pid {}\"}}}}",
                    ring.pid, ring.pid
                ),
            );
        }

        // Collect send/recv pairs for flow arrows while emitting slices.
        let mut sends: BTreeMap<u64, Rec> = BTreeMap::new();
        let mut recvs: Vec<Rec> = Vec::new();

        for rec in self.recs() {
            let ev = rec.ev;
            let tid: i64 = if ev.lnvc == NIL { -1 } else { ev.lnvc as i64 };
            push(
                &mut out,
                &mut first,
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"mpf\",\"ph\":\"X\",\"ts\":{},\"dur\":1,\
                     \"pid\":{},\"tid\":{},\"args\":{{\"trace\":\"{:#x}\",\"stamp\":{},\
                     \"hop\":{},\"arg\":{},\"arg2\":{},\"seq\":{}}}}}",
                    trace_event_name(ev.kind),
                    micros(ev.tstamp),
                    rec.pid,
                    tid,
                    ev.trace,
                    ev.stamp,
                    ev.hop,
                    ev.arg,
                    ev.arg2,
                    ev.seq
                ),
            );
            match ev.kind {
                TR_SEND => {
                    sends.insert(ev.stamp, rec);
                }
                TR_RECV | TR_RECV_B => recvs.push(rec),
                _ => {}
            }
        }

        for r in recvs {
            if let Some(s) = sends.get(&r.ev.stamp) {
                let flow = r.ev.stamp;
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"msg\",\"cat\":\"mpf\",\"ph\":\"s\",\"id\":{},\"ts\":{},\
                         \"pid\":{},\"tid\":{}}}",
                        flow,
                        micros(s.ev.tstamp),
                        s.pid,
                        s.ev.lnvc
                    ),
                );
                push(
                    &mut out,
                    &mut first,
                    format!(
                        "{{\"name\":\"msg\",\"cat\":\"mpf\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                         \"ts\":{},\"pid\":{},\"tid\":{}}}",
                        flow,
                        micros(r.ev.tstamp),
                        r.pid,
                        r.ev.lnvc
                    ),
                );
            }
        }

        out.push_str("]}");
        out
    }

    /// Human-readable chain rendering for the CLI.
    pub fn render_chains(&self) -> String {
        let mut out = String::new();
        for chain in self.chains() {
            out.push_str(&format!(
                "chain {:#018x} ({} events, {} hops)\n",
                chain.id,
                chain.events.len(),
                chain.hops()
            ));
            for r in &chain.events {
                out.push_str(&format!(
                    "  hop {} pid {:<3} {:<10} lnvc {:<5} stamp {:<8} arg {:<8} t {}\n",
                    r.ev.hop,
                    r.pid,
                    trace_event_name(r.ev.kind),
                    if r.ev.lnvc == NIL {
                        "-".to_string()
                    } else {
                        r.ev.lnvc.to_string()
                    },
                    r.ev.stamp,
                    r.ev.arg,
                    r.ev.tstamp
                ));
            }
        }
        out
    }
}

/// Microsecond timestamp with sub-µs precision, as Chrome expects.
fn micros(nanos: u64) -> String {
    format!("{}.{:03}", nanos / 1000, nanos % 1000)
}

/// Sort deliveries after the send that produced them when hops tie.
fn kind_rank(kind: u32) -> u32 {
    match kind {
        TR_SEND => 0,
        TR_RECV | TR_RECV_B => 1,
        TR_RECLAIM => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_shm::tracering::{TR_ENQUEUE, TR_WAKEUP};

    fn ev(
        kind: u32,
        trace: u64,
        stamp: u64,
        hop: u32,
        lnvc: u32,
        arg: u32,
        arg2: u32,
    ) -> TraceEvent {
        TraceEvent {
            seq: 0,
            tstamp: stamp * 1000,
            trace,
            stamp,
            arg,
            kind,
            hop,
            lnvc,
            arg2,
        }
    }

    fn log(rings: Vec<(u32, Vec<TraceEvent>)>) -> TraceLog {
        TraceLog::new(
            rings
                .into_iter()
                .map(|(pid, events)| PidEvents {
                    pid,
                    truncated: false,
                    sampled_out: 0,
                    events,
                })
                .collect(),
        )
    }

    #[test]
    fn clean_fcfs_round_trip_passes() {
        let l = log(vec![
            (
                0,
                vec![
                    ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16),
                    ev(TR_SEND, 0x20, 2, 0, 3, 64, 1 << 16),
                ],
            ),
            (
                1,
                vec![
                    ev(TR_RECV, 0x10, 1, 0, 3, 64, 0),
                    ev(TR_RECV, 0x20, 2, 0, 3, 64, 0),
                    ev(TR_RECLAIM, 0x10, 1, 0, NIL, 7, 0),
                    ev(TR_RECLAIM, 0x20, 2, 0, NIL, 8, 0),
                ],
            ),
        ]);
        let report = l.check();
        assert!(report.is_clean(), "{:?}", report.violations);
        assert_eq!(report.messages, 2);
        assert_eq!(report.deliveries, 2);
        assert_eq!(l.chains().len(), 2);
    }

    #[test]
    fn fcfs_order_violation_detected() {
        let l = log(vec![
            (
                0,
                vec![
                    ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16),
                    ev(TR_SEND, 0x20, 2, 0, 3, 64, 1 << 16),
                ],
            ),
            (
                1,
                vec![
                    ev(TR_RECV, 0x20, 2, 0, 3, 64, 0),
                    ev(TR_RECV, 0x10, 1, 0, 3, 64, 0),
                ],
            ),
        ]);
        let report = l.check();
        assert!(report.violations.iter().any(|v| v.rule == Rule::FcfsOrder));
    }

    #[test]
    fn double_fcfs_delivery_detected() {
        let l = log(vec![
            (0, vec![ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16)]),
            (1, vec![ev(TR_RECV, 0x10, 1, 0, 3, 64, 0)]),
            (2, vec![ev(TR_RECV, 0x10, 1, 0, 3, 64, 0)]),
        ]);
        let report = l.check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::DoubleFcfsDelivery));
    }

    #[test]
    fn recv_without_send_needs_full_history() {
        let orphan = vec![(1u32, vec![ev(TR_RECV, 0x10, 5, 0, 3, 64, 0)])];
        let report = log(orphan.clone()).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::RecvWithoutSend));

        // Same log, but the sender's ring wrapped: suppressed.
        let mut rings: Vec<PidEvents> = orphan
            .into_iter()
            .map(|(pid, events)| PidEvents {
                pid,
                truncated: false,
                sampled_out: 0,
                events,
            })
            .collect();
        rings.push(PidEvents {
            pid: 0,
            truncated: true,
            sampled_out: 0,
            events: vec![],
        });
        let report = TraceLog::new(rings).check();
        assert!(report.truncated);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn bcast_under_delivery_detected_and_poison_excuses() {
        // Population 2 at send, one delivery, then reclaimed.
        let base = vec![
            (0u32, vec![ev(TR_SEND, 0x10, 1, 0, 3, 64, 2)]),
            (
                1u32,
                vec![
                    ev(TR_RECV_B, 0x10, 1, 0, 3, 64, 0),
                    ev(TR_RECLAIM, 0x10, 1, 0, NIL, 7, 0),
                ],
            ),
        ];
        let report = log(base.clone()).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::BcastUnderDelivery));

        // A poison marker on the LNVC voids the missing receiver's claim.
        let mut with_poison = base;
        with_poison
            .get_mut(1)
            .unwrap()
            .1
            .push(ev(TR_POISON, 0, 0, 0, 3, 99, 0));
        let report = log(with_poison).check();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn bcast_over_delivery_detected() {
        let l = log(vec![
            (0, vec![ev(TR_SEND, 0x10, 1, 0, 3, 64, 1)]),
            (1, vec![ev(TR_RECV_B, 0x10, 1, 0, 3, 64, 0)]),
            (2, vec![ev(TR_RECV_B, 0x10, 1, 0, 3, 64, 0)]),
        ]);
        let report = l.check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::BcastOverDelivery));
    }

    #[test]
    fn reclaim_before_fcfs_delivery_detected_and_close_excuses() {
        let base = vec![(
            0u32,
            vec![
                ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16),
                ev(TR_RECLAIM, 0x10, 1, 0, NIL, 7, 0),
            ],
        )];
        let report = log(base.clone()).check();
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::ReclaimBeforeDelivery));

        let mut with_close = base;
        with_close
            .get_mut(0)
            .unwrap()
            .1
            .push(ev(TR_CLOSE_RECV, 0, 0, 0, 3, 1, 0));
        let report = log(with_close).check();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn silent_error_fault_detected_and_delay_faults_exempt() {
        // A pool-exhaust injection (site 3) with no surfaced status.
        let l = log(vec![(0, vec![ev(TR_FAULT, 0, 0, 0, NIL, 3, 0)])]);
        let report = l.check();
        assert_eq!(report.faults, 1);
        assert!(report
            .violations
            .iter()
            .any(|v| v.rule == Rule::SilentErrorFault));

        // The same injection carrying |PoolsExhausted| is conformant, and
        // delay-class faults (notify-drop, lock-stall) never need one.
        let l = log(vec![(
            0,
            vec![
                ev(TR_FAULT, 0, 0, 0, NIL, 3, 9),
                ev(TR_FAULT, 0, 0, 0, 3, 1, 0),
                ev(TR_FAULT, 0, 0, 0, 3, 2, 0),
            ],
        )]);
        let report = l.check();
        assert_eq!(report.faults, 3);
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn injected_peer_death_excuses_obligations_like_poison() {
        // Population 2 at send, one delivery, reclaimed — normally an
        // under-delivery, but a peer-died injection on the LNVC voids it.
        let l = log(vec![
            (0, vec![ev(TR_SEND, 0x10, 1, 0, 3, 64, 2)]),
            (
                1,
                vec![
                    ev(TR_RECV_B, 0x10, 1, 0, 3, 64, 0),
                    ev(TR_RECLAIM, 0x10, 1, 0, NIL, 7, 0),
                    ev(TR_FAULT, 0, 0, 0, 3, 4, 18),
                ],
            ),
        ]);
        let report = l.check();
        assert!(report.is_clean(), "{:?}", report.violations);
    }

    #[test]
    fn chains_order_by_hop_and_streams_split_by_lnvc() {
        let l = log(vec![
            (
                0,
                vec![
                    ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16),
                    ev(TR_ENQUEUE, 0x30, 9, 0, 4, 32, 0),
                ],
            ),
            (
                1,
                vec![
                    ev(TR_RECV, 0x10, 1, 0, 3, 64, 0),
                    ev(TR_SEND, 0x10, 2, 1, 4, 16, 1 << 16),
                    ev(TR_WAKEUP, 0x10, 0, 0, 3, 64, 0),
                ],
            ),
            (2, vec![ev(TR_RECV, 0x10, 2, 1, 4, 16, 0)]),
        ]);
        let chains = l.chains();
        assert_eq!(chains.len(), 2);
        let chain = chains.iter().find(|c| c.id == 0x10).unwrap();
        assert_eq!(chain.hops(), 2);
        let hops: Vec<u32> = chain.events.iter().map(|r| r.ev.hop).collect();
        let mut sorted = hops.clone();
        sorted.sort_unstable();
        assert_eq!(hops, sorted);

        let streams = l.streams();
        assert_eq!(streams.len(), 2);
        assert_eq!(streams[0].lnvc, 3);
        assert_eq!(streams[0].sends.len(), 1);
        assert_eq!(streams[0].recvs.len(), 1);
        assert_eq!(streams[1].lnvc, 4);
    }

    #[test]
    fn chrome_json_is_balanced_and_has_flows() {
        let l = log(vec![
            (0, vec![ev(TR_SEND, 0x10, 1, 0, 3, 64, 1 << 16)]),
            (1, vec![ev(TR_RECV, 0x10, 1, 0, 3, 64, 0)]),
        ]);
        let json = l.chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"process_name\""));
    }
}
