//! `mpf-trace` — offline causal-trace reconstruction for an MPF region.
//!
//! ```text
//! mpf-trace <region-name> [--chains] [--check] [--export <path|->] [--json]
//! mpf-trace <region-name> --follow [--interval-ms N] [--for-secs N]
//! ```
//!
//! Attaches **read-only** (`RegionInspector`): no process slot, no lock,
//! no write — safe on a live region and on the leftover region file of a
//! SIGKILLed session.  With no mode flags it prints a summary plus the
//! conformance report.
//!
//! - `--chains` renders every reconstructed causal chain, hop by hop.
//! - `--check` runs only the §3 conformance checker; the process exits
//!   with status 3 when violations are found, so CI can gate on it.
//! - `--export <path>` writes Chrome `trace_event` JSON (Perfetto and
//!   `chrome://tracing` load it); `-` writes to stdout.
//! - `--json` switches the summary/check output to machine-readable JSON.
//! - `--follow` tails the live trace rings, printing records as the
//!   region's processes write them (`mpf-soak --debug` drives this).
//!   Each poll re-reads the single-writer rings without locking; records
//!   lost to ring wrap-around are reported as a gap.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use mpf_ipc::RegionInspector;
use mpf_shm::tracering::trace_event_name;
use mpf_trace::TraceLog;

fn usage() -> ! {
    eprintln!(
        "usage: mpf-trace <region-name> [--chains] [--check] [--export <path|->] [--json]\n\
         \u{20}      mpf-trace <region-name> --follow [--interval-ms N] [--for-secs N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut chains = false;
    let mut check_only = false;
    let mut export: Option<String> = None;
    let mut json = false;
    let mut follow = false;
    let mut interval = Duration::from_millis(250);
    let mut for_secs: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chains" => chains = true,
            "--check" => check_only = true,
            "--json" => json = true,
            "--follow" => follow = true,
            "--interval-ms" => {
                let Some(ms) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    usage()
                };
                interval = Duration::from_millis(ms.max(1));
                i += 1;
            }
            "--for-secs" => {
                let Some(s) = args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) else {
                    usage()
                };
                for_secs = Some(s);
                i += 1;
            }
            "--export" => {
                let Some(path) = args.get(i + 1) else { usage() };
                export = Some(path.clone());
                i += 1;
            }
            "--help" | "-h" => usage(),
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("mpf-trace: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(name) = name else { usage() };

    let insp = match RegionInspector::attach(&name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mpf-trace: cannot attach `{name}`: {e}");
            std::process::exit(1);
        }
    };
    if !insp.trace_enabled() {
        eprintln!("mpf-trace: region `{name}` was created with tracing disabled");
    }
    if follow {
        follow_rings(&insp, interval, for_secs);
        return;
    }
    let log = TraceLog::from_inspector(&insp);

    if let Some(path) = export {
        let out = log.chrome_json();
        if path == "-" {
            println!("{out}");
        } else if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("mpf-trace: cannot write `{path}`: {e}");
            std::process::exit(1);
        } else {
            eprintln!(
                "mpf-trace: wrote {} events to {path} (load in Perfetto or chrome://tracing)",
                log.len()
            );
        }
        if !chains && !check_only {
            return;
        }
    }

    if chains {
        print!("{}", log.render_chains());
        if !check_only {
            return;
        }
    }

    let report = log.check();
    if json {
        println!("{}", report_json(&name, &log, &report));
    } else {
        print!("{}", summary_text(&name, &log));
        if report.truncated {
            println!("note: a ring wrapped — completeness rules suppressed past the horizon");
        }
        println!(
            "conformance: {} messages, {} deliveries, {} injected fault(s), {} violation(s)",
            report.messages,
            report.deliveries,
            report.faults,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  {v}");
        }
    }
    if !report.is_clean() {
        std::process::exit(3);
    }
}

/// Live-tails every process's trace ring: each poll re-reads the
/// single-writer rings (no locks taken — same guarantee as the offline
/// reader) and prints records newer than the last seen sequence.  Wrap
/// losses show up as an explicit gap line rather than silently skipped
/// output.  Runs until `--for-secs` elapses or the process is killed.
fn follow_rings(insp: &RegionInspector, interval: Duration, for_secs: Option<u64>) {
    let deadline = for_secs.map(|s| Instant::now() + Duration::from_secs(s));
    let nprocs = insp.trace_rings().len();
    let mut last_seq = vec![0u64; nprocs];
    let mut t0: Option<u64> = None;
    println!(
        "{:<4}{:>10}  {:<10}{:>10}{:>8}{:>5}{:>6}{:>10}{:>10}",
        "pid", "ms", "kind", "trace", "stamp", "hop", "lnvc", "arg", "arg2"
    );
    loop {
        for (pid, last) in last_seq.iter_mut().enumerate() {
            let events = insp.trace_events(pid as u32);
            let Some(newest) = events.last().map(|e| e.seq) else {
                continue;
            };
            if newest <= *last {
                continue;
            }
            let oldest_avail = events.first().map(|e| e.seq).unwrap_or(newest);
            if *last != 0 && oldest_avail > *last + 1 {
                println!(
                    "{:<4}  -- gap: {} record(s) overwritten before this poll --",
                    pid,
                    oldest_avail - *last - 1
                );
            }
            for e in events.iter().filter(|e| e.seq > *last) {
                let base = *t0.get_or_insert(e.tstamp);
                println!(
                    "{:<4}{:>10}  {:<10}{:>10x}{:>8}{:>5}{:>6}{:>10}{:>10}",
                    pid,
                    e.tstamp.saturating_sub(base) / 1_000_000,
                    trace_event_name(e.kind),
                    e.trace,
                    e.stamp,
                    e.hop,
                    if e.lnvc == u32::MAX {
                        -1
                    } else {
                        e.lnvc as i64
                    },
                    e.arg,
                    e.arg2
                );
            }
            *last = newest;
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                return;
            }
        }
        std::thread::sleep(interval);
    }
}

fn summary_text(name: &str, log: &TraceLog) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "region {name}: {} surviving trace records across {} rings",
        log.len(),
        log.rings().len()
    );
    for r in log.rings() {
        if r.events.is_empty() && r.sampled_out == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  pid {:<3} {:>6} records{}{}",
            r.pid,
            r.events.len(),
            if r.truncated { "  (wrapped)" } else { "" },
            if r.sampled_out > 0 {
                format!("  ({} chains sampled out)", r.sampled_out)
            } else {
                String::new()
            },
        );
    }
    let _ = writeln!(s, "chains reconstructed: {}", log.chains().len());
    s
}

fn report_json(name: &str, log: &TraceLog, report: &mpf_trace::Report) -> String {
    let rings = log
        .rings()
        .iter()
        .map(|r| {
            format!(
                "{{\"pid\":{},\"records\":{},\"truncated\":{},\"sampled_out\":{}}}",
                r.pid,
                r.events.len(),
                r.truncated,
                r.sampled_out
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let violations = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"rule\":\"{}\",\"trace\":\"{:#x}\",\"stamp\":{},\"lnvc\":{},\"detail\":\"{}\"}}",
                v.rule,
                v.trace,
                v.stamp,
                if v.lnvc == u32::MAX {
                    -1
                } else {
                    v.lnvc as i64
                },
                v.detail.replace('\\', "\\\\").replace('"', "\\\""),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"region\":\"{}\",\"records\":{},\"chains\":{},\"truncated\":{},\
         \"messages\":{},\"deliveries\":{},\"faults\":{},\"rings\":[{rings}],\
         \"violations\":[{violations}]}}",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        log.len(),
        log.chains().len(),
        report.truncated,
        report.messages,
        report.deliveries,
        report.faults,
    )
}
