//! `mpf-trace` — offline causal-trace reconstruction for an MPF region.
//!
//! ```text
//! mpf-trace <region-name> [--chains] [--check] [--export <path|->] [--json]
//! ```
//!
//! Attaches **read-only** (`RegionInspector`): no process slot, no lock,
//! no write — safe on a live region and on the leftover region file of a
//! SIGKILLed session.  With no mode flags it prints a summary plus the
//! conformance report.
//!
//! - `--chains` renders every reconstructed causal chain, hop by hop.
//! - `--check` runs only the §3 conformance checker; the process exits
//!   with status 3 when violations are found, so CI can gate on it.
//! - `--export <path>` writes Chrome `trace_event` JSON (Perfetto and
//!   `chrome://tracing` load it); `-` writes to stdout.
//! - `--json` switches the summary/check output to machine-readable JSON.

use std::fmt::Write as _;

use mpf_ipc::RegionInspector;
use mpf_trace::TraceLog;

fn usage() -> ! {
    eprintln!("usage: mpf-trace <region-name> [--chains] [--check] [--export <path|->] [--json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut chains = false;
    let mut check_only = false;
    let mut export: Option<String> = None;
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--chains" => chains = true,
            "--check" => check_only = true,
            "--json" => json = true,
            "--export" => {
                let Some(path) = args.get(i + 1) else { usage() };
                export = Some(path.clone());
                i += 1;
            }
            "--help" | "-h" => usage(),
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("mpf-trace: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(name) = name else { usage() };

    let insp = match RegionInspector::attach(&name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mpf-trace: cannot attach `{name}`: {e}");
            std::process::exit(1);
        }
    };
    if !insp.trace_enabled() {
        eprintln!("mpf-trace: region `{name}` was created with tracing disabled");
    }
    let log = TraceLog::from_inspector(&insp);

    if let Some(path) = export {
        let out = log.chrome_json();
        if path == "-" {
            println!("{out}");
        } else if let Err(e) = std::fs::write(&path, &out) {
            eprintln!("mpf-trace: cannot write `{path}`: {e}");
            std::process::exit(1);
        } else {
            eprintln!(
                "mpf-trace: wrote {} events to {path} (load in Perfetto or chrome://tracing)",
                log.len()
            );
        }
        if !chains && !check_only {
            return;
        }
    }

    if chains {
        print!("{}", log.render_chains());
        if !check_only {
            return;
        }
    }

    let report = log.check();
    if json {
        println!("{}", report_json(&name, &log, &report));
    } else {
        print!("{}", summary_text(&name, &log));
        if report.truncated {
            println!("note: a ring wrapped — completeness rules suppressed past the horizon");
        }
        println!(
            "conformance: {} messages, {} deliveries, {} violation(s)",
            report.messages,
            report.deliveries,
            report.violations.len()
        );
        for v in &report.violations {
            println!("  {v}");
        }
    }
    if !report.is_clean() {
        std::process::exit(3);
    }
}

fn summary_text(name: &str, log: &TraceLog) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "region {name}: {} surviving trace records across {} rings",
        log.len(),
        log.rings().len()
    );
    for r in log.rings() {
        if r.events.is_empty() && r.sampled_out == 0 {
            continue;
        }
        let _ = writeln!(
            s,
            "  pid {:<3} {:>6} records{}{}",
            r.pid,
            r.events.len(),
            if r.truncated { "  (wrapped)" } else { "" },
            if r.sampled_out > 0 {
                format!("  ({} chains sampled out)", r.sampled_out)
            } else {
                String::new()
            },
        );
    }
    let _ = writeln!(s, "chains reconstructed: {}", log.chains().len());
    s
}

fn report_json(name: &str, log: &TraceLog, report: &mpf_trace::Report) -> String {
    let rings = log
        .rings()
        .iter()
        .map(|r| {
            format!(
                "{{\"pid\":{},\"records\":{},\"truncated\":{},\"sampled_out\":{}}}",
                r.pid,
                r.events.len(),
                r.truncated,
                r.sampled_out
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let violations = report
        .violations
        .iter()
        .map(|v| {
            format!(
                "{{\"rule\":\"{}\",\"trace\":\"{:#x}\",\"stamp\":{},\"lnvc\":{},\"detail\":\"{}\"}}",
                v.rule,
                v.trace,
                v.stamp,
                if v.lnvc == u32::MAX {
                    -1
                } else {
                    v.lnvc as i64
                },
                v.detail.replace('\\', "\\\\").replace('"', "\\\""),
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"region\":\"{}\",\"records\":{},\"chains\":{},\"truncated\":{},\
         \"messages\":{},\"deliveries\":{},\"rings\":[{rings}],\"violations\":[{violations}]}}",
        name.replace('\\', "\\\\").replace('"', "\\\""),
        log.len(),
        log.chains().len(),
        report.truncated,
        report.messages,
        report.deliveries,
    )
}
