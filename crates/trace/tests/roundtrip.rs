//! Trace round-trip: real traffic in, exact causal chains out.
//!
//! Thread-backend tests drive `Mpf` directly; the cross-process test
//! re-executes this test binary (`--exact helper_* --ignored`) so the
//! victim really is a separate OS process, then SIGKILLs it and
//! reconstructs what it was doing from the region file alone.

use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_ipc::{IpcMpf, RegionInspector};
use mpf_shm::tracering::{TR_RECLAIM, TR_RECV, TR_SEND};
use mpf_trace::TraceLog;

const REGION_ENV: &str = "MPF_TRACE_REGION";

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn small_cfg() -> MpfConfig {
    MpfConfig::new(8, 4)
        .with_block_payload(64)
        .with_total_blocks(128)
        .with_max_messages(64)
        .with_max_connections(32)
}

/// One request/reply bounce on the thread backend: the reply send must
/// inherit the request's trace id with hop 1, and the reconstructed
/// chain must read send → recv → send → recv in hop order, ending with
/// both reclaims — conformance-clean.
#[test]
fn mpf_roundtrip_reconstructs_exact_chain() {
    let mpf = Mpf::init(small_cfg()).unwrap();
    let req_tx = mpf.open_send(p(0), "req").unwrap();
    let req_rx = mpf.open_receive(p(1), "req", Protocol::Fcfs).unwrap();
    let rep_tx = mpf.open_send(p(1), "reply").unwrap();
    let rep_rx = mpf.open_receive(p(0), "reply", Protocol::Fcfs).unwrap();

    let mut buf = [0u8; 64];
    mpf.message_send(p(0), req_tx, b"ping").unwrap();
    let n = mpf.message_receive(p(1), req_rx, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"ping");
    mpf.message_send(p(1), rep_tx, b"pong!").unwrap();
    let n = mpf.message_receive(p(0), rep_rx, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"pong!");

    let log = TraceLog::from_mpf(&mpf);
    let chains = log.chains();
    assert_eq!(chains.len(), 1, "one causal chain: {chains:?}");
    let chain = &chains[0];
    assert_eq!(chain.hops(), 2, "request + reply hops: {chain:?}");

    // The exact story, in order: p0 sends hop 0 on req, p1 receives it,
    // p1 sends hop 1 on reply, p0 receives that.
    let core: Vec<(u32, u32, u32)> = chain
        .events
        .iter()
        .filter(|r| matches!(r.ev.kind, TR_SEND | TR_RECV))
        .map(|r| (r.ev.hop, r.pid, r.ev.kind))
        .collect();
    assert_eq!(
        core,
        vec![
            (0, 0, TR_SEND),
            (0, 1, TR_RECV),
            (1, 1, TR_SEND),
            (1, 0, TR_RECV),
        ],
        "chain mis-reconstructed: {chain:?}"
    );
    assert_eq!(
        chain
            .events
            .iter()
            .filter(|r| r.ev.kind == TR_RECLAIM)
            .count(),
        2,
        "both messages reclaimed in-chain: {chain:?}"
    );

    let report = log.check();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.messages, 2);
    assert_eq!(report.deliveries, 2);

    // The export is loadable JSON with flow arrows for both hops.
    let json = log.chrome_json();
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches("\"ph\":\"s\"").count(), 2);
}

/// Sampling thins chains, never the events inside one: at 1-in-2, four
/// independent sends yield two fully-recorded chains and two skips, and
/// the record stays conformance-clean.
#[test]
fn sampling_thins_chains_not_events() {
    let mpf = Mpf::init(small_cfg().trace_sample_rate(2)).unwrap();
    let tx = mpf.open_send(p(0), "sampled").unwrap();
    let rx = mpf.open_receive(p(1), "sampled", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 64];
    for i in 0..4u8 {
        mpf.message_send(p(0), tx, &[i; 16]).unwrap();
        mpf.message_receive(p(1), rx, &mut buf).unwrap();
    }
    let log = TraceLog::from_mpf(&mpf);
    assert_eq!(log.chains().len(), 2, "1-in-2 of four roots");
    let skipped: u64 = log.rings().iter().map(|r| r.sampled_out).sum();
    assert_eq!(skipped, 2);
    for chain in log.chains() {
        let kinds: Vec<u32> = chain.events.iter().map(|r| r.ev.kind).collect();
        assert!(kinds.contains(&TR_SEND) && kinds.contains(&TR_RECV));
    }
    let report = log.check();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
}

/// `trace_sample_rate(0)` turns recording off entirely — population
/// markers included — while traffic flows normally.
#[test]
fn rate_zero_disables_tracing() {
    let mpf = Mpf::init(small_cfg().trace_sample_rate(0)).unwrap();
    let tx = mpf.open_send(p(0), "silent").unwrap();
    let rx = mpf.open_receive(p(1), "silent", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 64];
    mpf.message_send(p(0), tx, b"unseen").unwrap();
    mpf.message_receive(p(1), rx, &mut buf).unwrap();
    let log = TraceLog::from_mpf(&mpf);
    assert!(log.is_empty(), "rate 0 must record nothing: {log:?}");
}

/// Broadcast delivery on the thread backend: one send, two `TR_RECV_B`
/// records, population echoed in the send's obligations, clean report.
#[test]
fn broadcast_chain_covers_every_receiver() {
    let mpf = Mpf::init(small_cfg()).unwrap();
    let tx = mpf.open_send(p(0), "news").unwrap();
    let r1 = mpf.open_receive(p(1), "news", Protocol::Broadcast).unwrap();
    let r2 = mpf.open_receive(p(2), "news", Protocol::Broadcast).unwrap();
    let mut buf = [0u8; 64];
    mpf.message_send(p(0), tx, b"flash").unwrap();
    mpf.message_receive(p(1), r1, &mut buf).unwrap();
    mpf.message_receive(p(2), r2, &mut buf).unwrap();
    // Closing both receivers reclaims the fully-delivered copy.
    mpf.close_receive(p(1), r1).unwrap();
    mpf.close_receive(p(2), r2).unwrap();

    let log = TraceLog::from_mpf(&mpf);
    let chains = log.chains();
    assert_eq!(chains.len(), 1);
    let send = chains[0]
        .events
        .iter()
        .find(|r| r.ev.kind == TR_SEND)
        .expect("send recorded");
    assert_eq!(send.ev.arg2 & 0xffff, 2, "population 2 at send");
    let report = log.check();
    assert!(report.is_clean(), "violations: {:?}", report.violations);
    assert_eq!(report.deliveries, 2);
}

// ---------------------------------------------------------------------------
// Cross-process: SIGKILL a peer, reconstruct post-mortem
// ---------------------------------------------------------------------------

fn spawn_helper(helper: &str, region: &str) -> Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .args([
            "--exact",
            helper,
            "--ignored",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(REGION_ENV, region)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn helper process")
}

/// Child role for [`sigkilled_peer_reconstructs_post_mortem`]: answer one
/// request (continuing its causal chain), queue undeliverable messages on
/// a conversation nobody reads, then park until SIGKILLed.
#[test]
#[ignore = "helper: only meaningful when spawned by a parent test"]
fn helper_traced_victim() {
    let Ok(region) = std::env::var(REGION_ENV) else {
        return;
    };
    let m = IpcMpf::attach(&region).expect("attach");
    let req = m.open_receive("req", Protocol::Fcfs).expect("open req");
    let rep = m.open_send("reply").expect("open reply");
    let void = m.open_send("void").expect("open void");
    let mut buf = [0u8; 64];
    let n = m.message_receive(req, &mut buf).expect("receive request");
    m.message_send(rep, &buf[..n]).expect("send reply");
    for i in 0..3u8 {
        m.message_send(void, &[i; 8]).expect("send into the void");
    }
    std::thread::sleep(Duration::from_secs(60));
}

/// The tentpole's acceptance story: a 2-process run whose peer is
/// SIGKILLed mid-session still yields the exact request/reply causal
/// chain — spanning both rings, dead process included — and a
/// conformance-clean report (the victim's undelivered backlog is excused
/// by the poison markers the survivor's sweep records).  The `mpf-trace`
/// binary is exercised the way an operator would run it.
#[test]
fn sigkilled_peer_reconstructs_post_mortem() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let region = format!("trace-pm-{}", std::process::id());
    let m = IpcMpf::create(&region, &small_cfg()).unwrap();
    let req_tx = m.open_send("req").unwrap();
    let rep_rx = m.open_receive("reply", Protocol::Fcfs).unwrap();
    // "void" stays open on the survivor side so the victim's undelivered
    // backlog remains queued (and poisoned) rather than vanishing with
    // the conversation.
    let _void_rx = m.open_receive("void", Protocol::Fcfs).unwrap();

    let mut victim = spawn_helper("helper_traced_victim", &region);
    m.message_send(req_tx, b"trace me").unwrap();
    let mut buf = [0u8; 64];
    let n = m
        .message_receive_timeout(rep_rx, &mut buf, Duration::from_secs(30))
        .expect("reply arrives");
    assert_eq!(&buf[..n], b"trace me");

    // Wait until the victim's three void sends are visible, then kill it.
    let insp = RegionInspector::attach(&region).unwrap();
    let victim_slot = loop {
        let logs = TraceLog::from_inspector(&insp);
        let victim_pid = logs
            .rings()
            .iter()
            .find(|r| r.pid != m.pid() && !r.events.is_empty())
            .map(|r| r.pid);
        if let Some(pid) = victim_pid {
            let voids = insp
                .trace_events(pid)
                .iter()
                .filter(|e| e.kind == TR_SEND && e.arg == 8)
                .count();
            if voids >= 3 {
                break pid;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");
    while m.sweep_dead_peers() == 0 {
        std::thread::sleep(Duration::from_millis(10));
    }

    // Post-mortem reconstruction straight off the region file.
    let log = TraceLog::from_inspector(&insp);
    let chain = log
        .chains()
        .into_iter()
        .find(|c| c.hops() == 2)
        .expect("request/reply chain survives the kill");
    let core: Vec<(u32, u32, u32)> = chain
        .events
        .iter()
        .filter(|r| matches!(r.ev.kind, TR_SEND | TR_RECV))
        .map(|r| (r.ev.hop, r.pid, r.ev.kind))
        .collect();
    // The victim adopted the request's chain on delivery, so every send
    // it issued afterwards — the reply AND the three void sends — rides
    // the same trace id at hop 1.
    assert_eq!(
        core,
        vec![
            (0, m.pid(), TR_SEND),
            (0, victim_slot, TR_RECV),
            (1, victim_slot, TR_SEND),
            (1, m.pid(), TR_RECV),
            (1, victim_slot, TR_SEND),
            (1, victim_slot, TR_SEND),
            (1, victim_slot, TR_SEND),
        ],
        "post-mortem chain mis-reconstructed: {chain:?}"
    );

    let report = log.check();
    assert!(
        report.is_clean(),
        "SIGKILL run must check clean: {:?}",
        report.violations
    );

    // The binary, exactly as an operator would run it: check gates on
    // conformance (exit 0 = clean), export produces loadable JSON.
    let out = Command::new(env!("CARGO_BIN_EXE_mpf-trace"))
        .args([region.as_str(), "--check", "--json"])
        .output()
        .expect("run mpf-trace");
    assert!(out.status.success(), "mpf-trace --check failed: {out:?}");
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"violations\":[]"), "dirty report: {json}");

    let export = std::env::temp_dir().join(format!("mpf-trace-{}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_mpf-trace"))
        .args([region.as_str(), "--export", export.to_str().unwrap()])
        .output()
        .expect("run mpf-trace --export");
    assert!(out.status.success(), "export failed: {out:?}");
    let exported = std::fs::read_to_string(&export).unwrap();
    assert!(exported.contains("\"traceEvents\""));
    assert_eq!(exported.matches('{').count(), exported.matches('}').count());
    let _ = std::fs::remove_file(&export);
}
