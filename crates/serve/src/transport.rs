//! The backend seam: one trait the server, workers, and clients speak,
//! with three implementations.
//!
//! * [`IpcTransport`] — the production shape: wraps
//!   [`mpf_aio::AsyncIpc`], driving its futures with
//!   [`mpf_aio::block_on_deadline`] so every blocking operation is
//!   timeout-capable (the reactor multiplexes the actual waiting).
//! * [`ThreadTransport`] — same, over [`mpf_aio::AsyncMpf`] for the
//!   in-process backend: unit tests and the threads soak variant.
//! * [`SyncTransport`] — a deliberately timeout-free synchronous shape
//!   over `mpf::Mpf`'s blocking primitives, for `mpf-check` schedule
//!   exploration: every block goes through the hooked waitqs the
//!   cooperative scheduler models, and no reactor thread or wall clock
//!   is involved.
//!
//! Deadline semantics: `None` means block indefinitely.  A transport
//! that cannot honor deadlines ([`SyncTransport`]) treats every deadline
//! as `None`; callers built for determinism pass `None` anyway.

use std::fmt::Debug;
use std::sync::Arc;
use std::time::Instant;

use mpf::{LnvcId, Mpf, MpfError, ProcessId, Protocol, Result};
use mpf_aio::{block_on, block_on_deadline, AsyncIpc, AsyncMpf};
use mpf_ipc::IpcLnvcId;

/// What the service layer needs from a backend.
pub trait Transport: Send + Sync + 'static {
    /// Conversation handle.
    type Id: Copy + PartialEq + Eq + Debug + Send + Sync + 'static;

    fn open_send(&self, name: &str) -> Result<Self::Id>;
    fn open_receive(&self, name: &str, protocol: Protocol) -> Result<Self::Id>;
    fn close_send(&self, id: Self::Id) -> Result<()>;
    fn close_receive(&self, id: Self::Id) -> Result<()>;

    /// Sends, blocking under region exhaustion until `deadline`.
    /// `Ok(false)` means the deadline passed with the message **not**
    /// enqueued (safe to retry or drop).
    fn send_deadline(
        &self,
        id: Self::Id,
        payload: &[u8],
        deadline: Option<Instant>,
    ) -> Result<bool>;

    /// Receives, blocking until `deadline`; `Ok(None)` on timeout.
    fn recv_deadline(&self, id: Self::Id, deadline: Option<Instant>) -> Result<Option<Vec<u8>>>;

    /// Receives from whichever of `ids` delivers first; `Ok(None)` on
    /// timeout.
    fn recv_any_deadline(
        &self,
        ids: &[Self::Id],
        deadline: Option<Instant>,
    ) -> Result<Option<(Self::Id, Vec<u8>)>>;

    /// Non-blocking receive.
    fn try_recv(&self, id: Self::Id) -> Result<Option<Vec<u8>>>;

    /// Non-blocking batched receive (drains up to `max` under one lock
    /// hold where the backend supports it).
    fn try_recv_batch(&self, id: Self::Id, max: usize) -> Result<Vec<Vec<u8>>>;

    /// Whether a conversation with this name exists right now (a racy
    /// hint; used for epoch discovery without the create-on-open side
    /// effect).
    fn lnvc_exists(&self, name: &str) -> bool;

    /// Current queue depth (racy hint; drain residual check).
    fn queue_depth(&self, id: Self::Id) -> Result<u32>;

    /// Whether the conversation is poisoned by a dead peer — or gone
    /// entirely, which calls for the same re-anchor reaction.  Always
    /// `false` where peers cannot die.
    fn is_poisoned(&self, id: Self::Id) -> bool;

    /// Looks for dead peers, poisoning what they touched; returns how
    /// many corpses were found.  No-op where peers cannot die.
    fn sweep_dead(&self) -> u32;
}

// ----------------------------------------------------------------------
// IPC (multi-process) transport
// ----------------------------------------------------------------------

/// Production transport: [`AsyncIpc`] futures driven to completion (or
/// deadline) on the calling thread.
pub struct IpcTransport(pub AsyncIpc);

impl Transport for IpcTransport {
    type Id = IpcLnvcId;

    fn open_send(&self, name: &str) -> Result<IpcLnvcId> {
        self.0.open_send(name)
    }

    fn open_receive(&self, name: &str, protocol: Protocol) -> Result<IpcLnvcId> {
        self.0.open_receive(name, protocol)
    }

    fn close_send(&self, id: IpcLnvcId) -> Result<()> {
        self.0.close_send(id)
    }

    fn close_receive(&self, id: IpcLnvcId) -> Result<()> {
        self.0.close_receive(id)
    }

    fn send_deadline(
        &self,
        id: IpcLnvcId,
        payload: &[u8],
        deadline: Option<Instant>,
    ) -> Result<bool> {
        match deadline {
            None => block_on(self.0.send(id, payload.to_vec())).map(|()| true),
            Some(dl) => match block_on_deadline(self.0.send(id, payload.to_vec()), dl) {
                Some(r) => r.map(|()| true),
                None => Ok(false),
            },
        }
    }

    fn recv_deadline(&self, id: IpcLnvcId, deadline: Option<Instant>) -> Result<Option<Vec<u8>>> {
        match deadline {
            None => block_on(self.0.recv(id)).map(Some),
            Some(dl) => block_on_deadline(self.0.recv(id), dl).transpose(),
        }
    }

    fn recv_any_deadline(
        &self,
        ids: &[IpcLnvcId],
        deadline: Option<Instant>,
    ) -> Result<Option<(IpcLnvcId, Vec<u8>)>> {
        match deadline {
            None => block_on(self.0.select_any(ids)).map(Some),
            Some(dl) => block_on_deadline(self.0.select_any(ids), dl).transpose(),
        }
    }

    fn try_recv(&self, id: IpcLnvcId) -> Result<Option<Vec<u8>>> {
        self.0.facility().try_message_receive_vec(id)
    }

    fn try_recv_batch(&self, id: IpcLnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.0.facility().try_recv_batch(id, max)
    }

    fn lnvc_exists(&self, name: &str) -> bool {
        self.0.facility().lnvc_exists(name)
    }

    fn queue_depth(&self, id: IpcLnvcId) -> Result<u32> {
        self.0.facility().queue_depth(id)
    }

    fn is_poisoned(&self, id: IpcLnvcId) -> bool {
        // UnknownLnvc means the conversation vanished under us — the
        // reaction (re-anchor) is the same as for poison.
        self.0.facility().lnvc_poisoned(id).unwrap_or(true)
    }

    fn sweep_dead(&self) -> u32 {
        self.0.facility().sweep_dead_peers()
    }
}

// ----------------------------------------------------------------------
// Thread (in-process) transport
// ----------------------------------------------------------------------

/// In-process transport: [`AsyncMpf`] bound to one logical process.
pub struct ThreadTransport(pub AsyncMpf);

impl Transport for ThreadTransport {
    type Id = LnvcId;

    fn open_send(&self, name: &str) -> Result<LnvcId> {
        self.0.open_send(name)
    }

    fn open_receive(&self, name: &str, protocol: Protocol) -> Result<LnvcId> {
        self.0.open_receive(name, protocol)
    }

    fn close_send(&self, id: LnvcId) -> Result<()> {
        self.0.close_send(id)
    }

    fn close_receive(&self, id: LnvcId) -> Result<()> {
        self.0.close_receive(id)
    }

    fn send_deadline(&self, id: LnvcId, payload: &[u8], deadline: Option<Instant>) -> Result<bool> {
        match deadline {
            None => block_on(self.0.send(id, payload.to_vec())).map(|()| true),
            Some(dl) => match block_on_deadline(self.0.send(id, payload.to_vec()), dl) {
                Some(r) => r.map(|()| true),
                None => Ok(false),
            },
        }
    }

    fn recv_deadline(&self, id: LnvcId, deadline: Option<Instant>) -> Result<Option<Vec<u8>>> {
        match deadline {
            None => block_on(self.0.recv(id)).map(Some),
            Some(dl) => block_on_deadline(self.0.recv(id), dl).transpose(),
        }
    }

    fn recv_any_deadline(
        &self,
        ids: &[LnvcId],
        deadline: Option<Instant>,
    ) -> Result<Option<(LnvcId, Vec<u8>)>> {
        match deadline {
            None => block_on(self.0.select_any(ids)).map(Some),
            Some(dl) => block_on_deadline(self.0.select_any(ids), dl).transpose(),
        }
    }

    fn try_recv(&self, id: LnvcId) -> Result<Option<Vec<u8>>> {
        self.0.facility().try_message_receive_vec(self.0.pid(), id)
    }

    fn try_recv_batch(&self, id: LnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.0.facility().try_recv_batch(self.0.pid(), id, max)
    }

    fn lnvc_exists(&self, name: &str) -> bool {
        self.0.facility().lnvc_exists(name)
    }

    fn queue_depth(&self, id: LnvcId) -> Result<u32> {
        self.0.facility().queue_depth(id)
    }

    fn is_poisoned(&self, _id: LnvcId) -> bool {
        false
    }

    fn sweep_dead(&self) -> u32 {
        0
    }
}

// ----------------------------------------------------------------------
// Synchronous (deterministic) transport
// ----------------------------------------------------------------------

/// Timeout-free synchronous transport over the thread backend's blocking
/// primitives, for `mpf-check` scenarios.  Deadlines are ignored — every
/// wait parks on the hooked waitqs the cooperative scheduler controls,
/// and nothing here reads the clock or spawns a thread.
pub struct SyncTransport {
    pub mpf: Arc<Mpf>,
    pub pid: ProcessId,
}

impl Transport for SyncTransport {
    type Id = LnvcId;

    fn open_send(&self, name: &str) -> Result<LnvcId> {
        self.mpf.open_send(self.pid, name)
    }

    fn open_receive(&self, name: &str, protocol: Protocol) -> Result<LnvcId> {
        self.mpf.open_receive(self.pid, name, protocol)
    }

    fn close_send(&self, id: LnvcId) -> Result<()> {
        self.mpf.close_send(self.pid, id)
    }

    fn close_receive(&self, id: LnvcId) -> Result<()> {
        self.mpf.close_receive(self.pid, id)
    }

    fn send_deadline(
        &self,
        id: LnvcId,
        payload: &[u8],
        _deadline: Option<Instant>,
    ) -> Result<bool> {
        self.mpf.message_send(self.pid, id, payload).map(|()| true)
    }

    fn recv_deadline(&self, id: LnvcId, _deadline: Option<Instant>) -> Result<Option<Vec<u8>>> {
        self.mpf.message_receive_vec(self.pid, id).map(Some)
    }

    fn recv_any_deadline(
        &self,
        ids: &[LnvcId],
        _deadline: Option<Instant>,
    ) -> Result<Option<(LnvcId, Vec<u8>)>> {
        // `wait_any` names a conversation with a pending message, but an
        // FCFS rival may take it between the wait and our try — loop.
        loop {
            let ready = self.mpf.wait_any(self.pid, ids)?;
            match self.mpf.try_message_receive_vec(self.pid, ready)? {
                Some(msg) => return Ok(Some((ready, msg))),
                None => continue,
            }
        }
    }

    fn try_recv(&self, id: LnvcId) -> Result<Option<Vec<u8>>> {
        self.mpf.try_message_receive_vec(self.pid, id)
    }

    fn try_recv_batch(&self, id: LnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.mpf.try_recv_batch(self.pid, id, max)
    }

    fn lnvc_exists(&self, name: &str) -> bool {
        self.mpf.lnvc_exists(name)
    }

    fn queue_depth(&self, id: LnvcId) -> Result<u32> {
        self.mpf.queue_depth(id)
    }

    fn is_poisoned(&self, _id: LnvcId) -> bool {
        false
    }

    fn sweep_dead(&self) -> u32 {
        0
    }
}

/// Maps a transport error to "is this the service-is-gone class" —
/// poison or a vanished conversation, both cured by re-anchoring.
pub fn is_failover(e: &MpfError) -> bool {
    matches!(e, MpfError::PeerDied { .. } | MpfError::UnknownLnvc)
}
