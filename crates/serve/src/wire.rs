//! Wire formats and LNVC naming for the service layer.
//!
//! Everything is little-endian and hand-packed: the region moves raw
//! byte payloads, and the service layer's entire protocol state fits in
//! three fixed headers.
//!
//! * **Request/reply** (`K_REQ`/`K_REP`): `[kind u8][cid u32][gen u32]
//!   [seq u64][sent_ns u64][payload..]`.  A reply echoes the request's
//!   identity triple `(cid, gen, seq)` so the client can de-duplicate
//!   retried calls, and echoes `sent_ns` so send→reply latency is
//!   measured from the attempt that was actually served.
//! * **Control** (`K_PAUSE`..`K_EPOCH`): `[kind u8][epoch u32]
//!   [ctl_seq u32][arg u64]`, broadcast by the server.  `ctl_seq` is a
//!   server-monotonic serial; workers apply a command only when its
//!   serial advances, so a command replayed to a late joiner (BROADCAST
//!   over a zero-receiver FCFS-owed queue) is idempotent.
//! * **Worker→server acks** (`K_HELLO`..`K_FAULT`): `[kind u8][wid u32]
//!   [epoch u32][ctl_seq u32][served u64]`.
//!
//! ## Names
//!
//! All conversation names fit MPF's 32-byte limit with a service name of
//! up to [`MAX_SVC_LEN`] bytes:
//!
//! | LNVC            | name                      | protocol  |
//! |-----------------|---------------------------|-----------|
//! | request queue   | `sq.{svc}.{epoch:x}`      | FCFS      |
//! | control plane   | `sc.{svc}.{epoch:x}`      | BROADCAST |
//! | worker acks     | `sa.{svc}.{epoch:x}`      | FCFS      |
//! | client replies  | `sr.{svc}.{cid:x}.{gen:x}`| FCFS      |
//!
//! The epoch suffix is the failover mechanism: a SIGKILLed participant
//! poisons the shared queue (poison is sticky per descriptor
//! generation), so the server retires the whole epoch and re-anchors
//! under fresh names; workers and clients rediscover the highest live
//! epoch by name probing ([`crate::server::discover_epoch`]).

/// A client request.
pub const K_REQ: u8 = 1;
/// A worker reply.
pub const K_REP: u8 = 2;

/// Stop taking new requests (keep watching the control plane).
pub const K_PAUSE: u8 = 20;
/// Resume taking requests after a pause or drain.
pub const K_RESUME: u8 = 21;
/// Flush the request queue, ack with the served count, then pause.
pub const K_DRAIN: u8 = 22;
/// Flush, say `K_BYE`, close everything, and exit.
pub const K_SHUTDOWN: u8 = 23;
/// The server re-anchored: rejoin at epoch ≥ `arg` (best-effort notice;
/// workers also notice via `PeerDied` on the poisoned queue).
pub const K_EPOCH: u8 = 24;

/// Worker joined the epoch.
pub const K_HELLO: u8 = 40;
/// Worker acknowledges a `K_DRAIN` (carries `ctl_seq` and served count).
pub const K_ACK: u8 = 41;
/// Worker left cleanly (shutdown).
pub const K_BYE: u8 = 42;
/// Worker hit `PeerDied` and is rejoining (diagnostic).
pub const K_FAULT: u8 = 43;

/// Request/reply header bytes ahead of the payload.
pub const REQ_HEADER: usize = 1 + 4 + 4 + 8 + 8;

/// Longest service name: keeps every derived LNVC name within MPF's
/// 32-byte cap (`sr.` + svc + `.` + 8 hex + `.` + 8 hex = 28).
pub const MAX_SVC_LEN: usize = 7;

/// Validates a service name: 1..=[`MAX_SVC_LEN`] bytes of
/// `[a-z0-9_-]`, so derived names stay parseable and in-bounds.
pub fn validate_svc(svc: &str) -> bool {
    (1..=MAX_SVC_LEN).contains(&svc.len())
        && svc
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// Shared FCFS request queue of one epoch.
pub fn q_name(svc: &str, epoch: u32) -> String {
    format!("sq.{svc}.{epoch:x}")
}

/// BROADCAST control plane of one epoch.
pub fn ctl_name(svc: &str, epoch: u32) -> String {
    format!("sc.{svc}.{epoch:x}")
}

/// FCFS worker→server ack channel of one epoch.
pub fn ack_name(svc: &str, epoch: u32) -> String {
    format!("sa.{svc}.{epoch:x}")
}

/// The server's presence marker for one epoch: a conversation held open
/// by the server **alone** (it never sends on it, nobody else connects).
/// Everything else a worker could probe, the worker itself keeps alive
/// by holding a connection — this is the one name whose existence
/// tracks the server's opinion of the epoch, so workers poll it to
/// notice a retired epoch or a vanished server.
pub fn pres_name(svc: &str, epoch: u32) -> String {
    format!("sp.{svc}.{epoch:x}")
}

/// One client's private FCFS reply queue.  `gen` bumps when the queue is
/// poisoned by a dead worker, giving the client a fresh descriptor
/// generation to fail over to.
pub fn reply_name(svc: &str, cid: u32, gen: u32) -> String {
    format!("sr.{svc}.{cid:x}.{gen:x}")
}

/// Decoded request or reply (`K_REQ` / `K_REP`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Req {
    pub kind: u8,
    /// Client id: names the reply queue together with `gen`.
    pub cid: u32,
    /// Client's reply-queue generation at send time.
    pub gen: u32,
    /// Client-monotonic call serial; the client's de-duplication key.
    pub seq: u64,
    /// `now_nanos()` at the send attempt; echoed in the reply.
    pub sent_ns: u64,
    pub payload: Vec<u8>,
}

/// Encodes a request or reply frame.
pub fn encode_req(kind: u8, cid: u32, gen: u32, seq: u64, sent_ns: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REQ_HEADER + payload.len());
    out.push(kind);
    out.extend_from_slice(&cid.to_le_bytes());
    out.extend_from_slice(&gen.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&sent_ns.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Decodes a request or reply frame; `None` on a malformed buffer.
pub fn decode_req(buf: &[u8]) -> Option<Req> {
    if buf.len() < REQ_HEADER || (buf[0] != K_REQ && buf[0] != K_REP) {
        return None;
    }
    Some(Req {
        kind: buf[0],
        cid: u32::from_le_bytes(buf[1..5].try_into().ok()?),
        gen: u32::from_le_bytes(buf[5..9].try_into().ok()?),
        seq: u64::from_le_bytes(buf[9..17].try_into().ok()?),
        sent_ns: u64::from_le_bytes(buf[17..25].try_into().ok()?),
        payload: buf[REQ_HEADER..].to_vec(),
    })
}

/// Decoded control-plane frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ctl {
    pub kind: u8,
    /// Epoch the server was on when broadcasting.
    pub epoch: u32,
    /// Server-monotonic command serial (replay-idempotence key).
    pub ctl_seq: u32,
    /// Command argument (`K_EPOCH`: the new epoch floor).
    pub arg: u64,
}

/// Encodes a control frame.
pub fn encode_ctl(kind: u8, epoch: u32, ctl_seq: u32, arg: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(17);
    out.push(kind);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&ctl_seq.to_le_bytes());
    out.extend_from_slice(&arg.to_le_bytes());
    out
}

/// Decodes a control frame; `None` on a malformed buffer.
pub fn decode_ctl(buf: &[u8]) -> Option<Ctl> {
    if buf.len() != 17 || !(K_PAUSE..=K_EPOCH).contains(&buf[0]) {
        return None;
    }
    Some(Ctl {
        kind: buf[0],
        epoch: u32::from_le_bytes(buf[1..5].try_into().ok()?),
        ctl_seq: u32::from_le_bytes(buf[5..9].try_into().ok()?),
        arg: u64::from_le_bytes(buf[9..17].try_into().ok()?),
    })
}

/// Decoded worker→server ack frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    pub kind: u8,
    pub wid: u32,
    /// Epoch the worker is (or was) joined to.
    pub epoch: u32,
    /// For `K_ACK`: the `ctl_seq` of the drain being acknowledged.
    pub ctl_seq: u32,
    /// Requests the worker has served so far.
    pub served: u64,
}

/// Encodes an ack frame.
pub fn encode_ack(kind: u8, wid: u32, epoch: u32, ctl_seq: u32, served: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(21);
    out.push(kind);
    out.extend_from_slice(&wid.to_le_bytes());
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&ctl_seq.to_le_bytes());
    out.extend_from_slice(&served.to_le_bytes());
    out
}

/// Decodes an ack frame; `None` on a malformed buffer.
pub fn decode_ack(buf: &[u8]) -> Option<Ack> {
    if buf.len() != 21 || !(K_HELLO..=K_FAULT).contains(&buf[0]) {
        return None;
    }
    Some(Ack {
        kind: buf[0],
        wid: u32::from_le_bytes(buf[1..5].try_into().ok()?),
        epoch: u32::from_le_bytes(buf[5..9].try_into().ok()?),
        ctl_seq: u32::from_le_bytes(buf[9..13].try_into().ok()?),
        served: u64::from_le_bytes(buf[13..21].try_into().ok()?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn req_round_trip() {
        let buf = encode_req(K_REQ, 7, 2, 99, 123_456, b"payload");
        let r = decode_req(&buf).unwrap();
        assert_eq!(
            r,
            Req {
                kind: K_REQ,
                cid: 7,
                gen: 2,
                seq: 99,
                sent_ns: 123_456,
                payload: b"payload".to_vec(),
            }
        );
    }

    #[test]
    fn ctl_and_ack_round_trip() {
        let c = decode_ctl(&encode_ctl(K_DRAIN, 3, 17, 42)).unwrap();
        assert_eq!((c.kind, c.epoch, c.ctl_seq, c.arg), (K_DRAIN, 3, 17, 42));
        let a = decode_ack(&encode_ack(K_ACK, 5, 3, 17, 1000)).unwrap();
        assert_eq!(
            (a.kind, a.wid, a.epoch, a.ctl_seq, a.served),
            (K_ACK, 5, 3, 17, 1000)
        );
    }

    #[test]
    fn malformed_frames_are_rejected() {
        assert!(decode_req(b"").is_none());
        assert!(decode_req(&[K_PAUSE; 30]).is_none());
        assert!(decode_ctl(&encode_req(K_REQ, 0, 0, 0, 0, b"")).is_none());
        assert!(decode_ack(&[0u8; 21]).is_none());
    }

    #[test]
    fn names_fit_mpf_limit() {
        let svc = "abcdefg"; // MAX_SVC_LEN
        assert!(validate_svc(svc));
        for n in [
            q_name(svc, u32::MAX),
            ctl_name(svc, u32::MAX),
            ack_name(svc, u32::MAX),
            pres_name(svc, u32::MAX),
            reply_name(svc, u32::MAX, u32::MAX),
        ] {
            assert!(n.len() <= 32, "{n} is {} bytes", n.len());
        }
        assert!(!validate_svc(""));
        assert!(!validate_svc("toolong-x"));
        assert!(!validate_svc("UPPER"));
    }
}
