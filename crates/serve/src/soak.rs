//! Shared pieces of the soak/chaos harness: the stamped payload scheme,
//! the child→driver stat lines, and the per-phase SLO accounting.
//!
//! The soak driver ([`mpf-soak`](../../src/bin/mpf-soak.rs)) forks
//! worker and client processes and SIGKILLs some of them on purpose, so
//! the channel that reports results back must survive exactly the
//! faults being injected — it cannot be an MPF conversation (a killed
//! reporter would poison it).  Children therefore report over their own
//! stdout as single `SOAK-FINAL <k>=<v>...` text lines: atomic for
//! sane sizes on a pipe, trivially greppable in CI logs, and parsed
//! here without any JSON machinery.
//!
//! ## Stamped payloads
//!
//! Every request body is reconstructible from `(cid, seq)`:
//! `[cid u32][seq u64][fill…]` with a position-keyed fill byte.  A
//! worker replies with the bitwise complement.  The client re-derives
//! the expected complement and compares the whole buffer, so a reply
//! that was duplicated, cross-wired to another client, or corrupted in
//! block storage is caught at the byte level, not just by its header.

use std::collections::BTreeMap;

use mpf_bench::report::{json_num, json_str};
use mpf_shm::telemetry::{HistSnapshot, HISTOGRAM_BUCKETS};

/// Prefix of a child's final stat report on stdout.
pub const FINAL_PREFIX: &str = "SOAK-FINAL ";

/// Builds the stamped request body for `(cid, seq)`.
pub fn make_payload(cid: u32, seq: u64, len: usize) -> Vec<u8> {
    let len = len.max(12);
    let mut out = Vec::with_capacity(len);
    out.extend_from_slice(&cid.to_le_bytes());
    out.extend_from_slice(&seq.to_le_bytes());
    while out.len() < len {
        let i = out.len();
        out.push((cid as u8) ^ (seq as u8).wrapping_add(i as u8));
    }
    out
}

/// The worker's transform: bitwise complement (self-inverse, cheap, and
/// turns an echoed-back request into a detectable non-reply).
pub fn transform(payload: &[u8]) -> Vec<u8> {
    payload.iter().map(|b| !b).collect()
}

/// Checks a reply against the payload `(cid, seq, len)` must have
/// produced.
pub fn verify_reply(cid: u32, seq: u64, len: usize, reply: &[u8]) -> bool {
    transform(&make_payload(cid, seq, len)) == reply
}

/// Renders one `SOAK-FINAL` line from key/value pairs.
pub fn encode_final(kvs: &[(&str, String)]) -> String {
    let mut line = FINAL_PREFIX.to_string();
    for (k, v) in kvs {
        debug_assert!(
            !v.contains(' ') && !v.contains('\n'),
            "bad stat value {v:?}"
        );
        line.push_str(k);
        line.push('=');
        line.push_str(v);
        line.push(' ');
    }
    line.trim_end().to_string()
}

/// Parses a `SOAK-FINAL` line (anywhere in `line`) into its pairs.
pub fn parse_final(line: &str) -> Option<BTreeMap<String, String>> {
    let rest = line.split(FINAL_PREFIX).nth(1)?;
    let mut out = BTreeMap::new();
    for tok in rest.split_whitespace() {
        let (k, v) = tok.split_once('=')?;
        out.insert(k.to_string(), v.to_string());
    }
    Some(out)
}

/// Compact text form of a latency histogram:
/// `count:sum:max:b0,b1,…,b31`.
pub fn encode_hist(h: &HistSnapshot) -> String {
    let buckets = h
        .buckets
        .iter()
        .map(|b| b.to_string())
        .collect::<Vec<_>>()
        .join(",");
    format!("{}:{}:{}:{buckets}", h.count, h.sum, h.max)
}

/// Inverse of [`encode_hist`].
pub fn decode_hist(s: &str) -> Option<HistSnapshot> {
    let mut parts = s.splitn(4, ':');
    let count = parts.next()?.parse().ok()?;
    let sum = parts.next()?.parse().ok()?;
    let max = parts.next()?.parse().ok()?;
    let mut buckets = [0u64; HISTOGRAM_BUCKETS];
    let mut n = 0;
    for (i, b) in parts.next()?.split(',').enumerate() {
        *buckets.get_mut(i)? = b.parse().ok()?;
        n = i + 1;
    }
    if n != HISTOGRAM_BUCKETS {
        return None;
    }
    Some(HistSnapshot {
        count,
        sum,
        max,
        buckets,
    })
}

/// Everything the driver accounts per phase, merged from the clients
/// that ran during it.
#[derive(Debug, Clone)]
pub struct PhaseSlo {
    pub name: String,
    /// Calls that returned a verified reply.
    pub ok: u64,
    /// Calls that exhausted their retry budget.
    pub timeouts: u64,
    /// Replies failing byte-level verification (must stay 0).
    pub corrupt: u64,
    pub retries: u64,
    pub epoch_failovers: u64,
    pub gen_bumps: u64,
    pub dup_replies: u64,
    /// Send→reply latency over the calls that completed.
    pub latency: HistSnapshot,
}

impl PhaseSlo {
    pub fn new(name: &str) -> Self {
        PhaseSlo {
            name: name.to_string(),
            ok: 0,
            timeouts: 0,
            corrupt: 0,
            retries: 0,
            epoch_failovers: 0,
            gen_bumps: 0,
            dup_replies: 0,
            latency: HistSnapshot::default(),
        }
    }

    /// Folds one client's final report into the phase.
    pub fn absorb(&mut self, kv: &BTreeMap<String, String>) {
        let get = |k: &str| kv.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        self.ok += get("ok");
        self.timeouts += get("timeouts");
        self.corrupt += get("corrupt");
        self.retries += get("retries");
        self.epoch_failovers += get("epoch_failovers");
        self.gen_bumps += get("gen_bumps");
        self.dup_replies += get("dup_replies");
        if let Some(h) = kv.get("lat").and_then(|s| decode_hist(s)) {
            self.latency.absorb(&h);
        }
    }

    /// `p50 <= p99 <= p999` and the latency count matches the completed
    /// calls — the structural SLO invariants the driver gates on.
    pub fn slo_structure_ok(&self) -> bool {
        let (p50, p99, p999) = (
            self.latency.percentile(0.50),
            self.latency.percentile(0.99),
            self.latency.percentile(0.999),
        );
        p50 <= p99 && p99 <= p999 && self.latency.count == self.ok
    }

    /// Renders the phase as a JSON object for `BENCH_soak.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"phase\":{},\"ok\":{},\"timeouts\":{},\"corrupt\":{},\"retries\":{},\
             \"epoch_failovers\":{},\"gen_bumps\":{},\"dup_replies\":{},\
             \"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
            json_str(&self.name),
            self.ok,
            self.timeouts,
            self.corrupt,
            self.retries,
            self.epoch_failovers,
            self.gen_bumps,
            self.dup_replies,
            self.latency.percentile(0.50),
            self.latency.percentile(0.99),
            self.latency.percentile(0.999),
            self.latency.max,
            json_num(if self.latency.count == 0 {
                0.0
            } else {
                self.latency.sum as f64 / self.latency.count as f64
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_round_trip() {
        let p = make_payload(7, 99, 64);
        assert_eq!(p.len(), 64);
        let r = transform(&p);
        assert!(verify_reply(7, 99, 64, &r));
        assert!(!verify_reply(7, 100, 64, &r));
        assert!(!verify_reply(8, 99, 64, &r));
        let mut bad = r.clone();
        bad[40] ^= 1;
        assert!(!verify_reply(7, 99, 64, &bad));
    }

    #[test]
    fn final_line_round_trip() {
        let line = encode_final(&[("role", "client".into()), ("ok", "42".into())]);
        assert!(line.starts_with(FINAL_PREFIX));
        let kv = parse_final(&format!("noise {line}")).unwrap();
        assert_eq!(kv["role"], "client");
        assert_eq!(kv["ok"], "42");
        assert!(parse_final("no marker here").is_none());
    }

    #[test]
    fn hist_round_trip() {
        let mut h = HistSnapshot {
            count: 10,
            sum: 1234,
            max: 500,
            ..Default::default()
        };
        h.buckets[3] = 6;
        h.buckets[31] = 4;
        let back = decode_hist(&encode_hist(&h)).unwrap();
        assert_eq!(back.count, 10);
        assert_eq!(back.sum, 1234);
        assert_eq!(back.max, 500);
        assert_eq!(back.buckets, h.buckets);
        assert!(decode_hist("1:2:3:4,5").is_none());
    }

    #[test]
    fn phase_slo_absorbs_and_checks() {
        let mut p = PhaseSlo::new("ramp");
        let mut h = HistSnapshot::default();
        for v in [100u64, 200, 50_000] {
            h.count += 1;
            h.sum += v;
            h.max = h.max.max(v);
            h.buckets[mpf_shm::telemetry::bucket_index(v)] += 1;
        }
        let mut kv = BTreeMap::new();
        kv.insert("ok".to_string(), "3".to_string());
        kv.insert("retries".to_string(), "1".to_string());
        kv.insert("lat".to_string(), encode_hist(&h));
        p.absorb(&kv);
        assert_eq!(p.ok, 3);
        assert_eq!(p.retries, 1);
        assert!(p.slo_structure_ok());
        let j = p.to_json();
        assert!(j.contains("\"phase\":\"ramp\""));
        assert!(j.contains("\"p50_ns\""));
    }
}
