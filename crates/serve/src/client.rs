//! The client: at-least-once calls with timeout/retry, de-duplication,
//! and `PeerDied`-aware failover.
//!
//! A client owns a private FCFS reply queue named by `(cid, gen)` and a
//! send connection on the current epoch's request queue.  One
//! [`Client::call`] is one logical request: it is retried (same `seq`)
//! until a reply with that `seq` arrives or the retry budget runs out,
//! so a worker that served the request but died before replying — or a
//! retry that raced the original — can produce **duplicate** service of
//! the same `seq`.  The handler side must therefore be idempotent or
//! the payload self-identifying; the client's contribution is to never
//! *surface* a duplicate: stale `seq`s read from the reply queue are
//! counted and dropped.
//!
//! Failover is two-tiered, mirroring which conversation went bad:
//!
//! * Request queue `PeerDied`/`UnknownLnvc` → the epoch is dead.
//!   Rediscover (floor = failed epoch + 1), reopen, resend.
//! * Reply queue `PeerDied` → some worker that had our queue open was
//!   killed; poison is sticky, so bump `gen` and open a **fresh** queue
//!   name.  In-flight replies addressed to the old `gen` are lost —
//!   the normal retry path re-serves them.

use std::time::{Duration, Instant};

use mpf::Protocol;
use mpf_shm::telemetry::{bucket_index, now_nanos, HistSnapshot, HISTOGRAM_BUCKETS};

use crate::server::{discover_epoch, scan_epoch};
use crate::transport::{is_failover, Transport};
use crate::wire::{decode_req, encode_req, q_name, reply_name, validate_svc, K_REP, K_REQ};
use crate::{ServeError, ServeResult};

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientCfg {
    pub svc: String,
    /// Client id: must be unique among live clients of the service
    /// (it names the private reply queue).
    pub cid: u32,
    /// Per-attempt budget: send + wait-for-reply before retrying.
    pub attempt: Duration,
    /// Attempts per call (1 = no retry).
    pub max_attempts: u32,
    /// Bound on epoch discovery during connect/failover.
    pub discover: Duration,
    /// Total wall-clock budget for one [`Client::call`], covering every
    /// retry, failover, and rediscovery it performs.  The attempt loop
    /// alone is bounded by `max_attempts`, but each attempt can also
    /// spend up to `discover` rediscovering an epoch — this is the cap
    /// that holds regardless of how those compose.  Expiry surfaces as
    /// [`crate::ServeError::DeadlineExceeded`].
    pub call_budget: Duration,
}

impl ClientCfg {
    pub fn new(svc: &str, cid: u32) -> Self {
        assert!(validate_svc(svc), "bad service name {svc:?}");
        ClientCfg {
            svc: svc.to_string(),
            cid,
            attempt: Duration::from_millis(500),
            max_attempts: 8,
            discover: Duration::from_secs(10),
            // Generous by default: 8 attempts × (500 ms + a failover's
            // rediscovery) fits, but a pathological failover loop no
            // longer runs open-ended.
            call_budget: Duration::from_secs(30),
        }
    }
}

/// Client-side counters and the send→reply latency histogram.
#[derive(Debug, Clone)]
pub struct ClientStats {
    /// Calls that returned a reply.
    pub ok: u64,
    /// Calls that exhausted their retry budget.
    pub timeouts: u64,
    /// Extra attempts beyond the first, across all calls.
    pub retries: u64,
    /// Epoch rediscoveries (request-queue failovers).
    pub epoch_failovers: u64,
    /// Calls that ran out of total wall-clock budget
    /// ([`ClientCfg::call_budget`]) before running out of attempts.
    pub deadline_exceeded: u64,
    /// Reply-queue generation bumps.
    pub gen_bumps: u64,
    /// Stale replies dropped by the de-duplication filter.
    pub dup_replies: u64,
    lat_count: u64,
    lat_sum: u64,
    lat_max: u64,
    lat_buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for ClientStats {
    fn default() -> Self {
        ClientStats {
            ok: 0,
            timeouts: 0,
            retries: 0,
            epoch_failovers: 0,
            deadline_exceeded: 0,
            gen_bumps: 0,
            dup_replies: 0,
            lat_count: 0,
            lat_sum: 0,
            lat_max: 0,
            lat_buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl ClientStats {
    fn record_latency(&mut self, ns: u64) {
        self.lat_count += 1;
        self.lat_sum += ns;
        self.lat_max = self.lat_max.max(ns);
        self.lat_buckets[bucket_index(ns)] += 1;
    }

    /// The send→reply latency distribution, in the same shape the
    /// in-region telemetry uses (so `percentile`/`absorb` compose).
    pub fn latency(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.lat_count,
            sum: self.lat_sum,
            max: self.lat_max,
            buckets: self.lat_buckets,
        }
    }
}

/// One service client.  Not `Sync`: a client is one logical caller.
pub struct Client<T: Transport> {
    t: std::sync::Arc<T>,
    cfg: ClientCfg,
    epoch: u32,
    gen: u32,
    seq: u64,
    q_tx: T::Id,
    reply_rx: T::Id,
    pub stats: ClientStats,
}

impl<T: Transport> Client<T> {
    /// Connects: finds the live epoch and opens the request-queue send
    /// side plus this client's private reply queue.
    pub fn connect(t: std::sync::Arc<T>, cfg: ClientCfg) -> ServeResult<Self> {
        let deadline = Instant::now() + cfg.discover;
        let Some(epoch) = discover_epoch(t.as_ref(), &cfg.svc, 1, Some(deadline)) else {
            return Err(ServeError::Unavailable);
        };
        let q_tx = t.open_send(&q_name(&cfg.svc, epoch))?;
        let gen = 0;
        let reply_rx = match t.open_receive(&reply_name(&cfg.svc, cfg.cid, gen), Protocol::Fcfs) {
            Ok(id) => id,
            Err(e) => {
                let _ = t.close_send(q_tx);
                return Err(e.into());
            }
        };
        Ok(Client {
            t,
            cfg,
            epoch,
            gen,
            seq: 0,
            q_tx,
            reply_rx,
            stats: ClientStats::default(),
        })
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub fn gen(&self) -> u32 {
        self.gen
    }

    /// One request-reply exchange.  Retries internally; errors are
    /// [`ServeError::TimedOut`] after the attempt budget,
    /// [`ServeError::DeadlineExceeded`] once the call's total
    /// wall-clock budget runs out (whichever bound trips first), or a
    /// non-recoverable facility error.
    pub fn call(&mut self, payload: &[u8]) -> ServeResult<Vec<u8>> {
        self.seq += 1;
        let seq = self.seq;
        // The overall bound: every per-attempt and per-discovery
        // deadline below is clamped to it, so no combination of
        // retries and failovers outlives it.
        let overall = Instant::now() + self.cfg.call_budget;
        for attempt in 0..self.cfg.max_attempts {
            if attempt > 0 {
                self.stats.retries += 1;
            }
            if Instant::now() >= overall {
                self.stats.deadline_exceeded += 1;
                return Err(ServeError::DeadlineExceeded);
            }
            let deadline = (Instant::now() + self.cfg.attempt).min(overall);
            match self.attempt_once(seq, payload, deadline, overall) {
                Ok(Some(reply)) => {
                    self.stats.ok += 1;
                    return Ok(reply);
                }
                Ok(None) => {
                    // Attempt deadline.  Before resending, check whether
                    // the server moved to a higher epoch without our send
                    // connection ever erroring — possible when our open
                    // re-created an already-retired queue name, where
                    // sends succeed as owed messages nobody will serve.
                    if let Some(higher) = scan_epoch(self.t.as_ref(), &self.cfg.svc, self.epoch + 1)
                    {
                        let _ = self.t.close_send(self.q_tx);
                        self.q_tx = self.t.open_send(&q_name(&self.cfg.svc, higher))?;
                        self.epoch = higher;
                        self.stats.epoch_failovers += 1;
                    }
                }
                Err(e) => return Err(e),
            }
        }
        self.stats.timeouts += 1;
        Err(ServeError::TimedOut)
    }

    /// One attempt: send the frame, then wait for a reply bearing `seq`
    /// until `deadline`.  `Ok(None)` = deadline, retry is safe.
    /// `overall` is the call's total wall-clock bound; any failover this
    /// attempt triggers clamps its rediscovery to it.
    fn attempt_once(
        &mut self,
        seq: u64,
        payload: &[u8],
        deadline: Instant,
        overall: Instant,
    ) -> ServeResult<Option<Vec<u8>>> {
        let sent_ns = now_nanos();
        let frame = encode_req(K_REQ, self.cfg.cid, self.gen, seq, sent_ns, payload);
        match self.t.send_deadline(self.q_tx, &frame, Some(deadline)) {
            Ok(true) => {}
            Ok(false) => return Ok(None), // pool pressure held us past the deadline
            Err(e) if is_failover(&e) => {
                self.failover_request_queue(overall)?;
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        loop {
            match self.t.recv_deadline(self.reply_rx, Some(deadline)) {
                Ok(Some(buf)) => {
                    let Some(rep) = decode_req(&buf) else {
                        continue;
                    };
                    if rep.kind != K_REP || rep.seq != seq {
                        self.stats.dup_replies += 1;
                        continue;
                    }
                    self.stats
                        .record_latency(now_nanos().saturating_sub(rep.sent_ns));
                    return Ok(Some(rep.payload));
                }
                Ok(None) => return Ok(None),
                Err(e) if is_failover(&e) => {
                    self.failover_reply_queue()?;
                    return Ok(None);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The epoch died: rediscover above it and reopen the request queue.
    /// Discovery is bounded by the smaller of the discovery budget and
    /// the calling request's `overall` deadline.
    fn failover_request_queue(&mut self, overall: Instant) -> ServeResult<()> {
        let _ = self.t.close_send(self.q_tx);
        let deadline = (Instant::now() + self.cfg.discover).min(overall);
        let floor = self.epoch + 1;
        let Some(epoch) = discover_epoch(self.t.as_ref(), &self.cfg.svc, floor, Some(deadline))
        else {
            // Distinguish "service gone" from "the call's budget clipped
            // the search": the latter is retryable with a fresh call.
            return Err(if Instant::now() >= overall {
                self.stats.deadline_exceeded += 1;
                ServeError::DeadlineExceeded
            } else {
                ServeError::Unavailable
            });
        };
        self.q_tx = self.t.open_send(&q_name(&self.cfg.svc, epoch))?;
        self.epoch = epoch;
        self.stats.epoch_failovers += 1;
        Ok(())
    }

    /// The reply queue was poisoned by a dead worker: abandon it (the
    /// sweep reclaims its storage) and open a fresh generation.
    fn failover_reply_queue(&mut self) -> ServeResult<()> {
        let _ = self.t.close_receive(self.reply_rx);
        self.gen += 1;
        self.stats.gen_bumps += 1;
        self.reply_rx = self.t.open_receive(
            &reply_name(&self.cfg.svc, self.cfg.cid, self.gen),
            Protocol::Fcfs,
        )?;
        Ok(())
    }

    /// Disconnects, closing both conversations (the private reply queue
    /// is deleted here — the client is its only connection).
    pub fn close(self) {
        let _ = self.t.close_send(self.q_tx);
        let _ = self.t.close_receive(self.reply_rx);
    }
}
