//! `mpf-soak` — soak/chaos driver for the mpf-serve service layer.
//!
//! ```text
//! mpf-soak [--backend ipc|threads] [--requests N] [--workers N] [--clients N]
//!          [--payload BYTES] [--kill-workers N] [--kill-clients N] [--no-churn]
//!          [--json PATH] [--debug]
//! ```
//!
//! Drives millions of request-reply calls through a real [`Server`] /
//! worker-pool / [`Client`] deployment while injecting the faults the
//! service layer claims to survive, and **gates** on the result:
//!
//! * every request body is stamped and every reply byte-verified — a
//!   lost, duplicated, cross-wired, or corrupted reply fails the run;
//! * workers and clients are SIGKILLed mid-traffic (ipc backend); the
//!   surviving clients must still complete their full quota through the
//!   epoch-failover machinery;
//! * after shutdown the region must conserve: zero live conversations,
//!   every payload block back on the free list, nothing reclaimable.
//!
//! Phases (`ramp` → `churn` → `kill_worker` → `pressure` →
//! `fault_plane` → `runout` → drain/shutdown) each account their own
//! SLO: p50/p99/p999 send→reply latency plus error/retry counters,
//! written to `BENCH_soak.json` (override with `--json`).  The
//! `fault_plane` phase exports `MPF_FAULTS` to its clients, arming the
//! seeded in-region fault plane inside every client process.
//!
//! Exit codes: 0 ok, 2 region-conservation violation, 4 SLO-structure
//! violation, 5 lost/duplicated/corrupt replies or child failure,
//! 6 usage error.
//!
//! Child roles (`--role worker|client`) are this same binary re-exec'd;
//! they report over **stdout** text lines (see [`mpf_serve::soak`]) so a
//! SIGKILLed child cannot poison the reporting channel.  `--debug`
//! additionally spawns `mpf-trace --follow` against the region for a
//! live causal-event tail.

use std::collections::BTreeMap;
use std::io::Read as _;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf::{Mpf, MpfConfig, ProcessId};
use mpf_aio::{AsyncIpc, AsyncMpf};
use mpf_bench::report::{json_str, JsonReport};
use mpf_bench::Series;
use mpf_ipc::IpcMpf;
use mpf_serve::soak::{
    encode_final, encode_hist, make_payload, parse_final, transform, verify_reply, PhaseSlo,
    FINAL_PREFIX,
};
use mpf_serve::{
    run_worker, Client, ClientCfg, ClientStats, IpcTransport, ServeError, Server, ServerStats,
    ThreadTransport, Transport, WorkerCfg,
};

const REGION_ENV: &str = "MPF_SOAK_REGION";
const SVC_ENV: &str = "MPF_SOAK_SVC";
const SVC: &str = "soak";

/// Per-wave watchdog floor; scaled up with the wave's quota so a slow
/// machine fails loudly instead of hanging CI.
const WAVE_GRACE: Duration = Duration::from_secs(120);

fn usage() -> ! {
    eprintln!(
        "usage: mpf-soak [--backend ipc|threads] [--requests N] [--workers N] [--clients N]\n\
         \u{20}               [--payload BYTES] [--kill-workers N] [--kill-clients N] [--no-churn]\n\
         \u{20}               [--json PATH] [--debug]"
    );
    std::process::exit(6);
}

#[derive(Clone)]
struct Args {
    ipc: bool,
    requests: u64,
    workers: u32,
    clients: u32,
    payload: usize,
    kill_workers: u32,
    kill_clients: u32,
    churn: bool,
    json: String,
    debug: bool,
}

impl Args {
    fn parse() -> (Option<(String, u32)>, Args) {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut a = Args {
            ipc: true,
            requests: 1_000_000,
            workers: 4,
            clients: 8,
            payload: 64,
            kill_workers: 1,
            kill_clients: 1,
            churn: true,
            json: "BENCH_soak.json".to_string(),
            debug: false,
        };
        let mut role: Option<(String, u32)> = None;
        let num = |argv: &[String], i: &mut usize| -> u64 {
            *i += 1;
            argv.get(*i)
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--backend" => {
                    i += 1;
                    match argv.get(i).map(String::as_str) {
                        Some("ipc") => a.ipc = true,
                        Some("threads") => a.ipc = false,
                        _ => usage(),
                    }
                }
                "--requests" => a.requests = num(&argv, &mut i),
                "--workers" => a.workers = num(&argv, &mut i) as u32,
                "--clients" => a.clients = num(&argv, &mut i) as u32,
                "--payload" => a.payload = num(&argv, &mut i) as usize,
                "--kill-workers" => a.kill_workers = num(&argv, &mut i) as u32,
                "--kill-clients" => a.kill_clients = num(&argv, &mut i) as u32,
                "--no-churn" => a.churn = false,
                "--json" => {
                    i += 1;
                    a.json = argv.get(i).cloned().unwrap_or_else(|| usage());
                }
                "--debug" => a.debug = true,
                "--role" => {
                    i += 1;
                    role = Some((argv.get(i).cloned().unwrap_or_else(|| usage()), 0));
                }
                "--id" => {
                    let id = num(&argv, &mut i) as u32;
                    if let Some(r) = role.as_mut() {
                        r.1 = id;
                    }
                }
                "--quota" => a.requests = num(&argv, &mut i),
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("mpf-soak: unknown argument `{other}`");
                    usage()
                }
            }
            i += 1;
        }
        // Children legitimately carry `--quota 0` (workers); only the
        // driver invocation validates the traffic shape.
        if role.is_none() && (a.workers == 0 || a.clients == 0 || a.requests == 0) {
            usage();
        }
        (role, a)
    }
}

fn main() {
    let (role, args) = Args::parse();
    let code = match role {
        Some((r, id)) => match r.as_str() {
            "worker" => worker_child(id),
            "client" => client_child(id, args.requests, args.payload),
            other => {
                eprintln!("mpf-soak: unknown role `{other}`");
                6
            }
        },
        None if args.ipc => driver_ipc(&args),
        None => driver_threads(&args),
    };
    // All facility handles dropped above; exiting here cannot skip a
    // region detach (a skipped detach would read as a dead peer).
    std::process::exit(code);
}

// ----------------------------------------------------------------------
// Child roles
// ----------------------------------------------------------------------

fn attach_transport() -> Option<IpcTransport> {
    let region = std::env::var(REGION_ENV).ok()?;
    let ipc = IpcMpf::attach(&region).ok()?;
    Some(IpcTransport(AsyncIpc::new(Arc::new(ipc))))
}

fn worker_child(wid: u32) -> i32 {
    let Some(t) = attach_transport() else {
        eprintln!("mpf-soak worker {wid}: cannot attach region");
        return 1;
    };
    let svc = std::env::var(SVC_ENV).unwrap_or_else(|_| SVC.to_string());
    let cfg = WorkerCfg::new(&svc, wid);
    match run_worker(&t, &cfg, transform) {
        Ok(st) => {
            println!(
                "{}",
                encode_final(&[
                    ("role", "worker".into()),
                    ("wid", wid.to_string()),
                    ("served", st.served.to_string()),
                    ("batches", st.batches.to_string()),
                    ("reply_failures", st.reply_failures.to_string()),
                    ("rejoins", st.rejoins.to_string()),
                    ("sweeps", st.sweeps.to_string()),
                    ("ctl_applied", st.ctl_applied.to_string()),
                ])
            );
            0
        }
        Err(e) => {
            eprintln!("mpf-soak worker {wid}: fatal {e}");
            1
        }
    }
}

fn client_child(cid: u32, quota: u64, payload: usize) -> i32 {
    // Arms the deterministic fault plane when the driver exported
    // `MPF_FAULTS` (the `fault_plane` phase); a no-op otherwise.  The
    // guard must outlive the work loop, not the attach.
    let _faults = mpf_shm::faultplane::install_from_env();
    let Some(t) = attach_transport() else {
        eprintln!("mpf-soak client {cid}: cannot attach region");
        return 1;
    };
    let svc = std::env::var(SVC_ENV).unwrap_or_else(|_| SVC.to_string());
    let (kvs, failed) = run_client(Arc::new(t), &svc, cid, quota, payload);
    println!("{}", encode_final(&kvs));
    i32::from(failed)
}

/// The client work loop, shared by the ipc child process and the
/// threads-backend in-process client.
fn run_client<T: Transport>(
    t: Arc<T>,
    svc: &str,
    cid: u32,
    quota: u64,
    payload: usize,
) -> (Vec<(&'static str, String)>, bool) {
    let mut fatal = String::new();
    let mut corrupt = 0u64;
    let mut consec_timeouts = 0u32;
    let stats: Option<ClientStats> = match Client::connect(t, ClientCfg::new(svc, cid)) {
        Err(e) => {
            fatal = format!("connect:{e}");
            None
        }
        Ok(mut client) => {
            for seq in 0..quota {
                let req = make_payload(cid, seq, payload);
                match client.call(&req) {
                    Ok(reply) => {
                        consec_timeouts = 0;
                        if !verify_reply(cid, seq, payload, &reply) {
                            corrupt += 1;
                        }
                    }
                    Err(ServeError::TimedOut) => {
                        // Counted in stats.timeouts; several in a row
                        // means the service is gone — stop burning the
                        // full retry budget per request.
                        consec_timeouts += 1;
                        if consec_timeouts >= 3 {
                            fatal = "service unresponsive".to_string();
                            break;
                        }
                    }
                    Err(e) => {
                        fatal = format!("call:{e}");
                        break;
                    }
                }
            }
            let stats = client.stats.clone();
            client.close();
            Some(stats)
        }
    };
    let st = stats.unwrap_or_default();
    let failed = !fatal.is_empty() || corrupt > 0 || st.ok != quota;
    if !fatal.is_empty() {
        eprintln!("mpf-soak client {cid}: {fatal}");
    }
    (
        vec![
            ("role", "client".into()),
            ("cid", cid.to_string()),
            ("quota", quota.to_string()),
            ("ok", st.ok.to_string()),
            ("timeouts", st.timeouts.to_string()),
            ("retries", st.retries.to_string()),
            ("epoch_failovers", st.epoch_failovers.to_string()),
            ("gen_bumps", st.gen_bumps.to_string()),
            ("dup_replies", st.dup_replies.to_string()),
            ("corrupt", corrupt.to_string()),
            ("fatal", u64::from(!fatal.is_empty()).to_string()),
            ("lat", encode_hist(&st.latency())),
        ],
        failed,
    )
}

// ----------------------------------------------------------------------
// IPC driver
// ----------------------------------------------------------------------

fn region_config(debug: bool) -> MpfConfig {
    MpfConfig::new(64, 48)
        .with_block_payload(128)
        .with_total_blocks(256)
        .with_max_messages(64)
        .with_max_connections(96)
        .with_telemetry(true)
        .trace_sample_rate(u32::from(debug))
}

struct ClientProc {
    child: Child,
    cid: u32,
    quota: u64,
}

struct WorkerProc {
    child: Child,
    wid: u32,
}

/// A chaos action due at an offset from its wave's start.
enum ChaosAt {
    KillClients(Duration, u32),
    KillWorker(Duration),
}

/// Process bookkeeping for the ipc driver (the [`Server`] itself stays a
/// local so `shutdown(self)` can consume it).
struct Driver {
    exe: std::path::PathBuf,
    region: String,
    workers: Vec<WorkerProc>,
    next_cid: u32,
    next_wid: u32,
    /// Verified-ok calls accumulated across phases.
    done: u64,
    /// First hard failure (exit code, description).
    failure: Option<(i32, String)>,
    /// `MPF_FAULTS` spec exported to clients spawned while set (the
    /// `fault_plane` phase); workers never inherit it.
    fault_spec: Option<String>,
}

impl Driver {
    fn spawn_child(
        &self,
        role: &str,
        id: u32,
        quota: u64,
        payload: usize,
    ) -> std::io::Result<Child> {
        let mut cmd = Command::new(&self.exe);
        cmd.args([
            "--role",
            role,
            "--id",
            &id.to_string(),
            "--quota",
            &quota.to_string(),
            "--payload",
            &payload.to_string(),
        ])
        .env(REGION_ENV, &self.region)
        .env(SVC_ENV, SVC)
        // Never inherited: a driver launched with MPF_FAULTS set (the
        // CI seed matrix) must not leak it into every phase's children.
        .env_remove("MPF_FAULTS")
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
        if role == "client" {
            if let Some(spec) = &self.fault_spec {
                cmd.env("MPF_FAULTS", spec);
            }
        }
        cmd.spawn()
    }

    fn spawn_worker(&mut self) {
        let wid = self.next_wid;
        self.next_wid += 1;
        match self.spawn_child("worker", wid, 0, 0) {
            Ok(child) => self.workers.push(WorkerProc { child, wid }),
            Err(e) => self.fail(5, format!("spawn worker {wid}: {e}")),
        }
    }

    fn spawn_clients(&mut self, n: u32, quota_each: u64, payload: usize) -> Vec<ClientProc> {
        let mut out = Vec::new();
        for _ in 0..n {
            let cid = self.next_cid;
            self.next_cid += 1;
            match self.spawn_child("client", cid, quota_each, payload) {
                Ok(child) => out.push(ClientProc {
                    child,
                    cid,
                    quota: quota_each,
                }),
                Err(e) => self.fail(5, format!("spawn client {cid}: {e}")),
            }
        }
        out
    }

    fn fail(&mut self, code: i32, what: String) {
        eprintln!("mpf-soak: FAIL {what}");
        if self.failure.is_none() {
            self.failure = Some((code, what));
        }
    }

    /// Pumps the server (acks + supervision) until every client in the
    /// wave exits, running the chaos schedule along the way.  Absorbs
    /// surviving clients' reports into `phase`.
    fn pump_wave(
        &mut self,
        server: &mut Server<IpcTransport>,
        mut wave: Vec<ClientProc>,
        mut chaos: Vec<ChaosAt>,
        phase: &mut PhaseSlo,
    ) {
        let started = Instant::now();
        let quota_total: u64 = wave.iter().map(|c| c.quota).sum();
        let deadline = started + WAVE_GRACE + Duration::from_millis(quota_total);
        // Runs until the chaos schedule fired too: a fast wave must not
        // skip its kills (workers are long-lived, so killing one after
        // its wave still injects the fault the next phase must absorb).
        while !wave.is_empty() || !chaos.is_empty() {
            let _ = server.poll_acks(Some(Instant::now() + Duration::from_millis(20)));
            match server.supervise() {
                Ok(true) => eprintln!(
                    "mpf-soak: epoch bump -> {} ({}s in)",
                    server.epoch(),
                    started.elapsed().as_secs()
                ),
                Ok(false) => {}
                Err(e) => self.fail(5, format!("supervise: {e}")),
            }
            // Chaos schedule: collect what is due, then act (two steps so
            // the retain closure does not also need `self`/`wave`).
            let elapsed = started.elapsed();
            let mut due = Vec::new();
            chaos.retain_mut(|c| {
                let is_due = matches!(
                    c,
                    ChaosAt::KillClients(at, _) | ChaosAt::KillWorker(at) if elapsed >= *at
                );
                if is_due {
                    due.push(match c {
                        ChaosAt::KillClients(at, n) => ChaosAt::KillClients(*at, *n),
                        ChaosAt::KillWorker(at) => ChaosAt::KillWorker(*at),
                    });
                }
                !is_due
            });
            for act in due {
                match act {
                    ChaosAt::KillClients(_, n) => {
                        for victim in wave.iter_mut().take(n as usize) {
                            eprintln!("mpf-soak: SIGKILL client {}", victim.cid);
                            let _ = victim.child.kill();
                            let _ = victim.child.wait();
                            victim.quota = u64::MAX; // marks "killed" for reaping
                        }
                    }
                    ChaosAt::KillWorker(_) => {
                        if let Some(mut w) = self.workers.pop() {
                            eprintln!("mpf-soak: SIGKILL worker {}", w.wid);
                            let _ = w.child.kill();
                            let _ = w.child.wait();
                        }
                        self.spawn_worker();
                        // Settle: the kill must surface as an epoch bump
                        // even when the wave has already drained (no more
                        // loop iterations would run supervise otherwise).
                        let until = Instant::now() + Duration::from_secs(5);
                        loop {
                            match server.supervise() {
                                Ok(true) => {
                                    eprintln!("mpf-soak: epoch bump -> {}", server.epoch());
                                    break;
                                }
                                Ok(false) => {}
                                Err(e) => {
                                    self.fail(5, format!("supervise: {e}"));
                                    break;
                                }
                            }
                            if Instant::now() >= until {
                                break;
                            }
                            let _ =
                                server.poll_acks(Some(Instant::now() + Duration::from_millis(20)));
                        }
                    }
                }
            }
            // Reap exits.
            let mut keep = Vec::new();
            for mut c in wave {
                match c.child.try_wait() {
                    Ok(Some(status)) => {
                        if c.quota == u64::MAX {
                            continue; // the client we killed on purpose
                        }
                        self.collect_client(&mut c, status.success(), phase);
                    }
                    Ok(None) => keep.push(c),
                    Err(e) => self.fail(5, format!("wait client {}: {e}", c.cid)),
                }
            }
            wave = keep;
            if Instant::now() >= deadline {
                self.fail(5, format!("wave watchdog after {:?}", started.elapsed()));
                for mut c in wave.drain(..) {
                    let _ = c.child.kill();
                    let _ = c.child.wait();
                }
            }
        }
    }

    fn collect_client(&mut self, c: &mut ClientProc, exited_ok: bool, phase: &mut PhaseSlo) {
        let mut out = String::new();
        if let Some(mut stdout) = c.child.stdout.take() {
            let _ = stdout.read_to_string(&mut out);
        }
        let Some(kv) = out
            .lines()
            .find(|l| l.contains(FINAL_PREFIX))
            .and_then(parse_final)
        else {
            self.fail(5, format!("client {} exited without a report", c.cid));
            return;
        };
        let ok = kv
            .get("ok")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        let corrupt = kv
            .get("corrupt")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        if corrupt > 0 {
            self.fail(5, format!("client {}: {corrupt} corrupt replies", c.cid));
        }
        if !exited_ok || ok != c.quota {
            self.fail(
                5,
                format!("client {}: {ok}/{} verified replies", c.cid, c.quota),
            );
        }
        self.done += ok;
        phase.absorb(&kv);
    }
}

fn driver_ipc(args: &Args) -> i32 {
    let region = format!("soak-{}", std::process::id());
    let cfg = region_config(args.debug);
    let ipc = match IpcMpf::create(&region, &cfg) {
        Ok(m) => Arc::new(m),
        Err(e) => {
            eprintln!("mpf-soak: cannot create region `{region}`: {e}");
            return 1;
        }
    };
    let t = Arc::new(IpcTransport(AsyncIpc::new(Arc::clone(&ipc))));
    let mut server = match Server::new(Arc::clone(&t), SVC) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mpf-soak: cannot anchor service: {e}");
            return 1;
        }
    };
    let exe = std::env::current_exe().expect("current_exe");
    let mut follower = if args.debug {
        spawn_follower(&exe, &region)
    } else {
        None
    };
    let mut d = Driver {
        exe,
        region,
        workers: Vec::new(),
        next_cid: 1,
        next_wid: 1,
        done: 0,
        failure: None,
        fault_spec: None,
    };
    for _ in 0..args.workers {
        d.spawn_worker();
    }
    // Wait for the pool to register before traffic.
    let join_by = Instant::now() + Duration::from_secs(15);
    while server.worker_count() < args.workers as usize && Instant::now() < join_by {
        let _ = server.poll_acks(Some(Instant::now() + Duration::from_millis(50)));
    }
    if server.worker_count() < args.workers as usize {
        d.fail(5, "worker pool did not register".to_string());
    }

    let mut phases: Vec<PhaseSlo> = Vec::new();
    let n = args.requests;
    let c = u64::from(args.clients);

    // -- ramp: plain traffic, full pool --------------------------------
    let mut phase = PhaseSlo::new("ramp");
    let wave = d.spawn_clients(args.clients, (n / 10).max(c) / c, args.payload);
    d.pump_wave(&mut server, wave, Vec::new(), &mut phase);
    phases.push(phase);

    // -- churn: client turnover, optional client SIGKILL ----------------
    if args.churn {
        let mut phase = PhaseSlo::new("churn");
        for round in 0..2 {
            let wave = d.spawn_clients(args.clients, (n / 4).max(c) / (2 * c), args.payload);
            let chaos = if round == 0 && args.kill_clients > 0 {
                vec![ChaosAt::KillClients(
                    Duration::from_millis(300),
                    args.kill_clients,
                )]
            } else {
                Vec::new()
            };
            d.pump_wave(&mut server, wave, chaos, &mut phase);
        }
        phases.push(phase);
    }

    // -- kill_worker: lose pool members mid-traffic ---------------------
    if args.kill_workers > 0 {
        let mut phase = PhaseSlo::new("kill_worker");
        let wave = d.spawn_clients(args.clients, (n * 15 / 100).max(c) / c, args.payload);
        let chaos: Vec<ChaosAt> = (0..args.kill_workers)
            .map(|k| ChaosAt::KillWorker(Duration::from_millis(300 + 400 * u64::from(k))))
            .collect();
        d.pump_wave(&mut server, wave, chaos, &mut phase);
        phases.push(phase);
    }

    // -- pressure: payloads sized to exhaust the block pool -------------
    let mut phase = PhaseSlo::new("pressure");
    let big = args.payload.max(1024);
    let wave = d.spawn_clients(args.clients, (n / 10).max(c) / c, big);
    d.pump_wave(&mut server, wave, Vec::new(), &mut phase);
    phases.push(phase);

    // -- fault_plane: clients run under deterministic injected faults ---
    // Delay-class sites (dropped notifies, lock stalls) plus absorbed
    // pool exhaustion: the facility's bounded naps and `send_deadline`
    // retry loops must hide every injection — the SLO gate still
    // requires each call verified.  Peer-death injection stays out of
    // the soak (a lied-about server death triggers a real 10 s epoch
    // discovery); mpf-check's modeled death covers that plane.
    // The driver's own MPF_FAULTS (if any) overrides the default spec —
    // this is how the CI matrix sweeps seeds.
    let mut phase = PhaseSlo::new("fault_plane");
    d.fault_spec = Some(
        std::env::var("MPF_FAULTS")
            .unwrap_or_else(|_| "seed=64151,notify=0.02,lock=0.01,pool=0.01".to_string()),
    );
    let wave = d.spawn_clients(args.clients, (n / 10).max(c) / c, args.payload);
    d.pump_wave(&mut server, wave, Vec::new(), &mut phase);
    d.fault_spec = None;
    phases.push(phase);

    // -- runout: whatever is left of the request target -----------------
    let mut phase = PhaseSlo::new("runout");
    while d.done < n && d.failure.is_none() {
        let remaining = n - d.done;
        let quota_each = (remaining / c).clamp(1, 200_000);
        let wave = d.spawn_clients(args.clients, quota_each, args.payload);
        d.pump_wave(&mut server, wave, Vec::new(), &mut phase);
    }
    phases.push(phase);

    // -- drain: quiesce the pool, expect full acks and an empty queue ---
    match server.drain(Some(Duration::from_secs(20))) {
        Ok(r) => {
            eprintln!(
                "mpf-soak: drain acked={:?} timed_out={:?} residual={} served_total={}",
                r.acked, r.timed_out, r.residual, r.served_total
            );
            if !r.timed_out.is_empty() || r.residual != 0 {
                d.fail(5, format!("drain incomplete: {r:?}"));
            }
        }
        Err(e) => d.fail(5, format!("drain: {e}")),
    }
    if let Err(e) = server.resume() {
        d.fail(5, format!("resume: {e}"));
    }

    // -- shutdown -------------------------------------------------------
    let mut server_stats = server.stats;
    let epoch_final = server.epoch();
    let workers_reg = server.worker_count();
    match server.shutdown(Some(Duration::from_secs(20))) {
        Ok(r) => {
            eprintln!(
                "mpf-soak: shutdown byes={:?} stragglers={:?}",
                r.byes, r.stragglers
            );
            server_stats.byes += r.byes.len() as u64;
            if !r.stragglers.is_empty() {
                d.fail(5, format!("shutdown stragglers: {:?}", r.stragglers));
            }
        }
        Err(e) => d.fail(5, format!("shutdown: {e}")),
    }
    let mut worker_reports = Vec::new();
    let reap_by = Instant::now() + Duration::from_secs(20);
    for mut w in std::mem::take(&mut d.workers) {
        let status = loop {
            match w.child.try_wait() {
                Ok(Some(s)) => break Some(s),
                Ok(None) if Instant::now() < reap_by => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                _ => break None,
            }
        };
        let mut out = String::new();
        if let Some(mut stdout) = w.child.stdout.take() {
            let _ = stdout.read_to_string(&mut out);
        }
        match status {
            Some(s) if s.success() => {
                if let Some(kv) = out
                    .lines()
                    .find(|l| l.contains(FINAL_PREFIX))
                    .and_then(parse_final)
                {
                    worker_reports.push(kv);
                }
            }
            other => {
                let _ = w.child.kill();
                let _ = w.child.wait();
                d.fail(
                    5,
                    format!("worker {} did not exit cleanly ({other:?})", w.wid),
                );
            }
        }
    }

    // -- conservation ---------------------------------------------------
    let conservation = check_conservation_ipc(&ipc, cfg.total_blocks);
    if let Err(why) = &conservation {
        d.fail(2, format!("conservation: {why}"));
    }

    // -- SLO structure --------------------------------------------------
    for p in &phases {
        if p.ok > 0 && !p.slo_structure_ok() {
            d.fail(
                4,
                format!(
                    "phase {}: latency structure broken (count={} ok={})",
                    p.name, p.latency.count, p.ok
                ),
            );
        }
    }
    if args.kill_workers + args.kill_clients > 0 && server_stats.epoch_bumps == 0 {
        d.fail(5, "kills requested but no epoch bump observed".to_string());
    }

    if let Some(mut f) = follower.take() {
        let _ = f.kill();
        let _ = f.wait();
    }
    write_report(
        args,
        &phases,
        &server_stats,
        epoch_final,
        workers_reg,
        &worker_reports,
        &conservation,
        d.done,
    );
    summarize(&phases, d.done, server_stats.epoch_bumps);
    match &d.failure {
        Some((code, _)) => *code,
        None => {
            println!("mpf-soak: PASS ({} verified requests)", d.done);
            0
        }
    }
}

fn spawn_follower(exe: &std::path::Path, region: &str) -> Option<Child> {
    let trace = exe.parent()?.join("mpf-trace");
    match Command::new(&trace)
        .args([region, "--follow", "--interval-ms", "250"])
        .spawn()
    {
        Ok(c) => Some(c),
        Err(e) => {
            eprintln!(
                "mpf-soak: cannot spawn {} ({e}); --debug follower disabled",
                trace.display()
            );
            None
        }
    }
}

/// Region accounting after everything detached: no conversations, every
/// block free, nothing reclaimable.  Re-sweeps and retries briefly —
/// children were reaped only a moment ago.
fn check_conservation_ipc(ipc: &IpcMpf, total_blocks: u32) -> Result<(usize, u32), String> {
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        ipc.sweep_dead_peers();
        let live = ipc.live_lnvcs();
        let free = ipc.free_blocks();
        let rec = ipc.reclaimable();
        if live == 0 && free == total_blocks && rec.messages == 0 && rec.blocks == 0 {
            return Ok((live, free));
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "live_lnvcs={live} free_blocks={free}/{total_blocks} \
                 reclaimable={{messages:{},blocks:{}}}",
                rec.messages, rec.blocks
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

// ----------------------------------------------------------------------
// Threads driver (no SIGKILL chaos; quick functional soak)
// ----------------------------------------------------------------------

fn driver_threads(args: &Args) -> i32 {
    let cfg = region_config(false);
    let total_blocks = cfg.total_blocks;
    let m = Arc::new(Mpf::init(cfg).expect("init"));
    let server_t = Arc::new(ThreadTransport(AsyncMpf::new(
        Arc::clone(&m),
        ProcessId::from_index(0),
    )));
    let mut server = Server::new(Arc::clone(&server_t), SVC).expect("anchor");
    let workers = args.workers.min(8);
    let clients = args.clients.min(16);
    let mut worker_handles = Vec::new();
    for w in 0..workers {
        let mt = Arc::clone(&m);
        worker_handles.push(std::thread::spawn(move || {
            let t = ThreadTransport(AsyncMpf::new(mt, ProcessId::from_index(1 + w as usize)));
            let cfg = WorkerCfg::new(SVC, w + 1);
            run_worker(&t, &cfg, transform).map(|s| s.served)
        }));
    }
    let join_by = Instant::now() + Duration::from_secs(10);
    while server.worker_count() < workers as usize && Instant::now() < join_by {
        let _ = server.poll_acks(Some(Instant::now() + Duration::from_millis(20)));
    }

    let mut failure: Option<(i32, String)> = None;
    let mut done = 0u64;
    let mut phases: Vec<PhaseSlo> = Vec::new();
    for (name, payload, share) in [
        ("ramp", args.payload, 20u64),
        ("pressure", args.payload.max(1024), 10),
        ("runout", args.payload, 70),
    ] {
        let mut phase = PhaseSlo::new(name);
        let quota_each = (args.requests * share / 100).max(u64::from(clients)) / u64::from(clients);
        let phase_idx = phases.len() as u32;
        let mut handles = Vec::new();
        for cidx in 0..clients {
            let mt = Arc::clone(&m);
            let pid = 1 + workers as usize + cidx as usize;
            let cid = 1000 * (phase_idx + 1) + cidx;
            handles.push(std::thread::spawn(move || {
                let t = Arc::new(ThreadTransport(AsyncMpf::new(
                    mt,
                    ProcessId::from_index(pid),
                )));
                run_client(t, SVC, cid, quota_each, payload)
            }));
        }
        for h in handles {
            while !h.is_finished() {
                let _ = server.poll_acks(Some(Instant::now() + Duration::from_millis(10)));
            }
            let (kvs, failed) = h.join().expect("client thread");
            let kv: BTreeMap<String, String> = kvs
                .iter()
                .map(|(k, v)| ((*k).to_string(), v.clone()))
                .collect();
            phase.absorb(&kv);
            if failed && failure.is_none() {
                failure = Some((5, format!("thread client failed in {name}")));
            }
        }
        done += phase.ok;
        if phase.ok > 0 && !phase.slo_structure_ok() {
            failure.get_or_insert((4, format!("phase {name}: latency structure broken")));
        }
        phases.push(phase);
    }

    match server.drain(Some(Duration::from_secs(10))) {
        Ok(r) if r.timed_out.is_empty() && r.residual == 0 => {}
        Ok(r) => {
            failure.get_or_insert((5, format!("drain incomplete: {r:?}")));
        }
        Err(e) => {
            failure.get_or_insert((5, format!("drain: {e}")));
        }
    }
    let _ = server.resume();
    let mut server_stats = server.stats;
    match server.shutdown(Some(Duration::from_secs(10))) {
        Ok(r) if r.stragglers.is_empty() => {
            server_stats.byes += r.byes.len() as u64;
        }
        Ok(r) => {
            failure.get_or_insert((5, format!("shutdown stragglers {:?}", r.stragglers)));
        }
        Err(e) => {
            failure.get_or_insert((5, format!("shutdown: {e}")));
        }
    }
    for h in worker_handles {
        if h.join().expect("worker thread").is_err() {
            failure.get_or_insert((5, "worker errored".to_string()));
        }
    }
    drop(server_t);
    let live = m.live_lnvcs();
    let free = m.free_blocks();
    let conservation = if live == 0 && free == total_blocks && m.check_invariants().is_ok() {
        Ok((live, free))
    } else {
        Err(format!(
            "live_lnvcs={live} free_blocks={free}/{total_blocks}"
        ))
    };
    if let Err(why) = &conservation {
        failure.get_or_insert((2, format!("conservation: {why}")));
    }
    write_report(
        args,
        &phases,
        &server_stats,
        1,
        workers as usize,
        &[],
        &conservation,
        done,
    );
    summarize(&phases, done, server_stats.epoch_bumps);
    match failure {
        Some((code, what)) => {
            eprintln!("mpf-soak: FAIL {what}");
            code
        }
        None => {
            println!("mpf-soak: PASS ({done} verified requests)");
            0
        }
    }
}

// ----------------------------------------------------------------------
// Reporting
// ----------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn write_report(
    args: &Args,
    phases: &[PhaseSlo],
    server: &ServerStats,
    epoch_final: u32,
    workers_registered: usize,
    worker_reports: &[BTreeMap<String, String>],
    conservation: &Result<(usize, u32), String>,
    done: u64,
) {
    let mut r = JsonReport::at(&args.json);
    let series: Vec<Series> = [("p50", 0.50), ("p99", 0.99), ("p999", 0.999)]
        .iter()
        .map(|(label, q)| Series {
            label: (*label).to_string(),
            points: phases
                .iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.latency.percentile(*q) as f64))
                .collect(),
        })
        .collect();
    r.add(
        "soak: send-to-reply latency percentiles by phase (ns)",
        &series,
    );
    r.add_extra(
        "soak_config",
        format!(
            "{{\"backend\":{},\"requests\":{},\"workers\":{},\"clients\":{},\"payload\":{},\
             \"kill_workers\":{},\"kill_clients\":{},\"churn\":{}}}",
            json_str(if args.ipc { "ipc" } else { "threads" }),
            args.requests,
            args.workers,
            args.clients,
            args.payload,
            args.kill_workers,
            args.kill_clients,
            args.churn
        ),
    );
    let phase_objs = phases
        .iter()
        .map(PhaseSlo::to_json)
        .collect::<Vec<_>>()
        .join(",");
    r.add_extra("phases", format!("[{phase_objs}]"));
    r.add_extra(
        "server",
        format!(
            "{{\"hellos\":{},\"byes\":{},\"faults\":{},\"epoch_bumps\":{},\"final_epoch\":{},\
             \"workers_registered\":{workers_registered}}}",
            server.hellos, server.byes, server.faults, server.epoch_bumps, epoch_final
        ),
    );
    let workers_json = worker_reports
        .iter()
        .map(|kv| {
            let fields = kv
                .iter()
                .filter(|(k, _)| *k != "role" && *k != "lat")
                .map(|(k, v)| format!("{}:{}", json_str(k), v.parse::<u64>().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join(",");
            format!("{{{fields}}}")
        })
        .collect::<Vec<_>>()
        .join(",");
    r.add_extra("workers", format!("[{workers_json}]"));
    r.add_extra(
        "conservation",
        match conservation {
            Ok((live, free)) => {
                format!("{{\"ok\":true,\"live_lnvcs\":{live},\"free_blocks\":{free}}}")
            }
            Err(why) => format!("{{\"ok\":false,\"detail\":{}}}", json_str(why)),
        },
    );
    r.add_extra("verified_requests", done.to_string());
    match r.write() {
        Ok(p) => eprintln!("mpf-soak: wrote {}", p.display()),
        Err(e) => eprintln!("mpf-soak: cannot write {}: {e}", args.json),
    }
}

fn summarize(phases: &[PhaseSlo], done: u64, epoch_bumps: u32) {
    println!("# soak summary: {done} verified requests, {epoch_bumps} epoch bump(s)");
    println!(
        "{:<12}{:>10}{:>10}{:>9}{:>9}{:>12}{:>12}{:>12}",
        "phase", "ok", "timeouts", "retries", "dups", "p50_ns", "p99_ns", "p999_ns"
    );
    for p in phases {
        println!(
            "{:<12}{:>10}{:>10}{:>9}{:>9}{:>12}{:>12}{:>12}",
            p.name,
            p.ok,
            p.timeouts,
            p.retries,
            p.dup_replies,
            p.latency.percentile(0.50),
            p.latency.percentile(0.99),
            p.latency.percentile(0.999)
        );
    }
}
