//! The worker loop: pull from the shared FCFS request queue, reply on
//! per-client queues, obey the BROADCAST control plane, and survive
//! epoch changes.
//!
//! One call to [`run_worker`] is one worker lifetime: it joins the
//! highest live epoch ([`crate::server::discover_epoch`]), announces
//! itself with `K_HELLO`, and serves until `K_SHUTDOWN` (normal return)
//! or an unrecoverable error.  `PeerDied`/`UnknownLnvc` on any epoch
//! conversation is **recoverable**: the worker best-effort reports
//! `K_FAULT`, closes everything it holds, and rejoins at a strictly
//! higher epoch — the server's supervise loop is re-anchoring
//! concurrently.
//!
//! Replies are sent over a fresh `open_send`/`send`/`close_send` per
//! request rather than a cached connection: caching would leave the
//! worker connected to queues of departed clients, turning their
//! FCFS-owed messages into a leak and their deaths into spurious worker
//! faults.  A reply that cannot be delivered (dead client, reply
//! deadline under pool pressure) is **dropped and counted** — the
//! protocol is at-least-once with client-side de-duplication, so a live
//! client simply retries.
//!
//! After each idle tick the worker runs a dead-peer sweep: the aio
//! reactor's receive path never sweeps (unlike the facilities' blocking
//! receives), so without this a region whose only parked receivers are
//! workers would take arbitrarily long to notice a corpse.

use std::time::{Duration, Instant};

use mpf::{MpfError, Protocol, Result};

use crate::server::{discover_epoch, scan_epoch};
use crate::transport::{is_failover, Transport};
use crate::wire::{
    ack_name, ctl_name, decode_ctl, decode_req, encode_ack, encode_req, pres_name, q_name,
    reply_name, validate_svc, Ctl, K_ACK, K_BYE, K_DRAIN, K_EPOCH, K_FAULT, K_HELLO, K_PAUSE,
    K_REP, K_REQ, K_RESUME, K_SHUTDOWN,
};

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerCfg {
    pub svc: String,
    /// Worker id, unique per service (appears in acks and reports).
    pub wid: u32,
    /// Idle-tick interval: how long one `recv_any` waits before the
    /// worker sweeps for dead peers.  `None` = deterministic mode —
    /// block indefinitely, never read the clock (mpf-check scenarios).
    pub idle: Option<Duration>,
    /// Extra requests drained per wakeup via the batched receive path.
    pub batch: usize,
    /// Per-reply send deadline under pool pressure (`None` = block).
    pub reply_timeout: Option<Duration>,
    /// Bound on the initial epoch discovery (`None` = wait forever).
    pub join_timeout: Option<Duration>,
}

impl WorkerCfg {
    pub fn new(svc: &str, wid: u32) -> Self {
        assert!(validate_svc(svc), "bad service name {svc:?}");
        WorkerCfg {
            svc: svc.to_string(),
            wid,
            idle: Some(Duration::from_millis(50)),
            batch: 16,
            reply_timeout: Some(Duration::from_millis(250)),
            join_timeout: Some(Duration::from_secs(10)),
        }
    }

    /// Timeout-free variant for `mpf-check` schedule exploration.
    pub fn deterministic(svc: &str, wid: u32) -> Self {
        WorkerCfg {
            idle: None,
            reply_timeout: None,
            join_timeout: None,
            ..Self::new(svc, wid)
        }
    }
}

/// Worker-side counters, returned when the loop exits.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Requests served (handler invocations).
    pub served: u64,
    /// Wakeups that drained more than one request.
    pub batches: u64,
    /// Replies dropped (dead client or reply deadline).
    pub reply_failures: u64,
    /// Epoch rejoins after a fault.
    pub rejoins: u64,
    /// Dead peers found by idle-tick sweeps.
    pub sweeps: u32,
    /// Control commands applied.
    pub ctl_applied: u64,
}

enum Tick {
    Shutdown,
    Rejoin { floor: u32 },
}

/// Runs a worker until `K_SHUTDOWN` (or until epoch discovery times
/// out, which also returns the stats gathered so far).  `handler` maps
/// a request payload to a reply payload.
pub fn run_worker<T: Transport>(
    t: &T,
    cfg: &WorkerCfg,
    mut handler: impl FnMut(&[u8]) -> Vec<u8>,
) -> Result<WorkerStats> {
    let mut stats = WorkerStats::default();
    let mut floor = 1u32;
    loop {
        let join_deadline = cfg.join_timeout.map(|d| Instant::now() + d);
        let Some(epoch) = discover_epoch(t, &cfg.svc, floor, join_deadline) else {
            return Ok(stats);
        };
        match serve_epoch(t, cfg, epoch, &mut stats, &mut handler) {
            Ok(Tick::Shutdown) => return Ok(stats),
            Ok(Tick::Rejoin { floor: f }) => {
                stats.rejoins += 1;
                floor = f.max(epoch + 1);
            }
            Err(e) => return Err(e),
        }
    }
}

/// One epoch's serve loop.  Returns how it ended; all conversations
/// opened here are closed on every exit path.
fn serve_epoch<T: Transport>(
    t: &T,
    cfg: &WorkerCfg,
    epoch: u32,
    stats: &mut WorkerStats,
    handler: &mut impl FnMut(&[u8]) -> Vec<u8>,
) -> Result<Tick> {
    // Join: the order matters — the control plane before HELLO, so a
    // command broadcast in reaction to our HELLO cannot be missed
    // (BROADCAST only delivers what is sent after the join).
    let q_rx = t.open_receive(&q_name(&cfg.svc, epoch), Protocol::Fcfs)?;
    let ctl_rx = match t.open_receive(&ctl_name(&cfg.svc, epoch), Protocol::Broadcast) {
        Ok(id) => id,
        Err(e) => {
            let _ = t.close_receive(q_rx);
            return bubble(e);
        }
    };
    let ack_tx = match t.open_send(&ack_name(&cfg.svc, epoch)) {
        Ok(id) => id,
        Err(e) => {
            let _ = t.close_receive(q_rx);
            let _ = t.close_receive(ctl_rx);
            return bubble(e);
        }
    };

    let mut paused = false;
    let mut last_ctl = 0u32;
    // Consecutive idle ticks with the presence marker missing.  One miss
    // can be the microsecond window inside an epoch bump (old marker
    // closed, new one not yet open); several in a row mean the server
    // really moved on — or died.
    let mut gone_ticks = 0u32;
    let ack = |t: &T, kind: u8, ctl_seq: u32, served: u64| {
        let frame = encode_ack(kind, cfg.wid, epoch, ctl_seq, served);
        let dl = cfg.reply_timeout.map(|d| Instant::now() + d);
        let _ = t.send_deadline(ack_tx, &frame, dl);
    };
    ack(t, K_HELLO, 0, stats.served);

    let out = 'serve: loop {
        let idle_deadline = cfg.idle.map(|d| Instant::now() + d);
        let tick = if paused {
            t.recv_deadline(ctl_rx, idle_deadline)
                .map(|o| o.map(|m| (ctl_rx, m)))
        } else {
            t.recv_any_deadline(&[q_rx, ctl_rx], idle_deadline)
        };
        match tick {
            Ok(Some((id, msg))) if id == ctl_rx => {
                let Some(c) = decode_ctl(&msg) else { continue };
                // Replay-idempotence: a command owed to us from before we
                // joined (zero-receiver BROADCAST becomes owed-FCFS) or
                // re-seen after a flush carries a serial we already
                // passed.  K_EPOCH is exempt — it acts on its argument.
                if c.ctl_seq <= last_ctl && c.kind != K_EPOCH {
                    continue;
                }
                last_ctl = c.ctl_seq;
                stats.ctl_applied += 1;
                match apply_ctl(t, cfg, &c, q_rx, stats, handler, &ack)? {
                    CtlOutcome::Continue => {}
                    CtlOutcome::Pause => paused = true,
                    CtlOutcome::Resume => paused = false,
                    CtlOutcome::Shutdown => break 'serve Tick::Shutdown,
                    CtlOutcome::Rejoin { floor } => break 'serve Tick::Rejoin { floor },
                }
            }
            Ok(Some((_, msg))) => {
                serve_one(t, cfg, &msg, stats, handler);
                // Amortize the wakeup: drain a batch under one lock hold.
                let extra = t.try_recv_batch(q_rx, cfg.batch)?;
                if !extra.is_empty() {
                    stats.batches += 1;
                    for m in &extra {
                        serve_one(t, cfg, m, stats, handler);
                    }
                }
            }
            Ok(None) => {
                // Idle tick: look for corpses (see the module doc), then
                // check the server's presence marker — we sustain every
                // conversation we hold ourselves, so only `sp.*` can tell
                // us the server abandoned this epoch (e.g. we missed a
                // K_EPOCH that drowned in request traffic).
                stats.sweeps += t.sweep_dead();
                if t.lnvc_exists(&pres_name(&cfg.svc, epoch)) {
                    gone_ticks = 0;
                } else {
                    gone_ticks += 1;
                    if gone_ticks >= 3 {
                        break 'serve match scan_epoch(t, &cfg.svc, epoch + 1) {
                            Some(higher) => {
                                ack(t, K_FAULT, last_ctl, stats.served);
                                Tick::Rejoin { floor: higher }
                            }
                            // No epoch anywhere above us: the server is
                            // gone for good; exit as if shut down.
                            None => Tick::Shutdown,
                        };
                    }
                }
            }
            Err(e) if is_failover(&e) => {
                ack(t, K_FAULT, last_ctl, stats.served);
                break 'serve Tick::Rejoin { floor: epoch + 1 };
            }
            Err(e) => {
                let _ = t.close_receive(q_rx);
                let _ = t.close_receive(ctl_rx);
                let _ = t.close_send(ack_tx);
                return Err(e);
            }
        }
    };

    let _ = t.close_receive(q_rx);
    let _ = t.close_receive(ctl_rx);
    let _ = t.close_send(ack_tx);
    Ok(out)
}

enum CtlOutcome {
    Continue,
    Pause,
    Resume,
    Shutdown,
    Rejoin { floor: u32 },
}

fn apply_ctl<T: Transport>(
    t: &T,
    cfg: &WorkerCfg,
    c: &Ctl,
    q_rx: T::Id,
    stats: &mut WorkerStats,
    handler: &mut impl FnMut(&[u8]) -> Vec<u8>,
    ack: &impl Fn(&T, u8, u32, u64),
) -> Result<CtlOutcome> {
    Ok(match c.kind {
        K_PAUSE => CtlOutcome::Pause,
        K_RESUME => CtlOutcome::Resume,
        K_DRAIN => {
            flush(t, cfg, q_rx, stats, handler)?;
            ack(t, K_ACK, c.ctl_seq, stats.served);
            CtlOutcome::Pause
        }
        K_SHUTDOWN => {
            flush(t, cfg, q_rx, stats, handler)?;
            ack(t, K_BYE, c.ctl_seq, stats.served);
            CtlOutcome::Shutdown
        }
        K_EPOCH => CtlOutcome::Rejoin {
            floor: u32::try_from(c.arg).unwrap_or(c.epoch + 1),
        },
        _ => CtlOutcome::Continue,
    })
}

/// Serves everything currently in the request queue.
fn flush<T: Transport>(
    t: &T,
    cfg: &WorkerCfg,
    q_rx: T::Id,
    stats: &mut WorkerStats,
    handler: &mut impl FnMut(&[u8]) -> Vec<u8>,
) -> Result<()> {
    loop {
        let batch = match t.try_recv_batch(q_rx, cfg.batch.max(1)) {
            Ok(b) => b,
            // A poisoned queue has no drainable backlog (the sweep freed
            // it); the fault surfaces on the next serve tick.
            Err(e) if is_failover(&e) => return Ok(()),
            Err(e) => return Err(e),
        };
        if batch.is_empty() {
            return Ok(());
        }
        for m in &batch {
            serve_one(t, cfg, m, stats, handler);
        }
    }
}

/// Serves one request: decode, handle, reply on the client's private
/// queue.  Reply failures are counted, never fatal (module doc).
fn serve_one<T: Transport>(
    t: &T,
    cfg: &WorkerCfg,
    msg: &[u8],
    stats: &mut WorkerStats,
    handler: &mut impl FnMut(&[u8]) -> Vec<u8>,
) {
    let Some(req) = decode_req(msg) else { return };
    if req.kind != K_REQ {
        return;
    }
    let reply_payload = handler(&req.payload);
    stats.served += 1;
    let frame = encode_req(
        K_REP,
        req.cid,
        req.gen,
        req.seq,
        req.sent_ns,
        &reply_payload,
    );
    let name = reply_name(&cfg.svc, req.cid, req.gen);
    let delivered = (|| -> Result<bool> {
        let rtx = t.open_send(&name)?;
        let dl = cfg.reply_timeout.map(|d| Instant::now() + d);
        let sent = t.send_deadline(rtx, &frame, dl)?;
        let _ = t.close_send(rtx);
        Ok(sent)
    })();
    if !matches!(delivered, Ok(true)) {
        stats.reply_failures += 1;
    }
}

/// Classifies a join-time error: failover-class errors mean the epoch
/// died under us mid-join — rejoin higher; anything else is fatal.
fn bubble(e: MpfError) -> Result<Tick> {
    if is_failover(&e) {
        Ok(Tick::Rejoin { floor: 0 }) // caller maxes with epoch + 1
    } else {
        Err(e)
    }
}
