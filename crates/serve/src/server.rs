//! The service anchor: epoch ownership, worker registry, and the
//! BROADCAST control plane.
//!
//! The server does not serve requests itself — workers do.  Its job is
//! to **anchor** the service's shared conversations so they outlive any
//! individual worker or client, to track the worker pool via the ack
//! channel, and to run the control plane:
//!
//! * It holds a send connection on the request queue, a send connection
//!   on the control plane, and the (only) FCFS receive connection on the
//!   ack channel — so none of the three is ever deleted by a transient
//!   participant closing last.
//! * **Epoch failover**: in the multi-process backend, any SIGKILLed
//!   participant poisons the conversations it touched, and poison is
//!   sticky for the descriptor's lifetime.  Rather than trying to
//!   resurrect a poisoned queue, [`Server::supervise`] retires the whole
//!   epoch: best-effort `K_EPOCH` notice on the old control plane, close
//!   the old anchors, re-anchor under `epoch+1` names.  Workers and
//!   clients rediscover the new epoch by name probing
//!   ([`discover_epoch`]) — triggered either by the notice or by
//!   `PeerDied` surfacing on the old names.
//! * **Drain** ([`Server::drain`]): broadcast `K_DRAIN`; each worker
//!   flushes the request queue, acks with its served count, and pauses
//!   intake.  The server collects acks from every current-epoch worker
//!   (deadline-bounded) and reports the residual queue depth.
//! * **Shutdown** ([`Server::shutdown`]): broadcast `K_SHUTDOWN`;
//!   workers flush, say `K_BYE`, and exit; the server then closes its
//!   anchors.
//!
//! Control frames carry a server-monotonic `ctl_seq` and are only
//! broadcast while at least one worker is registered: a BROADCAST send
//! on a zero-receiver conversation would become an owed-FCFS message
//! delivered to the *next* joiner (§3's zero-receiver rule), replaying a
//! stale command — the guard plus the serial make that harmless.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf::{Protocol, Result};

use crate::transport::Transport;
use crate::wire::{
    ack_name, ctl_name, decode_ack, encode_ctl, pres_name, q_name, validate_svc, Ack, K_ACK, K_BYE,
    K_DRAIN, K_EPOCH, K_FAULT, K_HELLO, K_PAUSE, K_RESUME, K_SHUTDOWN,
};

/// One registered worker, as seen through its acks.
#[derive(Debug, Clone, Copy)]
pub struct WorkerEntry {
    /// Epoch of the worker's last `K_HELLO`.
    pub epoch: u32,
    /// Served count from its last ack.
    pub served: u64,
    /// `ctl_seq` of the last `K_ACK` it sent (0 = none).
    pub acked: u32,
}

/// Server-side counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerStats {
    pub hellos: u64,
    pub byes: u64,
    pub faults: u64,
    pub epoch_bumps: u32,
}

/// Outcome of a [`Server::drain`].
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// Workers that acknowledged this drain.
    pub acked: Vec<u32>,
    /// Current-epoch workers that did not ack before the deadline.
    pub timed_out: Vec<u32>,
    /// Request-queue depth after the acks (0 = fully quiesced).
    pub residual: u32,
    /// Sum of served counts reported in the acks.
    pub served_total: u64,
}

/// Outcome of a [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ShutdownReport {
    /// Workers that said `K_BYE`.
    pub byes: Vec<u32>,
    /// Current-epoch workers still unaccounted for at the deadline.
    pub stragglers: Vec<u32>,
}

/// `(q_tx, ctl_tx, ack_rx, pres_tx)` — one epoch's four anchors.
type Anchors<T> = (
    <T as Transport>::Id,
    <T as Transport>::Id,
    <T as Transport>::Id,
    <T as Transport>::Id,
);

/// The anchor process of one service.
pub struct Server<T: Transport> {
    t: Arc<T>,
    svc: String,
    epoch: u32,
    ctl_seq: u32,
    q_tx: T::Id,
    ctl_tx: T::Id,
    ack_rx: T::Id,
    /// Presence marker (see [`pres_name`]): held open, never written.
    pres_tx: T::Id,
    workers: BTreeMap<u32, WorkerEntry>,
    pub stats: ServerStats,
}

impl<T: Transport> Server<T> {
    /// Creates the service at epoch 1: opens (and thereby creates) the
    /// request queue, control plane, and ack channel.
    pub fn new(t: Arc<T>, svc: &str) -> Result<Self> {
        assert!(
            validate_svc(svc),
            "service name must be 1..=7 bytes of [a-z0-9_-], got {svc:?}"
        );
        let epoch = 1;
        let (q_tx, ctl_tx, ack_rx, pres_tx) = Self::open_anchors(&t, svc, epoch)?;
        Ok(Server {
            t,
            svc: svc.to_string(),
            epoch,
            ctl_seq: 0,
            q_tx,
            ctl_tx,
            ack_rx,
            pres_tx,
            workers: BTreeMap::new(),
            stats: ServerStats::default(),
        })
    }

    /// The request queue comes LAST: epoch discovery probes its name, so
    /// by the time an epoch is discoverable the presence marker, control
    /// plane, and ack channel already exist.
    fn open_anchors(t: &T, svc: &str, epoch: u32) -> Result<Anchors<T>> {
        let pres_tx = t.open_send(&pres_name(svc, epoch))?;
        let ctl_tx = t.open_send(&ctl_name(svc, epoch))?;
        let ack_rx = t.open_receive(&ack_name(svc, epoch), Protocol::Fcfs)?;
        let q_tx = t.open_send(&q_name(svc, epoch))?;
        Ok((q_tx, ctl_tx, ack_rx, pres_tx))
    }

    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    pub fn svc(&self) -> &str {
        &self.svc
    }

    /// The current request-queue name (diagnostics / tests).
    pub fn q_name(&self) -> String {
        q_name(&self.svc, self.epoch)
    }

    /// Workers registered at the current epoch.
    pub fn worker_count(&self) -> usize {
        self.workers
            .values()
            .filter(|w| w.epoch == self.epoch)
            .count()
    }

    /// Snapshot of the worker registry.
    pub fn workers(&self) -> &BTreeMap<u32, WorkerEntry> {
        &self.workers
    }

    /// Absorbs every queued ack, then (when `deadline` allows) blocks
    /// for one more.  Returns the acks processed.
    pub fn poll_acks(&mut self, deadline: Option<Instant>) -> Result<Vec<Ack>> {
        let mut out = Vec::new();
        while let Some(buf) = self.t.try_recv(self.ack_rx)? {
            if let Some(a) = self.absorb(&buf) {
                out.push(a);
            }
        }
        if out.is_empty() {
            if let Some(buf) = self.t.recv_deadline(self.ack_rx, deadline)? {
                if let Some(a) = self.absorb(&buf) {
                    out.push(a);
                }
            }
        }
        Ok(out)
    }

    fn absorb(&mut self, buf: &[u8]) -> Option<Ack> {
        let a = decode_ack(buf)?;
        match a.kind {
            K_HELLO => {
                self.stats.hellos += 1;
                self.workers.insert(
                    a.wid,
                    WorkerEntry {
                        epoch: a.epoch,
                        served: a.served,
                        acked: 0,
                    },
                );
            }
            K_BYE => {
                self.stats.byes += 1;
                if let Some(w) = self.workers.get_mut(&a.wid) {
                    w.served = a.served;
                }
                self.workers.remove(&a.wid);
            }
            K_ACK => {
                if let Some(w) = self.workers.get_mut(&a.wid) {
                    w.served = a.served;
                    w.acked = a.ctl_seq;
                }
            }
            K_FAULT => {
                self.stats.faults += 1;
                // The worker will re-HELLO once it finds the new epoch;
                // drop its stale registration so drains don't wait on it.
                self.workers.remove(&a.wid);
            }
            _ => {}
        }
        Some(a)
    }

    /// Broadcasts one control frame.  Returns `Some(ctl_seq)` when sent,
    /// `None` when skipped because no worker is registered (a BROADCAST
    /// with zero receivers would be owed to the next joiner as a stale
    /// command — see the module doc).
    pub fn broadcast(&mut self, kind: u8, arg: u64) -> Result<Option<u32>> {
        if self.workers.is_empty() {
            return Ok(None);
        }
        self.ctl_seq += 1;
        let frame = encode_ctl(kind, self.epoch, self.ctl_seq, arg);
        self.t.send_deadline(self.ctl_tx, &frame, None)?;
        Ok(Some(self.ctl_seq))
    }

    /// Pauses request intake on every worker.
    pub fn pause(&mut self) -> Result<Option<u32>> {
        self.broadcast(K_PAUSE, 0)
    }

    /// Resumes request intake after a pause or drain.
    pub fn resume(&mut self) -> Result<Option<u32>> {
        self.broadcast(K_RESUME, 0)
    }

    /// Drains the service: workers flush the request queue, ack, and
    /// pause.  Blocks (bounded by `timeout` when given) until every
    /// current-epoch worker acked.  Follow with [`Server::resume`] to
    /// take traffic again.
    pub fn drain(&mut self, timeout: Option<Duration>) -> Result<DrainReport> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let Some(seq) = self.broadcast(K_DRAIN, 0)? else {
            return Ok(DrainReport {
                acked: Vec::new(),
                timed_out: Vec::new(),
                residual: self.t.queue_depth(self.q_tx)?,
                served_total: 0,
            });
        };
        let expect: Vec<u32> = self
            .workers
            .iter()
            .filter(|(_, w)| w.epoch == self.epoch)
            .map(|(&wid, _)| wid)
            .collect();
        loop {
            let done: Vec<u32> = expect
                .iter()
                .copied()
                .filter(|wid| self.workers.get(wid).is_some_and(|w| w.acked >= seq))
                .collect();
            if done.len() == expect.len() {
                break;
            }
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    break;
                }
            }
            self.poll_acks(deadline)?;
        }
        let acked: Vec<u32> = expect
            .iter()
            .copied()
            .filter(|wid| self.workers.get(wid).is_some_and(|w| w.acked >= seq))
            .collect();
        let timed_out: Vec<u32> = expect
            .iter()
            .copied()
            .filter(|w| !acked.contains(w))
            .collect();
        let served_total = acked
            .iter()
            .filter_map(|wid| self.workers.get(wid))
            .map(|w| w.served)
            .sum();
        Ok(DrainReport {
            acked,
            timed_out,
            residual: self.t.queue_depth(self.q_tx)?,
            served_total,
        })
    }

    /// Stops the service: workers flush, `K_BYE`, and exit; then the
    /// anchors close (deleting the conversations once the last worker
    /// connection leaves).
    pub fn shutdown(mut self, timeout: Option<Duration>) -> Result<ShutdownReport> {
        let deadline = timeout.map(|d| Instant::now() + d);
        let sent = self.broadcast(K_SHUTDOWN, 0)?;
        let mut byes = Vec::new();
        if sent.is_some() {
            loop {
                let waiting = self.workers.iter().any(|(_, w)| w.epoch == self.epoch);
                if !waiting {
                    break;
                }
                if let Some(dl) = deadline {
                    if Instant::now() >= dl {
                        break;
                    }
                }
                for a in self.poll_acks(deadline)? {
                    if a.kind == K_BYE {
                        byes.push(a.wid);
                    }
                }
            }
        }
        let stragglers: Vec<u32> = self
            .workers
            .iter()
            .filter(|(_, w)| w.epoch == self.epoch)
            .map(|(&wid, _)| wid)
            .collect();
        let _ = self.t.close_send(self.q_tx);
        let _ = self.t.close_send(self.ctl_tx);
        let _ = self.t.close_receive(self.ack_rx);
        let _ = self.t.close_send(self.pres_tx);
        Ok(ShutdownReport { byes, stragglers })
    }

    /// Health check: sweeps for dead peers and, if any anchor is
    /// poisoned, retires the epoch and re-anchors.  Returns `true` when
    /// an epoch bump happened (callers typically log it).  Run this
    /// periodically from the process that owns the server.
    pub fn supervise(&mut self) -> Result<bool> {
        self.t.sweep_dead();
        let hurt = self.t.is_poisoned(self.q_tx)
            || self.t.is_poisoned(self.ctl_tx)
            || self.t.is_poisoned(self.ack_rx)
            || self.t.is_poisoned(self.pres_tx);
        if !hurt {
            return Ok(false);
        }
        self.bump_epoch()?;
        Ok(true)
    }

    /// The supervision *loop*: alternates [`Server::poll_acks`] and
    /// [`Server::supervise`] until the deadline passes or `stop` is
    /// raised — every blocking step inside is deadline-bounded, so the
    /// loop's lifetime is exactly the caller's signal, never an
    /// unbounded wait.  Returns the number of epoch bumps performed.
    /// This is the idle loop a service-owning process runs between
    /// control-plane actions.
    pub fn supervise_until(
        &mut self,
        deadline: Instant,
        stop: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<u32> {
        // Ack-poll quantum: how long one iteration may block, and hence
        // the worst-case latency to notice `stop`.
        const QUANTUM: Duration = Duration::from_millis(20);
        let mut bumps = 0u32;
        loop {
            if stop.is_some_and(|s| s.load(std::sync::atomic::Ordering::Acquire)) {
                return Ok(bumps);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(bumps);
            }
            self.poll_acks(Some((now + QUANTUM).min(deadline)))?;
            if self.supervise()? {
                bumps += 1;
            }
        }
    }

    /// Retires the current epoch and re-anchors at `epoch + 1`.
    fn bump_epoch(&mut self) -> Result<()> {
        let next = self.epoch + 1;
        // Best-effort notice on the old control plane; workers that miss
        // it will hit PeerDied on the poisoned queue and probe anyway.
        if !self.workers.is_empty() {
            self.ctl_seq += 1;
            let frame = encode_ctl(K_EPOCH, self.epoch, self.ctl_seq, u64::from(next));
            let _ = self
                .t
                .send_deadline(self.ctl_tx, &frame, Some(Instant::now()));
        }
        let _ = self.t.close_send(self.q_tx);
        let _ = self.t.close_send(self.ctl_tx);
        let _ = self.t.close_receive(self.ack_rx);
        let _ = self.t.close_send(self.pres_tx);
        self.epoch = next;
        self.stats.epoch_bumps += 1;
        let (q_tx, ctl_tx, ack_rx, pres_tx) = Self::open_anchors(&self.t, &self.svc, next)?;
        self.q_tx = q_tx;
        self.ctl_tx = ctl_tx;
        self.ack_rx = ack_rx;
        self.pres_tx = pres_tx;
        Ok(())
    }
}

/// Finds the highest live epoch of a service by probing epoch-suffixed
/// request-queue names upward from `floor` (epochs are dense — the
/// server increments by one — so a bounded miss window is exhaustive).
/// Blocks, napping between scans, until found or `deadline`; `None` on
/// timeout.  Workers pass `floor = failed_epoch + 1` so they never
/// re-adopt the epoch they just watched die.
pub fn discover_epoch<T: Transport>(
    t: &T,
    svc: &str,
    floor: u32,
    deadline: Option<Instant>,
) -> Option<u32> {
    loop {
        if let Some(found) = scan_epoch(t, svc, floor) {
            return Some(found);
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                return None;
            }
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One non-blocking probe pass of [`discover_epoch`]: the highest
/// existing epoch ≥ `floor`, or `None` without waiting.  Workers and
/// clients also use this directly to notice, mid-conversation, that the
/// server has moved past them.
pub fn scan_epoch<T: Transport>(t: &T, svc: &str, floor: u32) -> Option<u32> {
    let mut found = None;
    let mut probe = floor.max(1);
    let mut misses = 0u32;
    while misses < 32 {
        if t.lnvc_exists(&q_name(svc, probe)) {
            found = Some(probe);
            misses = 0;
        } else {
            misses += 1;
        }
        probe += 1;
    }
    found
}
