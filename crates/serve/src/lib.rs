//! mpf-serve: a request-reply **service layer** over MPF conversations,
//! plus the soak/chaos harness that beats on it (`mpf-soak`).
//!
//! The facilities below this crate move bytes between named LNVCs; this
//! crate adds the first *service* shape on top of them:
//!
//! * a [`Server`] that anchors one service — a shared FCFS request
//!   queue, a BROADCAST control plane (pause / resume / drain /
//!   shutdown), and an ack channel tracking the worker pool;
//! * [`run_worker`] — the pull-serve-reply loop, batch-draining the
//!   request queue and replying on each client's private queue;
//! * a [`Client`] with timeout/retry, duplicate suppression, and
//!   `PeerDied`-aware failover.
//!
//! Everything is written against the [`Transport`] seam, so the same
//! server/worker/client code runs over the multi-process mmap backend
//! ([`IpcTransport`]), the in-process thread backend
//! ([`ThreadTransport`]), and the deterministic `mpf-check` harness
//! ([`SyncTransport`]).
//!
//! ## Delivery contract
//!
//! At-least-once with client-side de-duplication: a call is retried
//! under the same serial until a matching reply arrives, so handlers
//! must tolerate re-execution; clients never surface a duplicate reply.
//! Crash recovery is by **epoch**: a SIGKILLed participant poisons the
//! conversations it touched (poison is sticky), so the server retires
//! the epoch wholesale and re-anchors under fresh names; workers and
//! clients rediscover the service by name probing.  See the module docs
//! of [`server`], [`worker`], [`client`], and [`wire`] for the detailed
//! rationale.

pub mod client;
pub mod server;
pub mod soak;
pub mod transport;
pub mod wire;
pub mod worker;

pub use client::{Client, ClientCfg, ClientStats};
pub use server::{
    discover_epoch, scan_epoch, DrainReport, Server, ServerStats, ShutdownReport, WorkerEntry,
};
pub use transport::{is_failover, IpcTransport, SyncTransport, ThreadTransport, Transport};
pub use worker::{run_worker, WorkerCfg, WorkerStats};

use mpf::MpfError;

/// Service-layer errors: either the facility failed in a way the
/// layer's retry/failover machinery does not absorb, or the layer's own
/// budgets ran out.
#[derive(Debug)]
pub enum ServeError {
    /// A non-recoverable facility error.
    Mpf(MpfError),
    /// The retry budget ran out without a reply.
    TimedOut,
    /// The call's total wall-clock budget ([`ClientCfg::call_budget`])
    /// expired — across however many retries, failovers, and epoch
    /// rediscoveries were in flight.  Distinct from
    /// [`ServeError::TimedOut`] (attempt *count* exhausted): this is the
    /// bound that holds even when every attempt keeps finding new ways
    /// to fail over.
    DeadlineExceeded,
    /// No live epoch of the service was found within the discovery
    /// budget (server not started, or gone for good).
    Unavailable,
}

impl From<MpfError> for ServeError {
    fn from(e: MpfError) -> Self {
        ServeError::Mpf(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Mpf(e) => write!(f, "facility error: {e}"),
            ServeError::TimedOut => write!(f, "call timed out (retry budget exhausted)"),
            ServeError::DeadlineExceeded => {
                write!(f, "call deadline exceeded (total wall-clock budget)")
            }
            ServeError::Unavailable => write!(f, "service unavailable (no live epoch found)"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Mpf(e) => Some(e),
            _ => None,
        }
    }
}

/// Result alias for service-layer operations.
pub type ServeResult<V> = std::result::Result<V, ServeError>;
