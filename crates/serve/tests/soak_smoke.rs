//! Cross-process smoke run of the soak harness: a scaled-down version
//! of the CI job — real forked workers and clients over the ipc
//! backend, one SIGKILLed worker, and the full gate stack (stamp
//! verification, conservation, SLO structure) enforced by the binary's
//! exit code.  The test then re-checks the headline claims from the
//! emitted `BENCH_soak.json` rather than trusting stdout alone.

use std::process::Command;

#[test]
fn soak_smoke_ipc_with_worker_kill() {
    let json = std::env::temp_dir().join(format!("soak-smoke-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&json);

    let out = Command::new(env!("CARGO_BIN_EXE_mpf-soak"))
        .args([
            "--backend",
            "ipc",
            "--requests",
            "3000",
            "--workers",
            "2",
            "--clients",
            "4",
            "--kill-workers",
            "1",
            "--kill-clients",
            "1",
            "--json",
        ])
        .arg(&json)
        .output()
        .expect("spawn mpf-soak");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "mpf-soak exited {:?}\n--- stdout ---\n{stdout}\n--- stderr ---\n{stderr}",
        out.status.code()
    );
    assert!(
        stdout.contains("mpf-soak: PASS"),
        "no PASS line\n--- stdout ---\n{stdout}"
    );

    let report = std::fs::read_to_string(&json).expect("BENCH json written");
    let _ = std::fs::remove_file(&json);

    // Conservation gate recorded as clean.
    assert!(
        report.contains("\"ok\":true"),
        "conservation not clean in report: {report}"
    );
    // The killed worker (and killed client) must have forced at least
    // one epoch failover.
    let bumps = report
        .split("\"epoch_bumps\":")
        .nth(1)
        .and_then(|rest| {
            rest.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse::<u32>()
                .ok()
        })
        .expect("epoch_bumps in report");
    assert!(
        bumps >= 1,
        "no epoch bump despite a SIGKILLed worker: {report}"
    );
    // Latency percentiles made it into the report.
    for key in ["\"p50_ns\"", "\"p99_ns\"", "\"p999_ns\""] {
        assert!(report.contains(key), "missing {key} in report");
    }
}
