//! Service-layer integration tests on the thread backend: full
//! control-plane lifecycle (pause → resume → drain → shutdown) with
//! real concurrency, plus conservation after everything disconnects.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf::{Mpf, MpfConfig, ProcessId};
use mpf_aio::AsyncMpf;
use mpf_serve::{run_worker, Client, ClientCfg, Server, ThreadTransport, WorkerCfg};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn thread_t(mpf: &Arc<Mpf>, pid: usize) -> ThreadTransport {
    ThreadTransport(AsyncMpf::new(Arc::clone(mpf), p(pid)))
}

/// Pumps the server's ack channel until `cond` holds or `timeout`.
fn pump_until<T, F>(server: &mut Server<T>, timeout: Duration, mut cond: F)
where
    T: mpf_serve::Transport,
    F: FnMut(&Server<T>) -> bool,
{
    let deadline = Instant::now() + timeout;
    while !cond(server) {
        assert!(Instant::now() < deadline, "condition not reached in time");
        server
            .poll_acks(Some(Instant::now() + Duration::from_millis(10)))
            .expect("poll_acks");
    }
}

#[test]
fn round_trip_and_lifecycle() {
    let mpf = Arc::new(Mpf::init(MpfConfig::new(32, 16)).expect("init"));
    let mut server = Server::new(Arc::new(thread_t(&mpf, 0)), "life").expect("anchor");

    let worker = {
        let mpf = Arc::clone(&mpf);
        std::thread::spawn(move || {
            let t = thread_t(&mpf, 1);
            run_worker(&t, &WorkerCfg::new("life", 1), |req| {
                let mut v = req.to_vec();
                v.reverse();
                v
            })
            .expect("worker")
        })
    };
    pump_until(&mut server, Duration::from_secs(10), |s| {
        s.worker_count() == 1
    });

    let t = Arc::new(thread_t(&mpf, 2));
    let mut client = Client::connect(t, ClientCfg::new("life", 1)).expect("connect");
    assert_eq!(client.call(b"abc").expect("call"), b"cba");

    // Pause stops intake; a call issued while paused must still succeed
    // once intake resumes (the request waits in the queue — FCFS owes it
    // to the worker class, not to a live receiver).
    server.pause().expect("pause");
    let pauser = {
        let mpf = Arc::clone(&mpf);
        std::thread::spawn(move || {
            let t = Arc::new(thread_t(&mpf, 3));
            let mut c = Client::connect(t, ClientCfg::new("life", 2)).expect("connect");
            let reply = c.call(b"paused").expect("call during pause");
            c.close();
            reply
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    server.resume().expect("resume");
    let reply = pauser.join().expect("pauser thread");
    assert_eq!(reply, b"desuap");

    // Drain: the worker flushes and acks; the queue ends empty.
    let d = server.drain(Some(Duration::from_secs(10))).expect("drain");
    assert_eq!(d.acked, vec![1], "{d:?}");
    assert!(d.timed_out.is_empty(), "{d:?}");
    assert_eq!(d.residual, 0, "{d:?}");

    // Traffic flows again after the drain is resumed.
    server.resume().expect("resume after drain");
    assert_eq!(client.call(b"more").expect("post-drain call"), b"erom");
    client.close();

    let s = server
        .shutdown(Some(Duration::from_secs(10)))
        .expect("shutdown");
    assert_eq!(s.byes, vec![1], "{s:?}");
    assert!(s.stragglers.is_empty(), "{s:?}");
    let stats = worker.join().expect("worker thread");
    assert_eq!(stats.served, 3, "{stats:?}");

    assert_eq!(mpf.live_lnvcs(), 0, "service conversations all deleted");
    mpf.check_invariants().expect("invariants");
}

#[test]
fn many_clients_one_worker_dedupe_free() {
    const CLIENTS: usize = 6;
    const CALLS: u64 = 25;
    let mpf = Arc::new(Mpf::init(MpfConfig::new(32, 16)).expect("init"));
    let mut server = Server::new(Arc::new(thread_t(&mpf, 0)), "echo").expect("anchor");

    let worker = {
        let mpf = Arc::clone(&mpf);
        std::thread::spawn(move || {
            let t = thread_t(&mpf, 1);
            run_worker(&t, &WorkerCfg::new("echo", 9), |req| req.to_vec()).expect("worker")
        })
    };
    pump_until(&mut server, Duration::from_secs(10), |s| {
        s.worker_count() == 1
    });

    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let mpf = Arc::clone(&mpf);
            std::thread::spawn(move || {
                let t = Arc::new(thread_t(&mpf, 2 + c));
                let mut cl =
                    Client::connect(t, ClientCfg::new("echo", c as u32 + 1)).expect("connect");
                for i in 0..CALLS {
                    let msg = format!("c{c}-{i}");
                    assert_eq!(cl.call(msg.as_bytes()).expect("call"), msg.as_bytes());
                }
                let stats = cl.stats.clone();
                cl.close();
                stats
            })
        })
        .collect();

    let mut done = Vec::new();
    for h in clients {
        while !h.is_finished() {
            let _ = server.poll_acks(Some(Instant::now() + Duration::from_millis(5)));
        }
        done.push(h.join().expect("client thread"));
    }
    for st in &done {
        assert_eq!(st.ok, CALLS, "{st:?}");
        assert_eq!(st.timeouts, 0, "{st:?}");
        // Private reply queues + per-seq matching: nothing to de-dupe
        // when no worker died.
        assert_eq!(st.dup_replies, 0, "{st:?}");
        assert_eq!(st.latency().count, CALLS, "{st:?}");
    }

    let s = server
        .shutdown(Some(Duration::from_secs(10)))
        .expect("shutdown");
    assert!(s.stragglers.is_empty(), "{s:?}");
    let stats = worker.join().expect("worker thread");
    assert_eq!(stats.served, CLIENTS as u64 * CALLS, "{stats:?}");

    assert_eq!(mpf.live_lnvcs(), 0);
    mpf.check_invariants().expect("invariants");
}

#[test]
fn call_budget_bounds_a_workerless_call() {
    // A service with an anchored epoch but no workers: every attempt
    // times out, and with a generous attempt allowance the *total*
    // wall-clock budget is the bound that trips.
    let mpf = Arc::new(Mpf::init(MpfConfig::new(32, 16)).expect("init"));
    let _server = Server::new(Arc::new(thread_t(&mpf, 0)), "stall").expect("anchor");

    let mut cfg = ClientCfg::new("stall", 1);
    cfg.attempt = Duration::from_millis(30);
    cfg.max_attempts = 1000;
    cfg.call_budget = Duration::from_millis(150);
    let t = Arc::new(thread_t(&mpf, 1));
    let mut client = Client::connect(t, cfg).expect("connect");

    let start = Instant::now();
    let err = client.call(b"anyone there?").unwrap_err();
    assert!(
        matches!(err, mpf_serve::ServeError::DeadlineExceeded),
        "{err:?}"
    );
    let elapsed = start.elapsed();
    assert!(
        elapsed >= Duration::from_millis(150),
        "budget honored: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(20),
        "budget trips long before 1000 attempts could: {elapsed:?}"
    );
    assert_eq!(client.stats.deadline_exceeded, 1);
    assert_eq!(client.stats.ok, 0);
}

#[test]
fn supervise_until_returns_at_deadline_or_stop() {
    use std::sync::atomic::{AtomicBool, Ordering};

    let mpf = Arc::new(Mpf::init(MpfConfig::new(32, 16)).expect("init"));
    let mut server = Server::new(Arc::new(thread_t(&mpf, 0)), "idle").expect("anchor");

    // Deadline path: a healthy, workerless service supervises quietly
    // until the clock runs out — no epoch bumps, no unbounded block.
    let start = Instant::now();
    let bumps = server
        .supervise_until(start + Duration::from_millis(150), None)
        .expect("supervise");
    assert_eq!(bumps, 0);
    let elapsed = start.elapsed();
    assert!(elapsed >= Duration::from_millis(150), "{elapsed:?}");
    assert!(elapsed < Duration::from_secs(20), "{elapsed:?}");

    // Stop path: a pre-raised flag returns before any waiting happens.
    let stop = AtomicBool::new(true);
    let start = Instant::now();
    let bumps = server
        .supervise_until(start + Duration::from_secs(60), Some(&stop))
        .expect("supervise");
    assert_eq!(bumps, 0);
    assert!(start.elapsed() < Duration::from_secs(5));
    assert!(stop.load(Ordering::Acquire));
}
