//! Batched-submission vocabulary shared by both backends.
//!
//! The batch layer (DESIGN.md "aio") reuses the primitives' data path but
//! moves the per-message lock/notify traffic off it: a submitter stages
//! send descriptors in its process's submission ring
//! ([`mpf_shm::ring::AioRing`]) and rings one doorbell; the drain step
//! completes the whole run under a single descriptor-lock hold and a
//! single receiver wake, pushing one [`AioCompletion`] per descriptor into
//! the completion ring.  These are the plain-value types callers see;
//! the rings themselves live in `mpf-shm` (and, for the multi-process
//! backend, in the shared region segments `"aio sq rings"` /
//! `"aio cq rings"`).

/// One reaped completion-queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AioCompletion {
    /// The submitter's token: for `submit_sends`/`send_batch`, the index
    /// of the payload within the submitted batch.
    pub user_data: u64,
    /// Causal trace id the send carried (0 = untraced), so async callers
    /// can continue the chain without touching the descriptor again.
    pub trace: u64,
    /// The conversation, as the raw id (`LnvcId::as_i32` encoding for the
    /// thread backend, the LNVC descriptor index for the multi-process
    /// backend).
    pub lnvc: u32,
    /// Payload length of the completed send.
    pub len: u32,
    /// 0 on success, else the `MpfError::status_code` of the failure.
    pub status: i32,
}

impl AioCompletion {
    /// Whether the submission completed successfully.
    pub fn ok(&self) -> bool {
        self.status == 0
    }
}

/// Point-in-time counters of one process's submission/completion ring
/// pair (also surfaced by the region inspector and `mpfstat`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AioStats {
    /// Descriptors currently staged in the submission ring.
    pub sq_depth: usize,
    /// Completions currently waiting to be reaped.
    pub cq_depth: usize,
    /// Submission-ring doorbell rings (batches, not descriptors).
    pub sq_doorbells: u64,
    /// Completion-ring doorbell rings.
    pub cq_doorbells: u64,
    /// Descriptors ever submitted.
    pub submitted: u64,
    /// Descriptors ever drained out of the submission ring.
    pub drained: u64,
    /// Completions ever pushed.
    pub completed: u64,
    /// Completions ever reaped by the submitter.
    pub reaped: u64,
}

impl AioStats {
    /// Builds the snapshot from a ring pair.
    pub fn from_rings(sq: &mpf_shm::ring::AioRing, cq: &mpf_shm::ring::AioRing) -> Self {
        Self {
            sq_depth: sq.depth(),
            cq_depth: cq.depth(),
            sq_doorbells: sq.doorbell_count(),
            cq_doorbells: cq.doorbell_count(),
            submitted: sq.total_enqueued(),
            drained: sq.total_dequeued(),
            completed: cq.total_enqueued(),
            reaped: cq.total_dequeued(),
        }
    }
}
