//! Event tracing for MPF programs.
//!
//! The paper's evaluation ("Detailed measurements show that, for large
//! messages, LNVC updates are of negligible cost.  Instead, message
//! copying costs dominate") required exactly this kind of instrumentation.
//! When enabled ([`crate::MpfConfig::with_tracing`]), the facility records
//! a timestamped event for every primitive: opens, closes, sends,
//! receives (including how long a receiver blocked), and checks.
//!
//! [`TraceLog::summary`] reduces a trace to the paper-style quantities:
//! per-conversation message counts and bytes, send/receive rates, and
//! message *queueing latency* (send completion → matching receive
//! completion, matched through the LNVC sequence stamp).
//!
//! Traces are also the input to `mpf-sim`'s trace replay, which re-prices
//! a natively recorded run on the Balance 21000 model.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use std::sync::Mutex;

/// What happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// `open_send` succeeded.
    OpenSend,
    /// `open_receive` succeeded.
    OpenRecv,
    /// `close_send` succeeded.
    CloseSend,
    /// `close_receive` succeeded.
    CloseRecv,
    /// `message_send` completed; `stamp` identifies the message.
    Send,
    /// A receive completed; `stamp` identifies the message.
    Recv,
    /// A receiver went to sleep waiting for a message.
    RecvBlocked,
    /// `check_receive` executed.
    Check,
}

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since facility initialization.
    pub at_ns: u64,
    /// Raw process id of the caller.
    pub pid: u32,
    /// Event kind.
    pub kind: EventKind,
    /// LNVC slot index the event concerns.
    pub lnvc: u32,
    /// Payload bytes (sends/receives) or zero.
    pub len: u32,
    /// LNVC sequence stamp for `Send`/`Recv` (matches a send to its
    /// receives); `u64::MAX` otherwise.
    pub stamp: u64,
}

/// The facility-side recorder: a bounded, mutex-protected event buffer.
/// Tracing is off the hot path unless enabled, and even then one
/// uncontended lock per primitive is comparable to the LNVC lock itself.
#[derive(Debug)]
pub struct Tracer {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl Tracer {
    /// A tracer retaining at most `capacity` events (drops the rest).
    pub fn new(capacity: usize) -> Self {
        Self {
            epoch: Instant::now(),
            events: Mutex::new(Vec::with_capacity(capacity.min(1 << 20))),
            capacity,
            dropped: AtomicU64::new(0),
        }
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Records one event (drops it if the buffer is full).
    pub fn record(&self, pid: u32, kind: EventKind, lnvc: u32, len: usize, stamp: u64) {
        let ev = TraceEvent {
            at_ns: self.now_ns(),
            pid,
            kind,
            lnvc,
            len: len as u32,
            stamp,
        };
        let mut events = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if events.len() < self.capacity {
            events.push(ev);
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Takes the recorded events (sorted by time) as an immutable log.
    pub fn take_log(&self) -> TraceLog {
        let mut events =
            std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()));
        events.sort_by_key(|e| e.at_ns);
        TraceLog { events }
    }
}

/// An immutable, time-sorted trace.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    /// Events in time order.
    pub events: Vec<TraceEvent>,
}

/// Paper-style reduction of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Wall-clock span of the trace in nanoseconds.
    pub span_ns: u64,
    /// `message_send` count.
    pub sends: u64,
    /// Receive count (each broadcast delivery counts).
    pub receives: u64,
    /// Bytes through `message_send`.
    pub bytes_sent: u64,
    /// Bytes delivered.
    pub bytes_received: u64,
    /// Times any receiver blocked.
    pub recv_blocks: u64,
    /// Sent-side throughput over the span, bytes/second.
    pub send_throughput: f64,
    /// Mean send→receive latency over matched (lnvc, stamp) pairs, ns.
    pub mean_latency_ns: f64,
    /// Maximum matched latency, ns.
    pub max_latency_ns: u64,
    /// Matched (send, receive) pairs used for the latency figures.
    pub matched: u64,
}

impl TraceLog {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one process, in time order.
    pub fn for_pid(&self, pid: u32) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// Reduces the trace to summary statistics.
    pub fn summary(&self) -> TraceSummary {
        use std::collections::HashMap;
        let mut sends = 0u64;
        let mut receives = 0u64;
        let mut bytes_sent = 0u64;
        let mut bytes_received = 0u64;
        let mut recv_blocks = 0u64;
        let mut send_at: HashMap<(u32, u64), u64> = HashMap::new();
        let mut latency_sum = 0u128;
        let mut latency_max = 0u64;
        let mut matched = 0u64;
        for e in &self.events {
            match e.kind {
                EventKind::Send => {
                    sends += 1;
                    bytes_sent += e.len as u64;
                    send_at.insert((e.lnvc, e.stamp), e.at_ns);
                }
                EventKind::Recv => {
                    receives += 1;
                    bytes_received += e.len as u64;
                    if let Some(&t0) = send_at.get(&(e.lnvc, e.stamp)) {
                        let lat = e.at_ns.saturating_sub(t0);
                        latency_sum += lat as u128;
                        latency_max = latency_max.max(lat);
                        matched += 1;
                    }
                }
                EventKind::RecvBlocked => recv_blocks += 1,
                _ => {}
            }
        }
        let span_ns = match (self.events.first(), self.events.last()) {
            (Some(a), Some(b)) => b.at_ns - a.at_ns,
            _ => 0,
        };
        TraceSummary {
            span_ns,
            sends,
            receives,
            bytes_sent,
            bytes_received,
            recv_blocks,
            send_throughput: if span_ns == 0 {
                0.0
            } else {
                bytes_sent as f64 / (span_ns as f64 / 1e9)
            },
            mean_latency_ns: if matched == 0 {
                0.0
            } else {
                latency_sum as f64 / matched as f64
            },
            max_latency_ns: latency_max,
            matched,
        }
    }
}

/// Stamp value used for events that do not identify a message.
pub const NO_STAMP: u64 = u64::MAX;

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, pid: u32, kind: EventKind, lnvc: u32, len: u32, stamp: u64) -> TraceEvent {
        TraceEvent {
            at_ns,
            pid,
            kind,
            lnvc,
            len,
            stamp,
        }
    }

    #[test]
    fn tracer_records_and_takes_sorted() {
        let t = Tracer::new(16);
        t.record(1, EventKind::Send, 0, 100, 0);
        t.record(2, EventKind::Recv, 0, 100, 0);
        let log = t.take_log();
        assert_eq!(log.len(), 2);
        assert!(log.events[0].at_ns <= log.events[1].at_ns);
        assert!(t.take_log().is_empty(), "take drains");
    }

    #[test]
    fn capacity_bound_drops_and_counts() {
        let t = Tracer::new(2);
        for _ in 0..5 {
            t.record(1, EventKind::Check, 0, 0, NO_STAMP);
        }
        assert_eq!(t.take_log().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn summary_matches_send_recv_pairs() {
        let log = TraceLog {
            events: vec![
                ev(0, 1, EventKind::Send, 7, 50, 0),
                ev(1_000, 2, EventKind::Recv, 7, 50, 0),
                ev(2_000, 1, EventKind::Send, 7, 30, 1),
                ev(2_500, 2, EventKind::RecvBlocked, 7, 0, NO_STAMP),
                ev(5_000, 2, EventKind::Recv, 7, 30, 1),
            ],
        };
        let s = log.summary();
        assert_eq!(s.sends, 2);
        assert_eq!(s.receives, 2);
        assert_eq!(s.bytes_sent, 80);
        assert_eq!(s.recv_blocks, 1);
        assert_eq!(s.matched, 2);
        assert_eq!(s.max_latency_ns, 3_000);
        assert!((s.mean_latency_ns - 2_000.0).abs() < 1e-9);
        assert_eq!(s.span_ns, 5_000);
    }

    #[test]
    fn summary_of_empty_log() {
        let s = TraceLog::default().summary();
        assert_eq!(s.sends, 0);
        assert_eq!(s.send_throughput, 0.0);
        assert_eq!(s.mean_latency_ns, 0.0);
    }

    #[test]
    fn for_pid_filters() {
        let log = TraceLog {
            events: vec![
                ev(0, 1, EventKind::Send, 0, 1, 0),
                ev(1, 2, EventKind::Recv, 0, 1, 0),
                ev(2, 1, EventKind::Send, 0, 1, 1),
            ],
        };
        assert_eq!(log.for_pid(1).count(), 2);
        assert_eq!(log.for_pid(2).count(), 1);
        assert_eq!(log.for_pid(3).count(), 0);
    }
}
