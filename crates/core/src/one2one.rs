//! One-to-one, lock-free message passing — the paper's second §5 variant.
//!
//! "Furthermore, if only one-to-one communication is implemented, all
//! locking associated with message handling is removed."
//!
//! [`one2one`] builds a bounded single-producer/single-consumer byte ring:
//! variable-length messages are framed (4-byte little-endian length +
//! payload) into a power-of-two circular buffer; the producer owns the
//! tail, the consumer owns the head, and the only synchronization is one
//! release/acquire pair per side.  Exclusive roles are enforced at compile
//! time: the halves are separate types whose transfer methods take
//! `&mut self`.
//!
//! Ablation bench A5 compares this against a two-party FCFS LNVC.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpf_shm::backoff::Backoff;
use mpf_shm::hooks::{self, SyncEvent};
use mpf_shm::pad::CachePadded;

use crate::error::{MpfError, Result};

const FRAME_HEADER: usize = 4;

#[derive(Debug)]
struct Ring {
    buf: Box<[UnsafeCell<u8>]>,
    mask: usize,
    /// Consumer cursor (bytes consumed since creation).
    head: CachePadded<AtomicUsize>,
    /// Producer cursor (bytes produced since creation).
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: producer writes only `buf[head..tail+new)`, consumer reads only
// `buf[head..tail)`; the release/acquire pair on `tail` (resp. `head`)
// transfers ownership of the byte ranges between the two roles.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// Two-segment copy in: logical position `pos` may wrap.
    unsafe fn write(&self, pos: usize, src: &[u8]) {
        let cap = self.buf.len();
        let start = pos & self.mask;
        let first = src.len().min(cap - start);
        let base = self.buf.as_ptr() as *mut u8;
        std::ptr::copy_nonoverlapping(src.as_ptr(), base.add(start), first);
        if first < src.len() {
            std::ptr::copy_nonoverlapping(src.as_ptr().add(first), base, src.len() - first);
        }
    }

    /// Two-segment copy out.
    unsafe fn read(&self, pos: usize, dst: &mut [u8]) {
        let cap = self.buf.len();
        let start = pos & self.mask;
        let first = dst.len().min(cap - start);
        let base = self.buf.as_ptr() as *const u8;
        std::ptr::copy_nonoverlapping(base.add(start), dst.as_mut_ptr(), first);
        if first < dst.len() {
            std::ptr::copy_nonoverlapping(base, dst.as_mut_ptr().add(first), dst.len() - first);
        }
    }
}

/// Producer half of a one-to-one channel.
#[derive(Debug)]
pub struct O2OSender {
    ring: Arc<Ring>,
}

/// Consumer half of a one-to-one channel.
#[derive(Debug)]
pub struct O2OReceiver {
    ring: Arc<Ring>,
}

/// Creates a one-to-one channel with at least `capacity` bytes of buffer
/// (rounded up to a power of two; messages occupy `len + 4` bytes each).
///
/// ```
/// let (mut tx, mut rx) = mpf::one2one::one2one(256);
/// tx.send(b"no locks were taken").unwrap();
/// let mut buf = [0u8; 32];
/// let n = rx.recv(&mut buf).unwrap();
/// assert_eq!(&buf[..n], b"no locks were taken");
/// ```
pub fn one2one(capacity: usize) -> (O2OSender, O2OReceiver) {
    let cap = capacity.max(FRAME_HEADER + 1).next_power_of_two();
    let ring = Arc::new(Ring {
        buf: (0..cap).map(|_| UnsafeCell::new(0)).collect(),
        mask: cap - 1,
        head: CachePadded::new(AtomicUsize::new(0)),
        tail: CachePadded::new(AtomicUsize::new(0)),
    });
    (
        O2OSender {
            ring: Arc::clone(&ring),
        },
        O2OReceiver { ring },
    )
}

impl O2OSender {
    /// Largest single message this channel can carry.
    pub fn max_message(&self) -> usize {
        self.ring.buf.len() - FRAME_HEADER
    }

    /// True if the consumer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Attempts to enqueue `buf`; `Ok(false)` when the ring is full.
    pub fn try_send(&mut self, buf: &[u8]) -> Result<bool> {
        let need = FRAME_HEADER + buf.len();
        let ring = &*self.ring;
        if need > ring.buf.len() {
            return Err(MpfError::MessageTooLarge {
                len: buf.len(),
                max: self.max_message(),
            });
        }
        // Schedule-exploration seam: the only racy step on this side is
        // the cursor handshake, so one decision point before it lets the
        // harness permute producer and consumer at message granularity.
        hooks::yield_point(SyncEvent::StackPush(&ring.tail as *const _ as usize));
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if ring.buf.len() - (tail - head) < need {
            return Ok(false);
        }
        let header = (buf.len() as u32).to_le_bytes();
        // SAFETY: `[tail, tail+need)` is unpublished space owned by the
        // producer (checked against `head` above).
        unsafe {
            ring.write(tail, &header);
            ring.write(tail + FRAME_HEADER, buf);
        }
        ring.tail.store(tail + need, Ordering::Release);
        hooks::notify(&ring.tail as *const _ as usize);
        Ok(true)
    }

    /// Enqueues `buf`, spinning (with backoff) while the ring is full.
    pub fn send(&mut self, buf: &[u8]) -> Result<()> {
        let mut backoff = Backoff::new();
        while !self.try_send(buf)? {
            let ring = Arc::clone(&self.ring);
            let need = FRAME_HEADER + buf.len();
            // Under the harness, park until the consumer frees enough
            // space instead of spinning through the decision budget.
            if !hooks::wait(&ring.head as *const _ as usize, &mut || {
                let tail = ring.tail.load(Ordering::Relaxed);
                let head = ring.head.load(Ordering::Acquire);
                ring.buf.len() - (tail - head) >= need
            }) {
                backoff.snooze();
            }
        }
        Ok(())
    }
}

impl O2OReceiver {
    /// True if the producer half has been dropped.
    pub fn is_disconnected(&self) -> bool {
        Arc::strong_count(&self.ring) == 1
    }

    /// Length of the next queued message, or `None` if empty.
    pub fn peek_len(&self) -> Option<usize> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let mut header = [0u8; FRAME_HEADER];
        // SAFETY: `[head, tail)` is published, consumer-owned data.
        unsafe { ring.read(head, &mut header) };
        Some(u32::from_le_bytes(header) as usize)
    }

    /// Attempts to dequeue into `buf`; `Ok(None)` when empty.
    pub fn try_recv(&mut self, buf: &mut [u8]) -> Result<Option<usize>> {
        // Mirror of the producer's yield point (see `try_send`).
        hooks::yield_point(SyncEvent::StackPop(&self.ring.head as *const _ as usize));
        let Some(len) = self.peek_len() else {
            return Ok(None);
        };
        if buf.len() < len {
            return Err(MpfError::BufferTooSmall { needed: len });
        }
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        // SAFETY: published region; we are the only consumer.
        unsafe { ring.read(head + FRAME_HEADER, &mut buf[..len]) };
        ring.head
            .store(head + FRAME_HEADER + len, Ordering::Release);
        hooks::notify(&ring.head as *const _ as usize);
        Ok(Some(len))
    }

    /// Dequeues into `buf`, spinning (with backoff) while empty.
    pub fn recv(&mut self, buf: &mut [u8]) -> Result<usize> {
        let mut backoff = Backoff::new();
        loop {
            if let Some(n) = self.try_recv(buf)? {
                return Ok(n);
            }
            let ring = Arc::clone(&self.ring);
            // Hooked wait: parked until the producer publishes a frame.
            if !hooks::wait(&ring.tail as *const _ as usize, &mut || {
                let head = ring.head.load(Ordering::Relaxed);
                ring.tail.load(Ordering::Acquire) != head
            }) {
                backoff.snooze();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_sizes() {
        let (mut tx, mut rx) = one2one(256);
        let mut buf = [0u8; 128];
        for len in [0usize, 1, 3, 60, 120] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            tx.send(&msg).unwrap();
            let n = rx.recv(&mut buf).unwrap();
            assert_eq!(&buf[..n], &msg[..], "len {len}");
        }
    }

    #[test]
    fn fifo_order_and_wraparound() {
        let (mut tx, mut rx) = one2one(64);
        let mut buf = [0u8; 32];
        // Many small messages force the cursors to wrap repeatedly.
        for i in 0..1000u32 {
            tx.send(&i.to_le_bytes()).unwrap();
            let n = rx.recv(&mut buf).unwrap();
            assert_eq!(u32::from_le_bytes(buf[..n].try_into().unwrap()), i);
        }
    }

    #[test]
    fn try_send_full_try_recv_empty() {
        let (mut tx, mut rx) = one2one(16);
        let mut buf = [0u8; 16];
        assert_eq!(rx.try_recv(&mut buf).unwrap(), None);
        assert!(tx.try_send(&[1u8; 8]).unwrap()); // 12 of 16 bytes
        assert!(!tx.try_send(&[2u8; 8]).unwrap(), "ring full");
        assert_eq!(rx.try_recv(&mut buf).unwrap(), Some(8));
        assert!(tx.try_send(&[2u8; 8]).unwrap());
    }

    #[test]
    fn oversized_message_rejected() {
        let (mut tx, _rx) = one2one(16);
        assert!(matches!(
            tx.try_send(&[0u8; 100]).unwrap_err(),
            MpfError::MessageTooLarge { .. }
        ));
    }

    #[test]
    fn buffer_too_small_leaves_message() {
        let (mut tx, mut rx) = one2one(64);
        tx.send(&[7u8; 10]).unwrap();
        let mut tiny = [0u8; 4];
        assert_eq!(
            rx.try_recv(&mut tiny).unwrap_err(),
            MpfError::BufferTooSmall { needed: 10 }
        );
        assert_eq!(rx.peek_len(), Some(10), "message still queued");
        let mut big = [0u8; 16];
        assert_eq!(rx.recv(&mut big).unwrap(), 10);
    }

    #[test]
    fn disconnection_is_observable() {
        let (tx, rx) = one2one(16);
        assert!(!tx.is_disconnected());
        drop(rx);
        assert!(tx.is_disconnected());
        drop(tx);
        let (tx2, rx2) = one2one(16);
        drop(tx2);
        assert!(rx2.is_disconnected());
    }

    #[test]
    fn cross_thread_stream_integrity() {
        const N: u32 = 50_000;
        let (mut tx, mut rx) = one2one(1024);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..N {
                    let payload = [i.to_le_bytes(), (i ^ 0xDEAD_BEEF).to_le_bytes()].concat();
                    tx.send(&payload).unwrap();
                }
            });
            let mut buf = [0u8; 8];
            for i in 0..N {
                let n = rx.recv(&mut buf).unwrap();
                assert_eq!(n, 8);
                let a = u32::from_le_bytes(buf[..4].try_into().unwrap());
                let b = u32::from_le_bytes(buf[4..].try_into().unwrap());
                assert_eq!(a, i, "messages must arrive in order");
                assert_eq!(b, i ^ 0xDEAD_BEEF, "payload integrity");
            }
        });
    }
}
