//! `extern "C"` bindings — the paper's interface as an actual C ABI.
//!
//! "The message passing primitives for this model are implemented as a
//! portable library of C function calls."  [`crate::capi`] reproduces the
//! *shape* of that interface for Rust callers; this module exports it
//! with C linkage so a 1987-style C program can link against the crate
//! (`crate-type = "staticlib"` downstream) and call:
//!
//! ```c
//! int id = mpf_open_send(pid, "pipe");
//! mpf_message_send(pid, id, buf, len);
//! n = mpf_message_receive(pid, id, buf, cap);
//! ```
//!
//! All functions return the same status codes as [`crate::capi`].

use std::ffi::CStr;
use std::os::raw::{c_char, c_int};

use crate::capi;
use crate::error::MpfError;

/// Converts a C string to `&str`, mapping NULL/invalid UTF-8 to the
/// invalid-name status.
///
/// # Safety
/// `name` must be NULL or a valid NUL-terminated string.
unsafe fn name_arg<'a>(name: *const c_char) -> Result<&'a str, c_int> {
    if name.is_null() {
        return Err(MpfError::InvalidName { len: 0, max: 0 }.status_code());
    }
    CStr::from_ptr(name)
        .to_str()
        .map_err(|_| MpfError::InvalidName { len: 0, max: 0 }.status_code())
}

/// C ABI `init(maxLNVC's, max_processes)`.
#[no_mangle]
pub extern "C" fn mpf_init(max_lnvcs: c_int, max_processes: c_int) -> c_int {
    capi::init(max_lnvcs, max_processes)
}

/// C ABI shutdown (test support; not in the 1987 interface).
#[no_mangle]
pub extern "C" fn mpf_shutdown() -> c_int {
    capi::shutdown()
}

/// C ABI `open_send(process_id, lnvc_name)`.
///
/// # Safety
/// `lnvc_name` must be NULL or a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_open_send(process_id: c_int, lnvc_name: *const c_char) -> c_int {
    match name_arg(lnvc_name) {
        Ok(name) => capi::open_send(process_id, name),
        Err(code) => code,
    }
}

/// C ABI `open_receive(process_id, lnvc_name, protocol)`; `protocol` is
/// `0` (FCFS) or `1` (BROADCAST).
///
/// # Safety
/// `lnvc_name` must be NULL or a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_open_receive(
    process_id: c_int,
    lnvc_name: *const c_char,
    protocol: c_int,
) -> c_int {
    match name_arg(lnvc_name) {
        Ok(name) => capi::open_receive(process_id, name, protocol),
        Err(code) => code,
    }
}

/// C ABI `close_send(process_id, lnvc_id)`.
#[no_mangle]
pub extern "C" fn mpf_close_send(process_id: c_int, lnvc_id: c_int) -> c_int {
    capi::close_send(process_id, lnvc_id)
}

/// C ABI `close_receive(process_id, lnvc_id)`.
#[no_mangle]
pub extern "C" fn mpf_close_receive(process_id: c_int, lnvc_id: c_int) -> c_int {
    capi::close_receive(process_id, lnvc_id)
}

/// C ABI `message_send(process_id, lnvc_id, send_buffer, buffer_length)`.
///
/// # Safety
/// `send_buffer` must point to at least `buffer_length` readable bytes
/// (or be NULL with `buffer_length == 0`).
#[no_mangle]
pub unsafe extern "C" fn mpf_message_send(
    process_id: c_int,
    lnvc_id: c_int,
    send_buffer: *const u8,
    buffer_length: c_int,
) -> c_int {
    if buffer_length < 0 || (send_buffer.is_null() && buffer_length != 0) {
        return MpfError::BufferTooSmall { needed: 0 }.status_code();
    }
    let buf = if buffer_length == 0 {
        &[][..]
    } else {
        std::slice::from_raw_parts(send_buffer, buffer_length as usize)
    };
    capi::message_send(process_id, lnvc_id, buf)
}

/// C ABI `message_receive(process_id, lnvc_id, receive_buffer,
/// buffer_length)` — blocking; returns bytes transferred or a negative
/// status.
///
/// # Safety
/// `receive_buffer` must point to at least `buffer_length` writable bytes
/// (or be NULL with `buffer_length == 0`).
#[no_mangle]
pub unsafe extern "C" fn mpf_message_receive(
    process_id: c_int,
    lnvc_id: c_int,
    receive_buffer: *mut u8,
    buffer_length: c_int,
) -> c_int {
    if buffer_length < 0 || (receive_buffer.is_null() && buffer_length != 0) {
        return MpfError::BufferTooSmall { needed: 0 }.status_code();
    }
    let buf = if buffer_length == 0 {
        &mut [][..]
    } else {
        std::slice::from_raw_parts_mut(receive_buffer, buffer_length as usize)
    };
    capi::message_receive(process_id, lnvc_id, buf)
}

/// C ABI `check_receive(process_id, lnvc_id)` — non-zero means a message
/// is present (advisory for FCFS); negative on error.
#[no_mangle]
pub extern "C" fn mpf_check_receive(process_id: c_int, lnvc_id: c_int) -> c_int {
    capi::check_receive(process_id, lnvc_id)
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test: the global C facility is process-wide state (see capi).
    #[test]
    fn ffi_surface_end_to_end() {
        let _serial = crate::capi::CAPI_TEST_LOCK.lock().expect("capi test lock");
        let name = c"ffi:pipe";
        unsafe {
            // Use before init fails.
            assert!(mpf_open_send(1, name.as_ptr()) < 0);
            assert_eq!(mpf_init(8, 4), 0);

            let tx = mpf_open_send(1, name.as_ptr());
            assert!(tx >= 0);
            let rx = mpf_open_receive(2, name.as_ptr(), 0);
            assert_eq!(tx, rx);

            let payload = b"over the C ABI";
            assert_eq!(
                mpf_message_send(1, tx, payload.as_ptr(), payload.len() as c_int),
                0
            );
            assert_eq!(mpf_check_receive(2, rx), 1);

            let mut buf = [0u8; 64];
            let n = mpf_message_receive(2, rx, buf.as_mut_ptr(), buf.len() as c_int);
            assert_eq!(n as usize, payload.len());
            assert_eq!(&buf[..n as usize], payload);

            // NULL / invalid arguments fail softly.
            assert!(mpf_open_send(1, std::ptr::null()) < 0);
            assert!(mpf_message_send(1, tx, std::ptr::null(), 4) < 0);
            assert!(mpf_message_receive(2, rx, std::ptr::null_mut(), 4) < 0);
            // Zero-length send/receive with NULL buffers is legal.
            assert_eq!(mpf_message_send(1, tx, std::ptr::null(), 0), 0);
            let n = mpf_message_receive(2, rx, std::ptr::null_mut(), 0);
            assert_eq!(n, 0);

            assert_eq!(mpf_close_send(1, tx), 0);
            assert_eq!(mpf_close_receive(2, rx), 0);
            assert_eq!(mpf_shutdown(), 0);
        }
    }
}
