//! Synchronous (rendezvous) message passing — the paper's first §5 variant.
//!
//! "For instance, to support synchronous message passing, copying of data
//! from a sending buffer to a linked message buffer and then to the
//! receiving buffer is unnecessary; direct data transfer is possible."
//!
//! A [`Rendezvous`] performs exactly that: the sender publishes the address
//! of its own buffer and blocks; a receiver copies **sender buffer →
//! receiver buffer** in one step and releases the sender.  No message
//! blocks, no headers, one copy instead of two.  The ablation bench A4
//! quantifies the §5 claim against the general asynchronous LNVC path.
//!
//! Any number of senders and receivers may share one rendezvous; offers are
//! serialized (one outstanding offer at a time), and each message pairs one
//! sender with one receiver — the synchronous analogue of an FCFS LNVC.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use mpf_shm::lock::{LockKind, ShmLock};
use mpf_shm::waitq::{WaitQueue, WaitStrategy};

use crate::error::{MpfError, Result};

const EMPTY: u8 = 0;
const OFFER: u8 = 1;

/// A synchronous exchange point.
///
/// ```
/// use mpf::sync_channel::Rendezvous;
/// let r = Rendezvous::default();
/// std::thread::scope(|s| {
///     s.spawn(|| r.send(b"single copy"));
///     let mut buf = [0u8; 16];
///     let n = r.recv(&mut buf).unwrap();
///     assert_eq!(&buf[..n], b"single copy");
/// });
/// ```
#[derive(Debug)]
pub struct Rendezvous {
    lock: ShmLock,
    /// `EMPTY` or `OFFER`.
    state: AtomicU8,
    /// Address of the offering sender's buffer (valid only in `OFFER`;
    /// the sender's borrow outlives the offer because it blocks in
    /// [`Rendezvous::send`] until released).
    offer_addr: AtomicUsize,
    /// Length of the offered payload.
    offer_len: AtomicUsize,
    /// Token of the current offer (monotonic, assigned under the lock).
    offer_token: AtomicU64,
    /// Tokens issued so far.
    next_token: AtomicU64,
    /// Highest token whose copy has completed.
    completed: AtomicU64,
    /// Senders waiting for `EMPTY` or for their offer to complete.
    senders: WaitQueue,
    /// Receivers waiting for an offer.
    receivers: WaitQueue,
    strategy: WaitStrategy,
}

impl Default for Rendezvous {
    fn default() -> Self {
        Self::new(LockKind::Spin, WaitStrategy::Yield)
    }
}

impl Rendezvous {
    /// Creates an exchange point.
    pub fn new(lock_kind: LockKind, strategy: WaitStrategy) -> Self {
        Self {
            lock: ShmLock::new(lock_kind),
            state: AtomicU8::new(EMPTY),
            offer_addr: AtomicUsize::new(0),
            offer_len: AtomicUsize::new(0),
            offer_token: AtomicU64::new(0),
            next_token: AtomicU64::new(1),
            completed: AtomicU64::new(0),
            senders: WaitQueue::new(),
            receivers: WaitQueue::new(),
            strategy,
        }
    }

    /// Synchronously sends `buf`: blocks until a receiver has copied it.
    pub fn send(&self, buf: &[u8]) {
        // Phase 1: claim the offer slot.
        let token = loop {
            let ticket = self.senders.ticket();
            {
                let _g = self.lock.lock();
                if self.state.load(Ordering::Relaxed) == EMPTY {
                    let token = self.next_token.fetch_add(1, Ordering::Relaxed);
                    self.offer_addr
                        .store(buf.as_ptr() as usize, Ordering::Relaxed);
                    self.offer_len.store(buf.len(), Ordering::Relaxed);
                    self.offer_token.store(token, Ordering::Relaxed);
                    self.state.store(OFFER, Ordering::Relaxed);
                    break token;
                }
            }
            self.senders.wait(ticket, self.strategy);
        };
        self.receivers.notify_all();
        // Phase 2: block until the rendezvous completes.  `completed` is
        // monotonic, so a later offer can never mask ours.
        loop {
            let ticket = self.senders.ticket();
            if self.completed.load(Ordering::Acquire) >= token {
                return;
            }
            self.senders.wait(ticket, self.strategy);
        }
    }

    /// Synchronously receives into `buf`; blocks for a sender.  Returns
    /// bytes transferred.  [`MpfError::BufferTooSmall`] leaves the offer
    /// standing.
    pub fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        loop {
            let ticket = self.receivers.ticket();
            {
                let _g = self.lock.lock();
                if self.state.load(Ordering::Relaxed) == OFFER {
                    let len = self.offer_len.load(Ordering::Relaxed);
                    if buf.len() < len {
                        return Err(MpfError::BufferTooSmall { needed: len });
                    }
                    let addr = self.offer_addr.load(Ordering::Relaxed) as *const u8;
                    // SAFETY: the offering sender blocks in `send` until we
                    // publish `completed` below, so its borrow is live, and
                    // the lock serializes all access to the offer fields.
                    unsafe {
                        std::ptr::copy_nonoverlapping(addr, buf.as_mut_ptr(), len);
                    }
                    let token = self.offer_token.load(Ordering::Relaxed);
                    self.state.store(EMPTY, Ordering::Relaxed);
                    self.completed.store(token, Ordering::Release);
                    drop(_g);
                    self.senders.notify_all();
                    return Ok(len);
                }
            }
            self.receivers.wait(ticket, self.strategy);
        }
    }

    /// Non-blocking probe: is a sender currently offering?
    pub fn check(&self) -> bool {
        self.state.load(Ordering::Relaxed) == OFFER
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn ping_pong() {
        let r = Rendezvous::default();
        thread::scope(|s| {
            s.spawn(|| r.send(b"synchronous hello"));
            let mut buf = [0u8; 32];
            let n = r.recv(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"synchronous hello");
        });
    }

    #[test]
    fn sender_blocks_until_received() {
        use std::sync::atomic::AtomicBool;
        let r = Rendezvous::default();
        let done = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                r.send(b"x");
                done.store(true, Ordering::SeqCst);
            });
            thread::sleep(std::time::Duration::from_millis(30));
            assert!(!done.load(Ordering::SeqCst), "synchronous send must block");
            let mut buf = [0u8; 1];
            r.recv(&mut buf).unwrap();
        });
        assert!(done.load(Ordering::SeqCst));
    }

    #[test]
    fn many_senders_one_receiver_delivers_all() {
        let r = Rendezvous::default();
        const SENDERS: usize = 4;
        const EACH: usize = 50;
        thread::scope(|s| {
            for t in 0..SENDERS as u8 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..EACH as u8 {
                        r.send(&[t, i]);
                    }
                });
            }
            let mut seen = std::collections::HashSet::new();
            let mut buf = [0u8; 2];
            for _ in 0..SENDERS * EACH {
                let n = r.recv(&mut buf).unwrap();
                assert_eq!(n, 2);
                assert!(seen.insert((buf[0], buf[1])), "duplicate delivery");
            }
            assert_eq!(seen.len(), SENDERS * EACH);
        });
    }

    #[test]
    fn too_small_buffer_leaves_offer() {
        let r = Rendezvous::default();
        thread::scope(|s| {
            s.spawn(|| r.send(b"four"));
            while !r.check() {
                std::hint::spin_loop();
            }
            let mut tiny = [0u8; 2];
            assert_eq!(
                r.recv(&mut tiny).unwrap_err(),
                MpfError::BufferTooSmall { needed: 4 }
            );
            let mut ok = [0u8; 8];
            assert_eq!(r.recv(&mut ok).unwrap(), 4);
        });
    }

    #[test]
    fn zero_length_rendezvous() {
        let r = Rendezvous::default();
        thread::scope(|s| {
            s.spawn(|| r.send(b""));
            let mut buf = [0u8; 0];
            assert_eq!(r.recv(&mut buf).unwrap(), 0);
        });
    }
}
