//! Message headers.
//!
//! §3.1: "Messages are composed of linked message blocks together with a
//! header for saving pertinent message information (e.g., message length, a
//! pointer to the tail, and a pointer to the next message in a list of
//! messages for an LNVC)."
//!
//! Our header additionally carries the delivery bookkeeping that realizes
//! the FCFS/BROADCAST semantics (DESIGN.md "MPF semantics"):
//!
//! * `bcast_pending` — broadcast receivers (at send time) that have not yet
//!   consumed this message;
//! * `needs_fcfs` / `fcfs_taken` — whether an FCFS delivery is owed and
//!   whether it has happened;
//! * `copying` — receivers currently copying the payload outside the LNVC
//!   lock (reclamation must not free blocks under them);
//! * `stamp` — per-LNVC send sequence number, giving tests a direct witness
//!   of the virtual circuit's time-ordering guarantee.
//!
//! All fields are accessed under the owning LNVC's lock (hence `Relaxed`),
//! except `copying`, which receivers decrement after an unlocked payload
//! copy and the reclaimer reads under the lock.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use mpf_shm::idxstack::NIL;

/// One message header slot in the shared region.
#[derive(Debug)]
pub struct MsgSlot {
    /// Payload length in bytes.
    len: AtomicU32,
    /// First block of the payload chain (`NIL` for empty payloads).
    head_block: AtomicU32,
    /// Number of blocks in the chain.
    blocks: AtomicU32,
    /// Next message in the LNVC FIFO.
    next: AtomicU32,
    /// Broadcast receivers still owed this message.
    bcast_pending: AtomicU32,
    /// Whether an FCFS delivery is owed.
    needs_fcfs: AtomicBool,
    /// Whether the FCFS delivery has happened.
    fcfs_taken: AtomicBool,
    /// Receivers copying the payload right now (blocks pinned).
    copying: AtomicU32,
    /// Per-LNVC send sequence number.
    stamp: AtomicU64,
    /// Wall-clock nanoseconds at send time (0 = unstamped), feeding the
    /// telemetry send→receive latency histogram.
    sent_at: AtomicU64,
    /// Causal trace id (0 = untraced; bit 63 = sampled flag).  Stamped at
    /// send, read at delivery to continue the chain.
    trace: AtomicU64,
    /// Hop count of the causal chain this message continues (0 = root).
    hop: AtomicU32,
}

impl Default for MsgSlot {
    fn default() -> Self {
        Self {
            len: AtomicU32::new(0),
            head_block: AtomicU32::new(NIL),
            blocks: AtomicU32::new(0),
            next: AtomicU32::new(NIL),
            bcast_pending: AtomicU32::new(0),
            needs_fcfs: AtomicBool::new(false),
            fcfs_taken: AtomicBool::new(false),
            copying: AtomicU32::new(0),
            stamp: AtomicU64::new(0),
            sent_at: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            hop: AtomicU32::new(0),
        }
    }
}

impl MsgSlot {
    /// Initializes a freshly allocated header for a new send.
    #[allow(clippy::too_many_arguments)]
    pub fn reset(
        &self,
        len: usize,
        head_block: u32,
        blocks: u32,
        bcast_pending: u32,
        needs_fcfs: bool,
        stamp: u64,
    ) {
        self.len.store(len as u32, Ordering::Relaxed);
        self.head_block.store(head_block, Ordering::Relaxed);
        self.blocks.store(blocks, Ordering::Relaxed);
        self.next.store(NIL, Ordering::Relaxed);
        self.bcast_pending.store(bcast_pending, Ordering::Relaxed);
        self.needs_fcfs.store(needs_fcfs, Ordering::Relaxed);
        self.fcfs_taken.store(false, Ordering::Relaxed);
        self.copying.store(0, Ordering::Relaxed);
        self.stamp.store(stamp, Ordering::Relaxed);
        self.sent_at.store(0, Ordering::Relaxed);
        self.trace.store(0, Ordering::Relaxed);
        self.hop.store(0, Ordering::Relaxed);
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed) as usize
    }

    /// True for zero-length payloads.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// First payload block index.
    pub fn head_block(&self) -> u32 {
        self.head_block.load(Ordering::Relaxed)
    }

    /// Payload chain length in blocks.
    pub fn blocks(&self) -> u32 {
        self.blocks.load(Ordering::Relaxed)
    }

    /// FIFO successor.
    pub fn next(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }

    /// Links `next` after this message.
    pub fn set_next(&self, next: u32) {
        self.next.store(next, Ordering::Relaxed);
    }

    /// Broadcast deliveries still owed.
    pub fn bcast_pending(&self) -> u32 {
        self.bcast_pending.load(Ordering::Relaxed)
    }

    /// Records one broadcast delivery (or a broadcast receiver closing
    /// unread — the paper's `close_receive` sweep).
    pub fn dec_bcast_pending(&self) {
        let prev = self.bcast_pending.fetch_sub(1, Ordering::Relaxed);
        debug_assert!(prev > 0, "bcast_pending underflow");
    }

    /// Whether an FCFS delivery is owed.
    pub fn needs_fcfs(&self) -> bool {
        self.needs_fcfs.load(Ordering::Relaxed)
    }

    /// Whether the owed FCFS delivery happened.
    pub fn fcfs_taken(&self) -> bool {
        self.fcfs_taken.load(Ordering::Relaxed)
    }

    /// Marks the FCFS delivery done.
    pub fn set_fcfs_taken(&self) {
        self.fcfs_taken.store(true, Ordering::Relaxed);
    }

    /// Drops an unmet FCFS obligation.  Used by the close/open-time
    /// re-evaluation sweeps (DESIGN.md "Obligation re-evaluation"): when the
    /// last FCFS receiver leaves while broadcast receivers keep the LNVC
    /// alive, queued messages waiting on a "future FCFS receiver" that can
    /// now never be owed one would pin pool memory forever.
    pub fn clear_needs_fcfs(&self) {
        self.needs_fcfs.store(false, Ordering::Relaxed);
    }

    /// Pins the payload for an out-of-lock copy.
    pub fn begin_copy(&self) {
        self.copying.fetch_add(1, Ordering::Relaxed);
    }

    /// Unpins after the copy.  Uses `Release` so the reclaimer's later
    /// `Acquire` read observes the copy as finished.
    pub fn end_copy(&self) {
        let prev = self.copying.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "copying underflow");
    }

    /// True while any receiver is copying the payload.
    pub fn is_pinned(&self) -> bool {
        self.copying.load(Ordering::Acquire) != 0
    }

    /// Send sequence number within the LNVC.
    pub fn stamp(&self) -> u64 {
        self.stamp.load(Ordering::Relaxed)
    }

    /// Stamps the send wall-clock time (telemetry; written under the LNVC
    /// lock before the message becomes visible to receivers).
    pub fn set_sent_at(&self, nanos: u64) {
        self.sent_at.store(nanos, Ordering::Relaxed);
    }

    /// Send wall-clock nanoseconds, 0 if telemetry was off at send time.
    pub fn sent_at(&self) -> u64 {
        self.sent_at.load(Ordering::Relaxed)
    }

    /// Stamps the causal trace id and hop (written under the LNVC lock
    /// before the message becomes visible to receivers).
    pub fn set_trace(&self, trace: u64, hop: u32) {
        self.trace.store(trace, Ordering::Relaxed);
        self.hop.store(hop, Ordering::Relaxed);
    }

    /// Causal trace id, 0 if the chain was not sampled.
    pub fn trace(&self) -> u64 {
        self.trace.load(Ordering::Relaxed)
    }

    /// Hop count within the causal chain (0 = root send).
    pub fn hop(&self) -> u32 {
        self.hop.load(Ordering::Relaxed)
    }

    /// A message is consumed — and its region memory reclaimable — once no
    /// broadcast deliveries are owed and the FCFS disposition is satisfied.
    pub fn fully_consumed(&self) -> bool {
        self.bcast_pending() == 0 && (!self.needs_fcfs() || self.fcfs_taken())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_initializes_all_delivery_state() {
        let m = MsgSlot::default();
        m.set_fcfs_taken();
        m.begin_copy();
        m.reset(100, 7, 10, 3, true, 42);
        assert_eq!(m.len(), 100);
        assert_eq!(m.head_block(), 7);
        assert_eq!(m.blocks(), 10);
        assert_eq!(m.next(), NIL);
        assert_eq!(m.bcast_pending(), 3);
        assert!(m.needs_fcfs());
        assert!(!m.fcfs_taken());
        assert!(!m.is_pinned());
        assert_eq!(m.stamp(), 42);
    }

    #[test]
    fn consumed_requires_both_dispositions() {
        let m = MsgSlot::default();
        m.reset(1, 0, 1, 2, true, 0);
        assert!(!m.fully_consumed());
        m.dec_bcast_pending();
        m.dec_bcast_pending();
        assert!(!m.fully_consumed(), "FCFS still owed");
        m.set_fcfs_taken();
        assert!(m.fully_consumed());
    }

    #[test]
    fn bcast_only_message_consumed_without_fcfs() {
        let m = MsgSlot::default();
        m.reset(1, 0, 1, 1, false, 0);
        assert!(!m.fully_consumed());
        m.dec_bcast_pending();
        assert!(m.fully_consumed());
    }

    #[test]
    fn pin_counts_nest() {
        let m = MsgSlot::default();
        m.reset(1, 0, 1, 0, true, 0);
        m.begin_copy();
        m.begin_copy();
        assert!(m.is_pinned());
        m.end_copy();
        assert!(m.is_pinned());
        m.end_copy();
        assert!(!m.is_pinned());
    }

    #[test]
    fn empty_message_is_legal() {
        let m = MsgSlot::default();
        m.reset(0, NIL, 0, 0, true, 5);
        assert!(m.is_empty());
        assert_eq!(m.head_block(), NIL);
    }
}
