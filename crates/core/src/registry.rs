//! Name → descriptor resolution.
//!
//! "By defining names for virtual circuits, participants can join or leave
//! the associated conversations; clearly, these mutually selected names
//! must be unique" (§1).  The registry is the single global structure of
//! the facility: a fixed-capacity table mapping [`LnvcName`]s to descriptor
//! slot indices, protected by one lock.  Opens and closes pass through it;
//! `message_send`/`message_receive` never touch it (they go straight to the
//! descriptor by index), keeping the global lock off the data path — the
//! property that lets Figure 6's fully-connected benchmark scale across
//! many LNVCs.

use std::collections::HashMap;

use mpf_shm::hooks::{HookedMutex, HookedMutexGuard};

use crate::types::LnvcName;

/// The global name table.
#[derive(Debug)]
pub struct Registry {
    inner: HookedMutex<HashMap<LnvcName, u32>>,
    capacity: usize,
}

/// Guard over the registry map.  Open/close hold this across descriptor
/// creation/deletion so name lookup and conversation lifetime can never
/// disagree (lock order: registry, then LNVC descriptor).
pub type RegistryGuard<'a> = HookedMutexGuard<'a, HashMap<LnvcName, u32>>;

impl Registry {
    /// Creates an empty registry bounded by `capacity` names (the
    /// `maxLNVC's` given to `init`).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: HookedMutex::new(HashMap::with_capacity(capacity)),
            capacity,
        }
    }

    /// Acquires the registry lock.  A poisoning panic elsewhere does not
    /// invalidate the map (every mutation is a single insert/remove), so
    /// poison is shrugged off.  Routed through [`mpf_shm::hooks`] so the
    /// `mpf-check` scheduler can deschedule a holder without wedging peers
    /// on an invisible OS mutex.
    pub fn lock(&self) -> RegistryGuard<'_> {
        self.inner.lock()
    }

    /// Maximum simultaneous names.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of live conversations (diagnostic).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when no conversations exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of live conversation names (diagnostic).
    pub fn names(&self) -> Vec<LnvcName> {
        self.inner.lock().keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> LnvcName {
        LnvcName::new(s).unwrap()
    }

    #[test]
    fn insert_lookup_remove() {
        let r = Registry::new(8);
        {
            let mut g = r.lock();
            g.insert(name("pivot"), 3);
            assert_eq!(g.get(&name("pivot")), Some(&3));
        }
        assert_eq!(r.len(), 1);
        {
            let mut g = r.lock();
            g.remove(&name("pivot"));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn names_snapshot() {
        let r = Registry::new(8);
        r.lock().insert(name("a"), 0);
        r.lock().insert(name("b"), 1);
        let mut names: Vec<String> = r.names().iter().map(|n| n.to_string()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn capacity_is_reported() {
        assert_eq!(Registry::new(17).capacity(), 17);
    }
}
