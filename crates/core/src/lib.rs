//! # MPF — a portable message passing facility for shared memory multiprocessors
//!
//! Reproduction of *Malony, Reed, McGuire, "MPF: A Portable Message Passing
//! Facility for Shared Memory Multiprocessors", ICPP 1987*.
//!
//! MPF's communication abstraction is the **logical, named virtual circuit**
//! (LNVC): a named conversation that parallel processes join and leave at
//! will.  Messages are directed *to the conversation*, not to individual
//! participants.  Each receiver declares a protocol when it joins:
//!
//! * **FCFS** — first-come, first-served: every message is delivered to
//!   exactly one FCFS receiver (a work queue).
//! * **BROADCAST** — every broadcast receiver sees every message, in the
//!   single time-order the LNVC imposes (a lecture).
//!
//! Both kinds may coexist on one LNVC: a message then goes to *all*
//! broadcast receivers and exactly *one* FCFS receiver (paper §1, Figure 1).
//!
//! ## The eight primitives
//!
//! The paper's C interface maps 1:1 onto [`Mpf`] methods (and onto the
//! literal C-style layer in [`capi`]):
//!
//! | paper | here |
//! |---|---|
//! | `init(maxLNVCs, maxProcesses)` | [`Mpf::init`] / [`MpfConfig::new`] |
//! | `open_send(pid, name)` | [`Mpf::open_send`] |
//! | `open_receive(pid, name, protocol)` | [`Mpf::open_receive`] |
//! | `close_send(pid, id)` | [`Mpf::close_send`] |
//! | `close_receive(pid, id)` | [`Mpf::close_receive`] |
//! | `message_send(pid, id, buf, len)` | [`Mpf::message_send`] |
//! | `message_receive(pid, id, buf, len)` | [`Mpf::message_receive`] |
//! | `check_receive(pid, id)` | [`Mpf::check_receive`] |
//!
//! `message_send` is asynchronous (the sender continues before delivery);
//! `message_receive` blocks until a message arrives.  A higher-level RAII
//! API lives in [`handle`].
//!
//! ## Implementation shape (paper §3)
//!
//! All shared state lives in fixed pools sized at `init` time: message
//! headers, linked *message blocks* (default payload 10 bytes, the paper's
//! experimental value), LNVC descriptors, and send/receive connection
//! descriptors, all linked into free lists when not in use.  An LNVC
//! descriptor holds a FIFO message queue, a tail pointer for senders, a
//! *shared* head pointer for FCFS receivers, an *individual* head pointer
//! per broadcast receiver, the connection lists, and a lock (Figure 2).
//!
//! ## Beyond the paper's §4
//!
//! §5 sketches restricted, faster variants; we implement both:
//! [`sync_channel::Rendezvous`] (synchronous, single-copy) and
//! [`one2one::one2one`] (one-to-one, all locking removed).
//!
//! ## Quick start
//!
//! ```
//! use mpf::{Mpf, MpfConfig, Protocol, ProcessId};
//!
//! let mpf = Mpf::init(MpfConfig::new(8, 4)).unwrap();
//! let p1 = ProcessId::from_index(0);
//! let p2 = ProcessId::from_index(1);
//!
//! let lnvc = mpf.open_send(p1, "greetings").unwrap();
//! let rx = mpf.open_receive(p2, "greetings", Protocol::Fcfs).unwrap();
//!
//! mpf.message_send(p1, lnvc, b"hello, conversation").unwrap();
//! let mut buf = [0u8; 64];
//! let n = mpf.message_receive(p2, rx, &mut buf).unwrap();
//! assert_eq!(&buf[..n], b"hello, conversation");
//!
//! mpf.close_send(p1, lnvc).unwrap();
//! mpf.close_receive(p2, rx).unwrap();
//! ```

pub mod aio;
pub mod block;
pub mod capi;
pub mod capi_ffi;
pub mod config;
pub mod conn;
pub mod error;
pub mod facility;
pub mod handle;
pub mod layout;
pub mod lnvc;
pub mod message;
pub mod one2one;
pub mod registry;
pub mod stats;
pub mod sync_channel;
pub mod trace;
pub mod types;

pub use aio::{AioCompletion, AioStats};
pub use config::{ExhaustPolicy, MpfConfig};
pub use error::{MpfError, Result};
pub use facility::Mpf;
pub use handle::{Receiver, Sender};
pub use stats::{MpfStats, Reclaimable};
pub use types::{LnvcId, LnvcName, Protocol, MAX_NAME_LEN};

pub use mpf_shm::process::ProcessId;
