//! The shared-region memory map.
//!
//! The paper's `init()` allocates one shared region and carves it up; the
//! parameters "are used to estimate the amount of shared memory
//! necessary" (§2).  [`RegionLayout`] is that estimate made exact: the
//! byte offset and size of every segment a given [`MpfConfig`] implies,
//! in allocation order.  (The thread backend's pools allocate
//! independently for Rust hygiene, but the layout is the single source of
//! truth for sizing and reporting.)
//!
//! The multi-process backend (`mpf-ipc`) performs the literal one-mmap
//! carve: [`RegionLayout::for_ipc`] prepends a region header and
//! per-process heartbeat slots, aligns every segment to a cache line, and
//! the `#[repr(C)]` in-region structs over there are compile-time
//! asserted to match the byte constants here.  [`LAYOUT_VERSION`] is the
//! cross-binary contract: a process may only attach a region whose header
//! echoes the version (and configuration) it was carved with.

use crate::config::MpfConfig;

/// Version of the region byte layout.  Bump on ANY change to the segment
/// order, the constants below, or the in-region struct layouts; attach
/// refuses regions with a different version ([`crate::MpfError::LayoutMismatch`]).
pub const LAYOUT_VERSION: u32 = 5;

/// Magic at byte 0 of every MPF region ("MPFREGN1" little-endian).
pub const REGION_MAGIC: u64 = u64::from_le_bytes(*b"MPFREGN1");

/// One carved segment of the region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// What lives here.
    pub name: &'static str,
    /// Byte offset from the region base.
    pub offset: usize,
    /// Segment size in bytes.
    pub bytes: usize,
    /// Number of fixed-size slots (0 for raw byte areas).
    pub slots: usize,
}

/// The full region map for a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLayout {
    /// Segments in allocation order.
    pub segments: Vec<Segment>,
}

/// Bytes per LNVC descriptor: lock, waitq, queue head/tail, connection
/// lists, counts, stamp.  `mpf-ipc` const-asserts its `#[repr(C)]` struct
/// against this.
pub const LNVC_DESC_BYTES: usize = 192;
/// Bytes per message header: len, chain, next, pending, flags, hop,
/// stamp, send timestamp (latency histogram), causal trace id.
pub const MSG_HEADER_BYTES: usize = 56;
/// Bytes per send-connection descriptor: pid, next.
pub const SEND_DESC_BYTES: usize = 8;
/// Bytes per receive-connection descriptor: pid, next, protocol, head.
pub const RECV_DESC_BYTES: usize = 16;
/// Bytes per block link: next index.
pub const BLOCK_LINK_BYTES: usize = 4;
/// Bytes per registry entry: 32-byte name + index + state.
pub const REGISTRY_ENTRY_BYTES: usize = 40;
/// Bytes reserved for the region header (magic, version, config echo,
/// init barrier, registry lock, pool free lists) in an ipc carve.
pub const REGION_HEADER_BYTES: usize = 512;
/// Bytes per process heartbeat slot in an ipc carve (one cache-padded
/// cell per process: os pid, attach generation, liveness, heartbeat).
pub const PROCESS_SLOT_BYTES: usize = 128;
/// Bytes of the facility-wide telemetry block (cache-line counters +
/// size/latency histograms); see `mpf_shm::telemetry::FacilityTelemetry`.
pub const FACILITY_TELEMETRY_BYTES: usize = mpf_shm::telemetry::FACILITY_TELEMETRY_BYTES;
/// Bytes per LNVC telemetry slot (counters + latency histogram).
pub const LNVC_TELEMETRY_BYTES: usize = mpf_shm::telemetry::LNVC_TELEMETRY_BYTES;
/// Bytes per process flight-recorder ring (single-writer event log).
pub const FLIGHT_RING_BYTES: usize = mpf_shm::telemetry::FLIGHT_RING_BYTES;
/// Bytes per aio submission/completion ring (header + descriptor slots);
/// see `mpf_shm::ring::AioRing`.  Each process slot owns one SQ and one CQ.
pub const AIO_RING_BYTES: usize = mpf_shm::ring::AIO_RING_BYTES;
/// Bytes per process causal trace ring (single-writer, seqlock-published,
/// KB-sized); see `mpf_shm::tracering::TraceRing`.
pub const TRACE_RING_BYTES: usize = mpf_shm::tracering::TRACE_RING_BYTES;

impl RegionLayout {
    /// Computes the layout for `cfg`.
    pub fn for_config(cfg: &MpfConfig) -> Self {
        let mut segments = Vec::new();
        let mut cursor = 0usize;
        let mut push = |name, bytes: usize, slots: usize| {
            // Keep every segment 8-byte aligned, as a real region would.
            let aligned = bytes.div_ceil(8) * 8;
            segments.push(Segment {
                name,
                offset: cursor,
                bytes: aligned,
                slots,
            });
            cursor += aligned;
        };
        push(
            "lnvc descriptors",
            cfg.max_lnvcs as usize * LNVC_DESC_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "name registry",
            cfg.max_lnvcs as usize * REGISTRY_ENTRY_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "message headers",
            cfg.max_messages as usize * MSG_HEADER_BYTES,
            cfg.max_messages as usize,
        );
        push(
            "send descriptors",
            cfg.max_send_conns as usize * SEND_DESC_BYTES,
            cfg.max_send_conns as usize,
        );
        push(
            "receive descriptors",
            cfg.max_recv_conns as usize * RECV_DESC_BYTES,
            cfg.max_recv_conns as usize,
        );
        push(
            "block links",
            cfg.total_blocks as usize * BLOCK_LINK_BYTES,
            cfg.total_blocks as usize,
        );
        push(
            "block payloads",
            cfg.total_blocks as usize * cfg.block_payload,
            cfg.total_blocks as usize,
        );
        push("facility telemetry", FACILITY_TELEMETRY_BYTES, 1);
        push(
            "lnvc telemetry",
            cfg.max_lnvcs as usize * LNVC_TELEMETRY_BYTES,
            cfg.max_lnvcs as usize,
        );
        // One submission ring and one completion ring per process slot
        // (single-producer/single-consumer by construction).
        push(
            "aio sq rings",
            cfg.max_processes as usize * AIO_RING_BYTES,
            cfg.max_processes as usize,
        );
        push(
            "aio cq rings",
            cfg.max_processes as usize * AIO_RING_BYTES,
            cfg.max_processes as usize,
        );
        Self { segments }
    }

    /// Computes the layout for a genuine one-mmap multi-process region.
    ///
    /// Same pools as [`Self::for_config`], but prefixed with the region
    /// header and per-process heartbeat slots, and with every segment
    /// aligned to a 64-byte cache line (descriptor pools in a live region
    /// are written by different processes; ragged segment starts would
    /// let the last slot of one pool share a line with the first slot of
    /// the next).
    pub fn for_ipc(cfg: &MpfConfig) -> Self {
        let mut segments = Vec::new();
        let mut cursor = 0usize;
        let mut push = |name, bytes: usize, slots: usize| {
            let aligned = bytes.div_ceil(64) * 64;
            segments.push(Segment {
                name,
                offset: cursor,
                bytes: aligned,
                slots,
            });
            cursor += aligned;
        };
        push("region header", REGION_HEADER_BYTES, 1);
        push(
            "process slots",
            cfg.max_processes as usize * PROCESS_SLOT_BYTES,
            cfg.max_processes as usize,
        );
        push(
            "lnvc descriptors",
            cfg.max_lnvcs as usize * LNVC_DESC_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "name registry",
            cfg.max_lnvcs as usize * REGISTRY_ENTRY_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "message headers",
            cfg.max_messages as usize * MSG_HEADER_BYTES,
            cfg.max_messages as usize,
        );
        push(
            "send descriptors",
            cfg.max_send_conns as usize * SEND_DESC_BYTES,
            cfg.max_send_conns as usize,
        );
        push(
            "receive descriptors",
            cfg.max_recv_conns as usize * RECV_DESC_BYTES,
            cfg.max_recv_conns as usize,
        );
        push(
            "block links",
            cfg.total_blocks as usize * BLOCK_LINK_BYTES,
            cfg.total_blocks as usize,
        );
        push(
            "block payloads",
            cfg.total_blocks as usize * cfg.block_payload,
            cfg.total_blocks as usize,
        );
        // Facility telemetry is sharded per process slot: each process
        // updates only its own shard, so hot counters never bounce a cache
        // line between processors; snapshots sum the shards.
        push(
            "facility telemetry",
            cfg.max_processes as usize * FACILITY_TELEMETRY_BYTES,
            cfg.max_processes as usize,
        );
        push(
            "lnvc telemetry",
            cfg.max_lnvcs as usize * LNVC_TELEMETRY_BYTES,
            cfg.max_lnvcs as usize,
        );
        // One single-writer flight-recorder ring per process slot, so a
        // crashed process's last events survive in the region (the thread
        // backend has no per-OS-process identity, hence ipc-only).
        push(
            "flight rings",
            cfg.max_processes as usize * FLIGHT_RING_BYTES,
            cfg.max_processes as usize,
        );
        // One single-writer causal trace ring per process slot, next to
        // the flight rings: deeper (KB-sized) and message-centric, the
        // substrate of `mpf-trace`'s post-mortem reconstruction.
        push(
            "trace rings",
            cfg.max_processes as usize * TRACE_RING_BYTES,
            cfg.max_processes as usize,
        );
        // Batched-submission rings: one SQ + one CQ per process slot,
        // each a fixed-size `mpf_shm::ring::AioRing`.
        push(
            "aio sq rings",
            cfg.max_processes as usize * AIO_RING_BYTES,
            cfg.max_processes as usize,
        );
        push(
            "aio cq rings",
            cfg.max_processes as usize * AIO_RING_BYTES,
            cfg.max_processes as usize,
        );
        Self { segments }
    }

    /// Total region bytes.
    pub fn total_bytes(&self) -> usize {
        self.segments.last().map_or(0, |s| s.offset + s.bytes)
    }

    /// Looks a segment up by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Renders the map as an `init()`-time banner.
    pub fn render(&self) -> String {
        let mut out = String::from("shared region map:\n");
        for s in &self.segments {
            out.push_str(&format!(
                "  {:>8} .. {:>8}  {:<20} ({} slots)\n",
                s.offset,
                s.offset + s.bytes,
                s.name,
                s.slots
            ));
        }
        out.push_str(&format!("  total: {} bytes\n", self.total_bytes()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RegionLayout {
        RegionLayout::for_config(&MpfConfig::paper_faithful(16, 20))
    }

    #[test]
    fn segments_are_contiguous_and_aligned() {
        let l = layout();
        let mut cursor = 0;
        for s in &l.segments {
            assert_eq!(s.offset, cursor, "{} not contiguous", s.name);
            assert_eq!(s.offset % 8, 0, "{} misaligned", s.name);
            assert_eq!(s.bytes % 8, 0, "{} ragged", s.name);
            cursor += s.bytes;
        }
        assert_eq!(l.total_bytes(), cursor);
    }

    #[test]
    fn block_payloads_match_config() {
        let cfg = MpfConfig::paper_faithful(16, 20);
        let l = RegionLayout::for_config(&cfg);
        let payloads = l.segment("block payloads").unwrap();
        assert_eq!(payloads.slots, cfg.total_blocks as usize);
        assert!(payloads.bytes >= cfg.total_blocks as usize * cfg.block_payload);
    }

    #[test]
    fn layout_grows_with_configuration() {
        let small = RegionLayout::for_config(&MpfConfig::new(4, 4));
        let big = RegionLayout::for_config(&MpfConfig::new(64, 64));
        assert!(big.total_bytes() > small.total_bytes());
    }

    #[test]
    fn render_names_every_segment() {
        let text = layout().render();
        for name in [
            "lnvc descriptors",
            "name registry",
            "message headers",
            "send descriptors",
            "receive descriptors",
            "block links",
            "block payloads",
            "facility telemetry",
            "lnvc telemetry",
            "aio sq rings",
            "aio cq rings",
            "total:",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn ipc_layout_is_cache_line_aligned_and_superset() {
        let cfg = MpfConfig::paper_faithful(16, 20);
        let ipc = RegionLayout::for_ipc(&cfg);
        let mut cursor = 0;
        for s in &ipc.segments {
            assert_eq!(s.offset, cursor, "{} not contiguous", s.name);
            assert_eq!(s.offset % 64, 0, "{} not line-aligned", s.name);
            cursor += s.bytes;
        }
        let header = ipc.segment("region header").unwrap();
        assert_eq!(header.offset, 0);
        assert!(header.bytes >= REGION_HEADER_BYTES);
        let slots = ipc.segment("process slots").unwrap();
        assert_eq!(slots.slots, cfg.max_processes as usize);
        let traces = ipc.segment("trace rings").unwrap();
        assert_eq!(traces.slots, cfg.max_processes as usize);
        assert_eq!(traces.bytes, cfg.max_processes as usize * TRACE_RING_BYTES);
        // Every thread-backend segment exists in the ipc carve too.
        for s in &RegionLayout::for_config(&cfg).segments {
            assert!(
                ipc.segment(s.name).is_some(),
                "ipc carve missing {}",
                s.name
            );
        }
        assert!(ipc.total_bytes() > RegionLayout::for_config(&cfg).total_bytes());
    }

    #[test]
    fn estimate_agrees_with_config_method() {
        let cfg = MpfConfig::new(16, 20);
        let layout_total = RegionLayout::for_config(&cfg).total_bytes();
        let estimate = cfg.estimated_shared_bytes();
        let ratio = layout_total as f64 / estimate as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {estimate} vs layout {layout_total}"
        );
    }
}
