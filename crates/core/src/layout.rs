//! The shared-region memory map.
//!
//! The paper's `init()` allocates one shared region and carves it up; the
//! parameters "are used to estimate the amount of shared memory
//! necessary" (§2).  [`RegionLayout`] is that estimate made exact: the
//! byte offset and size of every segment a given [`MpfConfig`] implies,
//! in allocation order.  (Our pools allocate independently for Rust
//! hygiene, but the layout is the single source of truth for sizing and
//! reporting, and documents what a literal one-mmap port would map.)

use crate::config::MpfConfig;

/// One carved segment of the region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// What lives here.
    pub name: &'static str,
    /// Byte offset from the region base.
    pub offset: usize,
    /// Segment size in bytes.
    pub bytes: usize,
    /// Number of fixed-size slots (0 for raw byte areas).
    pub slots: usize,
}

/// The full region map for a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionLayout {
    /// Segments in allocation order.
    pub segments: Vec<Segment>,
}

/// Bytes per descriptor, mirroring the slot structs (rounded to the
/// region's natural alignment).
const LNVC_DESC_BYTES: usize = 192; // name ref, queue/head/tail ptrs, counts, lock, waitq
const MSG_HEADER_BYTES: usize = 40; // len, chain, next, pending, flags, stamp
const SEND_DESC_BYTES: usize = 8; // pid, next
const RECV_DESC_BYTES: usize = 16; // pid, next, protocol, head
const BLOCK_LINK_BYTES: usize = 4; // next index
const REGISTRY_ENTRY_BYTES: usize = 40; // 32-byte name + index + state

impl RegionLayout {
    /// Computes the layout for `cfg`.
    pub fn for_config(cfg: &MpfConfig) -> Self {
        let mut segments = Vec::new();
        let mut cursor = 0usize;
        let mut push = |name, bytes: usize, slots: usize| {
            // Keep every segment 8-byte aligned, as a real region would.
            let aligned = bytes.div_ceil(8) * 8;
            segments.push(Segment {
                name,
                offset: cursor,
                bytes: aligned,
                slots,
            });
            cursor += aligned;
        };
        push(
            "lnvc descriptors",
            cfg.max_lnvcs as usize * LNVC_DESC_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "name registry",
            cfg.max_lnvcs as usize * REGISTRY_ENTRY_BYTES,
            cfg.max_lnvcs as usize,
        );
        push(
            "message headers",
            cfg.max_messages as usize * MSG_HEADER_BYTES,
            cfg.max_messages as usize,
        );
        push(
            "send descriptors",
            cfg.max_send_conns as usize * SEND_DESC_BYTES,
            cfg.max_send_conns as usize,
        );
        push(
            "receive descriptors",
            cfg.max_recv_conns as usize * RECV_DESC_BYTES,
            cfg.max_recv_conns as usize,
        );
        push(
            "block links",
            cfg.total_blocks as usize * BLOCK_LINK_BYTES,
            cfg.total_blocks as usize,
        );
        push(
            "block payloads",
            cfg.total_blocks as usize * cfg.block_payload,
            cfg.total_blocks as usize,
        );
        Self { segments }
    }

    /// Total region bytes.
    pub fn total_bytes(&self) -> usize {
        self.segments
            .last()
            .map_or(0, |s| s.offset + s.bytes)
    }

    /// Looks a segment up by name.
    pub fn segment(&self, name: &str) -> Option<&Segment> {
        self.segments.iter().find(|s| s.name == name)
    }

    /// Renders the map as an `init()`-time banner.
    pub fn render(&self) -> String {
        let mut out = String::from("shared region map:\n");
        for s in &self.segments {
            out.push_str(&format!(
                "  {:>8} .. {:>8}  {:<20} ({} slots)\n",
                s.offset,
                s.offset + s.bytes,
                s.name,
                s.slots
            ));
        }
        out.push_str(&format!("  total: {} bytes\n", self.total_bytes()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RegionLayout {
        RegionLayout::for_config(&MpfConfig::paper_faithful(16, 20))
    }

    #[test]
    fn segments_are_contiguous_and_aligned() {
        let l = layout();
        let mut cursor = 0;
        for s in &l.segments {
            assert_eq!(s.offset, cursor, "{} not contiguous", s.name);
            assert_eq!(s.offset % 8, 0, "{} misaligned", s.name);
            assert_eq!(s.bytes % 8, 0, "{} ragged", s.name);
            cursor += s.bytes;
        }
        assert_eq!(l.total_bytes(), cursor);
    }

    #[test]
    fn block_payloads_match_config() {
        let cfg = MpfConfig::paper_faithful(16, 20);
        let l = RegionLayout::for_config(&cfg);
        let payloads = l.segment("block payloads").unwrap();
        assert_eq!(payloads.slots, cfg.total_blocks as usize);
        assert!(payloads.bytes >= cfg.total_blocks as usize * cfg.block_payload);
    }

    #[test]
    fn layout_grows_with_configuration() {
        let small = RegionLayout::for_config(&MpfConfig::new(4, 4));
        let big = RegionLayout::for_config(&MpfConfig::new(64, 64));
        assert!(big.total_bytes() > small.total_bytes());
    }

    #[test]
    fn render_names_every_segment() {
        let text = layout().render();
        for name in [
            "lnvc descriptors",
            "name registry",
            "message headers",
            "send descriptors",
            "receive descriptors",
            "block links",
            "block payloads",
            "total:",
        ] {
            assert!(text.contains(name), "missing {name}");
        }
    }

    #[test]
    fn estimate_agrees_with_config_method() {
        let cfg = MpfConfig::new(16, 20);
        let layout_total = RegionLayout::for_config(&cfg).total_bytes();
        let estimate = cfg.estimated_shared_bytes();
        let ratio = layout_total as f64 / estimate as f64;
        assert!(
            (0.5..2.0).contains(&ratio),
            "estimate {estimate} vs layout {layout_total}"
        );
    }
}
