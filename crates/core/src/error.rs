//! MPF error type and C-layer status codes.

/// Result alias for MPF operations.
pub type Result<T> = std::result::Result<T, MpfError>;

/// Everything that can go wrong in the facility.
///
/// The paper's C interface signals errors with negative return values; the
/// mapping lives in [`MpfError::status_code`] and is used by [`crate::capi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpfError {
    /// LNVC name empty or longer than [`crate::MAX_NAME_LEN`].
    InvalidName {
        /// Offending length.
        len: usize,
        /// Maximum allowed.
        max: usize,
    },
    /// Process id outside the `max_processes` bound given to `init`.
    InvalidProcess,
    /// All `max_lnvcs` LNVC descriptors are in use.
    LnvcsExhausted,
    /// All connection descriptors are in use.
    ConnectionsExhausted,
    /// All message headers are in use (and policy is
    /// [`crate::ExhaustPolicy::Error`]).
    MessagesExhausted,
    /// All message blocks are in use (and policy is
    /// [`crate::ExhaustPolicy::Error`]).
    BlocksExhausted,
    /// The message is larger than the region could ever hold.
    MessageTooLarge {
        /// Requested payload bytes.
        len: usize,
        /// Largest payload the configured region can carry.
        max: usize,
    },
    /// The LNVC id is stale (conversation was deleted) or malformed.
    UnknownLnvc,
    /// The process has no connection of the required direction on the LNVC.
    NotConnected,
    /// The process already holds a connection of this direction on the LNVC.
    AlreadyConnected,
    /// A process may not hold both FCFS and BROADCAST receive connections
    /// on one LNVC (paper footnote 3).
    ProtocolConflict,
    /// The receive buffer cannot hold the pending message; the message is
    /// left queued.
    BufferTooSmall {
        /// Bytes the pending message needs.
        needed: usize,
    },
    /// Non-blocking receive found no message.
    WouldBlock,
    /// The C layer was used before `init` (or `init` was called twice).
    BadInit,
    /// A peer process died mid-conversation (multi-process backend): a
    /// lock it held was broken or its connections were swept, and the
    /// LNVC is poisoned rather than left to deadlock survivors.
    PeerDied {
        /// Raw MPF process id of the dead peer (0 when unknown — the
        /// poison was discovered after the sweep recorded no culprit).
        pid: u32,
    },
    /// `attach` found a shared region whose header does not match this
    /// library (wrong magic, layout version, or configuration echo).
    LayoutMismatch {
        /// Layout version this library writes.
        expected: u32,
        /// Layout version found in the region header.
        found: u32,
    },
    /// `wait_any`/`check_any` was given an empty LNVC set; waiting on
    /// nothing would block forever.
    EmptyWaitSet,
    /// A deadline-bounded call (`recv_deadline`, `send_deadline`,
    /// `wait_any_deadline`, …) reached its deadline with the operation
    /// not performed.  Distinct from [`MpfError::WouldBlock`]: the
    /// caller *did* wait, and the facility guarantees no partial effect
    /// (nothing enqueued, nothing consumed).
    TimedOut,
}

impl MpfError {
    /// Negative status code for the C-style layer.
    pub fn status_code(self) -> i32 {
        match self {
            MpfError::InvalidName { .. } => -1,
            MpfError::InvalidProcess => -2,
            MpfError::LnvcsExhausted => -3,
            MpfError::ConnectionsExhausted => -4,
            MpfError::MessagesExhausted => -5,
            MpfError::BlocksExhausted => -6,
            MpfError::MessageTooLarge { .. } => -7,
            MpfError::UnknownLnvc => -8,
            MpfError::NotConnected => -9,
            MpfError::AlreadyConnected => -10,
            MpfError::ProtocolConflict => -11,
            MpfError::BufferTooSmall { .. } => -12,
            MpfError::WouldBlock => -13,
            MpfError::BadInit => -14,
            MpfError::PeerDied { .. } => -15,
            MpfError::LayoutMismatch { .. } => -16,
            MpfError::EmptyWaitSet => -17,
            MpfError::TimedOut => -18,
        }
    }
}

impl std::fmt::Display for MpfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpfError::InvalidName { len, max } => {
                write!(f, "invalid LNVC name: length {len}, allowed 1..={max}")
            }
            MpfError::InvalidProcess => write!(f, "process id out of configured range"),
            MpfError::LnvcsExhausted => write!(f, "no free LNVC descriptors"),
            MpfError::ConnectionsExhausted => write!(f, "no free connection descriptors"),
            MpfError::MessagesExhausted => write!(f, "no free message headers"),
            MpfError::BlocksExhausted => write!(f, "no free message blocks"),
            MpfError::MessageTooLarge { len, max } => {
                write!(f, "message of {len} bytes exceeds region capacity of {max}")
            }
            MpfError::UnknownLnvc => write!(f, "unknown or deleted LNVC"),
            MpfError::NotConnected => write!(f, "process has no such connection on this LNVC"),
            MpfError::AlreadyConnected => {
                write!(f, "process already has this connection on this LNVC")
            }
            MpfError::ProtocolConflict => write!(
                f,
                "a process cannot hold both FCFS and BROADCAST receive connections on one LNVC"
            ),
            MpfError::BufferTooSmall { needed } => {
                write!(f, "receive buffer too small: message needs {needed} bytes")
            }
            MpfError::WouldBlock => write!(f, "no message available"),
            MpfError::BadInit => write!(f, "facility not initialized (or initialized twice)"),
            MpfError::PeerDied { pid: 0 } => {
                write!(f, "a peer process died mid-conversation; LNVC poisoned")
            }
            MpfError::PeerDied { pid } => {
                write!(
                    f,
                    "peer process P{pid} died mid-conversation; LNVC poisoned"
                )
            }
            MpfError::LayoutMismatch { expected, found } => write!(
                f,
                "region layout mismatch: library speaks version {expected}, region is {found}"
            ),
            MpfError::EmptyWaitSet => write!(f, "wait_any on an empty LNVC set would never wake"),
            MpfError::TimedOut => write!(f, "deadline reached before the operation completed"),
        }
    }
}

impl std::error::Error for MpfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_are_negative_and_distinct() {
        let all = [
            MpfError::InvalidName { len: 0, max: 31 },
            MpfError::InvalidProcess,
            MpfError::LnvcsExhausted,
            MpfError::ConnectionsExhausted,
            MpfError::MessagesExhausted,
            MpfError::BlocksExhausted,
            MpfError::MessageTooLarge { len: 1, max: 0 },
            MpfError::UnknownLnvc,
            MpfError::NotConnected,
            MpfError::AlreadyConnected,
            MpfError::ProtocolConflict,
            MpfError::BufferTooSmall { needed: 9 },
            MpfError::WouldBlock,
            MpfError::BadInit,
            MpfError::PeerDied { pid: 3 },
            MpfError::LayoutMismatch {
                expected: 1,
                found: 2,
            },
            MpfError::EmptyWaitSet,
            MpfError::TimedOut,
        ];
        let mut codes: Vec<i32> = all.iter().map(|e| e.status_code()).collect();
        assert!(codes.iter().all(|&c| c < 0));
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len(), "status codes must be distinct");
    }

    #[test]
    fn display_mentions_specifics() {
        let e = MpfError::BufferTooSmall { needed: 123 };
        assert!(e.to_string().contains("123"));
    }
}
