//! Connection descriptors.
//!
//! §3.1: "The LNVC connections are represented by send descriptors and
//! receive descriptors, which contain the process identifier of the
//! connected process.  BROADCAST receive processes have an additional
//! descriptor field used for individual FIFO head pointers.  Like message
//! blocks, LNVC, send, and receive descriptors are linked into free lists
//! when not in use."
//!
//! All fields are read and written under the owning LNVC's lock.

use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};

use mpf_shm::idxstack::NIL;

use crate::types::Protocol;

/// A send connection: one process's open sending attachment to an LNVC.
#[derive(Debug)]
pub struct SendConn {
    /// Raw process id (`ProcessId::raw`); 0 when the slot is free.
    pid: AtomicU32,
    /// Next send descriptor on the LNVC's list.
    next: AtomicU32,
}

impl Default for SendConn {
    fn default() -> Self {
        Self {
            pid: AtomicU32::new(0),
            next: AtomicU32::new(NIL),
        }
    }
}

impl SendConn {
    /// Initializes a freshly allocated descriptor.
    pub fn reset(&self, pid_raw: u32, next: u32) {
        self.pid.store(pid_raw, Ordering::Relaxed);
        self.next.store(next, Ordering::Relaxed);
    }

    /// Raw process id of the connected process.
    pub fn pid_raw(&self) -> u32 {
        self.pid.load(Ordering::Relaxed)
    }

    /// Next descriptor on the list.
    pub fn next(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }

    /// Relinks the list tail.
    pub fn set_next(&self, next: u32) {
        self.next.store(next, Ordering::Relaxed);
    }
}

/// A receive connection, carrying the declared protocol and — for
/// BROADCAST — the receiver's individual FIFO head pointer.
#[derive(Debug)]
pub struct RecvConn {
    /// Raw process id; 0 when the slot is free.
    pid: AtomicU32,
    /// Next receive descriptor on the LNVC's list.
    next: AtomicU32,
    /// [`Protocol::to_raw`] encoding.
    protocol: AtomicU8,
    /// BROADCAST: next unread message for this receiver; `NIL` means "at
    /// the queue tail" (the receiver has read everything sent so far).
    /// Unused for FCFS (those share the LNVC's head pointer, Figure 2).
    head: AtomicU32,
}

impl Default for RecvConn {
    fn default() -> Self {
        Self {
            pid: AtomicU32::new(0),
            next: AtomicU32::new(NIL),
            protocol: AtomicU8::new(0),
            head: AtomicU32::new(NIL),
        }
    }
}

impl RecvConn {
    /// Initializes a freshly allocated descriptor.  Broadcast receivers
    /// start "at the tail": they see only messages sent after they join.
    pub fn reset(&self, pid_raw: u32, protocol: Protocol, next: u32) {
        self.pid.store(pid_raw, Ordering::Relaxed);
        self.next.store(next, Ordering::Relaxed);
        self.protocol.store(protocol.to_raw(), Ordering::Relaxed);
        self.head.store(NIL, Ordering::Relaxed);
    }

    /// Raw process id of the connected process.
    pub fn pid_raw(&self) -> u32 {
        self.pid.load(Ordering::Relaxed)
    }

    /// Next descriptor on the list.
    pub fn next(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }

    /// Relinks the list tail.
    pub fn set_next(&self, next: u32) {
        self.next.store(next, Ordering::Relaxed);
    }

    /// The declared protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from_raw(self.protocol.load(Ordering::Relaxed))
            .expect("descriptor holds a valid protocol")
    }

    /// This broadcast receiver's next unread message (`NIL` = at tail).
    pub fn head(&self) -> u32 {
        self.head.load(Ordering::Relaxed)
    }

    /// Advances this broadcast receiver's head.
    pub fn set_head(&self, head: u32) {
        self.head.store(head, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_conn_reset_and_fields() {
        let c = SendConn::default();
        c.reset(7, 3);
        assert_eq!(c.pid_raw(), 7);
        assert_eq!(c.next(), 3);
        c.set_next(NIL);
        assert_eq!(c.next(), NIL);
    }

    #[test]
    fn recv_conn_starts_at_tail() {
        let c = RecvConn::default();
        c.set_head(5);
        c.reset(9, Protocol::Broadcast, NIL);
        assert_eq!(c.pid_raw(), 9);
        assert_eq!(c.protocol(), Protocol::Broadcast);
        assert_eq!(c.head(), NIL, "new broadcast receivers join at the tail");
    }

    #[test]
    fn recv_conn_protocol_roundtrip() {
        let c = RecvConn::default();
        c.reset(1, Protocol::Fcfs, NIL);
        assert_eq!(c.protocol(), Protocol::Fcfs);
        c.reset(1, Protocol::Broadcast, NIL);
        assert_eq!(c.protocol(), Protocol::Broadcast);
    }
}
