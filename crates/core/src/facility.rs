//! The MPF facility: the paper's eight programming primitives.
//!
//! Locking discipline (deadlock freedom):
//!
//! 1. `open_*`/`close_*` take the **registry lock first**, then the LNVC
//!    descriptor lock, so name resolution and conversation lifetime can
//!    never disagree.
//! 2. `message_send`/`message_receive`/`check_receive` take only the
//!    descriptor lock (identified by index from the [`LnvcId`]), keeping
//!    the global lock off the data path.
//! 3. Pool free lists are lock-free; wait-queue tickets are taken while
//!    the descriptor lock is held, so wakeups are never lost.
//!
//! Payload copies happen **outside** the descriptor lock: a sender fills
//! its block chain before linking it; a receiver pins the message
//! ([`crate::message::MsgSlot::begin_copy`]), drops the lock, copies, then
//! re-locks to finish delivery bookkeeping.  This is what lets multiple
//! BROADCAST receivers copy one message concurrently — the effect behind
//! the paper's Figure 5.

use std::sync::atomic::Ordering;

use mpf_shm::idxstack::NIL;
use mpf_shm::pool::Pool;
use mpf_shm::process::ProcessId;
use mpf_shm::telemetry::{
    now_nanos, FacilityTelemetry, LnvcTelSnapshot, LnvcTelemetry, TelSnapshot,
};
use mpf_shm::waitq::WaitQueue;

use crate::block::BlockPool;
use crate::config::{ExhaustPolicy, MpfConfig};
use crate::conn::{RecvConn, SendConn};
use crate::error::{MpfError, Result};
use crate::lnvc::{Ctx, LnvcSlot};
use crate::message::MsgSlot;
use crate::registry::Registry;
use crate::stats::{MpfStats, Reclaimable};
use crate::trace::{EventKind, TraceLog, Tracer, NO_STAMP};
use crate::types::{LnvcId, LnvcName, Protocol, MAX_LNVC_INDEX};

/// The message passing facility.  One instance is one shared region;
/// share it among "processes" with `Arc` or scoped borrows.
#[derive(Debug)]
pub struct Mpf {
    cfg: MpfConfig,
    lnvcs: Pool<LnvcSlot>,
    msgs: Pool<MsgSlot>,
    blocks: BlockPool,
    sends: Pool<SendConn>,
    recvs: Pool<RecvConn>,
    registry: Registry,
    /// Senders blocked on region exhaustion wait here (flow control).
    mem_waitq: WaitQueue,
    stats: MpfStats,
    /// Region-global telemetry block.  This backend keeps it on the heap;
    /// [`crate::layout`] carves the identical `#[repr(C)]` struct into the
    /// shared region for the IPC backend, so the recording code paths are
    /// the same shape in both.
    tel: FacilityTelemetry,
    /// Per-conversation telemetry, indexed like the LNVC pool.
    lnvc_tel: Box<[LnvcTelemetry]>,
    tracer: Option<Tracer>,
}

impl Mpf {
    /// The paper's `init()`: allocates the shared region — every pool and
    /// free list — and returns the facility.
    pub fn init(cfg: MpfConfig) -> Result<Self> {
        if cfg.max_lnvcs == 0 || cfg.max_lnvcs > MAX_LNVC_INDEX + 1 || cfg.max_processes == 0 {
            return Err(MpfError::BadInit);
        }
        let lock_kind = cfg.lock_kind;
        Ok(Self {
            lnvcs: Pool::new_with(cfg.max_lnvcs, |_| LnvcSlot::new(lock_kind)),
            msgs: Pool::new(cfg.max_messages),
            blocks: BlockPool::new(cfg.total_blocks, cfg.block_payload),
            sends: Pool::new(cfg.max_send_conns),
            recvs: Pool::new(cfg.max_recv_conns),
            registry: Registry::new(cfg.max_lnvcs as usize),
            mem_waitq: WaitQueue::new(),
            stats: MpfStats::default(),
            tel: FacilityTelemetry::default(),
            lnvc_tel: (0..cfg.max_lnvcs)
                .map(|_| LnvcTelemetry::default())
                .collect(),
            tracer: (cfg.trace_capacity > 0).then(|| Tracer::new(cfg.trace_capacity)),
            cfg,
        })
    }

    /// The configuration this facility was initialized with.
    pub fn config(&self) -> &MpfConfig {
        &self.cfg
    }

    /// The shared-region memory map implied by the configuration (what a
    /// literal one-`mmap` port would carve; see [`crate::layout`]).
    pub fn region_layout(&self) -> crate::layout::RegionLayout {
        crate::layout::RegionLayout::for_config(&self.cfg)
    }

    /// Live instrumentation counters.
    pub fn stats(&self) -> &MpfStats {
        &self.stats
    }

    /// Point-in-time copy of the region telemetry block (stays zero when
    /// [`MpfConfig::with_telemetry`] turned recording off).
    pub fn telemetry_snapshot(&self) -> TelSnapshot {
        self.tel.snapshot()
    }

    /// Point-in-time copy of one conversation's telemetry.
    pub fn lnvc_telemetry(&self, id: LnvcId) -> Result<LnvcTelSnapshot> {
        let slot = self.slot(id)?;
        let _guard = slot.lock.lock();
        Self::validate(slot, id)?;
        Ok(self.lnvc_tel[id.index() as usize].snapshot())
    }

    /// Pool occupancy held by corpses: queued messages that are fully
    /// consumed and unpinned, awaiting a reclamation sweep.  Distinguishes
    /// "pool full of live messages" from "pool full of garbage a sweep
    /// would free".  Locks registry then each descriptor, like
    /// [`Self::check_invariants`], so call it at quiescent points.
    pub fn reclaimable(&self) -> Reclaimable {
        let reg = self.registry.lock();
        let mut out = Reclaimable::default();
        for &idx in reg.values() {
            let slot = self.lnvcs.get(idx);
            let _guard = slot.lock.lock();
            if !slot.is_active() {
                continue;
            }
            let (messages, blocks) = self.ctx(slot).count_reclaimable();
            out.messages += messages;
            out.blocks += blocks;
        }
        out
    }

    /// The facility telemetry block, when recording is enabled.
    #[inline]
    fn tel(&self) -> Option<&FacilityTelemetry> {
        self.cfg.telemetry.then_some(&self.tel)
    }

    /// One conversation's telemetry block, when recording is enabled.
    #[inline]
    fn ltel(&self, idx: u32) -> Option<&LnvcTelemetry> {
        self.cfg.telemetry.then(|| &self.lnvc_tel[idx as usize])
    }

    /// Telemetry for one completed delivery: receive counters, bytes, the
    /// send→receive latency sample, and any piggybacked reclamation.
    fn note_delivery(&self, idx: u32, len: usize, sent_at: u64, freed: u32) {
        let Some(t) = self.tel() else { return };
        t.receives.inc();
        t.bytes_out.add(len as u64);
        if freed > 0 {
            t.reclaims.add(freed as u64);
        }
        let lt = &self.lnvc_tel[idx as usize];
        lt.receives.fetch_add(1, Ordering::Relaxed);
        lt.bytes_out.fetch_add(len as u64, Ordering::Relaxed);
        if freed > 0 {
            lt.reclaims.fetch_add(freed as u64, Ordering::Relaxed);
        }
        if sent_at != 0 {
            let lat = now_nanos().saturating_sub(sent_at);
            t.latency_hist.record(lat);
            lt.latency.record(lat);
        }
    }

    /// Telemetry for one blocked receive wait (mirrors `stats.recv_waits`).
    fn note_recv_wait(&self, idx: u32) {
        if let Some(t) = self.tel() {
            t.recv_waits.inc();
            self.lnvc_tel[idx as usize]
                .recv_waits
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains the event trace, if tracing was enabled at `init`.
    pub fn take_trace(&self) -> Option<TraceLog> {
        self.tracer.as_ref().map(Tracer::take_log)
    }

    /// Trace events dropped by the capacity bound so far.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::dropped)
    }

    #[inline]
    fn trace(&self, pid: ProcessId, kind: EventKind, lnvc: u32, len: usize, stamp: u64) {
        if let Some(t) = &self.tracer {
            t.record(pid.raw(), kind, lnvc, len, stamp);
        }
    }

    /// Number of currently existing conversations.
    pub fn live_lnvcs(&self) -> usize {
        self.registry.len()
    }

    /// Approximate free message blocks (diagnostic / flow-control hints).
    pub fn free_blocks(&self) -> u32 {
        self.blocks.available()
    }

    fn check_pid(&self, pid: ProcessId) -> Result<()> {
        if pid.index() < self.cfg.max_processes as usize {
            Ok(())
        } else {
            Err(MpfError::InvalidProcess)
        }
    }

    fn ctx<'a>(&'a self, lnvc: &'a LnvcSlot) -> Ctx<'a> {
        Ctx {
            lnvc,
            msgs: &self.msgs,
            blocks: &self.blocks,
            sends: &self.sends,
            recvs: &self.recvs,
        }
    }

    /// Resolves an id to its slot, without liveness validation (that
    /// happens under the descriptor lock via [`Self::validate`]).
    fn slot(&self, id: LnvcId) -> Result<&LnvcSlot> {
        if id.index() < self.lnvcs.capacity() {
            Ok(self.lnvcs.get(id.index()))
        } else {
            Err(MpfError::UnknownLnvc)
        }
    }

    /// Liveness + generation check; call with the descriptor lock held.
    fn validate(slot: &LnvcSlot, id: LnvcId) -> Result<()> {
        if slot.is_active() && id.matches_generation(slot.generation()) {
            Ok(())
        } else {
            Err(MpfError::UnknownLnvc)
        }
    }

    /// Looks up `name`, creating the conversation if absent (both
    /// `open_send` and `open_receive` create on first use, §2).  Returns
    /// `(index, created)`.  Caller holds the registry lock.
    fn find_or_create(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        name: LnvcName,
    ) -> Result<(u32, bool)> {
        if let Some(&idx) = reg.get(&name) {
            return Ok((idx, false));
        }
        let Some(idx) = self.lnvcs.alloc() else {
            return Err(MpfError::LnvcsExhausted);
        };
        self.lnvcs.get(idx).activate();
        reg.insert(name, idx);
        self.stats.lnvcs_created.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_created.inc();
            // A recycled slot must not inherit its predecessor's numbers.
            self.lnvc_tel[idx as usize].reset();
        }
        Ok((idx, true))
    }

    /// Rolls back a just-created conversation after a failed open.
    fn rollback_create(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        name: LnvcName,
        idx: u32,
    ) {
        reg.remove(&name);
        let slot = self.lnvcs.get(idx);
        slot.deactivate();
        self.lnvcs.free(idx);
        self.stats.lnvcs_deleted.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_deleted.inc();
        }
    }

    /// `open_send(process_id, lnvc_name)`: establishes a send connection,
    /// creating the conversation if needed.  Returns MPF's internal LNVC
    /// identifier for use in `message_send` and `close_send`.
    pub fn open_send(&self, pid: ProcessId, name: &str) -> Result<LnvcId> {
        self.check_pid(pid)?;
        let name = LnvcName::new(name)?;
        let mut reg = self.registry.lock();
        let (idx, created) = self.find_or_create(&mut reg, name)?;
        let slot = self.lnvcs.get(idx);
        let result = (|| {
            let _guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            if ctx.find_send(pid).is_some() {
                return Err(MpfError::AlreadyConnected);
            }
            let Some(conn) = self.sends.alloc() else {
                return Err(MpfError::ConnectionsExhausted);
            };
            self.sends.get(conn).reset(pid.raw(), NIL);
            ctx.link_send(conn);
            Ok(LnvcId::from_parts(idx, slot.generation()))
        })();
        if result.is_err() && created {
            self.rollback_create(&mut reg, name, idx);
        }
        if result.is_ok() {
            self.trace(pid, EventKind::OpenSend, idx, 0, NO_STAMP);
        }
        result
    }

    /// `open_receive(process_id, lnvc_name, protocol)`: establishes a
    /// receive connection with the given protocol, creating the
    /// conversation if needed.
    ///
    /// Per the paper's footnote 3, one process cannot hold both FCFS and
    /// BROADCAST receive connections on an LNVC — a second `open_receive`
    /// by the same process fails (with [`MpfError::ProtocolConflict`] if
    /// the protocols differ, [`MpfError::AlreadyConnected`] otherwise).
    pub fn open_receive(&self, pid: ProcessId, name: &str, protocol: Protocol) -> Result<LnvcId> {
        self.check_pid(pid)?;
        let name = LnvcName::new(name)?;
        let mut reg = self.registry.lock();
        let (idx, created) = self.find_or_create(&mut reg, name)?;
        let slot = self.lnvcs.get(idx);
        let mut freed = 0;
        let result = (|| {
            let _guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            if let Some(existing) = ctx.find_recv(pid) {
                return Err(if self.recvs.get(existing).protocol() != protocol {
                    MpfError::ProtocolConflict
                } else {
                    MpfError::AlreadyConnected
                });
            }
            let Some(conn) = self.recvs.alloc() else {
                return Err(MpfError::ConnectionsExhausted);
            };
            let first_receiver = slot.n_fcfs() + slot.n_bcast() == 0;
            self.recvs.get(conn).reset(pid.raw(), protocol, NIL);
            ctx.link_recv(conn, protocol);
            // Obligation re-evaluation (DESIGN.md): backlog sent before any
            // receiver joined is owed to a *future FCFS receiver*.  If the
            // first receiver ever to join is BROADCAST, it starts at the
            // tail and never sees the backlog; the only receiver that could
            // have taken it chose a protocol that will not.  Drop the
            // obligations so the backlog does not pin pool memory forever.
            if first_receiver && protocol == Protocol::Broadcast {
                ctx.clear_fcfs_obligations();
                freed = ctx.reclaim_consumed();
            }
            Ok(LnvcId::from_parts(idx, slot.generation()))
        })();
        if result.is_err() && created {
            self.rollback_create(&mut reg, name, idx);
        }
        drop(reg);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(freed as u64);
                self.lnvc_tel[idx as usize]
                    .reclaims
                    .fetch_add(freed as u64, Ordering::Relaxed);
            }
            self.mem_waitq.notify_all();
        }
        if result.is_ok() {
            self.trace(pid, EventKind::OpenRecv, idx, 0, NO_STAMP);
        }
        result
    }

    /// Deletes the conversation once its last connection closes: "the LNVC
    /// is deleted and all unread messages are discarded" (§2).  Caller
    /// holds the registry lock and the descriptor lock.
    fn maybe_delete(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        idx: u32,
        slot: &LnvcSlot,
    ) -> bool {
        if slot.total_connections() > 0 {
            return false;
        }
        let ctx = self.ctx(slot);
        ctx.discard_all_messages();
        reg.retain(|_, &mut v| v != idx);
        slot.deactivate();
        self.lnvcs.free(idx);
        self.stats.lnvcs_deleted.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_deleted.inc();
        }
        true
    }

    /// `close_send(process_id, lnvc_id)`: removes the process's send
    /// connection.
    pub fn close_send(&self, pid: ProcessId, id: LnvcId) -> Result<()> {
        self.check_pid(pid)?;
        let mut reg = self.registry.lock();
        let slot = self.slot(id)?;
        {
            let _guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx(slot);
            let conn = ctx.unlink_send(pid).ok_or(MpfError::NotConnected)?;
            self.sends.free(conn);
            self.maybe_delete(&mut reg, id.index(), slot);
        }
        drop(reg);
        // Wake receivers so any blocked on a now-deleted conversation can
        // observe UnknownLnvc; wake memory waiters (messages may be freed).
        slot.waitq.notify_all();
        self.mem_waitq.notify_all();
        self.trace(pid, EventKind::CloseSend, id.index(), 0, NO_STAMP);
        Ok(())
    }

    /// `close_receive(process_id, lnvc_id)`: removes the process's receive
    /// connection.  For a BROADCAST receiver with unread messages this
    /// performs the paper's §3.2 sweep, releasing the receiver's claim on
    /// every message from its head pointer to the tail.
    pub fn close_receive(&self, pid: ProcessId, id: LnvcId) -> Result<()> {
        self.check_pid(pid)?;
        let mut reg = self.registry.lock();
        let slot = self.slot(id)?;
        let mut reclaimed = 0;
        {
            let _guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx(slot);
            let (conn, protocol, head) = ctx.unlink_recv(pid).ok_or(MpfError::NotConnected)?;
            self.recvs.free(conn);
            if protocol == Protocol::Broadcast && head != NIL {
                reclaimed = ctx.release_bcast_claims(head);
            }
            // Obligation re-evaluation (DESIGN.md): when the last FCFS
            // receiver leaves while BROADCAST receivers keep the
            // conversation alive, the queued FCFS deliveries are dropped —
            // the close discards the departing receiver's undelivered
            // backlog exactly as the paper's §3.2 close-time sweep discards
            // a broadcast receiver's unread claims.  Without this the
            // messages are unreclaimable (no one in the current connection
            // set will ever take them, and broadcast joiners never see
            // backlog) and senders eventually wedge on exhaustion.
            if protocol == Protocol::Fcfs && slot.n_fcfs() == 0 && slot.n_bcast() > 0 {
                ctx.clear_fcfs_obligations();
            }
            // Close is the slow path: sweep the whole queue, not just the
            // prefix, so interior messages freed by the sweeps above (or
            // consumed behind a still-owed head) are returned too.
            reclaimed += ctx.reclaim_consumed();
            self.maybe_delete(&mut reg, id.index(), slot);
        }
        drop(reg);
        if reclaimed > 0 {
            self.stats.reclaims.add(reclaimed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(reclaimed as u64);
                self.lnvc_tel[id.index() as usize]
                    .reclaims
                    .fetch_add(reclaimed as u64, Ordering::Relaxed);
            }
        }
        slot.waitq.notify_all();
        self.mem_waitq.notify_all();
        self.trace(pid, EventKind::CloseRecv, id.index(), 0, NO_STAMP);
        Ok(())
    }

    /// Under memory pressure, sweeps `slot`'s whole queue for consumed
    /// interior messages the prefix reclaimer could not reach (e.g. behind
    /// a message still owed a delivery).  Returns messages freed.
    fn sweep_consumed(&self, slot: &LnvcSlot) -> u32 {
        let _guard = slot.lock.lock();
        let freed = self.ctx(slot).reclaim_consumed();
        drop(_guard);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(freed as u64);
            }
            self.mem_waitq.notify_all();
        }
        freed
    }

    /// Allocates a header and a populated block chain, honouring the
    /// exhaustion policy.  Before waiting (or erroring), tries a full-queue
    /// sweep of the destination conversation — the sender-side slow path of
    /// non-prefix reclamation.  Returns `(msg_idx, chain)`.
    fn alloc_message(&self, slot: &LnvcSlot, buf: &[u8]) -> Result<(u32, crate::block::Chain)> {
        loop {
            let ticket = self.mem_waitq.ticket();
            match self.blocks.alloc_chain(buf) {
                Ok(chain) => match self.msgs.alloc() {
                    Some(msg) => return Ok((msg, chain)),
                    None => {
                        // Release the chain before waiting: holding blocks
                        // while blocked on headers could deadlock the
                        // region.
                        self.blocks.free_chain(chain);
                        if self.sweep_consumed(slot) > 0 {
                            continue;
                        }
                        if self.cfg.exhaust_policy == ExhaustPolicy::Error {
                            return Err(MpfError::MessagesExhausted);
                        }
                        self.stats.send_waits.inc();
                        if let Some(t) = self.tel() {
                            t.send_waits.inc();
                        }
                        self.mem_waitq.wait(ticket, self.cfg.wait_strategy);
                    }
                },
                Err(MpfError::BlocksExhausted) => {
                    if self.sweep_consumed(slot) > 0 {
                        continue;
                    }
                    if self.cfg.exhaust_policy == ExhaustPolicy::Error {
                        return Err(MpfError::BlocksExhausted);
                    }
                    self.stats.send_waits.inc();
                    if let Some(t) = self.tel() {
                        t.send_waits.inc();
                    }
                    self.mem_waitq.wait(ticket, self.cfg.wait_strategy);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `message_send(process_id, lnvc_id, send_buffer, buffer_length)`:
    /// asynchronous send.  The payload is copied into linked message
    /// blocks *before* the descriptor lock is taken, then the message is
    /// linked at the FIFO tail and waiting receivers are woken.
    pub fn message_send(&self, pid: ProcessId, id: LnvcId, buf: &[u8]) -> Result<()> {
        self.check_pid(pid)?;
        let slot = self.slot(id)?;
        // Cheap stale-id rejection before paying for allocation; the
        // authoritative check repeats under the lock.
        Self::validate(slot, id)?;
        let (msg_idx, chain) = self.alloc_message(slot, buf)?;
        {
            let _guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            let valid = Self::validate(slot, id)
                .and_then(|()| ctx.find_send(pid).map(|_| ()).ok_or(MpfError::NotConnected));
            if let Err(e) = valid {
                drop(_guard);
                self.blocks.free_chain(chain);
                self.msgs.free(msg_idx);
                self.mem_waitq.notify_all();
                return Err(e);
            }
            let stamp = ctx.enqueue(msg_idx, buf.len(), chain);
            if let Some(lt) = self.ltel(id.index()) {
                // Stamped under the lock, before receivers can see the
                // message, so `sent_at` is final once the lock drops.
                self.msgs.get(msg_idx).set_sent_at(now_nanos());
                lt.sends.fetch_add(1, Ordering::Relaxed);
                lt.bytes_in.fetch_add(buf.len() as u64, Ordering::Relaxed);
                lt.note_depth(u64::from(slot.msg_count()));
            }
            drop(_guard);
            self.trace(pid, EventKind::Send, id.index(), buf.len(), stamp);
        }
        slot.waitq.notify_all();
        self.stats.sends.inc();
        self.stats.bytes_in.add(buf.len() as u64);
        if let Some(t) = self.tel() {
            t.sends.inc();
            t.bytes_in.add(buf.len() as u64);
            t.size_hist.record(buf.len() as u64);
        }
        Ok(())
    }

    /// Core receive step.  With the descriptor locked, finds the next
    /// message for `pid` (per its protocol), copies it out with the lock
    /// *dropped*, completes delivery bookkeeping, and reclaims.  Returns
    /// `Ok(Some(len))`, `Ok(None)` for "nothing available", or an error.
    fn recv_once(&self, pid: ProcessId, id: LnvcId, buf: &mut [u8]) -> Result<Option<usize>> {
        let slot = self.slot(id)?;
        let guard = slot.lock.lock();
        Self::validate(slot, id)?;
        let ctx = self.ctx(slot);
        let Some(conn_idx) = ctx.find_recv(pid) else {
            return Err(MpfError::NotConnected);
        };
        let conn = self.recvs.get(conn_idx);
        let protocol = conn.protocol();
        let found = match protocol {
            Protocol::Fcfs => ctx.fcfs_peek(),
            Protocol::Broadcast => {
                let h = conn.head();
                (h != NIL).then_some(h)
            }
        };
        let Some(msg_idx) = found else {
            return Ok(None);
        };
        let msg = self.msgs.get(msg_idx);
        let len = msg.len();
        if buf.len() < len {
            // Message is left queued (not consumed).
            return Err(MpfError::BufferTooSmall { needed: len });
        }
        match protocol {
            Protocol::Fcfs => msg.set_fcfs_taken(),
            Protocol::Broadcast => conn.set_head(msg.next()),
        }
        msg.begin_copy();
        let head_block = msg.head_block();
        let stamp = msg.stamp();
        let sent_at = msg.sent_at();
        drop(guard);

        self.blocks.read_chain(head_block, len, &mut buf[..len]);
        msg.end_copy();

        let _guard = slot.lock.lock();
        if protocol == Protocol::Broadcast {
            msg.dec_bcast_pending();
        }
        let ctx = self.ctx(slot);
        let freed = ctx.reclaim_prefix();
        drop(_guard);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            self.mem_waitq.notify_all();
        }
        self.stats.receives.inc();
        self.stats.bytes_out.add(len as u64);
        self.note_delivery(id.index(), len, sent_at, freed);
        self.trace(pid, EventKind::Recv, id.index(), len, stamp);
        Ok(Some(len))
    }

    /// `message_receive(process_id, lnvc_id, receive_buffer,
    /// buffer_length)`: blocking receive.  Returns the number of bytes
    /// transferred ("buffer_length is set to the number of bytes
    /// transferred").
    pub fn message_receive(&self, pid: ProcessId, id: LnvcId, buf: &mut [u8]) -> Result<usize> {
        self.check_pid(pid)?;
        loop {
            // Ticket before the check: a send between our check and our
            // wait bumps the sequence and the wait returns immediately.
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            if let Some(len) = self.recv_once(pid, id, buf)? {
                return Ok(len);
            }
            self.stats.recv_waits.inc();
            self.note_recv_wait(id.index());
            self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
            slot.waitq.wait(ticket, self.cfg.wait_strategy);
        }
    }

    /// Non-blocking variant of [`Self::message_receive`]; `Ok(None)` when
    /// no message is available.
    pub fn try_message_receive(
        &self,
        pid: ProcessId,
        id: LnvcId,
        buf: &mut [u8],
    ) -> Result<Option<usize>> {
        self.check_pid(pid)?;
        self.recv_once(pid, id, buf)
    }

    /// Zero-copy blocking receive: the next message's payload is visited
    /// as a sequence of block-sized slices, borrowed straight from the
    /// shared region, with no intermediate copy into a user buffer —
    /// the paper's §5 "direct data transfer" idea applied to the receive
    /// side.  Returns the message length.
    ///
    /// The message is consumed exactly as by [`Self::message_receive`];
    /// the visitor runs outside the descriptor lock (the message is
    /// pinned), so other receivers proceed concurrently.
    pub fn message_receive_scan(
        &self,
        pid: ProcessId,
        id: LnvcId,
        mut visit: impl FnMut(&[u8]),
    ) -> Result<usize> {
        self.check_pid(pid)?;
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            let guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx(slot);
            let Some(conn_idx) = ctx.find_recv(pid) else {
                return Err(MpfError::NotConnected);
            };
            let conn = self.recvs.get(conn_idx);
            let protocol = conn.protocol();
            let found = match protocol {
                Protocol::Fcfs => ctx.fcfs_peek(),
                Protocol::Broadcast => {
                    let h = conn.head();
                    (h != NIL).then_some(h)
                }
            };
            let Some(msg_idx) = found else {
                drop(guard);
                self.stats.recv_waits.inc();
                self.note_recv_wait(id.index());
                self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
                slot.waitq.wait(ticket, self.cfg.wait_strategy);
                continue;
            };
            let msg = self.msgs.get(msg_idx);
            let len = msg.len();
            match protocol {
                Protocol::Fcfs => msg.set_fcfs_taken(),
                Protocol::Broadcast => conn.set_head(msg.next()),
            }
            msg.begin_copy();
            let head_block = msg.head_block();
            let stamp = msg.stamp();
            let sent_at = msg.sent_at();
            drop(guard);

            // SAFETY: the message is published and pinned; blocks of a
            // published message are never written, and reclamation skips
            // pinned messages.
            unsafe { self.blocks.scan_chain(head_block, len, &mut visit) };
            msg.end_copy();

            let _guard = slot.lock.lock();
            if protocol == Protocol::Broadcast {
                msg.dec_bcast_pending();
            }
            let ctx = self.ctx(slot);
            let freed = ctx.reclaim_prefix();
            drop(_guard);
            if freed > 0 {
                self.stats.reclaims.add(freed as u64);
                self.mem_waitq.notify_all();
            }
            self.stats.receives.inc();
            self.stats.bytes_out.add(len as u64);
            self.note_delivery(id.index(), len, sent_at, freed);
            self.trace(pid, EventKind::Recv, id.index(), len, stamp);
            return Ok(len);
        }
    }

    /// Blocking receive into a freshly sized `Vec` (convenience; not in
    /// the paper's C interface).
    pub fn message_receive_vec(&self, pid: ProcessId, id: LnvcId) -> Result<Vec<u8>> {
        self.check_pid(pid)?;
        let mut buf = Vec::new();
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            match self.pending_len(pid, id)? {
                Some(len) => {
                    buf.resize(len.max(1), 0);
                    match self.recv_once(pid, id, &mut buf) {
                        Ok(Some(n)) => {
                            buf.truncate(n);
                            return Ok(buf);
                        }
                        // Another FCFS receiver raced us to it, or a
                        // longer message is now at the head; retry.
                        Ok(None) | Err(MpfError::BufferTooSmall { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    self.stats.recv_waits.inc();
                    self.note_recv_wait(id.index());
                    slot.waitq.wait(ticket, self.cfg.wait_strategy);
                }
            }
        }
    }

    /// Length of the next message `pid` would receive, if any.
    fn pending_len(&self, pid: ProcessId, id: LnvcId) -> Result<Option<usize>> {
        let slot = self.slot(id)?;
        let _guard = slot.lock.lock();
        Self::validate(slot, id)?;
        let ctx = self.ctx(slot);
        let Some(conn_idx) = ctx.find_recv(pid) else {
            return Err(MpfError::NotConnected);
        };
        let conn = self.recvs.get(conn_idx);
        let found = match conn.protocol() {
            Protocol::Fcfs => ctx.fcfs_peek(),
            Protocol::Broadcast => {
                let h = conn.head();
                (h != NIL).then_some(h)
            }
        };
        Ok(found.map(|m| self.msgs.get(m).len()))
    }

    /// `check_receive(process_id, lnvc_id)`: true if a message is waiting
    /// for this process.  For BROADCAST the message is then guaranteed to
    /// be present at the next `message_receive`; for FCFS another receiver
    /// may still take it first (the paper's §2 caution).
    pub fn check_receive(&self, pid: ProcessId, id: LnvcId) -> Result<bool> {
        self.check_pid(pid)?;
        let present = self.pending_len(pid, id)?.is_some();
        self.trace(pid, EventKind::Check, id.index(), 0, NO_STAMP);
        Ok(present)
    }

    /// Polls several conversations; returns the first (in argument order)
    /// with a message waiting for `pid`.  The FCFS caveat of
    /// [`Self::check_receive`] applies per conversation.
    pub fn check_any(&self, pid: ProcessId, ids: &[LnvcId]) -> Result<Option<LnvcId>> {
        self.check_pid(pid)?;
        for &id in ids {
            if self.pending_len(pid, id)?.is_some() {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    /// Blocks until one of the conversations has a message for `pid`;
    /// returns which.  Not a paper primitive — 1987 programs built this
    /// select loop out of `check_receive` (the SOR solver's monitor is the
    /// use case) — but ours parks properly: tickets are taken on every
    /// conversation's wait queue *before* the scan, so a send (or close)
    /// landing after the scan bumps a sequence and the multi-queue wait
    /// returns immediately instead of being lost.
    ///
    /// An empty `ids` slice is rejected with [`MpfError::EmptyWaitSet`]:
    /// waiting on no conversations could never wake.
    pub fn wait_any(&self, pid: ProcessId, ids: &[LnvcId]) -> Result<LnvcId> {
        self.check_pid(pid)?;
        if ids.is_empty() {
            return Err(MpfError::EmptyWaitSet);
        }
        loop {
            let mut entries = Vec::with_capacity(ids.len());
            for &id in ids {
                let slot = self.slot(id)?;
                entries.push((&slot.waitq, slot.waitq.ticket()));
            }
            if let Some(id) = self.check_any(pid, ids)? {
                return Ok(id);
            }
            self.stats.recv_waits.inc();
            if let Some(t) = self.tel() {
                t.recv_waits.inc();
            }
            WaitQueue::wait_many(&entries, self.cfg.wait_strategy);
        }
    }

    /// Audits every structural invariant of the facility.  Intended for
    /// **quiescent points** — moments when no operation is mid-flight (test
    /// boundaries, scheduler-serialized checks in `mpf-check`) — because
    /// in-flight receives legitimately hold partial state (e.g. a broadcast
    /// head advanced before `bcast_pending` is decremented).
    ///
    /// Checks, per live conversation (registry lock, then descriptor lock —
    /// the open/close order):
    ///
    /// * queue is acyclic; `msg_count`, `q_tail`, FIFO stamps agree with a
    ///   full walk;
    /// * connection lists match `n_senders`/`n_fcfs`/`n_bcast`;
    /// * every `bcast_pending` equals the number of broadcast receivers
    ///   whose cursor has not passed the message;
    /// * the shared FCFS cursor has not skipped an owed message;
    /// * no queued message waits on an FCFS delivery the current connection
    ///   set can never produce (the obligation-leak class of bug);
    /// * the queue head is not a fully-consumed, unpinned message (prefix
    ///   reclamation keeps up);
    ///
    /// and globally that pool occupancy (messages, blocks, connections,
    /// LNVC slots) is exactly accounted for by the walks.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let reg = self.registry.lock();
        if reg.len() != self.lnvcs.in_use() as usize {
            return Err(format!(
                "registry has {} names but {} LNVC slots are allocated",
                reg.len(),
                self.lnvcs.in_use()
            ));
        }
        let mut messages = 0u32;
        let mut blocks = 0u64;
        let mut senders = 0u32;
        let mut receivers = 0u32;
        for (name, &idx) in reg.iter() {
            if idx >= self.lnvcs.capacity() {
                return Err(format!("registry entry '{name}' points at bad slot {idx}"));
            }
            let slot = self.lnvcs.get(idx);
            let _guard = slot.lock.lock();
            if !slot.is_active() {
                return Err(format!("registry entry '{name}' points at dead slot {idx}"));
            }
            let audit = self
                .ctx(slot)
                .audit()
                .map_err(|e| format!("LNVC '{name}' (slot {idx}): {e}"))?;
            messages += audit.messages;
            blocks += audit.blocks;
            senders += audit.senders;
            receivers += audit.receivers;
        }
        let msgs_in_use = self.msgs.in_use();
        if messages != msgs_in_use {
            return Err(format!(
                "message headers leaked: queues hold {messages}, pool has {msgs_in_use} allocated"
            ));
        }
        let blocks_in_use = (self.blocks.capacity() - self.blocks.available()) as u64;
        if blocks != blocks_in_use {
            return Err(format!(
                "blocks leaked: queues hold {blocks}, pool has {blocks_in_use} allocated"
            ));
        }
        let sends_in_use = self.sends.in_use();
        if senders != sends_in_use {
            return Err(format!(
                "send connections leaked: lists hold {senders}, pool has {sends_in_use} allocated"
            ));
        }
        let recvs_in_use = self.recvs.in_use();
        if receivers != recvs_in_use {
            return Err(format!(
                "receive connections leaked: lists hold {receivers}, \
                 pool has {recvs_in_use} allocated"
            ));
        }
        Ok(())
    }

    /// Panics with the violation description if [`Self::check_invariants`]
    /// fails.  Convenient at the end of tests.
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("MPF invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facility() -> Mpf {
        Mpf::init(
            MpfConfig::new(8, 8)
                .with_total_blocks(256)
                .with_max_messages(64),
        )
        .unwrap()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    #[test]
    fn loopback_send_receive() {
        // The paper's `base` benchmark shape: one process, loop-back LNVC.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "loop").unwrap();
        let rx = mpf.open_receive(p(0), "loop", Protocol::Fcfs).unwrap();
        assert_eq!(tx, rx, "same conversation, same id");
        mpf.message_send(p(0), tx, b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(mpf.message_receive(p(0), rx, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
    }

    #[test]
    fn open_creates_close_deletes() {
        let mpf = facility();
        assert_eq!(mpf.live_lnvcs(), 0);
        let id = mpf.open_send(p(0), "chat").unwrap();
        assert_eq!(mpf.live_lnvcs(), 1);
        mpf.close_send(p(0), id).unwrap();
        assert_eq!(mpf.live_lnvcs(), 0);
        // Stale id now rejected.
        assert_eq!(
            mpf.message_send(p(0), id, b"x").unwrap_err(),
            MpfError::UnknownLnvc
        );
    }

    #[test]
    fn unread_messages_discarded_on_delete() {
        let mpf = facility();
        let id = mpf.open_send(p(0), "chat").unwrap();
        mpf.message_send(p(0), id, &[1u8; 100]).unwrap();
        let before = mpf.free_blocks();
        assert!(before < 256);
        mpf.close_send(p(0), id).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "deletion frees all blocks");
    }

    #[test]
    fn fcfs_delivers_each_message_once() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "q").unwrap();
        let r1 = mpf.open_receive(p(1), "q", Protocol::Fcfs).unwrap();
        let r2 = mpf.open_receive(p(2), "q", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, b"a").unwrap();
        mpf.message_send(p(0), tx, b"b").unwrap();
        let mut buf = [0u8; 4];
        let n1 = mpf.message_receive(p(1), r1, &mut buf).unwrap();
        let first = buf[..n1].to_vec();
        let n2 = mpf.message_receive(p(2), r2, &mut buf).unwrap();
        let second = buf[..n2].to_vec();
        let mut got = vec![first, second];
        got.sort();
        assert_eq!(got, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(!mpf.check_receive(p(1), r1).unwrap());
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "news").unwrap();
        let r1 = mpf.open_receive(p(1), "news", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "news", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"extra extra").unwrap();
        for (pid, rx) in [(p(1), r1), (p(2), r2)] {
            let v = mpf.message_receive_vec(pid, rx).unwrap();
            assert_eq!(v, b"extra extra");
        }
        // Fully consumed: blocks back on the free list.
        assert_eq!(mpf.free_blocks(), 256);
    }

    #[test]
    fn mixed_protocols_fan_out_correctly() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "mix").unwrap();
        let rf = mpf.open_receive(p(1), "mix", Protocol::Fcfs).unwrap();
        let rb1 = mpf.open_receive(p(2), "mix", Protocol::Broadcast).unwrap();
        let rb2 = mpf.open_receive(p(3), "mix", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"both").unwrap();
        assert_eq!(mpf.message_receive_vec(p(1), rf).unwrap(), b"both");
        assert_eq!(mpf.message_receive_vec(p(2), rb1).unwrap(), b"both");
        assert_eq!(mpf.message_receive_vec(p(3), rb2).unwrap(), b"both");
        assert!(!mpf.check_receive(p(1), rf).unwrap());
    }

    #[test]
    fn check_receive_semantics() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "c").unwrap();
        let rx = mpf.open_receive(p(1), "c", Protocol::Broadcast).unwrap();
        assert!(!mpf.check_receive(p(1), rx).unwrap());
        mpf.message_send(p(0), tx, b"x").unwrap();
        assert!(mpf.check_receive(p(1), rx).unwrap());
    }

    #[test]
    fn buffer_too_small_leaves_message_queued() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "big").unwrap();
        let rx = mpf.open_receive(p(1), "big", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[7u8; 100]).unwrap();
        let mut small = [0u8; 10];
        assert_eq!(
            mpf.try_message_receive(p(1), rx, &mut small).unwrap_err(),
            MpfError::BufferTooSmall { needed: 100 }
        );
        // Still there; a big enough buffer gets it.
        let v = mpf.message_receive_vec(p(1), rx).unwrap();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn double_open_rules() {
        let mpf = facility();
        let _tx = mpf.open_send(p(0), "dup").unwrap();
        assert_eq!(
            mpf.open_send(p(0), "dup").unwrap_err(),
            MpfError::AlreadyConnected
        );
        let _rx = mpf.open_receive(p(0), "dup", Protocol::Fcfs).unwrap();
        assert_eq!(
            mpf.open_receive(p(0), "dup", Protocol::Broadcast)
                .unwrap_err(),
            MpfError::ProtocolConflict,
            "paper footnote 3: no process may use both protocols"
        );
        assert_eq!(
            mpf.open_receive(p(0), "dup", Protocol::Fcfs).unwrap_err(),
            MpfError::AlreadyConnected
        );
    }

    #[test]
    fn send_without_connection_rejected() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "only-mine").unwrap();
        assert_eq!(
            mpf.message_send(p(1), tx, b"x").unwrap_err(),
            MpfError::NotConnected
        );
        let mut buf = [0u8; 4];
        assert_eq!(
            mpf.try_message_receive(p(0), tx, &mut buf).unwrap_err(),
            MpfError::NotConnected
        );
    }

    #[test]
    fn invalid_process_rejected() {
        let mpf = facility();
        let too_big = ProcessId::from_index(99);
        assert_eq!(
            mpf.open_send(too_big, "x").unwrap_err(),
            MpfError::InvalidProcess
        );
    }

    #[test]
    fn messages_sent_before_receiver_joins_are_kept_for_fcfs() {
        // §3.2: messages are lost only at LNVC deletion, not merely because
        // no receiver was connected at send time.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "early").unwrap();
        mpf.message_send(p(0), tx, b"waiting for you").unwrap();
        let rx = mpf.open_receive(p(1), "early", Protocol::Fcfs).unwrap();
        assert_eq!(
            mpf.message_receive_vec(p(1), rx).unwrap(),
            b"waiting for you"
        );
    }

    #[test]
    fn late_broadcast_receiver_misses_earlier_messages() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "talk").unwrap();
        let _r1 = mpf.open_receive(p(1), "talk", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"before").unwrap();
        let r2 = mpf.open_receive(p(2), "talk", Protocol::Broadcast).unwrap();
        assert!(!mpf.check_receive(p(2), r2).unwrap());
        mpf.message_send(p(0), tx, b"after").unwrap();
        assert_eq!(mpf.message_receive_vec(p(2), r2).unwrap(), b"after");
    }

    #[test]
    fn broadcast_close_with_unread_messages_reclaims() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "v").unwrap();
        let r1 = mpf.open_receive(p(1), "v", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "v", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[1u8; 64]).unwrap();
        }
        // r1 reads everything; r2 reads nothing and closes.
        for _ in 0..3 {
            mpf.message_receive_vec(p(1), r1).unwrap();
        }
        assert!(mpf.free_blocks() < 256, "r2's claims pin the messages");
        mpf.close_receive(p(2), r2).unwrap();
        assert_eq!(
            mpf.free_blocks(),
            256,
            "the vexing-problem sweep frees them"
        );
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        mpf.assert_invariants();
    }

    #[test]
    fn name_reuse_after_delete_is_fresh() {
        let mpf = facility();
        let id1 = mpf.open_send(p(0), "temp").unwrap();
        mpf.message_send(p(0), id1, b"old").unwrap();
        mpf.close_send(p(0), id1).unwrap();
        let id2 = mpf.open_receive(p(1), "temp", Protocol::Fcfs).unwrap();
        assert_ne!(id1, id2);
        assert!(
            !mpf.check_receive(p(1), id2).unwrap(),
            "old message is gone"
        );
        assert_eq!(
            mpf.close_send(p(0), id1).unwrap_err(),
            MpfError::UnknownLnvc
        );
        mpf.close_receive(p(1), id2).unwrap();
    }

    #[test]
    fn zero_length_messages_flow() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "z").unwrap();
        let rx = mpf.open_receive(p(1), "z", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, b"").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(mpf.message_receive(p(1), rx, &mut buf).unwrap(), 0);
    }

    #[test]
    fn exhaust_error_policy_reports() {
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_total_blocks(4)
                .with_block_payload(10)
                .with_exhaust_policy(ExhaustPolicy::Error),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "full").unwrap();
        mpf.message_send(p(0), tx, &[0u8; 40]).unwrap();
        assert_eq!(
            mpf.message_send(p(0), tx, &[0u8; 10]).unwrap_err(),
            MpfError::BlocksExhausted
        );
        assert_eq!(
            mpf.message_send(p(0), tx, &[0u8; 1000]).unwrap_err(),
            MpfError::MessageTooLarge { len: 1000, max: 40 }
        );
    }

    #[test]
    fn flow_control_unblocks_sender() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_total_blocks(4)
                .with_block_payload(10),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "fc").unwrap();
        let rx = mpf.open_receive(p(1), "fc", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap(); // region full
        let sent_second = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                mpf.message_send(p(0), tx, &[2u8; 20]).unwrap(); // blocks
                sent_second.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!sent_second.load(Ordering::SeqCst), "sender must block");
            let v = mpf.message_receive_vec(p(1), rx).unwrap();
            assert_eq!(v.len(), 40);
        });
        assert!(sent_second.load(Ordering::SeqCst));
        let v = mpf.message_receive_vec(p(1), rx).unwrap();
        assert_eq!(v, vec![2u8; 20]);
        mpf.assert_invariants();
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "wake").unwrap();
        let rx = mpf.open_receive(p(1), "wake", Protocol::Fcfs).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.message_receive_vec(p(1), rx).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            mpf.message_send(p(0), tx, b"good morning").unwrap();
            assert_eq!(h.join().unwrap(), b"good morning");
        });
        mpf.assert_invariants();
    }

    #[test]
    fn stats_track_traffic() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "s").unwrap();
        let rx = mpf.open_receive(p(1), "s", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let snap = mpf.stats().snapshot();
        assert_eq!(snap.sends, 1);
        assert_eq!(snap.receives, 1);
        assert_eq!(snap.bytes_in, 50);
        assert_eq!(snap.bytes_out, 50);
        assert_eq!(snap.lnvcs_created, 1);
    }

    #[test]
    fn telemetry_tracks_traffic_and_latency() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "tel").unwrap();
        let rx = mpf.open_receive(p(1), "tel", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 70]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let t = mpf.telemetry_snapshot();
        assert_eq!(t.sends, 2);
        assert_eq!(t.receives, 2);
        assert_eq!(t.bytes_in, 120);
        assert_eq!(t.bytes_out, 120);
        assert_eq!(t.lnvcs_created, 1);
        assert_eq!(t.size_hist.count, 2);
        assert_eq!(t.size_hist.sum, 120);
        assert_eq!(t.size_hist.max, 70);
        assert_eq!(t.latency_hist.count, 2, "every delivery samples latency");
        assert!(t.latency_hist.percentile(0.99) >= t.latency_hist.percentile(0.50));
        let lt = mpf.lnvc_telemetry(rx).unwrap();
        assert_eq!(lt.sends, 2);
        assert_eq!(lt.receives, 2);
        assert_eq!(lt.bytes_in, 120);
        assert_eq!(lt.depth_hwm, 2, "both messages were queued at once");
        assert_eq!(lt.latency.count, 2);
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let mpf = Mpf::init(
            MpfConfig::new(4, 4)
                .with_total_blocks(64)
                .with_telemetry(false),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "quiet").unwrap();
        let rx = mpf.open_receive(p(1), "quiet", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let t = mpf.telemetry_snapshot();
        assert_eq!(t.sends, 0);
        assert_eq!(t.receives, 0);
        assert_eq!(t.lnvcs_created, 0);
        assert_eq!(t.latency_hist.count, 0);
        // The classic stats stay on regardless.
        assert_eq!(mpf.stats().snapshot().sends, 1);
    }

    #[test]
    fn telemetry_resets_when_slot_recycled() {
        let mpf = facility();
        let id1 = mpf.open_send(p(0), "cycle").unwrap();
        mpf.message_send(p(0), id1, b"old").unwrap();
        mpf.close_send(p(0), id1).unwrap();
        let id2 = mpf.open_send(p(0), "cycle").unwrap();
        let lt = mpf.lnvc_telemetry(id2).unwrap();
        assert_eq!(lt.sends, 0, "new conversation starts from zero");
        assert_eq!(lt.depth_hwm, 0);
    }

    #[test]
    fn reclaimable_reports_corpses_then_sweep_clears() {
        // Same shape as broadcast_close_with_unread_messages_reclaims, but
        // watching the metric: while r2's claims pin the queue the messages
        // are *live* (not reclaimable); the close converts them to freed
        // memory, never leaving corpses behind.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "rec").unwrap();
        let r1 = mpf.open_receive(p(1), "rec", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "rec", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[1u8; 64]).unwrap();
        }
        for _ in 0..3 {
            mpf.message_receive_vec(p(1), r1).unwrap();
        }
        assert_eq!(
            mpf.reclaimable(),
            Reclaimable::default(),
            "messages pinned by r2's claims are live, not corpses"
        );
        mpf.close_receive(p(2), r2).unwrap();
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        assert_eq!(mpf.free_blocks(), 256);
        mpf.assert_invariants();
    }

    #[test]
    fn fifo_order_preserved_for_single_fcfs_receiver() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "fifo").unwrap();
        let rx = mpf.open_receive(p(1), "fifo", Protocol::Fcfs).unwrap();
        for i in 0..20u8 {
            mpf.message_send(p(0), tx, &[i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(mpf.message_receive_vec(p(1), rx).unwrap(), vec![i]);
        }
    }

    #[test]
    fn check_any_and_wait_any_select_across_conversations() {
        let mpf = facility();
        let a_tx = mpf.open_send(p(0), "sel:a").unwrap();
        let b_tx = mpf.open_send(p(0), "sel:b").unwrap();
        let a_rx = mpf.open_receive(p(1), "sel:a", Protocol::Fcfs).unwrap();
        let b_rx = mpf.open_receive(p(1), "sel:b", Protocol::Fcfs).unwrap();

        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), None);
        mpf.message_send(p(0), b_tx, b"second conversation")
            .unwrap();
        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), Some(b_rx));
        assert_eq!(mpf.wait_any(p(1), &[a_rx, b_rx]).unwrap(), b_rx);

        // Argument order breaks ties.
        mpf.message_send(p(0), a_tx, b"first too").unwrap();
        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), Some(a_rx));

        // A cross-thread wake: wait_any sees a message sent later.
        let v = mpf.message_receive_vec(p(1), a_rx).unwrap();
        assert_eq!(v, b"first too");
        let v = mpf.message_receive_vec(p(1), b_rx).unwrap();
        assert_eq!(v, b"second conversation");
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.wait_any(p(1), &[a_rx, b_rx]).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(15));
            mpf.message_send(p(0), a_tx, b"wake").unwrap();
            assert_eq!(h.join().unwrap(), a_rx);
        });
        mpf.assert_invariants();
    }

    #[test]
    fn zero_copy_scan_sees_block_sized_pieces() {
        let mpf = Mpf::init(
            MpfConfig::new(4, 4)
                .with_block_payload(10)
                .with_total_blocks(64),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "scan").unwrap();
        let rx = mpf.open_receive(p(1), "scan", Protocol::Fcfs).unwrap();
        let payload: Vec<u8> = (0..35u8).collect();
        mpf.message_send(p(0), tx, &payload).unwrap();
        let mut gathered = Vec::new();
        let mut pieces = 0;
        let n = mpf
            .message_receive_scan(p(1), rx, |chunk| {
                pieces += 1;
                gathered.extend_from_slice(chunk);
            })
            .unwrap();
        assert_eq!(n, 35);
        assert_eq!(gathered, payload);
        assert_eq!(pieces, 4, "35 bytes over 10-byte blocks = 4 pieces");
        // Consumed: nothing left, blocks reclaimed.
        assert!(!mpf.check_receive(p(1), rx).unwrap());
        assert_eq!(mpf.free_blocks(), 64);
    }

    #[test]
    fn zero_copy_scan_broadcast_consumes_once_per_receiver() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "scanb").unwrap();
        let r1 = mpf
            .open_receive(p(1), "scanb", Protocol::Broadcast)
            .unwrap();
        let r2 = mpf
            .open_receive(p(2), "scanb", Protocol::Broadcast)
            .unwrap();
        mpf.message_send(p(0), tx, b"to everyone").unwrap();
        for (pid, rx) in [(p(1), r1), (p(2), r2)] {
            let mut got = Vec::new();
            mpf.message_receive_scan(pid, rx, |c| got.extend_from_slice(c))
                .unwrap();
            assert_eq!(got, b"to everyone");
        }
        assert_eq!(mpf.free_blocks(), 256);
    }

    #[test]
    fn tracing_records_the_full_lifecycle() {
        use crate::trace::EventKind;
        let mpf = Mpf::init(MpfConfig::new(4, 4).with_tracing(1024)).unwrap();
        let tx = mpf.open_send(p(0), "traced").unwrap();
        let rx = mpf.open_receive(p(1), "traced", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap();
        mpf.check_receive(p(1), rx).unwrap();
        let mut buf = [0u8; 64];
        mpf.message_receive(p(1), rx, &mut buf).unwrap();
        mpf.close_send(p(0), tx).unwrap();
        mpf.close_receive(p(1), rx).unwrap();

        let log = mpf.take_trace().expect("tracing enabled");
        let kinds: Vec<EventKind> = log.events.iter().map(|e| e.kind).collect();
        for expected in [
            EventKind::OpenSend,
            EventKind::OpenRecv,
            EventKind::Send,
            EventKind::Check,
            EventKind::Recv,
            EventKind::CloseSend,
            EventKind::CloseRecv,
        ] {
            assert!(
                kinds.contains(&expected),
                "missing {expected:?} in {kinds:?}"
            );
        }
        let summary = log.summary();
        assert_eq!(summary.sends, 1);
        assert_eq!(summary.receives, 1);
        assert_eq!(summary.bytes_sent, 40);
        assert_eq!(summary.matched, 1, "send matched to its receive by stamp");
        assert_eq!(mpf.trace_dropped(), 0);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mpf = facility();
        assert!(mpf.take_trace().is_none());
    }

    #[test]
    fn fcfs_obligation_released_when_last_fcfs_receiver_leaves() {
        // The obligation-leak regression: messages queued while an FCFS
        // receiver was connected carry needs_fcfs.  If that receiver closes
        // without reading while broadcast receivers keep the LNVC alive,
        // the obligation could never be satisfied and the messages pinned
        // pool memory forever.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "leak").unwrap();
        let rf = mpf.open_receive(p(1), "leak", Protocol::Fcfs).unwrap();
        let rb = mpf.open_receive(p(2), "leak", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[9u8; 30]).unwrap();
        }
        mpf.close_receive(p(1), rf).unwrap(); // never read anything
        for _ in 0..3 {
            assert_eq!(mpf.message_receive_vec(p(2), rb).unwrap(), vec![9u8; 30]);
        }
        assert_eq!(
            mpf.free_blocks(),
            256,
            "obligation re-evaluation must free the backlog"
        );
        mpf.assert_invariants();
        mpf.close_receive(p(2), rb).unwrap();
        mpf.close_send(p(0), tx).unwrap();
        mpf.assert_invariants();
    }

    #[test]
    fn fcfs_obligation_released_after_broadcast_already_read() {
        // Same leak, other interleaving: the broadcast receiver consumed
        // everything first, so the close-time sweep itself must reclaim.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "leak2").unwrap();
        let rf = mpf.open_receive(p(1), "leak2", Protocol::Fcfs).unwrap();
        let rb = mpf
            .open_receive(p(2), "leak2", Protocol::Broadcast)
            .unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[5u8; 30]).unwrap();
        }
        for _ in 0..3 {
            mpf.message_receive_vec(p(2), rb).unwrap();
        }
        assert!(mpf.free_blocks() < 256, "FCFS obligation pins the queue");
        assert_eq!(
            mpf.reclaimable(),
            Reclaimable::default(),
            "obligated messages are live, not corpses"
        );
        mpf.close_receive(p(1), rf).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "close sweep reclaims in place");
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        mpf.assert_invariants();
    }

    #[test]
    fn blocked_sender_unwedges_when_last_fcfs_receiver_leaves() {
        // Flow-control face of the same bug: the sender is parked on
        // region exhaustion and the only event that can free memory is the
        // FCFS receiver abandoning its obligations.
        let mpf = Mpf::init(
            MpfConfig::new(2, 4)
                .with_total_blocks(4)
                .with_block_payload(10),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "wedge").unwrap();
        let rf = mpf.open_receive(p(1), "wedge", Protocol::Fcfs).unwrap();
        let rb = mpf
            .open_receive(p(2), "wedge", Protocol::Broadcast)
            .unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap(); // region full
        mpf.message_receive_vec(p(2), rb).unwrap(); // bcast claim released
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.message_send(p(0), tx, &[2u8; 10]));
            std::thread::sleep(std::time::Duration::from_millis(30));
            // Pre-fix the sender waits forever: the queued message is owed
            // an FCFS delivery nobody will make.
            mpf.close_receive(p(1), rf).unwrap();
            h.join().unwrap().unwrap();
        });
        assert_eq!(mpf.message_receive_vec(p(2), rb).unwrap(), vec![2u8; 10]);
        mpf.assert_invariants();
    }

    #[test]
    fn backlog_dropped_when_first_receiver_is_broadcast() {
        // Backlog sent before any receiver exists is owed to a future FCFS
        // receiver; if the first receiver to show up is BROADCAST it starts
        // at the tail, so the obligation is dropped and memory reclaimed.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "drop").unwrap();
        mpf.message_send(p(0), tx, &[3u8; 60]).unwrap();
        assert!(mpf.free_blocks() < 256);
        let rb = mpf.open_receive(p(1), "drop", Protocol::Broadcast).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "backlog freed at first join");
        assert!(!mpf.check_receive(p(1), rb).unwrap());
        // A later FCFS joiner also misses the dropped backlog but gets new
        // traffic.
        let rf = mpf.open_receive(p(2), "drop", Protocol::Fcfs).unwrap();
        assert!(!mpf.check_receive(p(2), rf).unwrap());
        mpf.message_send(p(0), tx, b"fresh").unwrap();
        assert_eq!(mpf.message_receive_vec(p(2), rf).unwrap(), b"fresh");
        mpf.assert_invariants();
    }

    #[test]
    fn wait_any_rejects_empty_set() {
        let mpf = facility();
        assert_eq!(
            mpf.wait_any(p(0), &[]).unwrap_err(),
            MpfError::EmptyWaitSet,
            "waiting on nothing would block forever"
        );
    }

    #[test]
    fn wait_any_parks_until_send() {
        // Regression for the busy-poll bug: wait_any must genuinely park
        // (Park strategy) across several conversations' wait queues and
        // wake when any of them gets traffic.
        let mpf =
            Mpf::init(MpfConfig::new(8, 8).with_wait_strategy(mpf_shm::waitq::WaitStrategy::Park))
                .unwrap();
        let a_tx = mpf.open_send(p(0), "park:a").unwrap();
        let a_rx = mpf.open_receive(p(1), "park:a", Protocol::Fcfs).unwrap();
        let b_rx = mpf.open_receive(p(1), "park:b", Protocol::Fcfs).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.wait_any(p(1), &[b_rx, a_rx]).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(40));
            mpf.message_send(p(0), a_tx, b"wake").unwrap();
            assert_eq!(h.join().unwrap(), a_rx);
        });
        mpf.assert_invariants();
    }

    #[test]
    fn slot_recycling_survives_generation_mask_wrap() {
        // Found by the open_close_send microbenchmark: after 2^15 recycles
        // of one slot the id's 15-bit generation wraps; a fresh id must
        // still validate (and the previous generation's id must not).
        let mpf = Mpf::init(MpfConfig::new(1, 2)).unwrap();
        let mut prev = None;
        for round in 0..((1 << 15) + 5) {
            let id = mpf.open_send(p(0), "churn").unwrap();
            if let Some(prev) = prev {
                assert_ne!(prev, id, "round {round}");
            }
            mpf.message_send(p(0), id, b"x")
                .expect("fresh id must validate");
            mpf.close_send(p(0), id).unwrap();
            assert!(
                mpf.message_send(p(0), id, b"x").is_err(),
                "closed id must be stale (round {round})"
            );
            prev = Some(id);
        }
    }

    #[test]
    fn lnvcs_exhausted_when_all_slots_live() {
        let mpf = Mpf::init(MpfConfig::new(2, 4)).unwrap();
        let _a = mpf.open_send(p(0), "a").unwrap();
        let _b = mpf.open_send(p(0), "b").unwrap();
        assert_eq!(
            mpf.open_send(p(0), "c").unwrap_err(),
            MpfError::LnvcsExhausted
        );
    }
}
