//! The MPF facility: the paper's eight programming primitives.
//!
//! Locking discipline (deadlock freedom):
//!
//! 1. `open_*`/`close_*` take the **registry lock first**, then the LNVC
//!    descriptor lock, so name resolution and conversation lifetime can
//!    never disagree.
//! 2. `message_send`/`message_receive`/`check_receive` take only the
//!    descriptor lock (identified by index from the [`LnvcId`]), keeping
//!    the global lock off the data path.
//! 3. Pool free lists are lock-free; wait-queue tickets are taken while
//!    the descriptor lock is held, so wakeups are never lost.
//!
//! Payload copies happen **outside** the descriptor lock: a sender fills
//! its block chain before linking it; a receiver pins the message
//! ([`crate::message::MsgSlot::begin_copy`]), drops the lock, copies, then
//! re-locks to finish delivery bookkeeping.  This is what lets multiple
//! BROADCAST receivers copy one message concurrently — the effect behind
//! the paper's Figure 5.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::Instant;

use mpf_shm::faultplane::{self, FaultSite};
use mpf_shm::idxstack::NIL;
use mpf_shm::pool::Pool;
use mpf_shm::process::ProcessId;
use mpf_shm::ring::{AioRing, RingEntry};
use mpf_shm::telemetry::{
    now_nanos, FacilityTelemetry, LnvcTelSnapshot, LnvcTelemetry, TelSnapshot,
};
use mpf_shm::tracering::{
    TraceEvent, TraceRing, TR_CLOSE_RECV, TR_ENQUEUE, TR_FAULT, TR_OPEN_RECV, TR_RECV, TR_RECV_B,
    TR_SEND, TR_WAKEUP,
};
use mpf_shm::waitq::WaitQueue;

use crate::aio::{AioCompletion, AioStats};
use crate::block::{BlockPool, Chain};
use crate::config::{ExhaustPolicy, MpfConfig};
use crate::conn::{RecvConn, SendConn};
use crate::error::{MpfError, Result};
use crate::lnvc::{Ctx, LnvcSlot};
use crate::message::MsgSlot;
use crate::registry::Registry;
use crate::stats::{MpfStats, Reclaimable};
use crate::trace::{EventKind, TraceLog, Tracer, NO_STAMP};
use crate::types::{LnvcId, LnvcName, Protocol, MAX_LNVC_INDEX};

/// The message passing facility.  One instance is one shared region;
/// share it among "processes" with `Arc` or scoped borrows.
#[derive(Debug)]
pub struct Mpf {
    cfg: MpfConfig,
    lnvcs: Pool<LnvcSlot>,
    msgs: Pool<MsgSlot>,
    blocks: BlockPool,
    sends: Pool<SendConn>,
    recvs: Pool<RecvConn>,
    registry: Registry,
    /// Senders blocked on region exhaustion wait here (flow control).
    mem_waitq: WaitQueue,
    stats: MpfStats,
    /// Region-global telemetry block.  This backend keeps it on the heap;
    /// [`crate::layout`] carves the identical `#[repr(C)]` struct into the
    /// shared region for the IPC backend, so the recording code paths are
    /// the same shape in both.
    tel: FacilityTelemetry,
    /// Per-conversation telemetry, indexed like the LNVC pool.
    lnvc_tel: Box<[LnvcTelemetry]>,
    tracer: Option<Tracer>,
    /// Batched-submission rings, one SQ per process slot (layout segment
    /// "aio sq rings"; heap-held here like every other pool).
    aio_sq: Box<[AioRing]>,
    /// Completion rings, one CQ per process slot ("aio cq rings").
    aio_cq: Box<[AioRing]>,
    /// Monotonic send tick driving 1-in-N latency sampling
    /// ([`MpfConfig::latency_sample_rate`]).
    latency_tick: AtomicU64,
    /// Facility-global send stamp: one serial per published message,
    /// region-wide (mirrors the IPC header's `next_stamp`).  The stamp is
    /// a message's logical identity in telemetry and causal traces.
    next_stamp: AtomicU64,
    /// Per-process causal trace rings (layout segment "trace rings";
    /// heap-held here like the aio rings, carved into the region by the
    /// IPC backend).
    trace_rings: Box<[TraceRing]>,
    /// Per-process causal context: the chain of the process's last
    /// delivery, which its next send continues.
    trace_ctx: Box<[TraceCtx]>,
    /// Monotonic root-chain counter: drives 1-in-N chain sampling
    /// ([`MpfConfig::trace_sample_rate`]) and makes root ids unique.
    trace_tick: AtomicU64,
}

/// One process's causal context: set by every delivery, consumed (with an
/// incremented hop) by the process's next send.  An untraced delivery
/// clears it, so unsampled chains never splice into sampled ones.
#[derive(Debug, Default)]
struct TraceCtx {
    trace: AtomicU64,
    hop: AtomicU32,
}

impl Mpf {
    /// The paper's `init()`: allocates the shared region — every pool and
    /// free list — and returns the facility.
    pub fn init(cfg: MpfConfig) -> Result<Self> {
        if cfg.max_lnvcs == 0 || cfg.max_lnvcs > MAX_LNVC_INDEX + 1 || cfg.max_processes == 0 {
            return Err(MpfError::BadInit);
        }
        // Pay the cycle-counter calibration cost once, up front, instead of
        // on the first timestamped event (see mpf_shm::clock).
        mpf_shm::clock::calibrate();
        let lock_kind = cfg.lock_kind;
        Ok(Self {
            lnvcs: Pool::new_with(cfg.max_lnvcs, |_| LnvcSlot::new(lock_kind)),
            msgs: Pool::new(cfg.max_messages),
            blocks: BlockPool::new(cfg.total_blocks, cfg.block_payload),
            sends: Pool::new(cfg.max_send_conns),
            recvs: Pool::new(cfg.max_recv_conns),
            registry: Registry::new(cfg.max_lnvcs as usize),
            mem_waitq: WaitQueue::new(),
            stats: MpfStats::default(),
            tel: FacilityTelemetry::default(),
            lnvc_tel: (0..cfg.max_lnvcs)
                .map(|_| LnvcTelemetry::default())
                .collect(),
            tracer: (cfg.trace_capacity > 0).then(|| Tracer::new(cfg.trace_capacity)),
            aio_sq: (0..cfg.max_processes).map(|_| AioRing::new()).collect(),
            aio_cq: (0..cfg.max_processes).map(|_| AioRing::new()).collect(),
            latency_tick: AtomicU64::new(0),
            next_stamp: AtomicU64::new(0),
            trace_rings: (0..cfg.max_processes)
                .map(|_| TraceRing::default())
                .collect(),
            trace_ctx: (0..cfg.max_processes)
                .map(|_| TraceCtx::default())
                .collect(),
            trace_tick: AtomicU64::new(0),
            cfg,
        })
    }

    /// The configuration this facility was initialized with.
    pub fn config(&self) -> &MpfConfig {
        &self.cfg
    }

    /// The shared-region memory map implied by the configuration (what a
    /// literal one-`mmap` port would carve; see [`crate::layout`]).
    pub fn region_layout(&self) -> crate::layout::RegionLayout {
        crate::layout::RegionLayout::for_config(&self.cfg)
    }

    /// Live instrumentation counters.
    pub fn stats(&self) -> &MpfStats {
        &self.stats
    }

    /// Point-in-time copy of the region telemetry block (stays zero when
    /// [`MpfConfig::with_telemetry`] turned recording off).
    pub fn telemetry_snapshot(&self) -> TelSnapshot {
        self.tel.snapshot()
    }

    /// Point-in-time copy of one conversation's telemetry.
    pub fn lnvc_telemetry(&self, id: LnvcId) -> Result<LnvcTelSnapshot> {
        let slot = self.slot(id)?;
        let _guard = slot.lock.lock();
        Self::validate(slot, id)?;
        Ok(self.lnvc_tel[id.index() as usize].snapshot())
    }

    /// Pool occupancy held by corpses: queued messages that are fully
    /// consumed and unpinned, awaiting a reclamation sweep.  Distinguishes
    /// "pool full of live messages" from "pool full of garbage a sweep
    /// would free".  Locks registry then each descriptor, like
    /// [`Self::check_invariants`], so call it at quiescent points.
    pub fn reclaimable(&self) -> Reclaimable {
        let reg = self.registry.lock();
        let mut out = Reclaimable::default();
        for &idx in reg.values() {
            let slot = self.lnvcs.get(idx);
            let _guard = slot.lock.lock();
            if !slot.is_active() {
                continue;
            }
            let (messages, blocks) = self.ctx(slot).count_reclaimable();
            out.messages += messages;
            out.blocks += blocks;
        }
        out
    }

    /// The facility telemetry block, when recording is enabled.
    #[inline]
    fn tel(&self) -> Option<&FacilityTelemetry> {
        self.cfg.telemetry.then_some(&self.tel)
    }

    /// One conversation's telemetry block, when recording is enabled.
    #[inline]
    fn ltel(&self, idx: u32) -> Option<&LnvcTelemetry> {
        self.cfg.telemetry.then(|| &self.lnvc_tel[idx as usize])
    }

    /// Whether this send's latency is sampled.  With the default period of
    /// 1 no counter is touched; otherwise one relaxed increment replaces
    /// the two per-message `clock_gettime` calls on unsampled sends.
    #[inline]
    fn sample_latency(&self) -> bool {
        let every = self.cfg.latency_sample_every;
        every <= 1
            || self
                .latency_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(u64::from(every))
    }

    /// Telemetry for one completed delivery: receive counters, bytes, the
    /// send→receive latency sample, and any piggybacked reclamation.
    fn note_delivery(&self, idx: u32, len: usize, sent_at: u64, freed: u32) {
        let Some(t) = self.tel() else { return };
        t.receives.inc();
        t.bytes_out.add(len as u64);
        if freed > 0 {
            t.reclaims.add(freed as u64);
        }
        let lt = &self.lnvc_tel[idx as usize];
        lt.receives.fetch_add(1, Ordering::Relaxed);
        lt.bytes_out.fetch_add(len as u64, Ordering::Relaxed);
        if freed > 0 {
            lt.reclaims.fetch_add(freed as u64, Ordering::Relaxed);
        }
        if sent_at != 0 {
            let lat = now_nanos().saturating_sub(sent_at);
            t.latency_hist.record(lat);
            lt.latency.record(lat);
        }
    }

    /// Telemetry for one blocked receive wait (mirrors `stats.recv_waits`).
    fn note_recv_wait(&self, idx: u32) {
        if let Some(t) = self.tel() {
            t.recv_waits.inc();
            self.lnvc_tel[idx as usize]
                .recv_waits
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Drains the event trace, if tracing was enabled at `init`.
    pub fn take_trace(&self) -> Option<TraceLog> {
        self.tracer.as_ref().map(Tracer::take_log)
    }

    /// Trace events dropped by the capacity bound so far.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map_or(0, Tracer::dropped)
    }

    #[inline]
    fn trace(&self, pid: ProcessId, kind: EventKind, lnvc: u32, len: usize, stamp: u64) {
        if let Some(t) = &self.tracer {
            t.record(pid.raw(), kind, lnvc, len, stamp);
        }
    }

    /// Number of currently existing conversations.
    pub fn live_lnvcs(&self) -> usize {
        self.registry.len()
    }

    /// Approximate free message blocks (diagnostic / flow-control hints).
    pub fn free_blocks(&self) -> u32 {
        self.blocks.available()
    }

    /// Whether a conversation named `name` exists right now.  A hint only:
    /// the answer can be stale the moment the registry lock is released.
    /// Service layers poll this to discover rendezvous points (e.g. an
    /// epoch-suffixed request queue) without creating them as a side
    /// effect the way `open_*` would.
    pub fn lnvc_exists(&self, name: &str) -> bool {
        match LnvcName::new(name) {
            Ok(n) => self.registry.lock().contains_key(&n),
            Err(_) => false,
        }
    }

    /// Queued (undelivered or partially-delivered) message count of a
    /// conversation.  Racy diagnostic: drain protocols use it to decide
    /// whether a queue has quiesced after pausing intake.
    pub fn queue_depth(&self, id: LnvcId) -> Result<u32> {
        let slot = self.slot(id)?;
        Self::validate(slot, id)?;
        Ok(slot.msg_count())
    }

    fn check_pid(&self, pid: ProcessId) -> Result<()> {
        if pid.index() < self.cfg.max_processes as usize {
            Ok(())
        } else {
            Err(MpfError::InvalidProcess)
        }
    }

    fn ctx<'a>(&'a self, lnvc: &'a LnvcSlot) -> Ctx<'a> {
        Ctx {
            lnvc,
            msgs: &self.msgs,
            blocks: &self.blocks,
            sends: &self.sends,
            recvs: &self.recvs,
            tring: None,
            stamps: &self.next_stamp,
        }
    }

    /// [`Self::ctx`] with `pid`'s trace ring attached, so reclaims of
    /// traced messages performed under this borrow are recorded.
    fn ctx_t<'a>(&'a self, lnvc: &'a LnvcSlot, pid: ProcessId) -> Ctx<'a> {
        Ctx {
            tring: self.tracing().then(|| &self.trace_rings[pid.index()]),
            ..self.ctx(lnvc)
        }
    }

    /// Whether causal tracing is enabled at all
    /// ([`MpfConfig::trace_sample_rate`]`(0)` turns it off).
    #[inline]
    fn tracing(&self) -> bool {
        self.cfg.trace_sample_every != 0
    }

    /// Decides the (trace id, hop) of a send by `pid`: continues the chain
    /// of the process's last delivery when there is one, else mints a root
    /// id — sampled 1-in-N, with the owner in bits 40..63, a serial in the
    /// low 40 bits, and the sampled flag in bit 63.  `(0, 0)` = untraced.
    fn trace_for_send(&self, pid: ProcessId) -> (u64, u32) {
        if !self.tracing() {
            return (0, 0);
        }
        let ctx = &self.trace_ctx[pid.index()];
        let inherited = ctx.trace.load(Ordering::Relaxed);
        if inherited != 0 {
            return (inherited, ctx.hop.load(Ordering::Relaxed) + 1);
        }
        let n = self.trace_tick.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(u64::from(self.cfg.trace_sample_every)) {
            self.trace_rings[pid.index()].note_skipped();
            return (0, 0);
        }
        let root = (1u64 << 63) | ((pid.index() as u64 + 1) << 40) | (n & ((1u64 << 40) - 1));
        (root, 0)
    }

    /// Appends one record to `pid`'s trace ring; a no-op for untraced
    /// chains, so callers thread the gate through `trace == 0`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn trace_rec(
        &self,
        pid: ProcessId,
        kind: u32,
        hop: u32,
        trace: u64,
        lnvc: u32,
        stamp: u64,
        arg: u32,
        arg2: u32,
    ) {
        if trace != 0 {
            self.trace_rings[pid.index()].record_at(
                now_nanos(),
                trace,
                stamp,
                kind,
                hop,
                lnvc,
                arg,
                arg2,
            );
        }
    }

    /// Records a receiver-population change marker (`TR_OPEN_RECV` /
    /// `TR_CLOSE_RECV`).  Not sampled: the conformance checker needs the
    /// population timeline even across untraced gaps.
    /// Records an injected fault this process acted on (`TR_FAULT`):
    /// `arg` names the site, `arg2` the magnitude of the typed error it
    /// surfaced as — the pairing the offline conformance checker audits.
    fn trace_fault(&self, pid: ProcessId, site: FaultSite, err: MpfError) {
        if self.tracing() {
            self.trace_rings[pid.index()].record_at(
                now_nanos(),
                0,
                0,
                TR_FAULT,
                0,
                u32::MAX,
                site.code(),
                err.status_code().unsigned_abs(),
            );
        }
    }

    fn trace_pop(&self, pid: ProcessId, kind: u32, lnvc: u32, protocol: Protocol) {
        if self.tracing() {
            let code = match protocol {
                Protocol::Fcfs => 1,
                Protocol::Broadcast => 2,
            };
            self.trace_rings[pid.index()].record_at(now_nanos(), 0, 0, kind, 0, lnvc, code, 0);
        }
    }

    /// Adopts a delivered message's chain as `pid`'s causal context; an
    /// untraced delivery clears it.
    #[inline]
    fn adopt_trace(&self, pid: ProcessId, trace: u64, hop: u32) {
        if self.tracing() {
            let ctx = &self.trace_ctx[pid.index()];
            ctx.trace.store(trace, Ordering::Relaxed);
            ctx.hop.store(hop, Ordering::Relaxed);
        }
    }

    /// The surviving contents of `pid`'s causal trace ring, oldest first
    /// (the `mpf-trace` crate reconstructs chains from these).
    pub fn trace_events(&self, pid: ProcessId) -> Result<Vec<TraceEvent>> {
        self.check_pid(pid)?;
        Ok(self.trace_rings[pid.index()].snapshot())
    }

    /// Occupancy of `pid`'s trace ring: `(records ever written, chains
    /// skipped by sampling)`.
    pub fn trace_ring_stats(&self, pid: ProcessId) -> Result<(u64, u64)> {
        self.check_pid(pid)?;
        let ring = &self.trace_rings[pid.index()];
        Ok((ring.head(), ring.skipped()))
    }

    /// Resolves an id to its slot, without liveness validation (that
    /// happens under the descriptor lock via [`Self::validate`]).
    fn slot(&self, id: LnvcId) -> Result<&LnvcSlot> {
        if id.index() < self.lnvcs.capacity() {
            Ok(self.lnvcs.get(id.index()))
        } else {
            Err(MpfError::UnknownLnvc)
        }
    }

    /// Liveness + generation check; call with the descriptor lock held.
    fn validate(slot: &LnvcSlot, id: LnvcId) -> Result<()> {
        if slot.is_active() && id.matches_generation(slot.generation()) {
            Ok(())
        } else {
            Err(MpfError::UnknownLnvc)
        }
    }

    /// Looks up `name`, creating the conversation if absent (both
    /// `open_send` and `open_receive` create on first use, §2).  Returns
    /// `(index, created)`.  Caller holds the registry lock.
    fn find_or_create(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        name: LnvcName,
    ) -> Result<(u32, bool)> {
        if let Some(&idx) = reg.get(&name) {
            return Ok((idx, false));
        }
        let Some(idx) = self.lnvcs.alloc() else {
            return Err(MpfError::LnvcsExhausted);
        };
        self.lnvcs.get(idx).activate();
        reg.insert(name, idx);
        self.stats.lnvcs_created.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_created.inc();
            // A recycled slot must not inherit its predecessor's numbers.
            self.lnvc_tel[idx as usize].reset();
        }
        Ok((idx, true))
    }

    /// Rolls back a just-created conversation after a failed open.
    fn rollback_create(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        name: LnvcName,
        idx: u32,
    ) {
        reg.remove(&name);
        let slot = self.lnvcs.get(idx);
        slot.deactivate();
        self.lnvcs.free(idx);
        self.stats.lnvcs_deleted.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_deleted.inc();
        }
    }

    /// `open_send(process_id, lnvc_name)`: establishes a send connection,
    /// creating the conversation if needed.  Returns MPF's internal LNVC
    /// identifier for use in `message_send` and `close_send`.
    pub fn open_send(&self, pid: ProcessId, name: &str) -> Result<LnvcId> {
        self.check_pid(pid)?;
        let name = LnvcName::new(name)?;
        let mut reg = self.registry.lock();
        let (idx, created) = self.find_or_create(&mut reg, name)?;
        let slot = self.lnvcs.get(idx);
        let result = (|| {
            let _guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            if ctx.find_send(pid).is_some() {
                return Err(MpfError::AlreadyConnected);
            }
            let Some(conn) = self.sends.alloc() else {
                return Err(MpfError::ConnectionsExhausted);
            };
            self.sends.get(conn).reset(pid.raw(), NIL);
            ctx.link_send(conn);
            Ok(LnvcId::from_parts(idx, slot.generation()))
        })();
        if result.is_err() && created {
            self.rollback_create(&mut reg, name, idx);
        }
        if result.is_ok() {
            self.trace(pid, EventKind::OpenSend, idx, 0, NO_STAMP);
        }
        result
    }

    /// `open_receive(process_id, lnvc_name, protocol)`: establishes a
    /// receive connection with the given protocol, creating the
    /// conversation if needed.
    ///
    /// Per the paper's footnote 3, one process cannot hold both FCFS and
    /// BROADCAST receive connections on an LNVC — a second `open_receive`
    /// by the same process fails (with [`MpfError::ProtocolConflict`] if
    /// the protocols differ, [`MpfError::AlreadyConnected`] otherwise).
    pub fn open_receive(&self, pid: ProcessId, name: &str, protocol: Protocol) -> Result<LnvcId> {
        self.check_pid(pid)?;
        let name = LnvcName::new(name)?;
        let mut reg = self.registry.lock();
        let (idx, created) = self.find_or_create(&mut reg, name)?;
        let slot = self.lnvcs.get(idx);
        let mut freed = 0;
        let result = (|| {
            let _guard = slot.lock.lock();
            let ctx = self.ctx_t(slot, pid);
            if let Some(existing) = ctx.find_recv(pid) {
                return Err(if self.recvs.get(existing).protocol() != protocol {
                    MpfError::ProtocolConflict
                } else {
                    MpfError::AlreadyConnected
                });
            }
            let Some(conn) = self.recvs.alloc() else {
                return Err(MpfError::ConnectionsExhausted);
            };
            let first_receiver = slot.n_fcfs() + slot.n_bcast() == 0;
            self.recvs.get(conn).reset(pid.raw(), protocol, NIL);
            ctx.link_recv(conn, protocol);
            // Obligation re-evaluation (DESIGN.md): backlog sent before any
            // receiver joined is owed to a *future FCFS receiver*.  If the
            // first receiver ever to join is BROADCAST, it starts at the
            // tail and never sees the backlog; the only receiver that could
            // have taken it chose a protocol that will not.  Drop the
            // obligations so the backlog does not pin pool memory forever.
            if first_receiver && protocol == Protocol::Broadcast {
                ctx.clear_fcfs_obligations();
                freed = ctx.reclaim_consumed();
            }
            Ok(LnvcId::from_parts(idx, slot.generation()))
        })();
        if result.is_err() && created {
            self.rollback_create(&mut reg, name, idx);
        }
        drop(reg);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(freed as u64);
                self.lnvc_tel[idx as usize]
                    .reclaims
                    .fetch_add(freed as u64, Ordering::Relaxed);
            }
            self.mem_waitq.notify_all();
        }
        if result.is_ok() {
            self.trace(pid, EventKind::OpenRecv, idx, 0, NO_STAMP);
            self.trace_pop(pid, TR_OPEN_RECV, idx, protocol);
        }
        result
    }

    /// Deletes the conversation once its last connection closes: "the LNVC
    /// is deleted and all unread messages are discarded" (§2).  Caller
    /// holds the registry lock and the descriptor lock.
    fn maybe_delete(
        &self,
        reg: &mut std::collections::HashMap<LnvcName, u32>,
        idx: u32,
        slot: &LnvcSlot,
    ) -> bool {
        if slot.total_connections() > 0 {
            return false;
        }
        let ctx = self.ctx(slot);
        ctx.discard_all_messages();
        reg.retain(|_, &mut v| v != idx);
        slot.deactivate();
        self.lnvcs.free(idx);
        self.stats.lnvcs_deleted.inc();
        if let Some(t) = self.tel() {
            t.lnvcs_deleted.inc();
        }
        true
    }

    /// `close_send(process_id, lnvc_id)`: removes the process's send
    /// connection.
    pub fn close_send(&self, pid: ProcessId, id: LnvcId) -> Result<()> {
        self.check_pid(pid)?;
        let mut reg = self.registry.lock();
        let slot = self.slot(id)?;
        {
            let _guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx(slot);
            let conn = ctx.unlink_send(pid).ok_or(MpfError::NotConnected)?;
            self.sends.free(conn);
            self.maybe_delete(&mut reg, id.index(), slot);
        }
        drop(reg);
        // Wake receivers so any blocked on a now-deleted conversation can
        // observe UnknownLnvc; wake memory waiters (messages may be freed).
        slot.waitq.notify_all();
        self.mem_waitq.notify_all();
        self.trace(pid, EventKind::CloseSend, id.index(), 0, NO_STAMP);
        Ok(())
    }

    /// `close_receive(process_id, lnvc_id)`: removes the process's receive
    /// connection.  For a BROADCAST receiver with unread messages this
    /// performs the paper's §3.2 sweep, releasing the receiver's claim on
    /// every message from its head pointer to the tail.
    pub fn close_receive(&self, pid: ProcessId, id: LnvcId) -> Result<()> {
        self.check_pid(pid)?;
        let mut reg = self.registry.lock();
        let slot = self.slot(id)?;
        let mut reclaimed = 0;
        let closed_protocol;
        {
            let _guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx_t(slot, pid);
            let (conn, protocol, head) = ctx.unlink_recv(pid).ok_or(MpfError::NotConnected)?;
            closed_protocol = protocol;
            self.recvs.free(conn);
            if protocol == Protocol::Broadcast && head != NIL {
                reclaimed = ctx.release_bcast_claims(head);
            }
            // Obligation re-evaluation (DESIGN.md): when the last FCFS
            // receiver leaves while BROADCAST receivers keep the
            // conversation alive, the queued FCFS deliveries are dropped —
            // the close discards the departing receiver's undelivered
            // backlog exactly as the paper's §3.2 close-time sweep discards
            // a broadcast receiver's unread claims.  Without this the
            // messages are unreclaimable (no one in the current connection
            // set will ever take them, and broadcast joiners never see
            // backlog) and senders eventually wedge on exhaustion.
            if protocol == Protocol::Fcfs && slot.n_fcfs() == 0 && slot.n_bcast() > 0 {
                ctx.clear_fcfs_obligations();
            }
            // Close is the slow path: sweep the whole queue, not just the
            // prefix, so interior messages freed by the sweeps above (or
            // consumed behind a still-owed head) are returned too.
            reclaimed += ctx.reclaim_consumed();
            self.maybe_delete(&mut reg, id.index(), slot);
        }
        drop(reg);
        if reclaimed > 0 {
            self.stats.reclaims.add(reclaimed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(reclaimed as u64);
                self.lnvc_tel[id.index() as usize]
                    .reclaims
                    .fetch_add(reclaimed as u64, Ordering::Relaxed);
            }
        }
        slot.waitq.notify_all();
        self.mem_waitq.notify_all();
        self.trace(pid, EventKind::CloseRecv, id.index(), 0, NO_STAMP);
        self.trace_pop(pid, TR_CLOSE_RECV, id.index(), closed_protocol);
        Ok(())
    }

    /// Under memory pressure, sweeps `slot`'s whole queue for consumed
    /// interior messages the prefix reclaimer could not reach (e.g. behind
    /// a message still owed a delivery).  Returns messages freed.
    fn sweep_consumed(&self, slot: &LnvcSlot) -> u32 {
        let _guard = slot.lock.lock();
        let freed = self.ctx(slot).reclaim_consumed();
        drop(_guard);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            if let Some(t) = self.tel() {
                t.reclaims.add(freed as u64);
            }
            self.mem_waitq.notify_all();
        }
        freed
    }

    /// Allocates a header and a populated block chain, honouring the
    /// exhaustion policy.  Before waiting (or erroring), tries a full-queue
    /// sweep of the destination conversation — the sender-side slow path of
    /// non-prefix reclamation.  Returns `(msg_idx, chain)`.
    fn alloc_message(
        &self,
        pid: ProcessId,
        slot: &LnvcSlot,
        buf: &[u8],
    ) -> Result<(u32, crate::block::Chain)> {
        self.alloc_message_deadline(pid, slot, buf, None)
    }

    /// [`Self::alloc_message`] bounded by `deadline`: under
    /// [`ExhaustPolicy::Wait`] the exhaustion wait times out with
    /// [`MpfError::TimedOut`] and nothing allocated.
    fn alloc_message_deadline(
        &self,
        pid: ProcessId,
        slot: &LnvcSlot,
        buf: &[u8],
        deadline: Option<Instant>,
    ) -> Result<(u32, crate::block::Chain)> {
        // An injected pool-exhaustion fault behaves exactly like a real
        // one-shot exhaustion: typed error under `ExhaustPolicy::Error`,
        // one bounded wait round under `Wait`.
        let mut injected = faultplane::inject(FaultSite::PoolExhaust);
        loop {
            let ticket = self.mem_waitq.ticket();
            let attempt = if injected {
                Err(MpfError::BlocksExhausted)
            } else {
                self.blocks.alloc_chain(buf)
            };
            match attempt {
                Ok(chain) => match self.msgs.alloc() {
                    Some(msg) => return Ok((msg, chain)),
                    None => {
                        // Release the chain before waiting: holding blocks
                        // while blocked on headers could deadlock the
                        // region.
                        self.blocks.free_chain(chain);
                        if self.sweep_consumed(slot) > 0 {
                            continue;
                        }
                        if self.cfg.exhaust_policy == ExhaustPolicy::Error {
                            return Err(MpfError::MessagesExhausted);
                        }
                        self.stats.send_waits.inc();
                        if let Some(t) = self.tel() {
                            t.send_waits.inc();
                        }
                        if !self
                            .mem_waitq
                            .wait_deadline(ticket, self.cfg.wait_strategy, deadline)
                        {
                            return Err(MpfError::TimedOut);
                        }
                    }
                },
                Err(MpfError::BlocksExhausted) => {
                    if injected {
                        injected = false;
                        if self.cfg.exhaust_policy == ExhaustPolicy::Error {
                            self.trace_fault(
                                pid,
                                FaultSite::PoolExhaust,
                                MpfError::BlocksExhausted,
                            );
                            return Err(MpfError::BlocksExhausted);
                        }
                        // Wait policy: the fault costs one bounded nap
                        // (nothing will notify — memory was never truly
                        // exhausted), then allocation proceeds normally
                        // unless the caller's real deadline expired.
                        self.stats.send_waits.inc();
                        let nap = Instant::now() + std::time::Duration::from_millis(2);
                        self.mem_waitq.wait_deadline(
                            ticket,
                            self.cfg.wait_strategy,
                            Some(deadline.map_or(nap, |d| d.min(nap))),
                        );
                        if deadline.is_some_and(|d| Instant::now() >= d) {
                            self.trace_fault(pid, FaultSite::PoolExhaust, MpfError::TimedOut);
                            return Err(MpfError::TimedOut);
                        }
                        continue;
                    }
                    if self.sweep_consumed(slot) > 0 {
                        continue;
                    }
                    if self.cfg.exhaust_policy == ExhaustPolicy::Error {
                        return Err(MpfError::BlocksExhausted);
                    }
                    self.stats.send_waits.inc();
                    if let Some(t) = self.tel() {
                        t.send_waits.inc();
                    }
                    if !self
                        .mem_waitq
                        .wait_deadline(ticket, self.cfg.wait_strategy, deadline)
                    {
                        return Err(MpfError::TimedOut);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// `message_send(process_id, lnvc_id, send_buffer, buffer_length)`:
    /// asynchronous send.  The payload is copied into linked message
    /// blocks *before* the descriptor lock is taken, then the message is
    /// linked at the FIFO tail and waiting receivers are woken.
    pub fn message_send(&self, pid: ProcessId, id: LnvcId, buf: &[u8]) -> Result<()> {
        self.check_pid(pid)?;
        let slot = self.slot(id)?;
        // Cheap stale-id rejection before paying for allocation; the
        // authoritative check repeats under the lock.
        Self::validate(slot, id)?;
        let (msg_idx, chain) = self.alloc_message(pid, slot, buf)?;
        self.publish_message(pid, id, msg_idx, chain, buf)
    }

    /// [`Self::message_send`] bounded by `deadline`: under region
    /// exhaustion with [`ExhaustPolicy::Wait`] the sender blocks only
    /// until the deadline, then fails with [`MpfError::TimedOut`] and
    /// **nothing enqueued** (safe to retry or drop).  `None` blocks
    /// indefinitely, exactly like `message_send`.
    pub fn send_deadline(
        &self,
        pid: ProcessId,
        id: LnvcId,
        buf: &[u8],
        deadline: Option<Instant>,
    ) -> Result<()> {
        self.check_pid(pid)?;
        let slot = self.slot(id)?;
        Self::validate(slot, id)?;
        let (msg_idx, chain) = self.alloc_message_deadline(pid, slot, buf, deadline)?;
        self.publish_message(pid, id, msg_idx, chain, buf)
    }

    /// Non-blocking send: `Ok(false)` when the region is exhausted right
    /// now (the async layer retries after a memory wakeup instead of
    /// parking the thread).  Connection/validity errors still fail.
    pub fn try_message_send(&self, pid: ProcessId, id: LnvcId, buf: &[u8]) -> Result<bool> {
        self.check_pid(pid)?;
        let slot = self.slot(id)?;
        Self::validate(slot, id)?;
        match self.try_alloc_message(slot, buf)? {
            Some((msg_idx, chain)) => {
                self.publish_message(pid, id, msg_idx, chain, buf)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// One non-blocking pass of [`Self::alloc_message`]: tries the pools,
    /// sweeps the destination queue once on exhaustion, and reports
    /// `Ok(None)` instead of waiting.
    fn try_alloc_message(&self, slot: &LnvcSlot, buf: &[u8]) -> Result<Option<(u32, Chain)>> {
        let mut swept = false;
        loop {
            match self.blocks.alloc_chain(buf) {
                Ok(chain) => match self.msgs.alloc() {
                    Some(msg) => return Ok(Some((msg, chain))),
                    None => {
                        self.blocks.free_chain(chain);
                        if !swept && self.sweep_consumed(slot) > 0 {
                            swept = true;
                            continue;
                        }
                        return Ok(None);
                    }
                },
                Err(MpfError::BlocksExhausted) => {
                    if !swept && self.sweep_consumed(slot) > 0 {
                        swept = true;
                        continue;
                    }
                    return Ok(None);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Publishes an allocated message: links it at the FIFO tail under the
    /// descriptor lock, wakes receivers, and records send bookkeeping.
    /// Frees the allocation if the conversation vanished in between.
    fn publish_message(
        &self,
        pid: ProcessId,
        id: LnvcId,
        msg_idx: u32,
        chain: Chain,
        buf: &[u8],
    ) -> Result<()> {
        let slot = self.slot(id)?;
        {
            let _guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            let valid = Self::validate(slot, id)
                .and_then(|()| ctx.find_send(pid).map(|_| ()).ok_or(MpfError::NotConnected));
            if let Err(e) = valid {
                drop(_guard);
                self.blocks.free_chain(chain);
                self.msgs.free(msg_idx);
                self.mem_waitq.notify_all();
                return Err(e);
            }
            let stamp = ctx.enqueue(msg_idx, buf.len(), chain);
            // Causal id stamped under the lock, before receivers can see
            // the message; obligations are fixed at this instant, so the
            // packed arg2 is what the conformance checker audits against.
            let (trace, hop) = self.trace_for_send(pid);
            let obligations = {
                let n_bcast = slot.n_bcast();
                let needs_fcfs = slot.n_fcfs() > 0 || n_bcast == 0;
                (u32::from(needs_fcfs) << 16) | n_bcast
            };
            if trace != 0 {
                self.msgs.get(msg_idx).set_trace(trace, hop);
            }
            if let Some(lt) = self.ltel(id.index()) {
                // Stamped under the lock, before receivers can see the
                // message, so `sent_at` is final once the lock drops.  An
                // unsampled message is stamped 0 (the pooled header may
                // carry a stale timestamp) and skips latency recording.
                let sent_at = if self.sample_latency() {
                    now_nanos()
                } else {
                    0
                };
                self.msgs.get(msg_idx).set_sent_at(sent_at);
                lt.sends.fetch_add(1, Ordering::Relaxed);
                lt.bytes_in.fetch_add(buf.len() as u64, Ordering::Relaxed);
                lt.note_depth(u64::from(slot.msg_count()));
            }
            drop(_guard);
            self.trace(pid, EventKind::Send, id.index(), buf.len(), stamp);
            self.trace_rec(
                pid,
                TR_SEND,
                hop,
                trace,
                id.index(),
                stamp,
                buf.len() as u32,
                obligations,
            );
        }
        slot.waitq.notify_all();
        self.stats.sends.inc();
        self.stats.bytes_in.add(buf.len() as u64);
        if let Some(t) = self.tel() {
            t.sends.inc();
            t.bytes_in.add(buf.len() as u64);
            t.size_hist.record(buf.len() as u64);
        }
        Ok(())
    }

    /// Core receive step.  With the descriptor locked, finds the next
    /// message for `pid` (per its protocol), copies it out with the lock
    /// *dropped*, completes delivery bookkeeping, and reclaims.  Returns
    /// `Ok(Some(len))`, `Ok(None)` for "nothing available", or an error.
    fn recv_once(&self, pid: ProcessId, id: LnvcId, buf: &mut [u8]) -> Result<Option<usize>> {
        let slot = self.slot(id)?;
        let guard = slot.lock.lock();
        Self::validate(slot, id)?;
        let ctx = self.ctx(slot);
        let Some(conn_idx) = ctx.find_recv(pid) else {
            return Err(MpfError::NotConnected);
        };
        let conn = self.recvs.get(conn_idx);
        let protocol = conn.protocol();
        let found = match protocol {
            Protocol::Fcfs => ctx.fcfs_peek(),
            Protocol::Broadcast => {
                let h = conn.head();
                (h != NIL).then_some(h)
            }
        };
        let Some(msg_idx) = found else {
            return Ok(None);
        };
        let msg = self.msgs.get(msg_idx);
        let len = msg.len();
        if buf.len() < len {
            // Message is left queued (not consumed).
            return Err(MpfError::BufferTooSmall { needed: len });
        }
        match protocol {
            Protocol::Fcfs => msg.set_fcfs_taken(),
            Protocol::Broadcast => conn.set_head(msg.next()),
        }
        msg.begin_copy();
        let head_block = msg.head_block();
        let stamp = msg.stamp();
        let sent_at = msg.sent_at();
        let (trace, hop) = (msg.trace(), msg.hop());
        drop(guard);

        self.blocks.read_chain(head_block, len, &mut buf[..len]);
        msg.end_copy();

        // Delivery is claimed; record it before the reclamation sweep can
        // append this message's TR_RECLAIM, so ring order matches logic.
        self.adopt_trace(pid, trace, hop);
        let kind = match protocol {
            Protocol::Fcfs => TR_RECV,
            Protocol::Broadcast => TR_RECV_B,
        };
        self.trace_rec(pid, kind, hop, trace, id.index(), stamp, len as u32, 0);

        let _guard = slot.lock.lock();
        if protocol == Protocol::Broadcast {
            msg.dec_bcast_pending();
        }
        let ctx = self.ctx_t(slot, pid);
        let freed = ctx.reclaim_prefix();
        drop(_guard);
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            self.mem_waitq.notify_all();
        }
        self.stats.receives.inc();
        self.stats.bytes_out.add(len as u64);
        self.note_delivery(id.index(), len, sent_at, freed);
        self.trace(pid, EventKind::Recv, id.index(), len, stamp);
        Ok(Some(len))
    }

    /// `message_receive(process_id, lnvc_id, receive_buffer,
    /// buffer_length)`: blocking receive.  Returns the number of bytes
    /// transferred ("buffer_length is set to the number of bytes
    /// transferred").
    pub fn message_receive(&self, pid: ProcessId, id: LnvcId, buf: &mut [u8]) -> Result<usize> {
        self.check_pid(pid)?;
        let mut waited = false;
        loop {
            // Ticket before the check: a send between our check and our
            // wait bumps the sequence and the wait returns immediately.
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            if let Some(len) = self.recv_once(pid, id, buf)? {
                if waited && self.tracing() {
                    // The delivery that ended the block; its chain is the
                    // context recv_once just adopted.
                    let ctx = &self.trace_ctx[pid.index()];
                    self.trace_rec(
                        pid,
                        TR_WAKEUP,
                        ctx.hop.load(Ordering::Relaxed),
                        ctx.trace.load(Ordering::Relaxed),
                        id.index(),
                        0,
                        len as u32,
                        0,
                    );
                }
                return Ok(len);
            }
            waited = true;
            self.stats.recv_waits.inc();
            self.note_recv_wait(id.index());
            self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
            slot.waitq.wait(ticket, self.cfg.wait_strategy);
        }
    }

    /// [`Self::message_receive`] bounded by `deadline`: blocks until a
    /// message is delivered or the deadline passes, then fails with
    /// [`MpfError::TimedOut`] and nothing consumed.  A delivery racing
    /// the deadline wins — the queue is always re-checked after the
    /// final wait.  `None` blocks indefinitely.
    pub fn recv_deadline(
        &self,
        pid: ProcessId,
        id: LnvcId,
        buf: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<usize> {
        self.check_pid(pid)?;
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            if let Some(len) = self.recv_once(pid, id, buf)? {
                return Ok(len);
            }
            self.stats.recv_waits.inc();
            self.note_recv_wait(id.index());
            self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
            if !slot
                .waitq
                .wait_deadline(ticket, self.cfg.wait_strategy, deadline)
            {
                // Deadline: one final non-blocking look so a delivery
                // that raced the expiry is delivered, not timed out.
                if let Some(len) = self.recv_once(pid, id, buf)? {
                    return Ok(len);
                }
                return Err(MpfError::TimedOut);
            }
        }
    }

    /// Non-blocking variant of [`Self::message_receive`]; `Ok(None)` when
    /// no message is available.
    pub fn try_message_receive(
        &self,
        pid: ProcessId,
        id: LnvcId,
        buf: &mut [u8],
    ) -> Result<Option<usize>> {
        self.check_pid(pid)?;
        self.recv_once(pid, id, buf)
    }

    /// Zero-copy blocking receive: the next message's payload is visited
    /// as a sequence of block-sized slices, borrowed straight from the
    /// shared region, with no intermediate copy into a user buffer —
    /// the paper's §5 "direct data transfer" idea applied to the receive
    /// side.  Returns the message length.
    ///
    /// The message is consumed exactly as by [`Self::message_receive`];
    /// the visitor runs outside the descriptor lock (the message is
    /// pinned), so other receivers proceed concurrently.
    pub fn message_receive_scan(
        &self,
        pid: ProcessId,
        id: LnvcId,
        mut visit: impl FnMut(&[u8]),
    ) -> Result<usize> {
        self.check_pid(pid)?;
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            let guard = slot.lock.lock();
            Self::validate(slot, id)?;
            let ctx = self.ctx(slot);
            let Some(conn_idx) = ctx.find_recv(pid) else {
                return Err(MpfError::NotConnected);
            };
            let conn = self.recvs.get(conn_idx);
            let protocol = conn.protocol();
            let found = match protocol {
                Protocol::Fcfs => ctx.fcfs_peek(),
                Protocol::Broadcast => {
                    let h = conn.head();
                    (h != NIL).then_some(h)
                }
            };
            let Some(msg_idx) = found else {
                drop(guard);
                self.stats.recv_waits.inc();
                self.note_recv_wait(id.index());
                self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
                slot.waitq.wait(ticket, self.cfg.wait_strategy);
                continue;
            };
            let msg = self.msgs.get(msg_idx);
            let len = msg.len();
            match protocol {
                Protocol::Fcfs => msg.set_fcfs_taken(),
                Protocol::Broadcast => conn.set_head(msg.next()),
            }
            msg.begin_copy();
            let head_block = msg.head_block();
            let stamp = msg.stamp();
            let sent_at = msg.sent_at();
            let (trace, hop) = (msg.trace(), msg.hop());
            drop(guard);

            // SAFETY: the message is published and pinned; blocks of a
            // published message are never written, and reclamation skips
            // pinned messages.
            unsafe { self.blocks.scan_chain(head_block, len, &mut visit) };
            msg.end_copy();

            self.adopt_trace(pid, trace, hop);
            let kind = match protocol {
                Protocol::Fcfs => TR_RECV,
                Protocol::Broadcast => TR_RECV_B,
            };
            self.trace_rec(pid, kind, hop, trace, id.index(), stamp, len as u32, 0);

            let _guard = slot.lock.lock();
            if protocol == Protocol::Broadcast {
                msg.dec_bcast_pending();
            }
            let ctx = self.ctx_t(slot, pid);
            let freed = ctx.reclaim_prefix();
            drop(_guard);
            if freed > 0 {
                self.stats.reclaims.add(freed as u64);
                self.mem_waitq.notify_all();
            }
            self.stats.receives.inc();
            self.stats.bytes_out.add(len as u64);
            self.note_delivery(id.index(), len, sent_at, freed);
            self.trace(pid, EventKind::Recv, id.index(), len, stamp);
            return Ok(len);
        }
    }

    /// Blocking receive into a freshly sized `Vec` (convenience; not in
    /// the paper's C interface).
    pub fn message_receive_vec(&self, pid: ProcessId, id: LnvcId) -> Result<Vec<u8>> {
        self.check_pid(pid)?;
        let mut buf = Vec::new();
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            match self.pending_len(pid, id)? {
                Some(len) => {
                    buf.resize(len.max(1), 0);
                    match self.recv_once(pid, id, &mut buf) {
                        Ok(Some(n)) => {
                            buf.truncate(n);
                            return Ok(buf);
                        }
                        // Another FCFS receiver raced us to it, or a
                        // longer message is now at the head; retry.
                        Ok(None) | Err(MpfError::BufferTooSmall { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    self.stats.recv_waits.inc();
                    self.note_recv_wait(id.index());
                    slot.waitq.wait(ticket, self.cfg.wait_strategy);
                }
            }
        }
    }

    /// Length of the next message `pid` would receive, if any.
    fn pending_len(&self, pid: ProcessId, id: LnvcId) -> Result<Option<usize>> {
        let slot = self.slot(id)?;
        let _guard = slot.lock.lock();
        Self::validate(slot, id)?;
        let ctx = self.ctx(slot);
        let Some(conn_idx) = ctx.find_recv(pid) else {
            return Err(MpfError::NotConnected);
        };
        let conn = self.recvs.get(conn_idx);
        let found = match conn.protocol() {
            Protocol::Fcfs => ctx.fcfs_peek(),
            Protocol::Broadcast => {
                let h = conn.head();
                (h != NIL).then_some(h)
            }
        };
        Ok(found.map(|m| self.msgs.get(m).len()))
    }

    /// `check_receive(process_id, lnvc_id)`: true if a message is waiting
    /// for this process.  For BROADCAST the message is then guaranteed to
    /// be present at the next `message_receive`; for FCFS another receiver
    /// may still take it first (the paper's §2 caution).
    pub fn check_receive(&self, pid: ProcessId, id: LnvcId) -> Result<bool> {
        self.check_pid(pid)?;
        let present = self.pending_len(pid, id)?.is_some();
        self.trace(pid, EventKind::Check, id.index(), 0, NO_STAMP);
        Ok(present)
    }

    /// Polls several conversations; returns the first (in argument order)
    /// with a message waiting for `pid`.  The FCFS caveat of
    /// [`Self::check_receive`] applies per conversation.
    pub fn check_any(&self, pid: ProcessId, ids: &[LnvcId]) -> Result<Option<LnvcId>> {
        self.check_pid(pid)?;
        for &id in ids {
            if self.pending_len(pid, id)?.is_some() {
                return Ok(Some(id));
            }
        }
        Ok(None)
    }

    /// Blocks until one of the conversations has a message for `pid`;
    /// returns which.  Not a paper primitive — 1987 programs built this
    /// select loop out of `check_receive` (the SOR solver's monitor is the
    /// use case) — but ours parks properly: tickets are taken on every
    /// conversation's wait queue *before* the scan, so a send (or close)
    /// landing after the scan bumps a sequence and the multi-queue wait
    /// returns immediately instead of being lost.
    ///
    /// An empty `ids` slice is rejected with [`MpfError::EmptyWaitSet`]:
    /// waiting on no conversations could never wake.
    pub fn wait_any(&self, pid: ProcessId, ids: &[LnvcId]) -> Result<LnvcId> {
        self.check_pid(pid)?;
        if ids.is_empty() {
            return Err(MpfError::EmptyWaitSet);
        }
        loop {
            let mut entries = Vec::with_capacity(ids.len());
            for &id in ids {
                let slot = self.slot(id)?;
                entries.push((&slot.waitq, slot.waitq.ticket()));
            }
            if let Some(id) = self.check_any(pid, ids)? {
                return Ok(id);
            }
            self.stats.recv_waits.inc();
            if let Some(t) = self.tel() {
                t.recv_waits.inc();
            }
            WaitQueue::wait_many(&entries, self.cfg.wait_strategy);
        }
    }

    /// [`Self::wait_any`] bounded by `deadline`: [`MpfError::TimedOut`]
    /// if no conversation has a message for `pid` by then.  A message
    /// arriving as the deadline expires is reported, not timed out (the
    /// set is re-polled after the final wait).
    pub fn wait_any_deadline(
        &self,
        pid: ProcessId,
        ids: &[LnvcId],
        deadline: Option<Instant>,
    ) -> Result<LnvcId> {
        self.check_pid(pid)?;
        if ids.is_empty() {
            return Err(MpfError::EmptyWaitSet);
        }
        loop {
            let mut entries = Vec::with_capacity(ids.len());
            for &id in ids {
                let slot = self.slot(id)?;
                entries.push((&slot.waitq, slot.waitq.ticket()));
            }
            if let Some(id) = self.check_any(pid, ids)? {
                return Ok(id);
            }
            self.stats.recv_waits.inc();
            if let Some(t) = self.tel() {
                t.recv_waits.inc();
            }
            if !WaitQueue::wait_many_deadline(&entries, self.cfg.wait_strategy, deadline) {
                if let Some(id) = self.check_any(pid, ids)? {
                    return Ok(id);
                }
                return Err(MpfError::TimedOut);
            }
        }
    }

    // ------------------------------------------------------------------
    // Batched submission (aio): SQ/CQ rings, one doorbell per batch.
    // ------------------------------------------------------------------

    /// Stages up to `payloads.len()` send descriptors in `pid`'s
    /// submission ring and rings the doorbell **once**.  Each descriptor's
    /// `user_data` token is its index within `payloads`.
    ///
    /// Returns the number staged: allocation follows the exhaustion policy
    /// (it may block under [`ExhaustPolicy::Wait`]), and a full ring stops
    /// the batch early — a partial submit.  An empty batch is `Ok(0)` with
    /// no doorbell; a ring with no room for even the first descriptor is
    /// [`MpfError::WouldBlock`] (drain, then resubmit the rest).
    pub fn submit_sends(&self, pid: ProcessId, id: LnvcId, payloads: &[&[u8]]) -> Result<usize> {
        self.submit_sends_deadline(pid, id, payloads, None)
    }

    /// [`Self::submit_sends`] bounded by `deadline`: exhaustion waits
    /// under [`ExhaustPolicy::Wait`] time out, surfacing
    /// [`MpfError::TimedOut`] when nothing was staged (partial progress
    /// still wins otherwise).
    pub fn submit_sends_deadline(
        &self,
        pid: ProcessId,
        id: LnvcId,
        payloads: &[&[u8]],
        deadline: Option<Instant>,
    ) -> Result<usize> {
        self.check_pid(pid)?;
        let slot = self.slot(id)?;
        Self::validate(slot, id)?;
        if payloads.is_empty() {
            return Ok(0);
        }
        let sq = &self.aio_sq[pid.index()];
        let mut submitted = 0usize;
        for (i, buf) in payloads.iter().enumerate() {
            if sq.is_full() {
                break;
            }
            let (msg_idx, chain) = match self.alloc_message_deadline(pid, slot, buf, deadline) {
                Ok(alloc) => alloc,
                // Keep what was already staged; surface the error only
                // when nothing was (callers see partial progress first).
                Err(e) if submitted == 0 => return Err(e),
                Err(_) => break,
            };
            // The payload chain is filled but unpublished; the descriptor
            // carries everything the drain needs to link it: the chain
            // head rides the low half of user_data, the batch token the
            // high half.  The causal id is decided here — staging is the
            // send's causal point — and the hop count rides the status
            // field, which carries no meaning until completion.
            let (trace, hop) = self.trace_for_send(pid);
            let pushed = sq.try_push(RingEntry {
                user_data: (u64::from(u32::try_from(i).unwrap_or(u32::MAX)) << 32)
                    | u64::from(chain.head),
                trace,
                lnvc: id.as_i32() as u32,
                arg0: msg_idx,
                arg1: buf.len() as u32,
                status: hop as i32,
            });
            debug_assert!(pushed, "single-submitter ring had room");
            self.trace_rec(
                pid,
                TR_ENQUEUE,
                hop,
                trace,
                id.index(),
                0,
                buf.len() as u32,
                i as u32,
            );
            submitted += 1;
        }
        if submitted == 0 {
            return Err(MpfError::WouldBlock);
        }
        sq.ring_doorbell();
        Ok(submitted)
    }

    /// Drains `pid`'s submission ring: links every staged message under
    /// one descriptor-lock hold per run of same-conversation descriptors,
    /// wakes receivers **once** per run, and pushes one completion per
    /// descriptor into the CQ (doorbell rung once).  Stops early if the
    /// CQ lacks space, so no completion is ever dropped.  Returns the
    /// number completed.
    pub fn drain_sends(&self, pid: ProcessId) -> Result<usize> {
        self.check_pid(pid)?;
        let sq = &self.aio_sq[pid.index()];
        let cq = &self.aio_cq[pid.index()];
        // Reap-side space only grows (we are the only CQ producer), so
        // this bound is conservative and conservation holds.
        let budget = cq.capacity() - cq.depth();
        let mut entries = Vec::with_capacity(budget.min(sq.depth()));
        while entries.len() < budget {
            let Some(e) = sq.try_pop() else { break };
            entries.push(e);
        }
        if entries.is_empty() {
            return Ok(0);
        }
        let mut done = 0usize;
        while done < entries.len() {
            let lnvc_raw = entries[done].lnvc;
            let run_end = entries[done..]
                .iter()
                .position(|e| e.lnvc != lnvc_raw)
                .map_or(entries.len(), |p| done + p);
            self.drain_run(pid, &entries[done..run_end], cq);
            done = run_end;
        }
        cq.ring_doorbell();
        Ok(entries.len())
    }

    /// Completes one run of same-conversation submission descriptors:
    /// a single lock hold, a single receiver wake, one CQ push each.
    fn drain_run(&self, pid: ProcessId, run: &[RingEntry], cq: &AioRing) {
        let id = LnvcId::from_i32(run[0].lnvc as i32).expect("submit staged a valid id");
        let complete = |e: &RingEntry, status: i32| {
            let pushed = cq.try_push(RingEntry {
                user_data: e.user_data >> 32,
                trace: e.trace,
                lnvc: e.lnvc,
                arg0: 0,
                arg1: e.arg1,
                status,
            });
            debug_assert!(pushed, "drain reserved CQ space");
        };
        let release = |e: &RingEntry| {
            let len = e.arg1 as usize;
            self.blocks.free_chain(Chain {
                head: (e.user_data & u64::from(u32::MAX)) as u32,
                blocks: self.blocks.blocks_needed(len),
            });
            self.msgs.free(e.arg0);
        };
        let slot = match self.slot(id) {
            Ok(slot) => slot,
            Err(e) => {
                for entry in run {
                    release(entry);
                    complete(entry, e.status_code());
                }
                self.mem_waitq.notify_all();
                return;
            }
        };
        let mut sent = 0usize;
        let mut bytes = 0u64;
        {
            let guard = slot.lock.lock();
            let ctx = self.ctx(slot);
            let valid = Self::validate(slot, id)
                .and_then(|()| ctx.find_send(pid).map(|_| ()).ok_or(MpfError::NotConnected));
            if let Err(e) = valid {
                drop(guard);
                for entry in run {
                    release(entry);
                    complete(entry, e.status_code());
                }
                self.mem_waitq.notify_all();
                return;
            }
            // Obligations are fixed per-send, but the connection set cannot
            // change while we hold the lock — one computation covers the run.
            let obligations = {
                let n_bcast = slot.n_bcast();
                let needs_fcfs = slot.n_fcfs() > 0 || n_bcast == 0;
                (u32::from(needs_fcfs) << 16) | n_bcast
            };
            for entry in run {
                let len = entry.arg1 as usize;
                let chain = Chain {
                    head: (entry.user_data & u64::from(u32::MAX)) as u32,
                    blocks: self.blocks.blocks_needed(len),
                };
                let stamp = ctx.enqueue(entry.arg0, len, chain);
                // The staged hop rode the (pre-completion) status field.
                let hop = entry.status as u32;
                if entry.trace != 0 {
                    self.msgs.get(entry.arg0).set_trace(entry.trace, hop);
                }
                self.trace_rec(
                    pid,
                    TR_SEND,
                    hop,
                    entry.trace,
                    id.index(),
                    stamp,
                    len as u32,
                    obligations,
                );
                if let Some(lt) = self.ltel(id.index()) {
                    let sent_at = if self.sample_latency() {
                        now_nanos()
                    } else {
                        0
                    };
                    self.msgs.get(entry.arg0).set_sent_at(sent_at);
                    lt.sends.fetch_add(1, Ordering::Relaxed);
                    lt.bytes_in.fetch_add(len as u64, Ordering::Relaxed);
                }
                self.trace(pid, EventKind::Send, id.index(), len, stamp);
                sent += 1;
                bytes += len as u64;
            }
            if let Some(lt) = self.ltel(id.index()) {
                lt.note_depth(u64::from(slot.msg_count()));
            }
        }
        // One wake for the whole run — the amortisation the rings buy.
        slot.waitq.notify_all();
        self.stats.sends.add(sent as u64);
        self.stats.bytes_in.add(bytes);
        if let Some(t) = self.tel() {
            t.sends.add(sent as u64);
            t.bytes_in.add(bytes);
            for entry in run {
                t.size_hist.record(u64::from(entry.arg1));
            }
        }
        for entry in run {
            complete(entry, 0);
        }
    }

    /// Reaps every pending completion from `pid`'s CQ into `out`; returns
    /// how many were appended.
    pub fn reap_completions(&self, pid: ProcessId, out: &mut Vec<AioCompletion>) -> Result<usize> {
        self.check_pid(pid)?;
        let cq = &self.aio_cq[pid.index()];
        let mut n = 0usize;
        while let Some(e) = cq.try_pop() {
            out.push(AioCompletion {
                user_data: e.user_data,
                trace: e.trace,
                lnvc: e.lnvc,
                len: e.arg1,
                status: e.status,
            });
            n += 1;
        }
        Ok(n)
    }

    /// Submit + drain + reap in one call: sends the whole batch with one
    /// doorbell, one lock hold, and one receiver wake, returning the
    /// completions (tokens are indices into `payloads`).  May also return
    /// completions left over from earlier partial cycles on this ring.
    pub fn send_batch(
        &self,
        pid: ProcessId,
        id: LnvcId,
        payloads: &[&[u8]],
    ) -> Result<Vec<AioCompletion>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let submitted = self.submit_sends(pid, id, payloads)?;
        self.drain_sends(pid)?;
        let mut out = Vec::with_capacity(submitted);
        self.reap_completions(pid, &mut out)?;
        Ok(out)
    }

    /// [`Self::send_batch`] bounded by `deadline`: allocation waits time
    /// out with [`MpfError::TimedOut`] when nothing could be staged by
    /// the deadline; a partially staged batch is drained and returned.
    pub fn send_batch_deadline(
        &self,
        pid: ProcessId,
        id: LnvcId,
        payloads: &[&[u8]],
        deadline: Option<Instant>,
    ) -> Result<Vec<AioCompletion>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let submitted = self.submit_sends_deadline(pid, id, payloads, deadline)?;
        self.drain_sends(pid)?;
        let mut out = Vec::with_capacity(submitted);
        self.reap_completions(pid, &mut out)?;
        Ok(out)
    }

    /// Collects up to `max` deliverable messages under one lock hold,
    /// copies them outside the lock, then finishes delivery bookkeeping
    /// and prefix reclamation under a second single hold.  Appends to
    /// `out`; returns the number received.
    fn recv_many(
        &self,
        pid: ProcessId,
        id: LnvcId,
        max: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<usize> {
        let slot = self.slot(id)?;
        let guard = slot.lock.lock();
        Self::validate(slot, id)?;
        let ctx = self.ctx(slot);
        let Some(conn_idx) = ctx.find_recv(pid) else {
            return Err(MpfError::NotConnected);
        };
        let conn = self.recvs.get(conn_idx);
        let protocol = conn.protocol();
        // (msg_idx, len, head_block, stamp, sent_at, trace, hop) per
        // claimed message.
        #[allow(clippy::type_complexity)]
        let mut picked: Vec<(u32, usize, u32, u64, u64, u64, u32)> = Vec::new();
        while picked.len() < max {
            let found = match protocol {
                Protocol::Fcfs => ctx.fcfs_peek(),
                Protocol::Broadcast => {
                    let h = conn.head();
                    (h != NIL).then_some(h)
                }
            };
            let Some(msg_idx) = found else { break };
            let msg = self.msgs.get(msg_idx);
            match protocol {
                Protocol::Fcfs => msg.set_fcfs_taken(),
                Protocol::Broadcast => conn.set_head(msg.next()),
            }
            msg.begin_copy();
            picked.push((
                msg_idx,
                msg.len(),
                msg.head_block(),
                msg.stamp(),
                msg.sent_at(),
                msg.trace(),
                msg.hop(),
            ));
        }
        drop(guard);
        if picked.is_empty() {
            return Ok(0);
        }

        for &(_, len, head_block, ..) in &picked {
            let mut buf = vec![0u8; len];
            self.blocks.read_chain(head_block, len, &mut buf);
            out.push(buf);
        }

        // Deliveries are claimed; record them (and adopt the last chain as
        // this process's context) before reclamation can log TR_RECLAIMs.
        let recv_kind = match protocol {
            Protocol::Fcfs => TR_RECV,
            Protocol::Broadcast => TR_RECV_B,
        };
        for &(_, len, _, stamp, _, trace, hop) in &picked {
            self.trace_rec(pid, recv_kind, hop, trace, id.index(), stamp, len as u32, 0);
        }
        if let Some(&(.., trace, hop)) = picked.last() {
            self.adopt_trace(pid, trace, hop);
        }

        let guard = slot.lock.lock();
        for &(msg_idx, ..) in &picked {
            let msg = self.msgs.get(msg_idx);
            msg.end_copy();
            if protocol == Protocol::Broadcast {
                msg.dec_bcast_pending();
            }
        }
        let freed = self.ctx_t(slot, pid).reclaim_prefix();
        drop(guard);

        let received = picked.len() as u64;
        let bytes: u64 = picked.iter().map(|&(_, len, ..)| len as u64).sum();
        if freed > 0 {
            self.stats.reclaims.add(freed as u64);
            self.mem_waitq.notify_all();
        }
        self.stats.receives.add(received);
        self.stats.bytes_out.add(bytes);
        if let Some(t) = self.tel() {
            t.receives.add(received);
            t.bytes_out.add(bytes);
            if freed > 0 {
                t.reclaims.add(freed as u64);
            }
            let lt = &self.lnvc_tel[id.index() as usize];
            lt.receives.fetch_add(received, Ordering::Relaxed);
            lt.bytes_out.fetch_add(bytes, Ordering::Relaxed);
            if freed > 0 {
                lt.reclaims.fetch_add(freed as u64, Ordering::Relaxed);
            }
            // One clock read covers every sampled message in the batch.
            if picked.iter().any(|&(_, _, _, _, sent_at, ..)| sent_at != 0) {
                let now = now_nanos();
                for &(_, _, _, _, sent_at, ..) in &picked {
                    if sent_at != 0 {
                        let lat = now.saturating_sub(sent_at);
                        t.latency_hist.record(lat);
                        lt.latency.record(lat);
                    }
                }
            }
        }
        for &(_, len, _, stamp, ..) in &picked {
            self.trace(pid, EventKind::Recv, id.index(), len, stamp);
        }
        Ok(picked.len())
    }

    /// Batched blocking receive: waits for traffic, then drains up to
    /// `max` messages with two lock holds and one reclamation pass total.
    /// `max == 0` returns an empty batch immediately.
    pub fn recv_batch(&self, pid: ProcessId, id: LnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.check_pid(pid)?;
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            if self.recv_many(pid, id, max, &mut out)? > 0 {
                return Ok(out);
            }
            self.stats.recv_waits.inc();
            self.note_recv_wait(id.index());
            self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
            slot.waitq.wait(ticket, self.cfg.wait_strategy);
        }
    }

    /// [`Self::recv_batch`] bounded by `deadline`: [`MpfError::TimedOut`]
    /// if nothing was deliverable by then (a batch racing the deadline is
    /// delivered — the queue is drained once more after the final wait).
    pub fn recv_batch_deadline(
        &self,
        pid: ProcessId,
        id: LnvcId,
        max: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<Vec<u8>>> {
        self.check_pid(pid)?;
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        loop {
            let slot = self.slot(id)?;
            let ticket = slot.waitq.ticket();
            if self.recv_many(pid, id, max, &mut out)? > 0 {
                return Ok(out);
            }
            self.stats.recv_waits.inc();
            self.note_recv_wait(id.index());
            self.trace(pid, EventKind::RecvBlocked, id.index(), 0, NO_STAMP);
            if !slot
                .waitq
                .wait_deadline(ticket, self.cfg.wait_strategy, deadline)
            {
                if self.recv_many(pid, id, max, &mut out)? > 0 {
                    return Ok(out);
                }
                return Err(MpfError::TimedOut);
            }
        }
    }

    /// Non-blocking [`Self::recv_batch`]: drains whatever is deliverable
    /// right now (possibly nothing).
    pub fn try_recv_batch(&self, pid: ProcessId, id: LnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.check_pid(pid)?;
        let mut out = Vec::new();
        if max > 0 {
            self.recv_many(pid, id, max, &mut out)?;
        }
        Ok(out)
    }

    /// Counters of `pid`'s submission/completion ring pair.
    pub fn aio_stats(&self, pid: ProcessId) -> Result<AioStats> {
        self.check_pid(pid)?;
        Ok(AioStats::from_rings(
            &self.aio_sq[pid.index()],
            &self.aio_cq[pid.index()],
        ))
    }

    // ------------------------------------------------------------------
    // Reactor support: registered-waker multiplexing over the waitq layer.
    // ------------------------------------------------------------------

    /// Non-blocking receive into a fresh `Vec`; `Ok(None)` when nothing is
    /// deliverable.
    pub fn try_message_receive_vec(&self, pid: ProcessId, id: LnvcId) -> Result<Option<Vec<u8>>> {
        self.check_pid(pid)?;
        let mut buf = Vec::new();
        loop {
            match self.pending_len(pid, id)? {
                Some(len) => {
                    buf.resize(len.max(1), 0);
                    match self.recv_once(pid, id, &mut buf) {
                        Ok(Some(n)) => {
                            buf.truncate(n);
                            return Ok(Some(buf));
                        }
                        // Raced by another FCFS receiver or a longer head;
                        // re-examine.
                        Ok(None) | Err(MpfError::BufferTooSmall { .. }) => continue,
                        Err(e) => return Err(e),
                    }
                }
                None => return Ok(None),
            }
        }
    }

    /// Current wait-queue ticket for `id`'s conversation.  Take it
    /// *before* a failed try-operation: if the sequence has moved past it
    /// by the time a waiter checks again, traffic arrived in between (the
    /// lost-wakeup guard the blocking primitives use, exposed for the
    /// async reactor).
    pub fn recv_signal_ticket(&self, id: LnvcId) -> Result<u32> {
        Ok(self.slot(id)?.waitq.ticket())
    }

    /// Current ticket of the region-exhaustion wait queue (senders'
    /// flow-control signal).
    pub fn mem_signal_ticket(&self) -> u32 {
        self.mem_waitq.ticket()
    }

    /// Blocks until any of the given signals fires: a conversation's wait
    /// queue moves past its ticket, the memory queue moves past `mem`, or
    /// the caller-owned `extra` queue moves past its ticket (the reactor's
    /// own wake channel).  Conversations that no longer resolve are
    /// skipped (their futures will surface the error on the next poll).
    /// Returns immediately when no signal could ever fire.
    pub fn wait_signals(
        &self,
        recv: &[(LnvcId, u32)],
        mem: Option<u32>,
        extra: Option<(&WaitQueue, u32)>,
    ) {
        self.wait_signals_deadline(recv, mem, extra, None);
    }

    /// [`wait_signals`](Self::wait_signals) bounded by a deadline: also
    /// returns (with nothing fired) once `deadline` passes, the seam the
    /// async reactor uses to fire expired timer registrations.
    pub fn wait_signals_deadline(
        &self,
        recv: &[(LnvcId, u32)],
        mem: Option<u32>,
        extra: Option<(&WaitQueue, u32)>,
        deadline: Option<Instant>,
    ) {
        let mut entries: Vec<(&WaitQueue, u32)> = Vec::with_capacity(recv.len() + 2);
        for &(id, ticket) in recv {
            if let Ok(slot) = self.slot(id) {
                entries.push((&slot.waitq, ticket));
            }
        }
        if let Some(ticket) = mem {
            entries.push((&self.mem_waitq, ticket));
        }
        if let Some(entry) = extra {
            entries.push(entry);
        }
        if entries.is_empty() {
            return;
        }
        WaitQueue::wait_many_deadline(&entries, self.cfg.wait_strategy, deadline);
    }

    /// Audits every structural invariant of the facility.  Intended for
    /// **quiescent points** — moments when no operation is mid-flight (test
    /// boundaries, scheduler-serialized checks in `mpf-check`) — because
    /// in-flight receives legitimately hold partial state (e.g. a broadcast
    /// head advanced before `bcast_pending` is decremented).
    ///
    /// Checks, per live conversation (registry lock, then descriptor lock —
    /// the open/close order):
    ///
    /// * queue is acyclic; `msg_count`, `q_tail`, FIFO stamps agree with a
    ///   full walk;
    /// * connection lists match `n_senders`/`n_fcfs`/`n_bcast`;
    /// * every `bcast_pending` equals the number of broadcast receivers
    ///   whose cursor has not passed the message;
    /// * the shared FCFS cursor has not skipped an owed message;
    /// * no queued message waits on an FCFS delivery the current connection
    ///   set can never produce (the obligation-leak class of bug);
    /// * the queue head is not a fully-consumed, unpinned message (prefix
    ///   reclamation keeps up);
    ///
    /// and globally that pool occupancy (messages, blocks, connections,
    /// LNVC slots) is exactly accounted for by the walks.
    pub fn check_invariants(&self) -> std::result::Result<(), String> {
        let reg = self.registry.lock();
        if reg.len() != self.lnvcs.in_use() as usize {
            return Err(format!(
                "registry has {} names but {} LNVC slots are allocated",
                reg.len(),
                self.lnvcs.in_use()
            ));
        }
        let mut messages = 0u32;
        let mut blocks = 0u64;
        let mut senders = 0u32;
        let mut receivers = 0u32;
        for (name, &idx) in reg.iter() {
            if idx >= self.lnvcs.capacity() {
                return Err(format!("registry entry '{name}' points at bad slot {idx}"));
            }
            let slot = self.lnvcs.get(idx);
            let _guard = slot.lock.lock();
            if !slot.is_active() {
                return Err(format!("registry entry '{name}' points at dead slot {idx}"));
            }
            let audit = self
                .ctx(slot)
                .audit()
                .map_err(|e| format!("LNVC '{name}' (slot {idx}): {e}"))?;
            messages += audit.messages;
            blocks += audit.blocks;
            senders += audit.senders;
            receivers += audit.receivers;
        }
        let msgs_in_use = self.msgs.in_use();
        if messages != msgs_in_use {
            return Err(format!(
                "message headers leaked: queues hold {messages}, pool has {msgs_in_use} allocated"
            ));
        }
        let blocks_in_use = (self.blocks.capacity() - self.blocks.available()) as u64;
        if blocks != blocks_in_use {
            return Err(format!(
                "blocks leaked: queues hold {blocks}, pool has {blocks_in_use} allocated"
            ));
        }
        let sends_in_use = self.sends.in_use();
        if senders != sends_in_use {
            return Err(format!(
                "send connections leaked: lists hold {senders}, pool has {sends_in_use} allocated"
            ));
        }
        let recvs_in_use = self.recvs.in_use();
        if receivers != recvs_in_use {
            return Err(format!(
                "receive connections leaked: lists hold {receivers}, \
                 pool has {recvs_in_use} allocated"
            ));
        }
        Ok(())
    }

    /// Panics with the violation description if [`Self::check_invariants`]
    /// fails.  Convenient at the end of tests.
    pub fn assert_invariants(&self) {
        if let Err(e) = self.check_invariants() {
            panic!("MPF invariant violated: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facility() -> Mpf {
        Mpf::init(
            MpfConfig::new(8, 8)
                .with_total_blocks(256)
                .with_max_messages(64),
        )
        .unwrap()
    }

    fn p(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    #[test]
    fn loopback_send_receive() {
        // The paper's `base` benchmark shape: one process, loop-back LNVC.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "loop").unwrap();
        let rx = mpf.open_receive(p(0), "loop", Protocol::Fcfs).unwrap();
        assert_eq!(tx, rx, "same conversation, same id");
        mpf.message_send(p(0), tx, b"ping").unwrap();
        let mut buf = [0u8; 16];
        assert_eq!(mpf.message_receive(p(0), rx, &mut buf).unwrap(), 4);
        assert_eq!(&buf[..4], b"ping");
    }

    #[test]
    fn open_creates_close_deletes() {
        let mpf = facility();
        assert_eq!(mpf.live_lnvcs(), 0);
        let id = mpf.open_send(p(0), "chat").unwrap();
        assert_eq!(mpf.live_lnvcs(), 1);
        mpf.close_send(p(0), id).unwrap();
        assert_eq!(mpf.live_lnvcs(), 0);
        // Stale id now rejected.
        assert_eq!(
            mpf.message_send(p(0), id, b"x").unwrap_err(),
            MpfError::UnknownLnvc
        );
    }

    #[test]
    fn unread_messages_discarded_on_delete() {
        let mpf = facility();
        let id = mpf.open_send(p(0), "chat").unwrap();
        mpf.message_send(p(0), id, &[1u8; 100]).unwrap();
        let before = mpf.free_blocks();
        assert!(before < 256);
        mpf.close_send(p(0), id).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "deletion frees all blocks");
    }

    #[test]
    fn fcfs_delivers_each_message_once() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "q").unwrap();
        let r1 = mpf.open_receive(p(1), "q", Protocol::Fcfs).unwrap();
        let r2 = mpf.open_receive(p(2), "q", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, b"a").unwrap();
        mpf.message_send(p(0), tx, b"b").unwrap();
        let mut buf = [0u8; 4];
        let n1 = mpf.message_receive(p(1), r1, &mut buf).unwrap();
        let first = buf[..n1].to_vec();
        let n2 = mpf.message_receive(p(2), r2, &mut buf).unwrap();
        let second = buf[..n2].to_vec();
        let mut got = vec![first, second];
        got.sort();
        assert_eq!(got, vec![b"a".to_vec(), b"b".to_vec()]);
        assert!(!mpf.check_receive(p(1), r1).unwrap());
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "news").unwrap();
        let r1 = mpf.open_receive(p(1), "news", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "news", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"extra extra").unwrap();
        for (pid, rx) in [(p(1), r1), (p(2), r2)] {
            let v = mpf.message_receive_vec(pid, rx).unwrap();
            assert_eq!(v, b"extra extra");
        }
        // Fully consumed: blocks back on the free list.
        assert_eq!(mpf.free_blocks(), 256);
    }

    #[test]
    fn mixed_protocols_fan_out_correctly() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "mix").unwrap();
        let rf = mpf.open_receive(p(1), "mix", Protocol::Fcfs).unwrap();
        let rb1 = mpf.open_receive(p(2), "mix", Protocol::Broadcast).unwrap();
        let rb2 = mpf.open_receive(p(3), "mix", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"both").unwrap();
        assert_eq!(mpf.message_receive_vec(p(1), rf).unwrap(), b"both");
        assert_eq!(mpf.message_receive_vec(p(2), rb1).unwrap(), b"both");
        assert_eq!(mpf.message_receive_vec(p(3), rb2).unwrap(), b"both");
        assert!(!mpf.check_receive(p(1), rf).unwrap());
    }

    #[test]
    fn check_receive_semantics() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "c").unwrap();
        let rx = mpf.open_receive(p(1), "c", Protocol::Broadcast).unwrap();
        assert!(!mpf.check_receive(p(1), rx).unwrap());
        mpf.message_send(p(0), tx, b"x").unwrap();
        assert!(mpf.check_receive(p(1), rx).unwrap());
    }

    #[test]
    fn buffer_too_small_leaves_message_queued() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "big").unwrap();
        let rx = mpf.open_receive(p(1), "big", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[7u8; 100]).unwrap();
        let mut small = [0u8; 10];
        assert_eq!(
            mpf.try_message_receive(p(1), rx, &mut small).unwrap_err(),
            MpfError::BufferTooSmall { needed: 100 }
        );
        // Still there; a big enough buffer gets it.
        let v = mpf.message_receive_vec(p(1), rx).unwrap();
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn double_open_rules() {
        let mpf = facility();
        let _tx = mpf.open_send(p(0), "dup").unwrap();
        assert_eq!(
            mpf.open_send(p(0), "dup").unwrap_err(),
            MpfError::AlreadyConnected
        );
        let _rx = mpf.open_receive(p(0), "dup", Protocol::Fcfs).unwrap();
        assert_eq!(
            mpf.open_receive(p(0), "dup", Protocol::Broadcast)
                .unwrap_err(),
            MpfError::ProtocolConflict,
            "paper footnote 3: no process may use both protocols"
        );
        assert_eq!(
            mpf.open_receive(p(0), "dup", Protocol::Fcfs).unwrap_err(),
            MpfError::AlreadyConnected
        );
    }

    #[test]
    fn send_without_connection_rejected() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "only-mine").unwrap();
        assert_eq!(
            mpf.message_send(p(1), tx, b"x").unwrap_err(),
            MpfError::NotConnected
        );
        let mut buf = [0u8; 4];
        assert_eq!(
            mpf.try_message_receive(p(0), tx, &mut buf).unwrap_err(),
            MpfError::NotConnected
        );
    }

    #[test]
    fn invalid_process_rejected() {
        let mpf = facility();
        let too_big = ProcessId::from_index(99);
        assert_eq!(
            mpf.open_send(too_big, "x").unwrap_err(),
            MpfError::InvalidProcess
        );
    }

    #[test]
    fn messages_sent_before_receiver_joins_are_kept_for_fcfs() {
        // §3.2: messages are lost only at LNVC deletion, not merely because
        // no receiver was connected at send time.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "early").unwrap();
        mpf.message_send(p(0), tx, b"waiting for you").unwrap();
        let rx = mpf.open_receive(p(1), "early", Protocol::Fcfs).unwrap();
        assert_eq!(
            mpf.message_receive_vec(p(1), rx).unwrap(),
            b"waiting for you"
        );
    }

    #[test]
    fn late_broadcast_receiver_misses_earlier_messages() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "talk").unwrap();
        let _r1 = mpf.open_receive(p(1), "talk", Protocol::Broadcast).unwrap();
        mpf.message_send(p(0), tx, b"before").unwrap();
        let r2 = mpf.open_receive(p(2), "talk", Protocol::Broadcast).unwrap();
        assert!(!mpf.check_receive(p(2), r2).unwrap());
        mpf.message_send(p(0), tx, b"after").unwrap();
        assert_eq!(mpf.message_receive_vec(p(2), r2).unwrap(), b"after");
    }

    #[test]
    fn broadcast_close_with_unread_messages_reclaims() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "v").unwrap();
        let r1 = mpf.open_receive(p(1), "v", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "v", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[1u8; 64]).unwrap();
        }
        // r1 reads everything; r2 reads nothing and closes.
        for _ in 0..3 {
            mpf.message_receive_vec(p(1), r1).unwrap();
        }
        assert!(mpf.free_blocks() < 256, "r2's claims pin the messages");
        mpf.close_receive(p(2), r2).unwrap();
        assert_eq!(
            mpf.free_blocks(),
            256,
            "the vexing-problem sweep frees them"
        );
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        mpf.assert_invariants();
    }

    #[test]
    fn name_reuse_after_delete_is_fresh() {
        let mpf = facility();
        let id1 = mpf.open_send(p(0), "temp").unwrap();
        mpf.message_send(p(0), id1, b"old").unwrap();
        mpf.close_send(p(0), id1).unwrap();
        let id2 = mpf.open_receive(p(1), "temp", Protocol::Fcfs).unwrap();
        assert_ne!(id1, id2);
        assert!(
            !mpf.check_receive(p(1), id2).unwrap(),
            "old message is gone"
        );
        assert_eq!(
            mpf.close_send(p(0), id1).unwrap_err(),
            MpfError::UnknownLnvc
        );
        mpf.close_receive(p(1), id2).unwrap();
    }

    #[test]
    fn zero_length_messages_flow() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "z").unwrap();
        let rx = mpf.open_receive(p(1), "z", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, b"").unwrap();
        let mut buf = [0u8; 1];
        assert_eq!(mpf.message_receive(p(1), rx, &mut buf).unwrap(), 0);
    }

    #[test]
    fn exhaust_error_policy_reports() {
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_total_blocks(4)
                .with_block_payload(10)
                .with_exhaust_policy(ExhaustPolicy::Error),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "full").unwrap();
        mpf.message_send(p(0), tx, &[0u8; 40]).unwrap();
        assert_eq!(
            mpf.message_send(p(0), tx, &[0u8; 10]).unwrap_err(),
            MpfError::BlocksExhausted
        );
        assert_eq!(
            mpf.message_send(p(0), tx, &[0u8; 1000]).unwrap_err(),
            MpfError::MessageTooLarge { len: 1000, max: 40 }
        );
    }

    #[test]
    fn flow_control_unblocks_sender() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_total_blocks(4)
                .with_block_payload(10),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "fc").unwrap();
        let rx = mpf.open_receive(p(1), "fc", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap(); // region full
        let sent_second = AtomicBool::new(false);
        std::thread::scope(|s| {
            s.spawn(|| {
                mpf.message_send(p(0), tx, &[2u8; 20]).unwrap(); // blocks
                sent_second.store(true, Ordering::SeqCst);
            });
            std::thread::sleep(std::time::Duration::from_millis(30));
            assert!(!sent_second.load(Ordering::SeqCst), "sender must block");
            let v = mpf.message_receive_vec(p(1), rx).unwrap();
            assert_eq!(v.len(), 40);
        });
        assert!(sent_second.load(Ordering::SeqCst));
        let v = mpf.message_receive_vec(p(1), rx).unwrap();
        assert_eq!(v, vec![2u8; 20]);
        mpf.assert_invariants();
    }

    #[test]
    fn blocking_receive_wakes_on_send() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "wake").unwrap();
        let rx = mpf.open_receive(p(1), "wake", Protocol::Fcfs).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.message_receive_vec(p(1), rx).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            mpf.message_send(p(0), tx, b"good morning").unwrap();
            assert_eq!(h.join().unwrap(), b"good morning");
        });
        mpf.assert_invariants();
    }

    #[test]
    fn stats_track_traffic() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "s").unwrap();
        let rx = mpf.open_receive(p(1), "s", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let snap = mpf.stats().snapshot();
        assert_eq!(snap.sends, 1);
        assert_eq!(snap.receives, 1);
        assert_eq!(snap.bytes_in, 50);
        assert_eq!(snap.bytes_out, 50);
        assert_eq!(snap.lnvcs_created, 1);
    }

    #[test]
    fn telemetry_tracks_traffic_and_latency() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "tel").unwrap();
        let rx = mpf.open_receive(p(1), "tel", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 70]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let t = mpf.telemetry_snapshot();
        assert_eq!(t.sends, 2);
        assert_eq!(t.receives, 2);
        assert_eq!(t.bytes_in, 120);
        assert_eq!(t.bytes_out, 120);
        assert_eq!(t.lnvcs_created, 1);
        assert_eq!(t.size_hist.count, 2);
        assert_eq!(t.size_hist.sum, 120);
        assert_eq!(t.size_hist.max, 70);
        assert_eq!(t.latency_hist.count, 2, "every delivery samples latency");
        assert!(t.latency_hist.percentile(0.99) >= t.latency_hist.percentile(0.50));
        let lt = mpf.lnvc_telemetry(rx).unwrap();
        assert_eq!(lt.sends, 2);
        assert_eq!(lt.receives, 2);
        assert_eq!(lt.bytes_in, 120);
        assert_eq!(lt.depth_hwm, 2, "both messages were queued at once");
        assert_eq!(lt.latency.count, 2);
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let mpf = Mpf::init(
            MpfConfig::new(4, 4)
                .with_total_blocks(64)
                .with_telemetry(false),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "quiet").unwrap();
        let rx = mpf.open_receive(p(1), "quiet", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[0u8; 50]).unwrap();
        mpf.message_receive_vec(p(1), rx).unwrap();
        let t = mpf.telemetry_snapshot();
        assert_eq!(t.sends, 0);
        assert_eq!(t.receives, 0);
        assert_eq!(t.lnvcs_created, 0);
        assert_eq!(t.latency_hist.count, 0);
        // The classic stats stay on regardless.
        assert_eq!(mpf.stats().snapshot().sends, 1);
    }

    #[test]
    fn telemetry_resets_when_slot_recycled() {
        let mpf = facility();
        let id1 = mpf.open_send(p(0), "cycle").unwrap();
        mpf.message_send(p(0), id1, b"old").unwrap();
        mpf.close_send(p(0), id1).unwrap();
        let id2 = mpf.open_send(p(0), "cycle").unwrap();
        let lt = mpf.lnvc_telemetry(id2).unwrap();
        assert_eq!(lt.sends, 0, "new conversation starts from zero");
        assert_eq!(lt.depth_hwm, 0);
    }

    #[test]
    fn reclaimable_reports_corpses_then_sweep_clears() {
        // Same shape as broadcast_close_with_unread_messages_reclaims, but
        // watching the metric: while r2's claims pin the queue the messages
        // are *live* (not reclaimable); the close converts them to freed
        // memory, never leaving corpses behind.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "rec").unwrap();
        let r1 = mpf.open_receive(p(1), "rec", Protocol::Broadcast).unwrap();
        let r2 = mpf.open_receive(p(2), "rec", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[1u8; 64]).unwrap();
        }
        for _ in 0..3 {
            mpf.message_receive_vec(p(1), r1).unwrap();
        }
        assert_eq!(
            mpf.reclaimable(),
            Reclaimable::default(),
            "messages pinned by r2's claims are live, not corpses"
        );
        mpf.close_receive(p(2), r2).unwrap();
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        assert_eq!(mpf.free_blocks(), 256);
        mpf.assert_invariants();
    }

    #[test]
    fn fifo_order_preserved_for_single_fcfs_receiver() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "fifo").unwrap();
        let rx = mpf.open_receive(p(1), "fifo", Protocol::Fcfs).unwrap();
        for i in 0..20u8 {
            mpf.message_send(p(0), tx, &[i]).unwrap();
        }
        for i in 0..20u8 {
            assert_eq!(mpf.message_receive_vec(p(1), rx).unwrap(), vec![i]);
        }
    }

    #[test]
    fn check_any_and_wait_any_select_across_conversations() {
        let mpf = facility();
        let a_tx = mpf.open_send(p(0), "sel:a").unwrap();
        let b_tx = mpf.open_send(p(0), "sel:b").unwrap();
        let a_rx = mpf.open_receive(p(1), "sel:a", Protocol::Fcfs).unwrap();
        let b_rx = mpf.open_receive(p(1), "sel:b", Protocol::Fcfs).unwrap();

        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), None);
        mpf.message_send(p(0), b_tx, b"second conversation")
            .unwrap();
        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), Some(b_rx));
        assert_eq!(mpf.wait_any(p(1), &[a_rx, b_rx]).unwrap(), b_rx);

        // Argument order breaks ties.
        mpf.message_send(p(0), a_tx, b"first too").unwrap();
        assert_eq!(mpf.check_any(p(1), &[a_rx, b_rx]).unwrap(), Some(a_rx));

        // A cross-thread wake: wait_any sees a message sent later.
        let v = mpf.message_receive_vec(p(1), a_rx).unwrap();
        assert_eq!(v, b"first too");
        let v = mpf.message_receive_vec(p(1), b_rx).unwrap();
        assert_eq!(v, b"second conversation");
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.wait_any(p(1), &[a_rx, b_rx]).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(15));
            mpf.message_send(p(0), a_tx, b"wake").unwrap();
            assert_eq!(h.join().unwrap(), a_rx);
        });
        mpf.assert_invariants();
    }

    #[test]
    fn zero_copy_scan_sees_block_sized_pieces() {
        let mpf = Mpf::init(
            MpfConfig::new(4, 4)
                .with_block_payload(10)
                .with_total_blocks(64),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "scan").unwrap();
        let rx = mpf.open_receive(p(1), "scan", Protocol::Fcfs).unwrap();
        let payload: Vec<u8> = (0..35u8).collect();
        mpf.message_send(p(0), tx, &payload).unwrap();
        let mut gathered = Vec::new();
        let mut pieces = 0;
        let n = mpf
            .message_receive_scan(p(1), rx, |chunk| {
                pieces += 1;
                gathered.extend_from_slice(chunk);
            })
            .unwrap();
        assert_eq!(n, 35);
        assert_eq!(gathered, payload);
        assert_eq!(pieces, 4, "35 bytes over 10-byte blocks = 4 pieces");
        // Consumed: nothing left, blocks reclaimed.
        assert!(!mpf.check_receive(p(1), rx).unwrap());
        assert_eq!(mpf.free_blocks(), 64);
    }

    #[test]
    fn zero_copy_scan_broadcast_consumes_once_per_receiver() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "scanb").unwrap();
        let r1 = mpf
            .open_receive(p(1), "scanb", Protocol::Broadcast)
            .unwrap();
        let r2 = mpf
            .open_receive(p(2), "scanb", Protocol::Broadcast)
            .unwrap();
        mpf.message_send(p(0), tx, b"to everyone").unwrap();
        for (pid, rx) in [(p(1), r1), (p(2), r2)] {
            let mut got = Vec::new();
            mpf.message_receive_scan(pid, rx, |c| got.extend_from_slice(c))
                .unwrap();
            assert_eq!(got, b"to everyone");
        }
        assert_eq!(mpf.free_blocks(), 256);
    }

    #[test]
    fn tracing_records_the_full_lifecycle() {
        use crate::trace::EventKind;
        let mpf = Mpf::init(MpfConfig::new(4, 4).with_tracing(1024)).unwrap();
        let tx = mpf.open_send(p(0), "traced").unwrap();
        let rx = mpf.open_receive(p(1), "traced", Protocol::Fcfs).unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap();
        mpf.check_receive(p(1), rx).unwrap();
        let mut buf = [0u8; 64];
        mpf.message_receive(p(1), rx, &mut buf).unwrap();
        mpf.close_send(p(0), tx).unwrap();
        mpf.close_receive(p(1), rx).unwrap();

        let log = mpf.take_trace().expect("tracing enabled");
        let kinds: Vec<EventKind> = log.events.iter().map(|e| e.kind).collect();
        for expected in [
            EventKind::OpenSend,
            EventKind::OpenRecv,
            EventKind::Send,
            EventKind::Check,
            EventKind::Recv,
            EventKind::CloseSend,
            EventKind::CloseRecv,
        ] {
            assert!(
                kinds.contains(&expected),
                "missing {expected:?} in {kinds:?}"
            );
        }
        let summary = log.summary();
        assert_eq!(summary.sends, 1);
        assert_eq!(summary.receives, 1);
        assert_eq!(summary.bytes_sent, 40);
        assert_eq!(summary.matched, 1, "send matched to its receive by stamp");
        assert_eq!(mpf.trace_dropped(), 0);
    }

    #[test]
    fn tracing_disabled_by_default() {
        let mpf = facility();
        assert!(mpf.take_trace().is_none());
    }

    #[test]
    fn fcfs_obligation_released_when_last_fcfs_receiver_leaves() {
        // The obligation-leak regression: messages queued while an FCFS
        // receiver was connected carry needs_fcfs.  If that receiver closes
        // without reading while broadcast receivers keep the LNVC alive,
        // the obligation could never be satisfied and the messages pinned
        // pool memory forever.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "leak").unwrap();
        let rf = mpf.open_receive(p(1), "leak", Protocol::Fcfs).unwrap();
        let rb = mpf.open_receive(p(2), "leak", Protocol::Broadcast).unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[9u8; 30]).unwrap();
        }
        mpf.close_receive(p(1), rf).unwrap(); // never read anything
        for _ in 0..3 {
            assert_eq!(mpf.message_receive_vec(p(2), rb).unwrap(), vec![9u8; 30]);
        }
        assert_eq!(
            mpf.free_blocks(),
            256,
            "obligation re-evaluation must free the backlog"
        );
        mpf.assert_invariants();
        mpf.close_receive(p(2), rb).unwrap();
        mpf.close_send(p(0), tx).unwrap();
        mpf.assert_invariants();
    }

    #[test]
    fn fcfs_obligation_released_after_broadcast_already_read() {
        // Same leak, other interleaving: the broadcast receiver consumed
        // everything first, so the close-time sweep itself must reclaim.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "leak2").unwrap();
        let rf = mpf.open_receive(p(1), "leak2", Protocol::Fcfs).unwrap();
        let rb = mpf
            .open_receive(p(2), "leak2", Protocol::Broadcast)
            .unwrap();
        for _ in 0..3 {
            mpf.message_send(p(0), tx, &[5u8; 30]).unwrap();
        }
        for _ in 0..3 {
            mpf.message_receive_vec(p(2), rb).unwrap();
        }
        assert!(mpf.free_blocks() < 256, "FCFS obligation pins the queue");
        assert_eq!(
            mpf.reclaimable(),
            Reclaimable::default(),
            "obligated messages are live, not corpses"
        );
        mpf.close_receive(p(1), rf).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "close sweep reclaims in place");
        assert_eq!(mpf.reclaimable(), Reclaimable::default());
        mpf.assert_invariants();
    }

    #[test]
    fn blocked_sender_unwedges_when_last_fcfs_receiver_leaves() {
        // Flow-control face of the same bug: the sender is parked on
        // region exhaustion and the only event that can free memory is the
        // FCFS receiver abandoning its obligations.
        let mpf = Mpf::init(
            MpfConfig::new(2, 4)
                .with_total_blocks(4)
                .with_block_payload(10),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "wedge").unwrap();
        let rf = mpf.open_receive(p(1), "wedge", Protocol::Fcfs).unwrap();
        let rb = mpf
            .open_receive(p(2), "wedge", Protocol::Broadcast)
            .unwrap();
        mpf.message_send(p(0), tx, &[1u8; 40]).unwrap(); // region full
        mpf.message_receive_vec(p(2), rb).unwrap(); // bcast claim released
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.message_send(p(0), tx, &[2u8; 10]));
            std::thread::sleep(std::time::Duration::from_millis(30));
            // Pre-fix the sender waits forever: the queued message is owed
            // an FCFS delivery nobody will make.
            mpf.close_receive(p(1), rf).unwrap();
            h.join().unwrap().unwrap();
        });
        assert_eq!(mpf.message_receive_vec(p(2), rb).unwrap(), vec![2u8; 10]);
        mpf.assert_invariants();
    }

    #[test]
    fn backlog_dropped_when_first_receiver_is_broadcast() {
        // Backlog sent before any receiver exists is owed to a future FCFS
        // receiver; if the first receiver to show up is BROADCAST it starts
        // at the tail, so the obligation is dropped and memory reclaimed.
        let mpf = facility();
        let tx = mpf.open_send(p(0), "drop").unwrap();
        mpf.message_send(p(0), tx, &[3u8; 60]).unwrap();
        assert!(mpf.free_blocks() < 256);
        let rb = mpf.open_receive(p(1), "drop", Protocol::Broadcast).unwrap();
        assert_eq!(mpf.free_blocks(), 256, "backlog freed at first join");
        assert!(!mpf.check_receive(p(1), rb).unwrap());
        // A later FCFS joiner also misses the dropped backlog but gets new
        // traffic.
        let rf = mpf.open_receive(p(2), "drop", Protocol::Fcfs).unwrap();
        assert!(!mpf.check_receive(p(2), rf).unwrap());
        mpf.message_send(p(0), tx, b"fresh").unwrap();
        assert_eq!(mpf.message_receive_vec(p(2), rf).unwrap(), b"fresh");
        mpf.assert_invariants();
    }

    #[test]
    fn wait_any_rejects_empty_set() {
        let mpf = facility();
        assert_eq!(
            mpf.wait_any(p(0), &[]).unwrap_err(),
            MpfError::EmptyWaitSet,
            "waiting on nothing would block forever"
        );
    }

    #[test]
    fn wait_any_parks_until_send() {
        // Regression for the busy-poll bug: wait_any must genuinely park
        // (Park strategy) across several conversations' wait queues and
        // wake when any of them gets traffic.
        let mpf =
            Mpf::init(MpfConfig::new(8, 8).with_wait_strategy(mpf_shm::waitq::WaitStrategy::Park))
                .unwrap();
        let a_tx = mpf.open_send(p(0), "park:a").unwrap();
        let a_rx = mpf.open_receive(p(1), "park:a", Protocol::Fcfs).unwrap();
        let b_rx = mpf.open_receive(p(1), "park:b", Protocol::Fcfs).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.wait_any(p(1), &[b_rx, a_rx]).unwrap());
            std::thread::sleep(std::time::Duration::from_millis(40));
            mpf.message_send(p(0), a_tx, b"wake").unwrap();
            assert_eq!(h.join().unwrap(), a_rx);
        });
        mpf.assert_invariants();
    }

    #[test]
    fn slot_recycling_survives_generation_mask_wrap() {
        // Found by the open_close_send microbenchmark: after 2^15 recycles
        // of one slot the id's 15-bit generation wraps; a fresh id must
        // still validate (and the previous generation's id must not).
        let mpf = Mpf::init(MpfConfig::new(1, 2)).unwrap();
        let mut prev = None;
        for round in 0..((1 << 15) + 5) {
            let id = mpf.open_send(p(0), "churn").unwrap();
            if let Some(prev) = prev {
                assert_ne!(prev, id, "round {round}");
            }
            mpf.message_send(p(0), id, b"x")
                .expect("fresh id must validate");
            mpf.close_send(p(0), id).unwrap();
            assert!(
                mpf.message_send(p(0), id, b"x").is_err(),
                "closed id must be stale (round {round})"
            );
            prev = Some(id);
        }
    }

    #[test]
    fn lnvcs_exhausted_when_all_slots_live() {
        let mpf = Mpf::init(MpfConfig::new(2, 4)).unwrap();
        let _a = mpf.open_send(p(0), "a").unwrap();
        let _b = mpf.open_send(p(0), "b").unwrap();
        assert_eq!(
            mpf.open_send(p(0), "c").unwrap_err(),
            MpfError::LnvcsExhausted
        );
    }

    #[test]
    fn send_batch_delivers_in_order_with_one_doorbell() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "batch").unwrap();
        let rx = mpf.open_receive(p(1), "batch", Protocol::Fcfs).unwrap();
        let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 3]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let completions = mpf.send_batch(p(0), tx, &refs).unwrap();
        assert_eq!(completions.len(), 8);
        for (i, c) in completions.iter().enumerate() {
            assert!(c.ok(), "completion {i} failed: {}", c.status);
            assert_eq!(c.user_data, i as u64, "tokens come back in order");
            assert_eq!(c.len, 3);
        }
        let st = mpf.aio_stats(p(0)).unwrap();
        assert_eq!(st.submitted, 8);
        assert_eq!(st.drained, 8);
        assert_eq!(st.completed, 8);
        assert_eq!(st.reaped, 8);
        assert_eq!(st.sq_doorbells, 1, "one doorbell for the whole batch");
        assert_eq!((st.sq_depth, st.cq_depth), (0, 0));
        let got = mpf.recv_batch(p(1), rx, 64).unwrap();
        assert_eq!(got, payloads, "FIFO order survives batching");
        mpf.assert_invariants();
    }

    #[test]
    fn recv_batch_respects_max_and_broadcast() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "bcastb").unwrap();
        let r1 = mpf
            .open_receive(p(1), "bcastb", Protocol::Broadcast)
            .unwrap();
        let r2 = mpf
            .open_receive(p(2), "bcastb", Protocol::Broadcast)
            .unwrap();
        for i in 0..6u8 {
            mpf.message_send(p(0), tx, &[i]).unwrap();
        }
        let first = mpf.recv_batch(p(1), r1, 4).unwrap();
        assert_eq!(first, (0..4u8).map(|i| vec![i]).collect::<Vec<_>>());
        let rest = mpf.recv_batch(p(1), r1, 4).unwrap();
        assert_eq!(rest, (4..6u8).map(|i| vec![i]).collect::<Vec<_>>());
        // The second broadcast receiver still sees all six.
        assert_eq!(mpf.recv_batch(p(2), r2, 64).unwrap().len(), 6);
        assert_eq!(mpf.free_blocks(), 256, "everything reclaimed");
        mpf.assert_invariants();
    }

    #[test]
    fn zero_length_batches_are_noops() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "zb").unwrap();
        let rx = mpf.open_receive(p(0), "zb", Protocol::Fcfs).unwrap();
        assert_eq!(mpf.submit_sends(p(0), tx, &[]).unwrap(), 0);
        assert!(mpf.send_batch(p(0), tx, &[]).unwrap().is_empty());
        assert!(mpf.recv_batch(p(0), rx, 0).unwrap().is_empty());
        let st = mpf.aio_stats(p(0)).unwrap();
        assert_eq!(st.submitted, 0);
        assert_eq!(st.sq_doorbells, 0, "empty batch rings no doorbell");
        mpf.assert_invariants();
    }

    #[test]
    fn batch_larger_than_ring_capacity_partially_submits() {
        use mpf_shm::ring::AIO_RING_SLOTS;
        // Headroom above the ring: 70 staged-but-unreceived messages must
        // not trip flow control (headers are held until delivery).
        let mpf = Mpf::init(
            MpfConfig::new(8, 8)
                .with_total_blocks(256)
                .with_max_messages(128),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "over").unwrap();
        let rx = mpf.open_receive(p(1), "over", Protocol::Fcfs).unwrap();
        let payloads: Vec<Vec<u8>> = (0..AIO_RING_SLOTS + 6).map(|i| vec![i as u8]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let n = mpf.submit_sends(p(0), tx, &refs).unwrap();
        assert_eq!(n, AIO_RING_SLOTS, "ring capacity bounds one submit");
        // A full ring refuses even the first descriptor of the remainder.
        assert_eq!(
            mpf.submit_sends(p(0), tx, &refs[n..]).unwrap_err(),
            MpfError::WouldBlock
        );
        assert_eq!(mpf.drain_sends(p(0)).unwrap(), AIO_RING_SLOTS);
        let rest = mpf.submit_sends(p(0), tx, &refs[n..]).unwrap();
        assert_eq!(rest, 6);
        // The CQ is still full of unreaped completions, so a drain would
        // drop them if it proceeded — it must hold off instead.
        assert_eq!(mpf.drain_sends(p(0)).unwrap(), 0, "CQ backpressure");
        let mut completions = Vec::new();
        mpf.reap_completions(p(0), &mut completions).unwrap();
        assert_eq!(completions.len(), AIO_RING_SLOTS);
        assert_eq!(mpf.drain_sends(p(0)).unwrap(), 6);
        mpf.reap_completions(p(0), &mut completions).unwrap();
        assert_eq!(completions.len(), AIO_RING_SLOTS + 6);
        let mut got = Vec::new();
        while got.len() < payloads.len() {
            got.extend(mpf.recv_batch(p(1), rx, 16).unwrap());
        }
        assert_eq!(got, payloads);
        let st = mpf.aio_stats(p(0)).unwrap();
        assert_eq!(st.submitted, st.drained, "every descriptor drained");
        assert_eq!(st.completed, st.reaped, "every completion reaped");
        mpf.assert_invariants();
    }

    #[test]
    fn drain_completes_with_error_when_conversation_vanishes() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "gone").unwrap();
        let _rx = mpf.open_receive(p(1), "gone", Protocol::Fcfs).unwrap();
        assert_eq!(mpf.submit_sends(p(0), tx, &[b"x".as_slice()]).unwrap(), 1);
        // The conversation disappears between submit and drain.
        mpf.close_send(p(0), tx).unwrap();
        assert_eq!(mpf.drain_sends(p(0)).unwrap(), 1);
        let mut completions = Vec::new();
        mpf.reap_completions(p(0), &mut completions).unwrap();
        assert_eq!(completions.len(), 1);
        assert!(!completions[0].ok());
        assert_eq!(
            completions[0].status,
            MpfError::NotConnected.status_code(),
            "stale descriptor surfaces the close, resources reclaimed"
        );
        assert_eq!(mpf.free_blocks(), 256);
        mpf.assert_invariants();
    }

    #[test]
    fn try_send_and_try_receive_vec_report_would_block() {
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_total_blocks(4)
                .with_block_payload(10),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "nb").unwrap();
        let rx = mpf.open_receive(p(1), "nb", Protocol::Fcfs).unwrap();
        assert_eq!(mpf.try_message_receive_vec(p(1), rx).unwrap(), None);
        assert!(mpf.try_message_send(p(0), tx, &[1u8; 40]).unwrap());
        assert!(
            !mpf.try_message_send(p(0), tx, &[2u8; 10]).unwrap(),
            "region full: try-send declines instead of parking"
        );
        assert_eq!(
            mpf.try_message_receive_vec(p(1), rx).unwrap().unwrap(),
            vec![1u8; 40]
        );
        assert!(mpf.try_message_send(p(0), tx, &[2u8; 10]).unwrap());
        mpf.assert_invariants();
    }

    #[test]
    fn latency_sampling_stamps_one_in_n() {
        let mpf = Mpf::init(
            MpfConfig::new(8, 8)
                .with_total_blocks(256)
                .with_max_messages(64)
                .latency_sample_rate(4),
        )
        .unwrap();
        let tx = mpf.open_send(p(0), "sampled").unwrap();
        let rx = mpf.open_receive(p(1), "sampled", Protocol::Fcfs).unwrap();
        for _ in 0..8 {
            mpf.message_send(p(0), tx, &[0u8; 20]).unwrap();
        }
        for _ in 0..8 {
            mpf.message_receive_vec(p(1), rx).unwrap();
        }
        let t = mpf.telemetry_snapshot();
        assert_eq!(t.sends, 8, "all traffic still counted");
        assert_eq!(t.receives, 8);
        assert_eq!(t.latency_hist.count, 2, "1-in-4 of 8 sends sampled");
        assert_eq!(mpf.lnvc_telemetry(rx).unwrap().latency.count, 2);
        mpf.assert_invariants();
    }

    #[test]
    fn wait_signals_wakes_on_any_registered_source() {
        let mpf = facility();
        let tx = mpf.open_send(p(0), "sig").unwrap();
        let rx = mpf.open_receive(p(1), "sig", Protocol::Fcfs).unwrap();
        let ticket = mpf.recv_signal_ticket(rx).unwrap();
        std::thread::scope(|s| {
            let h = s.spawn(|| mpf.wait_signals(&[(rx, ticket)], None, None));
            std::thread::sleep(std::time::Duration::from_millis(15));
            mpf.message_send(p(0), tx, b"wake").unwrap();
            h.join().unwrap();
        });
        // The extra (caller-owned) queue alone also wakes it.
        let wake = WaitQueue::new();
        let ticket = mpf.recv_signal_ticket(rx).unwrap();
        std::thread::scope(|s| {
            let h =
                s.spawn(|| mpf.wait_signals(&[(rx, ticket)], None, Some((&wake, wake.ticket()))));
            std::thread::sleep(std::time::Duration::from_millis(15));
            wake.notify_all();
            h.join().unwrap();
        });
        mpf.assert_invariants();
    }
}
