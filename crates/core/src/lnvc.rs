//! LNVC descriptors and the FIFO queue machinery.
//!
//! §3.1: "an LNVC descriptor contains the LNVC name, its internal
//! identifier, the number of queued messages, a FIFO queue implemented as a
//! linked list of messages, a FIFO tail pointer for sending processes, a
//! FIFO head pointer for FCFS receiving processes, a description of all
//! connections to the LNVC, and a synchronization lock for mutual exclusive
//! access to the LNVC descriptor."  (The name itself lives in the
//! [`crate::registry`] table, which owns name→descriptor resolution.)
//!
//! Every operation in this module **requires the descriptor's lock to be
//! held** (methods take `&ShmLockGuard` as a witness where practical; the
//! [`Ctx`] borrow pattern keeps that discipline in one place).

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use mpf_shm::idxstack::NIL;
use mpf_shm::lock::{LockKind, ShmLock};
use mpf_shm::pool::Pool;
use mpf_shm::process::ProcessId;
use mpf_shm::telemetry::now_nanos;
use mpf_shm::tracering::{TraceRing, TR_RECLAIM};
use mpf_shm::waitq::WaitQueue;

use crate::block::{BlockPool, Chain};
use crate::conn::{RecvConn, SendConn};
use crate::message::MsgSlot;
use crate::types::Protocol;

/// One LNVC descriptor slot.
///
/// All fields besides `lock`, `generation` and `active` are protected by
/// `lock`; `generation`/`active` are written under the lock and read
/// optimistically for stale-id detection.
#[derive(Debug)]
pub struct LnvcSlot {
    /// Mutual exclusion for the descriptor (paper Figure 2's lock).
    pub lock: ShmLock,
    /// Bumped each time the slot is recycled; embedded in [`crate::LnvcId`].
    generation: AtomicU32,
    /// Whether the slot currently hosts a live conversation.
    active: AtomicBool,
    /// Oldest queued message (`NIL` if the queue is empty).
    q_head: AtomicU32,
    /// Newest queued message — "a FIFO tail pointer for sending processes".
    q_tail: AtomicU32,
    /// "a FIFO head pointer for FCFS receiving processes" (shared).
    fcfs_head: AtomicU32,
    /// "the number of queued messages".
    msg_count: AtomicU32,
    /// Head of the send-descriptor list.
    send_list: AtomicU32,
    /// Head of the receive-descriptor list.
    recv_list: AtomicU32,
    /// Connected senders.
    n_senders: AtomicU32,
    /// Connected FCFS receivers.
    n_fcfs: AtomicU32,
    /// Connected BROADCAST receivers.
    n_bcast: AtomicU32,
    /// Receivers blocked in `message_receive` wait here.
    pub waitq: WaitQueue,
}

impl Default for LnvcSlot {
    fn default() -> Self {
        Self::new(LockKind::Spin)
    }
}

impl LnvcSlot {
    /// Creates an inactive slot whose lock is of `kind`.
    pub fn new(kind: LockKind) -> Self {
        Self {
            lock: ShmLock::new(kind),
            generation: AtomicU32::new(0),
            active: AtomicBool::new(false),
            q_head: AtomicU32::new(NIL),
            q_tail: AtomicU32::new(NIL),
            fcfs_head: AtomicU32::new(NIL),
            msg_count: AtomicU32::new(0),
            send_list: AtomicU32::new(NIL),
            recv_list: AtomicU32::new(NIL),
            n_senders: AtomicU32::new(0),
            n_fcfs: AtomicU32::new(0),
            n_bcast: AtomicU32::new(0),
            waitq: WaitQueue::new(),
        }
    }

    /// Resets queue state and marks the slot live.  Called (under the
    /// registry lock) when a fresh conversation is created here.
    pub fn activate(&self) {
        self.q_head.store(NIL, Ordering::Relaxed);
        self.q_tail.store(NIL, Ordering::Relaxed);
        self.fcfs_head.store(NIL, Ordering::Relaxed);
        self.msg_count.store(0, Ordering::Relaxed);
        self.send_list.store(NIL, Ordering::Relaxed);
        self.recv_list.store(NIL, Ordering::Relaxed);
        self.n_senders.store(0, Ordering::Relaxed);
        self.n_fcfs.store(0, Ordering::Relaxed);
        self.n_bcast.store(0, Ordering::Relaxed);
        self.active.store(true, Ordering::Release);
    }

    /// Marks the slot dead and bumps the generation so outstanding
    /// [`crate::LnvcId`]s go stale.
    pub fn deactivate(&self) {
        self.active.store(false, Ordering::Relaxed);
        self.generation.fetch_add(1, Ordering::Release);
    }

    /// Current generation.
    pub fn generation(&self) -> u32 {
        self.generation.load(Ordering::Acquire)
    }

    /// Whether a conversation lives here.
    pub fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Queued message count.
    pub fn msg_count(&self) -> u32 {
        self.msg_count.load(Ordering::Relaxed)
    }

    /// Connected sender count.
    pub fn n_senders(&self) -> u32 {
        self.n_senders.load(Ordering::Relaxed)
    }

    /// Connected FCFS receiver count.
    pub fn n_fcfs(&self) -> u32 {
        self.n_fcfs.load(Ordering::Relaxed)
    }

    /// Connected BROADCAST receiver count.
    pub fn n_bcast(&self) -> u32 {
        self.n_bcast.load(Ordering::Relaxed)
    }

    /// Total live connections; the conversation exists only while > 0
    /// (paper §3.2: "an LNVC [exists] only when there is a connected
    /// sending or receiving process").
    pub fn total_connections(&self) -> u32 {
        self.n_senders() + self.n_fcfs() + self.n_bcast()
    }
}

/// Per-conversation occupancy reported by [`Ctx::audit`]; the facility
/// sums these across live LNVCs against pool allocation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LnvcAudit {
    /// Messages queued.
    pub messages: u32,
    /// Blocks held by queued messages.
    pub blocks: u64,
    /// Send connections linked.
    pub senders: u32,
    /// Receive connections linked (both protocols).
    pub receivers: u32,
}

/// Borrow bundle: an LNVC plus the region pools its queue lives in.
/// Constructed by the facility *after* acquiring `lnvc.lock`.
pub struct Ctx<'a> {
    /// The locked descriptor.
    pub lnvc: &'a LnvcSlot,
    /// Message header pool.
    pub msgs: &'a Pool<MsgSlot>,
    /// Block pool (payload storage).
    pub blocks: &'a BlockPool,
    /// Send-descriptor pool.
    pub sends: &'a Pool<SendConn>,
    /// Receive-descriptor pool.
    pub recvs: &'a Pool<RecvConn>,
    /// Causal trace ring of the process driving this operation, when the
    /// caller knows it (reclaims of traced messages are recorded here).
    pub tring: Option<&'a TraceRing>,
    /// Facility-global send stamp counter.  Global — not per-LNVC — so a
    /// stamp identifies one message region-wide, the identity causal
    /// tracing and the conformance checker key on (the IPC backend's
    /// `next_stamp` header field has the same contract).
    pub stamps: &'a AtomicU64,
}

impl<'a> Ctx<'a> {
    /// Records the reclamation of a traced message, if a ring is attached.
    /// Called at every site that frees a message header back to the pool.
    #[inline]
    fn note_reclaim(&self, m: &MsgSlot, msg_idx: u32) {
        if let Some(ring) = self.tring {
            let trace = m.trace();
            if trace != 0 {
                ring.record_at(
                    now_nanos(),
                    trace,
                    m.stamp(),
                    TR_RECLAIM,
                    m.hop(),
                    u32::MAX,
                    msg_idx,
                    0,
                );
            }
        }
    }
    /// Finds `pid`'s send descriptor.
    pub fn find_send(&self, pid: ProcessId) -> Option<u32> {
        let mut idx = self.lnvc.send_list.load(Ordering::Relaxed);
        while idx != NIL {
            let c = self.sends.get(idx);
            if c.pid_raw() == pid.raw() {
                return Some(idx);
            }
            idx = c.next();
        }
        None
    }

    /// Finds `pid`'s receive descriptor.
    pub fn find_recv(&self, pid: ProcessId) -> Option<u32> {
        let mut idx = self.lnvc.recv_list.load(Ordering::Relaxed);
        while idx != NIL {
            let c = self.recvs.get(idx);
            if c.pid_raw() == pid.raw() {
                return Some(idx);
            }
            idx = c.next();
        }
        None
    }

    /// Links an already-reset send descriptor at the list head.
    pub fn link_send(&self, conn_idx: u32) {
        let head = self.lnvc.send_list.load(Ordering::Relaxed);
        self.sends.get(conn_idx).set_next(head);
        self.lnvc.send_list.store(conn_idx, Ordering::Relaxed);
        self.lnvc.n_senders.fetch_add(1, Ordering::Relaxed);
    }

    /// Links an already-reset receive descriptor at the list head.
    pub fn link_recv(&self, conn_idx: u32, protocol: Protocol) {
        let head = self.lnvc.recv_list.load(Ordering::Relaxed);
        self.recvs.get(conn_idx).set_next(head);
        self.lnvc.recv_list.store(conn_idx, Ordering::Relaxed);
        match protocol {
            Protocol::Fcfs => self.lnvc.n_fcfs.fetch_add(1, Ordering::Relaxed),
            Protocol::Broadcast => self.lnvc.n_bcast.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Unlinks `pid`'s send descriptor, returning its index for freeing.
    pub fn unlink_send(&self, pid: ProcessId) -> Option<u32> {
        let mut prev = NIL;
        let mut idx = self.lnvc.send_list.load(Ordering::Relaxed);
        while idx != NIL {
            let c = self.sends.get(idx);
            if c.pid_raw() == pid.raw() {
                let next = c.next();
                if prev == NIL {
                    self.lnvc.send_list.store(next, Ordering::Relaxed);
                } else {
                    self.sends.get(prev).set_next(next);
                }
                self.lnvc.n_senders.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
            prev = idx;
            idx = c.next();
        }
        None
    }

    /// Unlinks `pid`'s receive descriptor, returning `(index, protocol,
    /// head)` for the close sweep and freeing.
    pub fn unlink_recv(&self, pid: ProcessId) -> Option<(u32, Protocol, u32)> {
        let mut prev = NIL;
        let mut idx = self.lnvc.recv_list.load(Ordering::Relaxed);
        while idx != NIL {
            let c = self.recvs.get(idx);
            if c.pid_raw() == pid.raw() {
                let next = c.next();
                if prev == NIL {
                    self.lnvc.recv_list.store(next, Ordering::Relaxed);
                } else {
                    self.recvs.get(prev).set_next(next);
                }
                let protocol = c.protocol();
                match protocol {
                    Protocol::Fcfs => self.lnvc.n_fcfs.fetch_sub(1, Ordering::Relaxed),
                    Protocol::Broadcast => self.lnvc.n_bcast.fetch_sub(1, Ordering::Relaxed),
                };
                return Some((idx, protocol, c.head()));
            }
            prev = idx;
            idx = c.next();
        }
        None
    }

    /// Appends message `msg_idx` (an initialized header whose chain is
    /// already populated) at the FIFO tail, pointing every caught-up
    /// broadcast receiver at it.  Returns the message's stamp.
    pub fn enqueue(&self, msg_idx: u32, payload_len: usize, chain: Chain) -> u64 {
        let lnvc = self.lnvc;
        let stamp = self.stamps.fetch_add(1, Ordering::Relaxed);
        let n_bcast = lnvc.n_bcast();
        // A message owes an FCFS delivery if FCFS receivers are connected,
        // or if nobody is listening yet (it waits for a future receiver —
        // the paper's §3.2 "messages could be lost" discussion concerns
        // deletion, not sends ahead of receivers).
        let needs_fcfs = lnvc.n_fcfs() > 0 || n_bcast == 0;
        self.msgs.get(msg_idx).reset(
            payload_len,
            chain.head,
            chain.blocks,
            n_bcast,
            needs_fcfs,
            stamp,
        );

        let tail = lnvc.q_tail.load(Ordering::Relaxed);
        if tail == NIL {
            lnvc.q_head.store(msg_idx, Ordering::Relaxed);
        } else {
            self.msgs.get(tail).set_next(msg_idx);
        }
        lnvc.q_tail.store(msg_idx, Ordering::Relaxed);
        lnvc.msg_count.fetch_add(1, Ordering::Relaxed);
        if lnvc.fcfs_head.load(Ordering::Relaxed) == NIL {
            lnvc.fcfs_head.store(msg_idx, Ordering::Relaxed);
        }

        // Broadcast receivers that had read everything ("at tail", head ==
        // NIL) now have this message as their next unread.
        if n_bcast > 0 {
            let mut idx = lnvc.recv_list.load(Ordering::Relaxed);
            while idx != NIL {
                let c = self.recvs.get(idx);
                if c.protocol() == Protocol::Broadcast && c.head() == NIL {
                    c.set_head(msg_idx);
                }
                idx = c.next();
            }
        }
        stamp
    }

    /// Finds the next message owed an FCFS delivery, advancing the shared
    /// FCFS head past satisfied messages as a side effect.
    pub fn fcfs_peek(&self) -> Option<u32> {
        let lnvc = self.lnvc;
        let mut idx = lnvc.fcfs_head.load(Ordering::Relaxed);
        // Skip messages with no outstanding FCFS obligation.
        while idx != NIL {
            let m = self.msgs.get(idx);
            if m.needs_fcfs() && !m.fcfs_taken() {
                break;
            }
            idx = m.next();
        }
        lnvc.fcfs_head.store(idx, Ordering::Relaxed);
        (idx != NIL).then_some(idx)
    }

    /// Frees the longest fully-consumed, unpinned prefix of the FIFO.
    /// Returns the number of messages reclaimed (callers use it to decide
    /// whether to wake block-starved senders).
    pub fn reclaim_prefix(&self) -> u32 {
        let lnvc = self.lnvc;
        let mut freed = 0;
        loop {
            let head = lnvc.q_head.load(Ordering::Relaxed);
            if head == NIL {
                break;
            }
            let m = self.msgs.get(head);
            if !m.fully_consumed() || m.is_pinned() {
                break;
            }
            let next = m.next();
            lnvc.q_head.store(next, Ordering::Relaxed);
            if lnvc.q_tail.load(Ordering::Relaxed) == head {
                lnvc.q_tail.store(NIL, Ordering::Relaxed);
            }
            if lnvc.fcfs_head.load(Ordering::Relaxed) == head {
                lnvc.fcfs_head.store(next, Ordering::Relaxed);
            }
            self.note_reclaim(m, head);
            self.blocks.free_chain(Chain {
                head: m.head_block(),
                blocks: m.blocks(),
            });
            self.msgs.free(head);
            lnvc.msg_count.fetch_sub(1, Ordering::Relaxed);
            freed += 1;
        }
        freed
    }

    /// Drops the FCFS obligation of every queued message still waiting for
    /// one.  Called when the connection set can no longer produce an FCFS
    /// delivery for backlog: the last FCFS receiver closed while broadcast
    /// receivers remain, or the first receiver ever to join is BROADCAST
    /// (late joiners never see the backlog, so nobody will take it).
    /// Returns the number of obligations cleared.
    pub fn clear_fcfs_obligations(&self) -> u32 {
        let mut cleared = 0;
        let mut idx = self.lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            let m = self.msgs.get(idx);
            if m.needs_fcfs() && !m.fcfs_taken() {
                m.clear_needs_fcfs();
                cleared += 1;
            }
            idx = m.next();
        }
        // Nothing ahead of the (possibly stale) FCFS cursor is owed now.
        self.lnvc.fcfs_head.store(NIL, Ordering::Relaxed);
        cleared
    }

    /// Frees every fully-consumed, unpinned message anywhere in the FIFO —
    /// not just the prefix.  `reclaim_prefix` is the O(1)-amortized hot
    /// path; this full walk is the slow path for close-time sweeps and
    /// block-starved senders, where an interior message (e.g. one whose
    /// obligation was just cleared behind a still-claimed head) would
    /// otherwise stay pinned behind the prefix rule.  Safe under the LNVC
    /// lock: a fully-consumed message has `bcast_pending == 0`, so no live
    /// broadcast receiver's head can point at it, and the shared FCFS head
    /// is advanced past it when they coincide.  Returns messages reclaimed.
    pub fn reclaim_consumed(&self) -> u32 {
        let lnvc = self.lnvc;
        let mut freed = 0;
        let mut prev = NIL;
        let mut idx = lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            let m = self.msgs.get(idx);
            let next = m.next();
            if m.fully_consumed() && !m.is_pinned() {
                if prev == NIL {
                    lnvc.q_head.store(next, Ordering::Relaxed);
                } else {
                    self.msgs.get(prev).set_next(next);
                }
                if lnvc.q_tail.load(Ordering::Relaxed) == idx {
                    lnvc.q_tail.store(prev, Ordering::Relaxed);
                }
                if lnvc.fcfs_head.load(Ordering::Relaxed) == idx {
                    lnvc.fcfs_head.store(next, Ordering::Relaxed);
                }
                self.note_reclaim(m, idx);
                self.blocks.free_chain(Chain {
                    head: m.head_block(),
                    blocks: m.blocks(),
                });
                self.msgs.free(idx);
                lnvc.msg_count.fetch_sub(1, Ordering::Relaxed);
                freed += 1;
            } else {
                prev = idx;
            }
            idx = next;
        }
        freed
    }

    /// The paper's "particularly vexing problem" (§3.2): a broadcast
    /// receiver closes with unread messages.  Walks from the receiver's
    /// head to the tail, releasing its claim on each message, then reclaims
    /// whatever became fully consumed.  Returns messages reclaimed.
    pub fn release_bcast_claims(&self, from: u32) -> u32 {
        let mut idx = from;
        while idx != NIL {
            let m = self.msgs.get(idx);
            m.dec_bcast_pending();
            idx = m.next();
        }
        self.reclaim_prefix()
    }

    /// Discards the whole FIFO (LNVC deletion: "the LNVC is deleted and
    /// all unread messages are discarded").  Returns messages freed.
    pub fn discard_all_messages(&self) -> u32 {
        let lnvc = self.lnvc;
        let mut freed = 0;
        let mut idx = lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            let m = self.msgs.get(idx);
            debug_assert!(!m.is_pinned(), "deleting an LNVC with an in-flight copy");
            let next = m.next();
            self.note_reclaim(m, idx);
            self.blocks.free_chain(Chain {
                head: m.head_block(),
                blocks: m.blocks(),
            });
            self.msgs.free(idx);
            freed += 1;
            idx = next;
        }
        lnvc.q_head.store(NIL, Ordering::Relaxed);
        lnvc.q_tail.store(NIL, Ordering::Relaxed);
        lnvc.fcfs_head.store(NIL, Ordering::Relaxed);
        lnvc.msg_count.store(0, Ordering::Relaxed);
        freed
    }

    /// Audits this conversation's structural invariants (lock held).
    /// Returns per-LNVC occupancy for the facility's global conservation
    /// check, or a description of the first violation found.
    pub fn audit(&self) -> std::result::Result<LnvcAudit, String> {
        let lnvc = self.lnvc;

        // Connection lists vs. counters.
        let mut senders = 0u32;
        let mut idx = lnvc.send_list.load(Ordering::Relaxed);
        while idx != NIL {
            senders += 1;
            if senders > self.sends.capacity() {
                return Err("send list is cyclic".into());
            }
            idx = self.sends.get(idx).next();
        }
        if senders != lnvc.n_senders() {
            return Err(format!(
                "n_senders {} but send list holds {senders}",
                lnvc.n_senders()
            ));
        }
        let mut fcfs = 0u32;
        let mut bcast_heads = Vec::new();
        let mut idx = lnvc.recv_list.load(Ordering::Relaxed);
        while idx != NIL {
            if fcfs as usize + bcast_heads.len() >= self.recvs.capacity() as usize {
                return Err("receive list is cyclic".into());
            }
            let c = self.recvs.get(idx);
            match c.protocol() {
                Protocol::Fcfs => fcfs += 1,
                Protocol::Broadcast => bcast_heads.push(c.head()),
            }
            idx = c.next();
        }
        if fcfs != lnvc.n_fcfs() || bcast_heads.len() as u32 != lnvc.n_bcast() {
            return Err(format!(
                "counters say {} FCFS / {} BROADCAST but list holds {fcfs} / {}",
                lnvc.n_fcfs(),
                lnvc.n_bcast(),
                bcast_heads.len()
            ));
        }

        // Full queue walk: position map, stamps, block totals.
        let mut pos_of = std::collections::HashMap::new();
        let mut queue = Vec::new();
        let mut blocks = 0u64;
        let mut last_stamp = None;
        let mut idx = lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            if pos_of.insert(idx, queue.len()).is_some() {
                return Err(format!("FIFO is cyclic at message {idx}"));
            }
            let m = self.msgs.get(idx);
            queue.push(idx);
            blocks += m.blocks() as u64;
            if let Some(prev) = last_stamp {
                if m.stamp() <= prev {
                    return Err(format!(
                        "stamps not increasing: {} then {} at message {idx}",
                        prev,
                        m.stamp()
                    ));
                }
            }
            last_stamp = Some(m.stamp());
            idx = m.next();
        }
        if queue.len() as u32 != lnvc.msg_count() {
            return Err(format!(
                "msg_count {} but FIFO holds {}",
                lnvc.msg_count(),
                queue.len()
            ));
        }
        let tail = lnvc.q_tail.load(Ordering::Relaxed);
        if tail != queue.last().copied().unwrap_or(NIL) {
            return Err(format!("q_tail {tail} is not the last queued message"));
        }
        for &h in &bcast_heads {
            if h != NIL && !pos_of.contains_key(&h) {
                return Err(format!("a broadcast cursor points at unqueued message {h}"));
            }
        }
        let fcfs_head = lnvc.fcfs_head.load(Ordering::Relaxed);
        if fcfs_head != NIL && !pos_of.contains_key(&fcfs_head) {
            return Err(format!("fcfs_head points at unqueued message {fcfs_head}"));
        }

        // Per-message delivery bookkeeping.
        for (pos, &mi) in queue.iter().enumerate() {
            let m = self.msgs.get(mi);
            let claims = bcast_heads
                .iter()
                .filter(|&&h| h != NIL && pos_of[&h] <= pos)
                .count() as u32;
            if m.bcast_pending() != claims {
                return Err(format!(
                    "message {mi} (stamp {}) has bcast_pending {} but {claims} \
                     broadcast cursors have not passed it",
                    m.stamp(),
                    m.bcast_pending()
                ));
            }
            if m.needs_fcfs() && !m.fcfs_taken() {
                // The obligation-leak class of bug: an owed FCFS delivery
                // that the current connection set can never produce.
                if lnvc.n_fcfs() == 0 && lnvc.n_bcast() > 0 {
                    return Err(format!(
                        "message {mi} (stamp {}) awaits an FCFS delivery but no FCFS \
                         receiver is connected and broadcast receivers keep the LNVC alive",
                        m.stamp()
                    ));
                }
                if fcfs_head == NIL || pos_of[&fcfs_head] > pos {
                    return Err(format!(
                        "fcfs_head skipped owed message {mi} (stamp {})",
                        m.stamp()
                    ));
                }
            }
        }
        if let Some(&head) = queue.first() {
            let m = self.msgs.get(head);
            if m.fully_consumed() && !m.is_pinned() {
                return Err(format!(
                    "FIFO head {head} (stamp {}) is fully consumed and unpinned \
                     but was not reclaimed",
                    m.stamp()
                ));
            }
        }

        Ok(LnvcAudit {
            messages: queue.len() as u32,
            blocks,
            senders,
            receivers: fcfs + bcast_heads.len() as u32,
        })
    }

    /// Counts queued messages (and their blocks) that are fully consumed
    /// and unpinned — corpses a sweep would free — without freeing them.
    /// This is the `reclaimable()` metric: flow control can distinguish
    /// "pool full of live messages" from "pool full of corpses awaiting
    /// sweep".
    pub fn count_reclaimable(&self) -> (u32, u64) {
        let mut messages = 0u32;
        let mut blocks = 0u64;
        let mut idx = self.lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            let m = self.msgs.get(idx);
            if m.fully_consumed() && !m.is_pinned() {
                messages += 1;
                blocks += m.blocks() as u64;
            }
            idx = m.next();
        }
        (messages, blocks)
    }

    /// Walks the queue collecting stamps (test/diagnostic helper).
    pub fn queue_stamps(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let mut idx = self.lnvc.q_head.load(Ordering::Relaxed);
        while idx != NIL {
            let m = self.msgs.get(idx);
            out.push(m.stamp());
            idx = m.next();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        lnvc: LnvcSlot,
        msgs: Pool<MsgSlot>,
        blocks: BlockPool,
        sends: Pool<SendConn>,
        recvs: Pool<RecvConn>,
        stamps: AtomicU64,
    }

    impl Fixture {
        fn new() -> Self {
            let f = Self {
                lnvc: LnvcSlot::new(LockKind::Spin),
                msgs: Pool::new(32),
                blocks: BlockPool::new(128, 10),
                sends: Pool::new(8),
                recvs: Pool::new(8),
                stamps: AtomicU64::new(0),
            };
            f.lnvc.activate();
            f
        }

        fn ctx(&self) -> Ctx<'_> {
            Ctx {
                lnvc: &self.lnvc,
                msgs: &self.msgs,
                blocks: &self.blocks,
                sends: &self.sends,
                recvs: &self.recvs,
                tring: None,
                stamps: &self.stamps,
            }
        }

        fn send(&self, payload: &[u8]) -> u32 {
            let ctx = self.ctx();
            let chain = self.blocks.alloc_chain(payload).unwrap();
            let idx = self.msgs.alloc().unwrap();
            ctx.enqueue(idx, payload.len(), chain);
            idx
        }

        fn add_recv(&self, pid: u32, protocol: Protocol) -> u32 {
            let idx = self.recvs.alloc().unwrap();
            self.recvs.get(idx).reset(pid, protocol, NIL);
            self.ctx().link_recv(idx, protocol);
            idx
        }

        fn add_send(&self, pid: u32) -> u32 {
            let idx = self.sends.alloc().unwrap();
            self.sends.get(idx).reset(pid, NIL);
            self.ctx().link_send(idx);
            idx
        }
    }

    fn pid(raw: u32) -> ProcessId {
        ProcessId::new(raw).unwrap()
    }

    #[test]
    fn activate_resets_queue_state() {
        let f = Fixture::new();
        f.send(b"abc");
        f.lnvc.deactivate();
        let gen_before = f.lnvc.generation();
        f.lnvc.activate();
        assert_eq!(f.lnvc.msg_count(), 0);
        assert_eq!(f.lnvc.generation(), gen_before);
        assert!(f.lnvc.is_active());
    }

    #[test]
    fn deactivate_bumps_generation() {
        let f = Fixture::new();
        let g = f.lnvc.generation();
        f.lnvc.deactivate();
        assert_eq!(f.lnvc.generation(), g + 1);
        assert!(!f.lnvc.is_active());
    }

    #[test]
    fn enqueue_stamps_are_fifo() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Fcfs);
        for _ in 0..5 {
            f.send(b"m");
        }
        assert_eq!(f.ctx().queue_stamps(), vec![0, 1, 2, 3, 4]);
        assert_eq!(f.lnvc.msg_count(), 5);
    }

    #[test]
    fn fcfs_peek_skips_taken() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Fcfs);
        let a = f.send(b"a");
        let b = f.send(b"b");
        let ctx = f.ctx();
        assert_eq!(ctx.fcfs_peek(), Some(a));
        f.msgs.get(a).set_fcfs_taken();
        assert_eq!(ctx.fcfs_peek(), Some(b));
        f.msgs.get(b).set_fcfs_taken();
        assert_eq!(ctx.fcfs_peek(), None);
    }

    #[test]
    fn messages_without_receivers_wait_for_fcfs() {
        // Sent before anyone listens: owed to a future FCFS receiver.
        let f = Fixture::new();
        f.add_send(9);
        let a = f.send(b"early");
        assert!(f.msgs.get(a).needs_fcfs());
        assert_eq!(f.msgs.get(a).bcast_pending(), 0);
        assert_eq!(f.ctx().reclaim_prefix(), 0, "must not be reclaimed");
    }

    #[test]
    fn bcast_only_message_reclaims_after_all_reads() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        f.add_recv(2, Protocol::Broadcast);
        let a = f.send(b"hello");
        let m = f.msgs.get(a);
        assert!(!m.needs_fcfs(), "pure broadcast LNVC owes no FCFS delivery");
        assert_eq!(m.bcast_pending(), 2);
        m.dec_bcast_pending();
        assert_eq!(f.ctx().reclaim_prefix(), 0);
        m.dec_bcast_pending();
        assert_eq!(f.ctx().reclaim_prefix(), 1);
        assert_eq!(f.lnvc.msg_count(), 0);
        assert_eq!(f.blocks.available(), 128);
    }

    #[test]
    fn late_broadcast_receiver_starts_at_tail() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        f.send(b"before");
        let late = f.add_recv(2, Protocol::Broadcast);
        assert_eq!(
            f.recvs.get(late).head(),
            NIL,
            "late joiner sees nothing yet"
        );
        let b = f.send(b"after");
        assert_eq!(f.recvs.get(late).head(), b, "next send becomes its head");
    }

    #[test]
    fn mixed_lnvc_message_owes_both() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Fcfs);
        f.add_recv(2, Protocol::Broadcast);
        let a = f.send(b"x");
        let m = f.msgs.get(a);
        assert!(m.needs_fcfs());
        assert_eq!(m.bcast_pending(), 1);
        m.set_fcfs_taken();
        assert_eq!(f.ctx().reclaim_prefix(), 0, "broadcast read still owed");
        m.dec_bcast_pending();
        assert_eq!(f.ctx().reclaim_prefix(), 1);
    }

    #[test]
    fn reclaim_stops_at_pinned_message() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let a = f.send(b"a");
        let b = f.send(b"b");
        let ma = f.msgs.get(a);
        let mb = f.msgs.get(b);
        ma.begin_copy();
        ma.dec_bcast_pending();
        mb.dec_bcast_pending();
        assert_eq!(f.ctx().reclaim_prefix(), 0, "pinned head blocks reclaim");
        ma.end_copy();
        assert_eq!(f.ctx().reclaim_prefix(), 2);
    }

    #[test]
    fn release_bcast_claims_sweeps_unread_tail() {
        // The paper's close_receive "vexing problem": receiver 2 read one
        // of three messages, then closes.
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let r2 = f.add_recv(2, Protocol::Broadcast);
        let a = f.send(b"a");
        let b = f.send(b"b");
        f.send(b"c");
        // Receiver 2 consumes message a.
        f.msgs.get(a).dec_bcast_pending();
        f.recvs.get(r2).set_head(b);
        // Receiver 1 consumed everything.
        for &m in &f.ctx().collect_queue() {
            f.msgs.get(m).dec_bcast_pending();
        }
        // Receiver 2 closes: releases claims on b and c; all three messages
        // become reclaimable.
        let reclaimed = f.ctx().release_bcast_claims(b);
        assert_eq!(reclaimed, 3);
        assert_eq!(f.lnvc.msg_count(), 0);
        assert_eq!(f.blocks.available(), 128);
        assert_eq!(f.msgs.in_use(), 0);
    }

    #[test]
    fn clear_fcfs_obligations_makes_backlog_reclaimable() {
        // Messages sent with no receivers connected are owed to a future
        // FCFS receiver; if the conversation turns out broadcast-only the
        // obligation must be droppable.
        let f = Fixture::new();
        f.add_send(9);
        f.send(b"a");
        f.send(b"b");
        let ctx = f.ctx();
        assert_eq!(ctx.reclaim_prefix(), 0, "obligation pins the backlog");
        assert_eq!(ctx.clear_fcfs_obligations(), 2);
        assert_eq!(ctx.reclaim_prefix(), 2);
        assert_eq!(f.msgs.in_use(), 0);
        assert_eq!(f.blocks.available(), 128);
    }

    #[test]
    fn clear_fcfs_obligations_skips_taken() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Fcfs);
        let a = f.send(b"a");
        f.send(b"b");
        f.msgs.get(a).set_fcfs_taken();
        assert_eq!(f.ctx().clear_fcfs_obligations(), 1);
    }

    #[test]
    fn reclaim_consumed_frees_interior_message() {
        // Head is still claimed by a broadcast receiver; an interior
        // message behind it is fully consumed.  The prefix reclaimer cannot
        // touch it; the full-queue walk must.
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let a = f.send(b"a");
        let b = f.send(b"b");
        let c = f.send(b"c");
        f.msgs.get(b).dec_bcast_pending();
        let ctx = f.ctx();
        assert_eq!(ctx.reclaim_prefix(), 0);
        assert_eq!(ctx.reclaim_consumed(), 1);
        assert_eq!(ctx.collect_queue(), vec![a, c], "b unlinked from interior");
        assert_eq!(f.lnvc.msg_count(), 2);
    }

    #[test]
    fn reclaim_consumed_fixes_tail_and_fcfs_head() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let a = f.send(b"a");
        let b = f.send(b"b");
        // Consume the tail only.
        f.msgs.get(b).dec_bcast_pending();
        let ctx = f.ctx();
        assert_eq!(ctx.reclaim_consumed(), 1);
        assert_eq!(f.lnvc.q_tail.load(Ordering::Relaxed), a, "tail relinked");
        // New sends must append after `a`, not after the freed slot.
        let c = f.send(b"c");
        assert_eq!(ctx.collect_queue(), vec![a, c]);
        // Consume everything; the full walk empties the queue.
        f.msgs.get(a).dec_bcast_pending();
        f.msgs.get(c).dec_bcast_pending();
        assert_eq!(ctx.reclaim_consumed(), 2);
        assert_eq!(f.lnvc.q_head.load(Ordering::Relaxed), NIL);
        assert_eq!(f.lnvc.q_tail.load(Ordering::Relaxed), NIL);
        assert_eq!(f.blocks.available(), 128);
    }

    #[test]
    fn count_reclaimable_sees_interior_corpse() {
        // Same shape as reclaim_consumed_frees_interior_message: the
        // metric must report the corpse without freeing it.
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let a = f.send(b"a");
        let b = f.send(b"b");
        let c = f.send(b"c");
        f.msgs.get(b).dec_bcast_pending();
        let ctx = f.ctx();
        let (msgs, blocks) = ctx.count_reclaimable();
        assert_eq!(msgs, 1, "only b is a corpse");
        assert_eq!(blocks, f.msgs.get(b).blocks() as u64);
        assert_eq!(ctx.collect_queue(), vec![a, b, c], "counting freed nothing");
        assert_eq!(ctx.reclaim_consumed(), 1);
        assert_eq!(ctx.count_reclaimable(), (0, 0));
    }

    #[test]
    fn reclaim_consumed_skips_pinned() {
        let f = Fixture::new();
        f.add_recv(1, Protocol::Broadcast);
        let a = f.send(b"a");
        let m = f.msgs.get(a);
        m.dec_bcast_pending();
        m.begin_copy();
        assert_eq!(f.ctx().reclaim_consumed(), 0, "pinned message stays");
        m.end_copy();
        assert_eq!(f.ctx().reclaim_consumed(), 1);
    }

    #[test]
    fn discard_all_frees_everything() {
        let f = Fixture::new();
        f.add_send(5);
        for _ in 0..6 {
            f.send(&[9u8; 25]);
        }
        assert!(f.blocks.available() < 128);
        let freed = f.ctx().discard_all_messages();
        assert_eq!(freed, 6);
        assert_eq!(f.blocks.available(), 128);
        assert_eq!(f.msgs.in_use(), 0);
        assert_eq!(f.lnvc.msg_count(), 0);
    }

    #[test]
    fn conn_link_find_unlink() {
        let f = Fixture::new();
        f.add_send(3);
        f.add_send(4);
        f.add_recv(5, Protocol::Fcfs);
        let ctx = f.ctx();
        assert!(ctx.find_send(pid(3)).is_some());
        assert!(ctx.find_send(pid(4)).is_some());
        assert!(ctx.find_send(pid(5)).is_none());
        assert!(ctx.find_recv(pid(5)).is_some());
        assert_eq!(f.lnvc.n_senders(), 2);
        let idx = ctx.unlink_send(pid(3)).unwrap();
        f.sends.free(idx);
        assert!(ctx.find_send(pid(3)).is_none());
        assert_eq!(f.lnvc.n_senders(), 1);
        let (idx, protocol, head) = ctx.unlink_recv(pid(5)).unwrap();
        assert_eq!(protocol, Protocol::Fcfs);
        assert_eq!(head, NIL);
        f.recvs.free(idx);
        assert_eq!(f.lnvc.total_connections(), 1);
    }

    #[test]
    fn unlink_missing_returns_none() {
        let f = Fixture::new();
        let ctx = f.ctx();
        assert!(ctx.unlink_send(pid(42)).is_none());
        assert!(ctx.unlink_recv(pid(42)).is_none());
    }

    impl Ctx<'_> {
        fn collect_queue(&self) -> Vec<u32> {
            let mut out = Vec::new();
            let mut idx = self.lnvc.q_head.load(Ordering::Relaxed);
            while idx != NIL {
                out.push(idx);
                idx = self.msgs.get(idx).next();
            }
            out
        }
    }
}
