//! Message blocks — the paper's fundamental data structure.
//!
//! §3.1: "During MPF initialization, a free list of linked message blocks
//! is created in shared memory.  Space allocated from this free list is
//! used for messages during program execution."  A message's payload is
//! scattered across a singly linked chain of fixed-size blocks (10 bytes in
//! the paper's experiments); `message_send` copies the send buffer in,
//! `message_receive` copies it back out.
//!
//! Block *links* live in a typed pool; block *payloads* live in a strided
//! byte arena.  Both are addressed by the same `u32` block index.

use std::sync::atomic::{AtomicU32, Ordering};

use mpf_shm::arena::StridedArena;
use mpf_shm::idxstack::NIL;
use mpf_shm::pool::Pool;

use crate::error::{MpfError, Result};

/// Link word for one block.  `next` is only read/written by the block's
/// current owner (the sender before publication; receivers and the
/// reclaimer under the LNVC lock afterwards), so `Relaxed` suffices —
/// cross-thread visibility rides on the lock / free-list edges.
#[derive(Debug, Default)]
pub struct BlockLink {
    next: AtomicU32,
}

/// A allocated chain of blocks holding one message payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chain {
    /// First block index, or `NIL` for an empty payload.
    pub head: u32,
    /// Number of blocks in the chain.
    pub blocks: u32,
}

/// The block free list plus the payload arena.
#[derive(Debug)]
pub struct BlockPool {
    links: Pool<BlockLink>,
    payloads: StridedArena,
}

impl BlockPool {
    /// Creates `total` blocks of `payload` bytes each.
    pub fn new(total: u32, payload: usize) -> Self {
        Self {
            links: Pool::new(total),
            payloads: StridedArena::new(total, payload),
        }
    }

    /// Payload bytes per block.
    pub fn payload_size(&self) -> usize {
        self.payloads.stride()
    }

    /// Total blocks in the region.
    pub fn capacity(&self) -> u32 {
        self.links.capacity()
    }

    /// Approximate free blocks.
    pub fn available(&self) -> u32 {
        self.links.available()
    }

    /// Blocks needed for a payload of `len` bytes.
    pub fn blocks_needed(&self, len: usize) -> u32 {
        (len.div_ceil(self.payload_size())) as u32
    }

    /// Allocates a chain and copies `data` into it.
    ///
    /// On exhaustion mid-allocation every block taken so far is returned to
    /// the free list and `BlocksExhausted` is reported, so a failed send
    /// never leaks region memory.
    pub fn alloc_chain(&self, data: &[u8]) -> Result<Chain> {
        use mpf_shm::hooks::{self, SyncEvent};
        hooks::yield_point(SyncEvent::Alloc(self as *const Self as usize));
        let needed = self.blocks_needed(data.len());
        if needed as usize > self.capacity() as usize {
            return Err(MpfError::MessageTooLarge {
                len: data.len(),
                max: self.capacity() as usize * self.payload_size(),
            });
        }
        let stride = self.payload_size();
        let mut head = NIL;
        let mut tail = NIL;
        for i in 0..needed {
            let Some(idx) = self.links.alloc() else {
                if head != NIL {
                    self.free_chain(Chain { head, blocks: i });
                }
                return Err(MpfError::BlocksExhausted);
            };
            self.links.get(idx).next.store(NIL, Ordering::Relaxed);
            let off = i as usize * stride;
            let end = (off + stride).min(data.len());
            // SAFETY: we own `idx` (freshly popped, not yet linked into any
            // published message).
            unsafe { self.payloads.write(idx, 0, &data[off..end]) };
            if head == NIL {
                head = idx;
            } else {
                self.links.get(tail).next.store(idx, Ordering::Relaxed);
            }
            tail = idx;
        }
        Ok(Chain {
            head,
            blocks: needed,
        })
    }

    /// Copies `len` bytes out of the chain starting at `head` into `dst`.
    ///
    /// # Panics
    /// If the chain is shorter than `len` requires (region corruption).
    pub fn read_chain(&self, head: u32, len: usize, dst: &mut [u8]) {
        debug_assert!(dst.len() >= len);
        let stride = self.payload_size();
        let mut idx = head;
        let mut off = 0;
        while off < len {
            assert!(idx != NIL, "message chain truncated at byte {off} of {len}");
            let take = stride.min(len - off);
            // SAFETY: the caller reached this chain through a published
            // message under the LNVC protocol; blocks of a published
            // message are never written.
            unsafe { self.payloads.read(idx, 0, &mut dst[off..off + take]) };
            off += take;
            idx = self.links.get(idx).next.load(Ordering::Relaxed);
        }
    }

    /// Visits the chain's payload as borrowed per-block slices without
    /// copying — the zero-copy read path (paper §5: "direct data transfer
    /// is possible").
    ///
    /// # Safety
    /// The chain must belong to a published message that is pinned
    /// (`MsgSlot::begin_copy`) for the duration of the call, so no
    /// reclaimer frees the blocks and no writer exists.
    pub unsafe fn scan_chain(&self, head: u32, len: usize, mut f: impl FnMut(&[u8])) {
        let stride = self.payload_size();
        let mut idx = head;
        let mut off = 0;
        while off < len {
            assert!(idx != NIL, "message chain truncated at byte {off} of {len}");
            let take = stride.min(len - off);
            self.payloads.with_slice(idx, take, &mut f);
            off += take;
            idx = self.links.get(idx).next.load(Ordering::Relaxed);
        }
    }

    /// Returns every block of `chain` to the free list.
    pub fn free_chain(&self, chain: Chain) {
        use mpf_shm::hooks::{self, SyncEvent};
        hooks::yield_point(SyncEvent::Free(self as *const Self as usize));
        let mut idx = chain.head;
        let mut freed = 0;
        while idx != NIL && freed < chain.blocks {
            let next = self.links.get(idx).next.load(Ordering::Relaxed);
            self.links.free(idx);
            idx = next;
            freed += 1;
        }
        debug_assert_eq!(freed, chain.blocks, "chain length mismatch on free");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> BlockPool {
        BlockPool::new(64, 10)
    }

    #[test]
    fn blocks_needed_matches_paper_example() {
        let p = pool();
        // 10-byte blocks, as in all of the paper's experiments.
        assert_eq!(p.blocks_needed(0), 0);
        assert_eq!(p.blocks_needed(1), 1);
        assert_eq!(p.blocks_needed(10), 1);
        assert_eq!(p.blocks_needed(11), 2);
        assert_eq!(p.blocks_needed(1024), 103);
    }

    #[test]
    fn roundtrip_various_lengths() {
        let p = pool();
        for len in [0usize, 1, 9, 10, 11, 25, 100, 640] {
            let data: Vec<u8> = (0..len).map(|i| (i * 7 + len) as u8).collect();
            let chain = p.alloc_chain(&data).unwrap();
            assert_eq!(chain.blocks, p.blocks_needed(len));
            let mut out = vec![0u8; len];
            p.read_chain(chain.head, len, &mut out);
            assert_eq!(out, data, "len {len}");
            p.free_chain(chain);
            assert_eq!(p.available(), 64, "leak at len {len}");
        }
    }

    #[test]
    fn empty_chain_has_nil_head() {
        let p = pool();
        let chain = p.alloc_chain(&[]).unwrap();
        assert_eq!(chain.head, NIL);
        assert_eq!(chain.blocks, 0);
        p.free_chain(chain);
    }

    #[test]
    fn exhaustion_frees_partial_chain() {
        let p = BlockPool::new(4, 10);
        let keep = p.alloc_chain(&[0u8; 20]).unwrap(); // 2 blocks
        let err = p.alloc_chain(&[0u8; 30]).unwrap_err(); // needs 3, only 2 free
        assert_eq!(err, MpfError::BlocksExhausted);
        assert_eq!(p.available(), 2, "partial allocation must be rolled back");
        p.free_chain(keep);
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn oversized_message_rejected_up_front() {
        let p = BlockPool::new(4, 10);
        let err = p.alloc_chain(&[0u8; 41]).unwrap_err();
        assert!(matches!(
            err,
            MpfError::MessageTooLarge { len: 41, max: 40 }
        ));
        assert_eq!(p.available(), 4);
    }

    #[test]
    fn scan_chain_matches_read_chain() {
        let p = pool();
        let data: Vec<u8> = (0..57u8).collect();
        let chain = p.alloc_chain(&data).unwrap();
        let mut scanned = Vec::new();
        // SAFETY: chain is privately owned by this test (never shared).
        unsafe { p.scan_chain(chain.head, data.len(), |c| scanned.extend_from_slice(c)) };
        assert_eq!(scanned, data);
        let mut copied = vec![0u8; data.len()];
        p.read_chain(chain.head, data.len(), &mut copied);
        assert_eq!(copied, data);
        p.free_chain(chain);
    }

    #[test]
    fn concurrent_senders_do_not_cross_chains() {
        let p = BlockPool::new(512, 10);
        std::thread::scope(|s| {
            for t in 0..4u8 {
                let p = &p;
                s.spawn(move || {
                    for round in 0..500 {
                        let len = (round % 64) + 1;
                        let data = vec![t.wrapping_mul(31).wrapping_add(round as u8); len];
                        let chain = p.alloc_chain(&data).unwrap();
                        let mut out = vec![0u8; len];
                        p.read_chain(chain.head, len, &mut out);
                        assert_eq!(out, data);
                        p.free_chain(chain);
                    }
                });
            }
        });
        assert_eq!(p.available(), 512);
    }
}
