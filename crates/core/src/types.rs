//! Core vocabulary types: protocols, LNVC names, LNVC identifiers.

use crate::error::{MpfError, Result};

/// Maximum LNVC name length in bytes (fixed-size storage in the shared
/// region — the paper's "mutually selected names" must fit the descriptor).
pub const MAX_NAME_LEN: usize = 31;

/// Receiver protocol declared at `open_receive` (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// First-come, first-served: each message is delivered to exactly one
    /// FCFS receiver.
    Fcfs,
    /// Every broadcast receiver sees every message.
    Broadcast,
}

impl Protocol {
    /// Encoding used in shared-region descriptors and the C API.
    pub fn to_raw(self) -> u8 {
        match self {
            Protocol::Fcfs => 0,
            Protocol::Broadcast => 1,
        }
    }

    /// Decodes a raw protocol value.
    pub fn from_raw(raw: u8) -> Option<Self> {
        match raw {
            0 => Some(Protocol::Fcfs),
            1 => Some(Protocol::Broadcast),
            _ => None,
        }
    }
}

/// A fixed-capacity, heap-free LNVC name (lives in descriptor tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LnvcName {
    bytes: [u8; MAX_NAME_LEN],
    len: u8,
}

impl LnvcName {
    /// Validates and stores a name.  Names must be non-empty and at most
    /// [`MAX_NAME_LEN`] bytes.
    pub fn new(name: &str) -> Result<Self> {
        let raw = name.as_bytes();
        if raw.is_empty() || raw.len() > MAX_NAME_LEN {
            return Err(MpfError::InvalidName {
                len: raw.len(),
                max: MAX_NAME_LEN,
            });
        }
        let mut bytes = [0u8; MAX_NAME_LEN];
        bytes[..raw.len()].copy_from_slice(raw);
        Ok(Self {
            bytes,
            len: raw.len() as u8,
        })
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        // Construction from &str guarantees valid UTF-8 on these bytes.
        std::str::from_utf8(&self.bytes[..self.len as usize]).expect("name is valid UTF-8")
    }
}

impl std::fmt::Display for LnvcName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for LnvcName {
    type Err = MpfError;
    fn from_str(s: &str) -> Result<Self> {
        Self::new(s)
    }
}

/// MPF's internal LNVC identifier, returned by `open_send`/`open_receive`
/// and required by the transfer and close primitives (paper §2).
///
/// Like the paper's `int`, it fits a non-negative `i32` for the C layer.
/// Internally it packs a slot index (low 16 bits) and a 15-bit generation
/// so a stale identifier for a deleted-and-recycled LNVC is detected rather
/// than silently addressing the wrong conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LnvcId(u32);

/// Maximum LNVC slot index representable in an [`LnvcId`].
pub const MAX_LNVC_INDEX: u32 = u16::MAX as u32;
const GEN_MASK: u32 = 0x7FFF;

impl LnvcId {
    /// Packs a slot index and generation.
    pub(crate) fn from_parts(index: u32, generation: u32) -> Self {
        debug_assert!(index <= MAX_LNVC_INDEX);
        Self(((generation & GEN_MASK) << 16) | index)
    }

    /// The LNVC slot index.
    pub(crate) fn index(self) -> u32 {
        self.0 & 0xFFFF
    }

    /// The generation tag this identifier was minted with.
    pub(crate) fn generation(self) -> u32 {
        (self.0 >> 16) & GEN_MASK
    }

    /// Whether this identifier was minted under `slot_generation`.  The
    /// id carries only [`GEN_MASK`] bits, so the slot's full counter must
    /// be masked before comparing (a slot recycled 2^15 times must not
    /// invalidate fresh identifiers).
    pub(crate) fn matches_generation(self, slot_generation: u32) -> bool {
        (slot_generation & GEN_MASK) == self.generation()
    }

    /// Non-negative integer form (what the paper's C functions return).
    pub fn as_i32(self) -> i32 {
        self.0 as i32
    }

    /// Parses the integer form.  Returns `None` for negative values.
    pub fn from_i32(raw: i32) -> Option<Self> {
        (raw >= 0).then_some(Self(raw as u32))
    }
}

impl std::fmt::Display for LnvcId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lnvc#{}@{}", self.index(), self.generation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_raw_roundtrip() {
        for p in [Protocol::Fcfs, Protocol::Broadcast] {
            assert_eq!(Protocol::from_raw(p.to_raw()), Some(p));
        }
        assert_eq!(Protocol::from_raw(2), None);
    }

    #[test]
    fn name_accepts_max_len() {
        let s = "x".repeat(MAX_NAME_LEN);
        let n = LnvcName::new(&s).unwrap();
        assert_eq!(n.as_str(), s);
    }

    #[test]
    fn name_rejects_empty_and_too_long() {
        assert!(LnvcName::new("").is_err());
        assert!(LnvcName::new(&"x".repeat(MAX_NAME_LEN + 1)).is_err());
    }

    #[test]
    fn name_equality_ignores_padding() {
        let a = LnvcName::new("pivot").unwrap();
        let b = LnvcName::new("pivot").unwrap();
        let c = LnvcName::new("pivotx").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn name_display_and_fromstr() {
        let n: LnvcName = "edge:3->4".parse().unwrap();
        assert_eq!(n.to_string(), "edge:3->4");
    }

    #[test]
    fn id_pack_unpack() {
        let id = LnvcId::from_parts(513, 77);
        assert_eq!(id.index(), 513);
        assert_eq!(id.generation(), 77);
    }

    #[test]
    fn id_i32_roundtrip_is_nonnegative() {
        let id = LnvcId::from_parts(MAX_LNVC_INDEX, GEN_MASK);
        let raw = id.as_i32();
        assert!(raw >= 0, "C-layer ids must be non-negative");
        assert_eq!(LnvcId::from_i32(raw), Some(id));
        assert_eq!(LnvcId::from_i32(-1), None);
    }

    #[test]
    fn generation_wraps_in_mask() {
        let id = LnvcId::from_parts(1, GEN_MASK + 5);
        assert_eq!(id.generation(), 4);
        assert!(id.matches_generation(GEN_MASK + 5));
        assert!(!id.matches_generation(GEN_MASK + 6));
    }
}
