//! Facility-wide instrumentation.
//!
//! Supports the paper's style of analysis ("message copying costs dominate;
//! memory bandwidth is the performance limiting factor") by separating
//! traffic (bytes copied in/out) from bookkeeping (messages, blocks, waits).

use mpf_shm::stats::Counter;

/// Live counters; read with [`MpfStats::snapshot`].
#[derive(Debug, Default)]
pub struct MpfStats {
    /// `message_send` calls that completed.
    pub sends: Counter,
    /// `message_receive` calls that completed.
    pub receives: Counter,
    /// Payload bytes copied from send buffers into blocks.
    pub bytes_in: Counter,
    /// Payload bytes copied from blocks into receive buffers (broadcast
    /// counts each delivery, which is why Figure 5's "effective
    /// throughput" can exceed the send rate).
    pub bytes_out: Counter,
    /// Times a receiver blocked waiting for a message.
    pub recv_waits: Counter,
    /// Times a sender blocked on region exhaustion (flow control).
    pub send_waits: Counter,
    /// Messages reclaimed to the free lists.
    pub reclaims: Counter,
    /// Conversations created.
    pub lnvcs_created: Counter,
    /// Conversations deleted (last connection closed).
    pub lnvcs_deleted: Counter,
}

/// Point-in-time copy of every counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// See [`MpfStats::sends`].
    pub sends: u64,
    /// See [`MpfStats::receives`].
    pub receives: u64,
    /// See [`MpfStats::bytes_in`].
    pub bytes_in: u64,
    /// See [`MpfStats::bytes_out`].
    pub bytes_out: u64,
    /// See [`MpfStats::recv_waits`].
    pub recv_waits: u64,
    /// See [`MpfStats::send_waits`].
    pub send_waits: u64,
    /// See [`MpfStats::reclaims`].
    pub reclaims: u64,
    /// See [`MpfStats::lnvcs_created`].
    pub lnvcs_created: u64,
    /// See [`MpfStats::lnvcs_deleted`].
    pub lnvcs_deleted: u64,
}

/// Pool occupancy held by **corpses**: queued messages that are fully
/// consumed and unpinned, awaiting a reclamation sweep.  Flow control uses
/// this to distinguish "pool full of live messages" (back-pressure is
/// real) from "pool full of corpses" (a sweep would free room).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Reclaimable {
    /// Message headers a sweep would free.
    pub messages: u32,
    /// Payload blocks a sweep would free.
    pub blocks: u64,
}

impl MpfStats {
    /// Copies every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            sends: self.sends.get(),
            receives: self.receives.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            recv_waits: self.recv_waits.get(),
            send_waits: self.send_waits.get(),
            reclaims: self.reclaims.get(),
            lnvcs_created: self.lnvcs_created.get(),
            lnvcs_deleted: self.lnvcs_deleted.get(),
        }
    }

    /// Zeroes every counter (between benchmark phases).
    pub fn reset(&self) {
        self.sends.reset();
        self.receives.reset();
        self.bytes_in.reset();
        self.bytes_out.reset();
        self.recv_waits.reset();
        self.send_waits.reset();
        self.reclaims.reset();
        self.lnvcs_created.reset();
        self.lnvcs_deleted.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = MpfStats::default();
        s.sends.add(3);
        s.bytes_in.add(300);
        let snap = s.snapshot();
        assert_eq!(snap.sends, 3);
        assert_eq!(snap.bytes_in, 300);
        assert_eq!(snap.receives, 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = MpfStats::default();
        s.sends.inc();
        s.receives.inc();
        s.bytes_out.add(10);
        s.reset();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
    }
}
