//! Idiomatic RAII layer over the eight primitives.
//!
//! [`Sender`] and [`Receiver`] wrap an open connection and close it on
//! drop, so a panicking participant still leaves the conversation — the
//! dynamic join/leave discipline the LNVC model is built around, made
//! automatic.  Everything here delegates to [`Mpf`]; no semantics are
//! added.

use mpf_shm::process::ProcessId;

use crate::error::{MpfError, Result};
use crate::facility::Mpf;
use crate::types::{LnvcId, Protocol};

/// An open send connection; closed on drop.
#[derive(Debug)]
pub struct Sender<'a> {
    mpf: &'a Mpf,
    pid: ProcessId,
    id: LnvcId,
}

impl<'a> Sender<'a> {
    /// The connection's LNVC identifier.
    pub fn id(&self) -> LnvcId {
        self.id
    }

    /// The owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// Asynchronously sends `buf` into the conversation.
    pub fn send(&self, buf: &[u8]) -> Result<()> {
        self.mpf.message_send(self.pid, self.id, buf)
    }

    /// Closes explicitly, reporting errors that drop would swallow.
    pub fn close(self) -> Result<()> {
        let result = self.mpf.close_send(self.pid, self.id);
        std::mem::forget(self);
        result
    }
}

impl Drop for Sender<'_> {
    fn drop(&mut self) {
        let _ = self.mpf.close_send(self.pid, self.id);
    }
}

/// An open receive connection; closed on drop.
#[derive(Debug)]
pub struct Receiver<'a> {
    mpf: &'a Mpf,
    pid: ProcessId,
    id: LnvcId,
    protocol: Protocol,
}

impl<'a> Receiver<'a> {
    /// The connection's LNVC identifier.
    pub fn id(&self) -> LnvcId {
        self.id
    }

    /// The owning process.
    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    /// The protocol declared at open.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Blocking receive into `buf`; returns bytes transferred.
    pub fn recv(&self, buf: &mut [u8]) -> Result<usize> {
        self.mpf.message_receive(self.pid, self.id, buf)
    }

    /// Blocking receive into a fresh `Vec`.
    pub fn recv_vec(&self) -> Result<Vec<u8>> {
        self.mpf.message_receive_vec(self.pid, self.id)
    }

    /// Non-blocking receive; `Ok(None)` when no message is waiting.
    pub fn try_recv(&self, buf: &mut [u8]) -> Result<Option<usize>> {
        self.mpf.try_message_receive(self.pid, self.id, buf)
    }

    /// Zero-copy blocking receive: visits the payload as borrowed
    /// block-sized slices (see [`Mpf::message_receive_scan`]).
    pub fn recv_scan(&self, visit: impl FnMut(&[u8])) -> Result<usize> {
        self.mpf.message_receive_scan(self.pid, self.id, visit)
    }

    /// `check_receive`: is a message waiting?  (Advisory for FCFS.)
    pub fn check(&self) -> Result<bool> {
        self.mpf.check_receive(self.pid, self.id)
    }

    /// An iterator of messages that ends when the conversation dies
    /// (i.e. when every other participant has left and the LNVC is
    /// deleted under us).
    pub fn iter(&self) -> impl Iterator<Item = Vec<u8>> + '_ {
        std::iter::from_fn(move || match self.recv_vec() {
            Ok(v) => Some(v),
            Err(MpfError::UnknownLnvc | MpfError::NotConnected) => None,
            Err(e) => panic!("receive failed: {e}"),
        })
    }

    /// Closes explicitly, reporting errors that drop would swallow.
    pub fn close(self) -> Result<()> {
        let result = self.mpf.close_receive(self.pid, self.id);
        std::mem::forget(self);
        result
    }
}

impl Drop for Receiver<'_> {
    fn drop(&mut self) {
        let _ = self.mpf.close_receive(self.pid, self.id);
    }
}

impl Mpf {
    /// Opens a send connection wrapped in a droppable [`Sender`].
    pub fn sender(&self, pid: ProcessId, name: &str) -> Result<Sender<'_>> {
        let id = self.open_send(pid, name)?;
        Ok(Sender { mpf: self, pid, id })
    }

    /// Opens a receive connection wrapped in a droppable [`Receiver`].
    pub fn receiver(&self, pid: ProcessId, name: &str, protocol: Protocol) -> Result<Receiver<'_>> {
        let id = self.open_receive(pid, name, protocol)?;
        Ok(Receiver {
            mpf: self,
            pid,
            id,
            protocol,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpfConfig;

    fn p(i: usize) -> ProcessId {
        ProcessId::from_index(i)
    }

    #[test]
    fn raii_send_recv() {
        let mpf = Mpf::init(MpfConfig::new(4, 4)).unwrap();
        let tx = mpf.sender(p(0), "chan").unwrap();
        let rx = mpf.receiver(p(1), "chan", Protocol::Fcfs).unwrap();
        tx.send(b"hi").unwrap();
        assert_eq!(rx.recv_vec().unwrap(), b"hi");
        let mut buf = [0u8; 8];
        assert_eq!(rx.try_recv(&mut buf).unwrap(), None);
    }

    #[test]
    fn drop_closes_connections() {
        let mpf = Mpf::init(MpfConfig::new(4, 4)).unwrap();
        {
            let _tx = mpf.sender(p(0), "temp").unwrap();
            assert_eq!(mpf.live_lnvcs(), 1);
        }
        assert_eq!(mpf.live_lnvcs(), 0, "drop closed the last connection");
    }

    #[test]
    fn explicit_close_reports() {
        let mpf = Mpf::init(MpfConfig::new(4, 4)).unwrap();
        let tx = mpf.sender(p(0), "c").unwrap();
        tx.close().unwrap();
        assert_eq!(mpf.live_lnvcs(), 0);
    }

    #[test]
    fn iter_drains_until_conversation_dies() {
        let mpf = Mpf::init(MpfConfig::new(4, 4)).unwrap();
        let rx = mpf.receiver(p(1), "feed", Protocol::Fcfs).unwrap();
        std::thread::scope(|s| {
            s.spawn(|| {
                let tx = mpf.sender(p(0), "feed").unwrap();
                for i in 0..5u8 {
                    tx.send(&[i]).unwrap();
                }
                // tx drops: sender leaves.
            });
            let mut got = Vec::new();
            for (count, msg) in rx.iter().enumerate() {
                got.push(msg[0]);
                if count == 4 {
                    break; // we are the last receiver; iter would block
                }
            }
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn protocol_accessor() {
        let mpf = Mpf::init(MpfConfig::new(4, 4)).unwrap();
        let rx = mpf.receiver(p(0), "x", Protocol::Broadcast).unwrap();
        assert_eq!(rx.protocol(), Protocol::Broadcast);
        assert_eq!(rx.pid(), p(0));
    }
}
