//! Facility configuration — the paper's `init(maxLNVC's, max_processes)`
//! plus the knobs its implementation fixes implicitly.
//!
//! The paper: "The parameters maxLNVC's and max_processes … are used to
//! estimate the amount of shared memory necessary."  [`MpfConfig::new`]
//! performs that estimate; every derived quantity can be overridden with
//! the builder methods (the ablation benches sweep them).

use mpf_shm::lock::LockKind;
use mpf_shm::waitq::WaitStrategy;

use crate::types::MAX_LNVC_INDEX;

/// What `message_send` does when the message-header or block pools are
/// exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExhaustPolicy {
    /// Block until another process frees capacity (flow control).  This is
    /// the default: the paper's fixed region simply fills and senders are
    /// at the mercy of consumers.
    #[default]
    Wait,
    /// Fail immediately with `MessagesExhausted`/`BlocksExhausted`.
    Error,
}

/// Configuration for [`crate::Mpf::init`].
#[derive(Debug, Clone)]
pub struct MpfConfig {
    /// Maximum simultaneously existing LNVCs (paper: `maxLNVC's`).
    pub max_lnvcs: u32,
    /// Maximum participating processes (paper: `max_processes`).
    pub max_processes: u32,
    /// Payload bytes per message block.  The paper used 10-byte blocks in
    /// all experiments (§3.1 footnote 4).
    pub block_payload: usize,
    /// Number of message blocks in the shared region.
    pub total_blocks: u32,
    /// Number of message headers in the shared region.
    pub max_messages: u32,
    /// Number of send-connection descriptors.
    pub max_send_conns: u32,
    /// Number of receive-connection descriptors.
    pub max_recv_conns: u32,
    /// Lock implementation for LNVC descriptors (ablation A2).
    pub lock_kind: LockKind,
    /// How blocked receivers (and senders under [`ExhaustPolicy::Wait`])
    /// wait (ablation A3).
    pub wait_strategy: WaitStrategy,
    /// Behaviour when the region is full.
    pub exhaust_policy: ExhaustPolicy,
    /// Event-trace capacity; 0 disables tracing (see [`crate::trace`]).
    pub trace_capacity: usize,
    /// Whether the facility records in-region telemetry (counters,
    /// histograms, flight rings).  On by default — the cost is one relaxed
    /// atomic per counter; the off switch exists so benchmarks can measure
    /// exactly that cost.  The telemetry segments are always carved (the
    /// layout does not depend on this flag); disabling only stops writes.
    pub telemetry: bool,
    /// Latency sampling period: stamp a send timestamp on 1-in-N messages
    /// (1 = every message, the default).  The send→receive latency
    /// histogram costs two `clock_gettime` calls per message — the last
    /// per-message syscalls on the hot path; sampling keeps the histogram
    /// statistically useful while removing both calls from the other
    /// N−1 messages.  Unsampled deliveries skip latency recording only;
    /// every other counter still updates.
    pub latency_sample_every: u32,
    /// Causal-trace sampling period: record 1-in-N causal chains in the
    /// per-process trace rings (1 = trace every chain, the default;
    /// 0 disables trace recording entirely).  The decision is made at the
    /// chain's **root** send and inherited by every downstream hop, so
    /// sampled chains are always complete — N thins the population of
    /// chains, never the events within one.
    pub trace_sample_every: u32,
}

/// The paper's experimental block payload: 10 bytes.
pub const PAPER_BLOCK_PAYLOAD: usize = 10;

impl MpfConfig {
    /// The paper-style constructor: estimates pool sizes from the two
    /// parameters.  Defaults favour practicality (64-byte blocks); use
    /// [`MpfConfig::paper_faithful`] for the 10-byte experimental setup.
    pub fn new(max_lnvcs: u32, max_processes: u32) -> Self {
        assert!((1..=MAX_LNVC_INDEX + 1).contains(&max_lnvcs));
        assert!(max_processes >= 1);
        let conns = (max_processes * 8).max(max_lnvcs * 2).max(64);
        Self {
            max_lnvcs,
            max_processes,
            block_payload: 64,
            total_blocks: 8192,
            max_messages: 2048,
            max_send_conns: conns,
            max_recv_conns: conns,
            lock_kind: LockKind::Spin,
            wait_strategy: WaitStrategy::Yield,
            exhaust_policy: ExhaustPolicy::Wait,
            trace_capacity: 0,
            telemetry: true,
            latency_sample_every: 1,
            trace_sample_every: 1,
        }
    }

    /// The configuration the paper's experiments ran with: 10-byte message
    /// blocks.
    pub fn paper_faithful(max_lnvcs: u32, max_processes: u32) -> Self {
        Self::new(max_lnvcs, max_processes).with_block_payload(PAPER_BLOCK_PAYLOAD)
    }

    /// Sets the per-block payload size (≥ 1 byte).
    pub fn with_block_payload(mut self, bytes: usize) -> Self {
        assert!(bytes >= 1, "block payload must be at least one byte");
        self.block_payload = bytes;
        self
    }

    /// Sets the total number of message blocks.
    pub fn with_total_blocks(mut self, blocks: u32) -> Self {
        self.total_blocks = blocks;
        self
    }

    /// Sets the number of message headers.
    pub fn with_max_messages(mut self, messages: u32) -> Self {
        self.max_messages = messages;
        self
    }

    /// Sets the connection descriptor counts (both directions).
    pub fn with_max_connections(mut self, conns: u32) -> Self {
        self.max_send_conns = conns;
        self.max_recv_conns = conns;
        self
    }

    /// Sets the LNVC lock implementation.
    pub fn with_lock_kind(mut self, kind: LockKind) -> Self {
        self.lock_kind = kind;
        self
    }

    /// Sets the blocking-wait strategy.
    pub fn with_wait_strategy(mut self, strategy: WaitStrategy) -> Self {
        self.wait_strategy = strategy;
        self
    }

    /// Sets the pool-exhaustion policy.
    pub fn with_exhaust_policy(mut self, policy: ExhaustPolicy) -> Self {
        self.exhaust_policy = policy;
        self
    }

    /// Enables event tracing with the given buffer capacity (events past
    /// the bound are dropped and counted).
    pub fn with_tracing(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables or disables in-region telemetry recording (on by default).
    pub fn with_telemetry(mut self, on: bool) -> Self {
        self.telemetry = on;
        self
    }

    /// Samples send→receive latency on 1-in-`every` messages (≥ 1).  The
    /// default, 1, stamps every message; larger values drop the two
    /// remaining per-message clock reads from the hot path.
    pub fn latency_sample_rate(mut self, every: u32) -> Self {
        assert!(every >= 1, "latency sample period must be at least 1");
        self.latency_sample_every = every;
        self
    }

    /// Traces 1-in-`every` causal chains in the per-process trace rings
    /// (1 = every chain, the default; 0 disables trace recording).
    pub fn trace_sample_rate(mut self, every: u32) -> Self {
        self.trace_sample_every = every;
        self
    }

    /// Largest single message payload the configured region can hold
    /// (every block devoted to one message).
    pub fn max_message_bytes(&self) -> usize {
        self.block_payload * self.total_blocks as usize
    }

    /// The paper's "estimate [of] the amount of shared memory necessary":
    /// bytes of shared region this configuration will allocate, counting
    /// block payloads, block links, and all descriptor pools.
    pub fn estimated_shared_bytes(&self) -> usize {
        let block_bytes = self.total_blocks as usize * (self.block_payload + 4);
        let msg_bytes = self.max_messages as usize * 32;
        let lnvc_bytes = self.max_lnvcs as usize * 192;
        let conn_bytes = (self.max_send_conns + self.max_recv_conns) as usize * 16;
        block_bytes + msg_bytes + lnvc_bytes + conn_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_faithful_uses_ten_byte_blocks() {
        let cfg = MpfConfig::paper_faithful(16, 20);
        assert_eq!(cfg.block_payload, PAPER_BLOCK_PAYLOAD);
    }

    #[test]
    fn builders_override_defaults() {
        let cfg = MpfConfig::new(4, 4)
            .with_block_payload(128)
            .with_total_blocks(100)
            .with_max_messages(10)
            .with_max_connections(7)
            .with_lock_kind(LockKind::Ticket)
            .with_wait_strategy(WaitStrategy::Park)
            .with_exhaust_policy(ExhaustPolicy::Error)
            .with_telemetry(false)
            .latency_sample_rate(16)
            .trace_sample_rate(8);
        assert!(!cfg.telemetry);
        assert_eq!(cfg.latency_sample_every, 16);
        assert_eq!(cfg.trace_sample_every, 8);
        assert_eq!(cfg.block_payload, 128);
        assert_eq!(cfg.total_blocks, 100);
        assert_eq!(cfg.max_messages, 10);
        assert_eq!(cfg.max_send_conns, 7);
        assert_eq!(cfg.max_recv_conns, 7);
        assert_eq!(cfg.lock_kind, LockKind::Ticket);
        assert_eq!(cfg.wait_strategy, WaitStrategy::Park);
        assert_eq!(cfg.exhaust_policy, ExhaustPolicy::Error);
    }

    #[test]
    fn max_message_bytes_is_block_capacity() {
        let cfg = MpfConfig::new(4, 4)
            .with_block_payload(10)
            .with_total_blocks(100);
        assert_eq!(cfg.max_message_bytes(), 1000);
    }

    #[test]
    fn estimate_grows_with_everything() {
        let small = MpfConfig::new(4, 4);
        let big = MpfConfig::new(64, 64).with_total_blocks(small.total_blocks * 2);
        assert!(big.estimated_shared_bytes() > small.estimated_shared_bytes());
    }

    #[test]
    #[should_panic]
    fn zero_lnvcs_rejected() {
        let _ = MpfConfig::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_block_payload_rejected() {
        let _ = MpfConfig::new(1, 1).with_block_payload(0);
    }

    #[test]
    #[should_panic(expected = "sample period")]
    fn zero_sample_period_rejected() {
        let _ = MpfConfig::new(1, 1).latency_sample_rate(0);
    }
}
