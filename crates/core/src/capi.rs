//! The literal C-style interface — the paper's §2 function signatures.
//!
//! "Because our current implementation is based on the C programming
//! language, the MPF programming primitives are defined below as C function
//! calls."  This module reproduces that surface: free functions over one
//! global facility, integer process ids, integer LNVC identifiers, and
//! negative status codes (see [`crate::MpfError::status_code`]).
//!
//! The global is process-wide: call [`init`] exactly once, [`shutdown`] to
//! tear down (test support; the 1987 library lived until `exit`).  New code
//! should prefer the instance-based [`crate::Mpf`] API; this layer exists
//! so the paper's example programs port line-for-line.

use std::sync::{Mutex, OnceLock};

use mpf_shm::process::ProcessId;

use crate::config::MpfConfig;
use crate::error::MpfError;
use crate::facility::Mpf;
use crate::types::{LnvcId, Protocol};

/// Receiver protocol code: first-come, first-served.
pub const MPF_FCFS: i32 = 0;
/// Receiver protocol code: broadcast.
pub const MPF_BROADCAST: i32 = 1;
/// Success status.
pub const MPF_OK: i32 = 0;

static FACILITY: OnceLock<Mutex<Option<&'static Mpf>>> = OnceLock::new();

fn cell() -> &'static Mutex<Option<&'static Mpf>> {
    FACILITY.get_or_init(|| Mutex::new(None))
}

fn with_facility<T>(f: impl FnOnce(&Mpf) -> Result<T, MpfError>) -> Result<T, MpfError> {
    let guard = cell().lock().expect("capi mutex poisoned");
    match *guard {
        Some(mpf) => f(mpf),
        None => Err(MpfError::BadInit),
    }
}

fn pid(process_id: i32) -> Result<ProcessId, MpfError> {
    u32::try_from(process_id)
        .ok()
        .and_then(ProcessId::new)
        .ok_or(MpfError::InvalidProcess)
}

fn lnvc(lnvc_id: i32) -> Result<LnvcId, MpfError> {
    LnvcId::from_i32(lnvc_id).ok_or(MpfError::UnknownLnvc)
}

fn status(result: Result<i32, MpfError>) -> i32 {
    result.unwrap_or_else(|e| e.status_code())
}

/// `init(maxLNVC's, max_processes)` — allocates the shared region.
/// Returns [`MPF_OK`] or a negative status.  Calling twice without
/// [`shutdown`] fails with [`MpfError::BadInit`]'s code.
pub fn init(max_lnvcs: i32, max_processes: i32) -> i32 {
    status((|| {
        let (l, p) = (
            u32::try_from(max_lnvcs).map_err(|_| MpfError::BadInit)?,
            u32::try_from(max_processes).map_err(|_| MpfError::BadInit)?,
        );
        let mut guard = cell().lock().expect("capi mutex poisoned");
        if guard.is_some() {
            return Err(MpfError::BadInit);
        }
        let mpf = Mpf::init(MpfConfig::new(l, p))?;
        *guard = Some(Box::leak(Box::new(mpf)));
        Ok(MPF_OK)
    })())
}

/// Tears down the global facility (test support).  Returns [`MPF_OK`], or
/// [`MpfError::BadInit`]'s code if not initialized.
///
/// The leaked region is intentionally not reclaimed: outstanding raw ids in
/// other threads must fail softly, exactly like the 1987 library's region,
/// which lived until process exit.
pub fn shutdown() -> i32 {
    let mut guard = cell().lock().expect("capi mutex poisoned");
    if guard.take().is_some() {
        MPF_OK
    } else {
        MpfError::BadInit.status_code()
    }
}

/// `open_send(process_id, lnvc_name)` — returns the LNVC identifier
/// (non-negative) or a negative status.
pub fn open_send(process_id: i32, lnvc_name: &str) -> i32 {
    status(with_facility(|m| {
        m.open_send(pid(process_id)?, lnvc_name).map(LnvcId::as_i32)
    }))
}

/// `open_receive(process_id, lnvc_name, protocol)` — `protocol` is
/// [`MPF_FCFS`] or [`MPF_BROADCAST`].  Returns the LNVC identifier or a
/// negative status.
pub fn open_receive(process_id: i32, lnvc_name: &str, protocol: i32) -> i32 {
    status(with_facility(|m| {
        let protocol = u8::try_from(protocol)
            .ok()
            .and_then(Protocol::from_raw)
            .ok_or(MpfError::ProtocolConflict)?;
        m.open_receive(pid(process_id)?, lnvc_name, protocol)
            .map(LnvcId::as_i32)
    }))
}

/// `close_send(process_id, lnvc_id)`.
pub fn close_send(process_id: i32, lnvc_id: i32) -> i32 {
    status(with_facility(|m| {
        m.close_send(pid(process_id)?, lnvc(lnvc_id)?)
            .map(|()| MPF_OK)
    }))
}

/// `close_receive(process_id, lnvc_id)`.
pub fn close_receive(process_id: i32, lnvc_id: i32) -> i32 {
    status(with_facility(|m| {
        m.close_receive(pid(process_id)?, lnvc(lnvc_id)?)
            .map(|()| MPF_OK)
    }))
}

/// `message_send(process_id, lnvc_id, send_buffer, buffer_length)` — the
/// buffer length is the slice length.
pub fn message_send(process_id: i32, lnvc_id: i32, send_buffer: &[u8]) -> i32 {
    status(with_facility(|m| {
        m.message_send(pid(process_id)?, lnvc(lnvc_id)?, send_buffer)
            .map(|()| MPF_OK)
    }))
}

/// `message_receive(process_id, lnvc_id, receive_buffer, buffer_length)` —
/// blocking; returns the number of bytes transferred ("buffer_length is
/// set to the number of bytes transferred") or a negative status.
pub fn message_receive(process_id: i32, lnvc_id: i32, receive_buffer: &mut [u8]) -> i32 {
    status(with_facility(|m| {
        m.message_receive(pid(process_id)?, lnvc(lnvc_id)?, receive_buffer)
            .map(|n| n as i32)
    }))
}

/// `check_receive(process_id, lnvc_id)` — "a non-zero return value
/// indicates the existence of a message"; negative on error.
pub fn check_receive(process_id: i32, lnvc_id: i32) -> i32 {
    status(with_facility(|m| {
        m.check_receive(pid(process_id)?, lnvc(lnvc_id)?)
            .map(|b| b as i32)
    }))
}

/// Serializes tests that touch the process-wide facility (this module's
/// and `capi_ffi`'s).
#[cfg(test)]
pub(crate) static CAPI_TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    // The C layer is a process-wide global; exercise it in one test so
    // parallel test threads cannot interleave init/shutdown.
    #[test]
    fn c_interface_end_to_end() {
        let _serial = CAPI_TEST_LOCK.lock().expect("capi test lock");
        assert!(message_send(1, 0, b"x") < 0, "use before init fails");
        assert_eq!(init(8, 4), MPF_OK);
        assert!(init(8, 4) < 0, "double init fails");

        let tx = open_send(1, "pipe");
        assert!(tx >= 0);
        let rx = open_receive(2, "pipe", MPF_FCFS);
        assert!(rx >= 0);
        assert_eq!(tx, rx);

        assert_eq!(check_receive(2, rx), 0);
        assert_eq!(message_send(1, tx, b"hello from C land"), MPF_OK);
        assert_eq!(check_receive(2, rx), 1);

        let mut buf = [0u8; 64];
        let n = message_receive(2, rx, &mut buf);
        assert_eq!(n, 17);
        assert_eq!(&buf[..17], b"hello from C land");

        // Bad protocol code.
        assert!(open_receive(3, "pipe", 7) < 0);
        // Negative process id.
        assert!(open_send(-1, "pipe") < 0);
        // Stale/unknown lnvc id.
        assert!(message_send(1, 0x7FFF0000, b"x") < 0);

        assert_eq!(close_send(1, tx), MPF_OK);
        assert_eq!(close_receive(2, rx), MPF_OK);
        // LNVC deleted; ids now stale.
        assert!(close_send(1, tx) < 0);

        assert_eq!(shutdown(), MPF_OK);
        assert!(shutdown() < 0);
        assert!(open_send(1, "pipe") < 0, "use after shutdown fails");
    }
}
