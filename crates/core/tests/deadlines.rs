//! Deadline-bounded blocking on the thread backend: every `*_deadline`
//! entry point must (a) fail with `MpfError::TimedOut` once the clock
//! passes with nothing consumed or enqueued, and (b) let real traffic
//! racing the expiry win — a message that arrived is delivered, never
//! timed out.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf::{Mpf, MpfConfig, MpfError, ProcessId, Protocol};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn facility() -> Mpf {
    Mpf::init(
        MpfConfig::new(4, 8)
            .with_block_payload(64)
            .with_total_blocks(4)
            .with_max_messages(4),
    )
    .unwrap()
}

#[test]
fn recv_deadline_times_out_on_empty_queue() {
    let m = facility();
    let _tx = m.open_send(p(0), "quiet").unwrap();
    let rx = m.open_receive(p(0), "quiet", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 8];
    let start = Instant::now();
    let err = m
        .recv_deadline(p(0), rx, &mut buf, Some(start + Duration::from_millis(50)))
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);
    assert!(start.elapsed() >= Duration::from_millis(50));
}

#[test]
fn recv_deadline_delivers_a_queued_message_despite_expiry() {
    // The deadline is already past when we call, but the message is
    // already deliverable: the contract says delivery wins.
    let m = facility();
    let tx = m.open_send(p(0), "race").unwrap();
    let rx = m.open_receive(p(1), "race", Protocol::Fcfs).unwrap();
    m.message_send(p(0), tx, b"beat-it").unwrap();
    let mut buf = [0u8; 16];
    let n = m
        .recv_deadline(p(1), rx, &mut buf, Some(Instant::now()))
        .unwrap();
    assert_eq!(&buf[..n], b"beat-it");
}

#[test]
fn recv_deadline_wakes_on_cross_thread_send() {
    let m = Arc::new(facility());
    let tx = m.open_send(p(0), "wake").unwrap();
    let rx = m.open_receive(p(1), "wake", Protocol::Fcfs).unwrap();
    let sender = {
        let m = Arc::clone(&m);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            m.message_send(p(0), tx, b"late but real").unwrap();
        })
    };
    let mut buf = [0u8; 32];
    let n = m
        .recv_deadline(
            p(1),
            rx,
            &mut buf,
            Some(Instant::now() + Duration::from_secs(30)),
        )
        .unwrap();
    assert_eq!(&buf[..n], b"late but real");
    sender.join().unwrap();
}

#[test]
fn send_deadline_times_out_under_exhaustion_with_nothing_enqueued() {
    // Default ExhaustPolicy::Wait: fill the 4-block pool, then a
    // deadline-bounded send must give up instead of parking forever —
    // and must leave no partial allocation behind.
    let m = facility();
    let tx = m.open_send(p(0), "full").unwrap();
    let rx = m.open_receive(p(1), "full", Protocol::Fcfs).unwrap();
    for i in 0..4 {
        m.message_send(p(0), tx, &[i; 64]).unwrap();
    }
    let start = Instant::now();
    let err = m
        .send_deadline(p(0), tx, &[9; 64], Some(start + Duration::from_millis(60)))
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);
    assert!(start.elapsed() >= Duration::from_millis(60));

    // Exactly the four pre-expiry messages drain out; the timed-out
    // send contributed nothing.
    let mut buf = [0u8; 64];
    for i in 0..4 {
        let n = m.message_receive(p(1), rx, &mut buf).unwrap();
        assert_eq!(&buf[..n], &[i; 64][..]);
    }
    assert!(!m.check_receive(p(1), rx).unwrap());

    // With capacity back, the same send now fits before its deadline.
    m.send_deadline(
        p(0),
        tx,
        &[9; 64],
        Some(Instant::now() + Duration::from_secs(30)),
    )
    .unwrap();
    let n = m.message_receive(p(1), rx, &mut buf).unwrap();
    assert_eq!(&buf[..n], &[9; 64][..]);
}

#[test]
fn wait_any_deadline_times_out_then_reports_the_ready_member() {
    let m = facility();
    let t1 = m.open_send(p(0), "a").unwrap();
    let r1 = m.open_receive(p(1), "a", Protocol::Fcfs).unwrap();
    let _t2 = m.open_send(p(0), "b").unwrap();
    let r2 = m.open_receive(p(1), "b", Protocol::Fcfs).unwrap();

    assert_eq!(
        m.wait_any_deadline(p(1), &[], Some(Instant::now()))
            .unwrap_err(),
        MpfError::EmptyWaitSet
    );
    let err = m
        .wait_any_deadline(
            p(1),
            &[r1, r2],
            Some(Instant::now() + Duration::from_millis(50)),
        )
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);

    m.message_send(p(0), t1, b"here").unwrap();
    let ready = m
        .wait_any_deadline(
            p(1),
            &[r1, r2],
            Some(Instant::now() + Duration::from_secs(30)),
        )
        .unwrap();
    assert_eq!(ready, r1);
}

#[test]
fn recv_batch_deadline_times_out_then_drains() {
    let m = facility();
    let tx = m.open_send(p(0), "batch").unwrap();
    let rx = m.open_receive(p(1), "batch", Protocol::Fcfs).unwrap();
    let err = m
        .recv_batch_deadline(
            p(1),
            rx,
            8,
            Some(Instant::now() + Duration::from_millis(50)),
        )
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);

    for i in 0..3u8 {
        m.message_send(p(0), tx, &[i; 4]).unwrap();
    }
    let got = m
        .recv_batch_deadline(p(1), rx, 8, Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    assert_eq!(got, vec![vec![0; 4], vec![1; 4], vec![2; 4]]);
}

#[test]
fn send_batch_deadline_times_out_when_nothing_stages() {
    let m = facility();
    let tx = m.open_send(p(0), "bfull").unwrap();
    let _rx = m.open_receive(p(1), "bfull", Protocol::Fcfs).unwrap();
    for i in 0..4 {
        m.message_send(p(0), tx, &[i; 64]).unwrap();
    }
    let err = m
        .send_batch_deadline(
            p(0),
            tx,
            &[&[7; 64], &[8; 64]],
            Some(Instant::now() + Duration::from_millis(60)),
        )
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);
}
