//! Text rendering of simulation results.
//!
//! The paper reports throughput figures plus prose diagnoses ("contention
//! is masked by message copying costs", "memory bandwidth is the
//! performance limiting factor").  [`describe`] produces the same style of
//! reduction from an [`EngineReport`]: the headline rates plus the
//! utilization facts that justify a diagnosis.

use crate::engine::EngineReport;

/// One-line-per-fact description of a run.
pub fn describe(label: &str, r: &EngineReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("run: {label}\n"));
    out.push_str(&format!(
        "  simulated time      {:>12.3} s ({} cycles)\n",
        r.elapsed_secs, r.elapsed_cycles
    ));
    out.push_str(&format!(
        "  messages            {:>12} sent, {} delivered\n",
        r.msgs_sent, r.msgs_received
    ));
    out.push_str(&format!(
        "  sent throughput     {:>12.0} bytes/s\n",
        r.send_throughput()
    ));
    out.push_str(&format!(
        "  effective delivery  {:>12.0} bytes/s\n",
        r.delivered_throughput()
    ));
    out.push_str(&format!(
        "  bus utilization     {:>12.1} %\n",
        r.bus_utilization * 100.0
    ));
    out.push_str(&format!("  queued lock waits   {:>12}\n", r.lock_waits));
    out.push_str(&format!(
        "  peak working set    {:>12} KiB\n",
        r.peak_working_set / 1024
    ));
    out.push_str(&format!("  diagnosis           {:>12}\n", diagnosis(r)));
    out
}

/// The paper-style one-word diagnosis of what bounded the run.
pub fn diagnosis(r: &EngineReport) -> &'static str {
    if r.bus_utilization > 0.7 {
        "bus-bound"
    } else if r.lock_waits > r.msgs_sent.saturating_mul(4) {
        "lock-bound"
    } else if r.peak_working_set > 12 << 20 {
        "paging-bound"
    } else {
        "cpu-bound"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostModel;
    use crate::machine::MachineConfig;
    use crate::workloads;

    fn setup() -> (MachineConfig, CostModel) {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        (m, c)
    }

    #[test]
    fn describe_contains_the_headline_facts() {
        let (m, c) = setup();
        let r = workloads::run_base(&m, &c, 1024, 20);
        let text = describe("base 1024B", &r);
        assert!(text.contains("base 1024B"));
        assert!(text.contains("sent throughput"));
        assert!(text.contains("bytes/s"));
        assert!(text.contains("diagnosis"));
    }

    #[test]
    fn base_run_is_cpu_bound() {
        // Figure 3's conclusion for the copy loop on this machine.
        let (m, c) = setup();
        let r = workloads::run_base(&m, &c, 2048, 30);
        assert_eq!(diagnosis(&r), "cpu-bound");
    }

    #[test]
    fn contended_fcfs_is_lock_bound() {
        let (m, c) = setup();
        let r = workloads::run_fcfs(&m, &c, 16, 16, 200);
        assert_eq!(diagnosis(&r), "lock-bound", "lock_waits={}", r.lock_waits);
    }

    #[test]
    fn paging_run_is_detected() {
        let (m, c) = setup();
        let r = workloads::run_random(&m, &c, 1024, 20, 60, 7);
        assert_eq!(diagnosis(&r), "paging-bound");
    }
}
