//! Hardware description of the simulated multiprocessor.
//!
//! Parameters come from the paper's §4: "a machine containing 20
//! processors and 16 Mbytes of memory.  Each Balance 21000 processor is a
//! 10 MHz National Semiconductor NS32032 microprocessor, and all
//! processors are connected to shared memory by a shared bus with a
//! 80 Mbyte/s (maximum) transfer rate.  Each processor has a 8K byte,
//! write-through cache and an 8K byte local memory."

/// Static machine parameters.  Simulated time is counted in CPU cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of processors.
    pub cpus: u32,
    /// CPU clock in Hz (cycle = 1/`cpu_hz` seconds).
    pub cpu_hz: u64,
    /// Shared-bus peak transfer rate in bytes/second.
    pub bus_bytes_per_sec: u64,
    /// Physical memory in bytes.
    pub mem_bytes: u64,
    /// Memory reserved for the OS and process images per process, in
    /// bytes — drives the paging model's working-set estimate.
    pub os_bytes: u64,
    /// Per-process resident working set (code + stack + mapped region
    /// bookkeeping) in bytes.
    pub per_process_ws: u64,
    /// Page size in bytes (NS32082 MMU: 512-byte pages).
    pub page_bytes: u64,
    /// Cache size per CPU in bytes (write-through).
    pub cache_bytes: u64,
}

impl MachineConfig {
    /// The paper's machine.
    pub fn balance21000() -> Self {
        Self {
            cpus: 20,
            cpu_hz: 10_000_000,
            bus_bytes_per_sec: 80_000_000,
            mem_bytes: 16 << 20,
            os_bytes: 4 << 20,
            per_process_ws: 520 << 10,
            page_bytes: 512,
            cache_bytes: 8 << 10,
        }
    }

    /// Cycles per second (alias for `cpu_hz`).
    pub fn cycles_per_sec(&self) -> u64 {
        self.cpu_hz
    }

    /// Bus occupancy, in CPU cycles, for transferring `bytes` over the
    /// shared bus at peak rate.
    pub fn bus_cycles(&self, bytes: u64) -> u64 {
        // cycles = bytes / (bytes_per_sec / cpu_hz)
        (bytes * self.cpu_hz).div_ceil(self.bus_bytes_per_sec)
    }

    /// Converts simulated cycles to seconds.
    pub fn cycles_to_secs(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cpu_hz as f64
    }

    /// Bytes of memory available to user pages.
    pub fn user_mem_bytes(&self) -> u64 {
        self.mem_bytes.saturating_sub(self.os_bytes)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::balance21000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balance_parameters_match_paper() {
        let m = MachineConfig::balance21000();
        assert_eq!(m.cpus, 20);
        assert_eq!(m.cpu_hz, 10_000_000);
        assert_eq!(m.bus_bytes_per_sec, 80_000_000);
        assert_eq!(m.mem_bytes, 16 << 20);
    }

    #[test]
    fn bus_cycles_at_peak_rate() {
        let m = MachineConfig::balance21000();
        // 80 MB/s at 10 MHz = 8 bytes per cycle.
        assert_eq!(m.bus_cycles(8), 1);
        assert_eq!(m.bus_cycles(80), 10);
        assert_eq!(m.bus_cycles(1), 1, "partial transfers round up");
    }

    #[test]
    fn time_conversion() {
        let m = MachineConfig::balance21000();
        assert!((m.cycles_to_secs(10_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn user_memory_excludes_os() {
        let m = MachineConfig::balance21000();
        assert_eq!(m.user_mem_bytes(), 12 << 20);
    }
}
