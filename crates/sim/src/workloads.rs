//! The paper's four synthetic benchmark programs (§4) as simulator drivers.
//!
//! * `base` — "establishes a loop-back connection through an LNVC for a
//!   single process, and then alternates between sending and receiving
//!   fixed-length messages" (Figure 3).
//! * `fcfs` — "uses one process to send messages of length K to an LNVC
//!   with N FCFS receiving processes" (Figure 4).
//! * `broadcast` — "similar except the receiving processes are of type
//!   BROADCAST" (Figure 5).
//! * `random` — "processes can each send to and receive from all other
//!   processes … fully-connected with a FCFS LNVC defined for each
//!   destination process … Each time a process executes a message_send(),
//!   it then receives all messages that are queued in its LNVC" (Figure 6).

use mpf_shm::SmallRng;

use crate::costs::CostModel;
use crate::driver::{Driver, DriverOp, OpResult, RecvKind};
use crate::engine::{Engine, EngineReport};
use crate::machine::MachineConfig;

/// `base`: one process, send then receive, `iters` times.
struct BaseDriver {
    lnvc: usize,
    len: usize,
    remaining: u64,
    sending: bool,
}

impl Driver for BaseDriver {
    fn next(&mut self, _last: OpResult) -> DriverOp {
        if self.remaining == 0 {
            return DriverOp::Stop;
        }
        if self.sending {
            self.sending = false;
            DriverOp::Send {
                lnvc: self.lnvc,
                len: self.len,
            }
        } else {
            self.sending = true;
            self.remaining -= 1;
            DriverOp::Recv {
                lnvc: self.lnvc,
                kind: RecvKind::Fcfs,
            }
        }
    }
}

/// A sender that emits `count` messages of `len` bytes, then stops.
struct StreamSender {
    lnvc: usize,
    len: usize,
    remaining: u64,
}

impl Driver for StreamSender {
    fn next(&mut self, _last: OpResult) -> DriverOp {
        if self.remaining == 0 {
            return DriverOp::Stop;
        }
        self.remaining -= 1;
        DriverOp::Send {
            lnvc: self.lnvc,
            len: self.len,
        }
    }
}

/// A receiver that blocks forever (the measurement window ends when the
/// simulation quiesces with the stream drained).
struct SinkReceiver {
    lnvc: usize,
    kind: RecvKind,
}

impl Driver for SinkReceiver {
    fn next(&mut self, _last: OpResult) -> DriverOp {
        DriverOp::Recv {
            lnvc: self.lnvc,
            kind: self.kind,
        }
    }
}

/// `random`: send `remaining` messages to random destinations, draining
/// one's own LNVC after every send.
struct RandomDriver {
    own_lnvc: usize,
    all_lnvcs: Vec<usize>,
    me: usize,
    len: usize,
    remaining: u64,
    draining: bool,
    rng: SmallRng,
}

impl Driver for RandomDriver {
    fn next(&mut self, last: OpResult) -> DriverOp {
        if self.draining {
            match last {
                OpResult::RecvEmpty => {
                    self.draining = false;
                }
                _ => {
                    return DriverOp::TryRecv {
                        lnvc: self.own_lnvc,
                        kind: RecvKind::Fcfs,
                    }
                }
            }
        }
        if self.remaining == 0 {
            return DriverOp::Stop;
        }
        self.remaining -= 1;
        self.draining = true;
        // Pick any destination except ourselves (a process does not mail
        // itself in the fully connected pattern).
        let mut dest = self.rng.gen_range(0..self.all_lnvcs.len());
        if self.all_lnvcs.len() > 1 {
            while dest == self.me {
                dest = self.rng.gen_range(0..self.all_lnvcs.len());
            }
        }
        DriverOp::Send {
            lnvc: self.all_lnvcs[dest],
            len: self.len,
        }
    }
}

fn engine_for(machine: &MachineConfig, costs: &CostModel, procs: u32) -> Engine {
    Engine::new(machine.clone(), costs.clone(), procs)
}

/// Runs the `base` benchmark: loop-back `iters` messages of `len` bytes.
/// Figure 3 plots [`EngineReport::send_throughput`] against `len`.
pub fn run_base(
    machine: &MachineConfig,
    costs: &CostModel,
    len: usize,
    iters: u64,
) -> EngineReport {
    let mut e = engine_for(machine, costs, 1);
    let lnvc = e.add_lnvc();
    e.add_proc(Box::new(BaseDriver {
        lnvc,
        len,
        remaining: iters,
        sending: true,
    }));
    e.run()
}

/// Runs the `fcfs` benchmark: one sender, `receivers` FCFS receivers,
/// `msgs` messages of `len` bytes.  Figure 4 plots
/// [`EngineReport::send_throughput`] against `receivers`.
pub fn run_fcfs(
    machine: &MachineConfig,
    costs: &CostModel,
    len: usize,
    receivers: u32,
    msgs: u64,
) -> EngineReport {
    let mut e = engine_for(machine, costs, receivers + 1);
    let lnvc = e.add_lnvc();
    e.add_proc(Box::new(StreamSender {
        lnvc,
        len,
        remaining: msgs,
    }));
    for _ in 0..receivers {
        e.add_proc(Box::new(SinkReceiver {
            lnvc,
            kind: RecvKind::Fcfs,
        }));
    }
    e.run()
}

/// Runs the `broadcast` benchmark: one sender, `receivers` BROADCAST
/// receivers, `msgs` messages of `len` bytes.  Figure 5 plots
/// [`EngineReport::delivered_throughput`] against `receivers`.
pub fn run_broadcast(
    machine: &MachineConfig,
    costs: &CostModel,
    len: usize,
    receivers: u32,
    msgs: u64,
) -> EngineReport {
    let mut e = engine_for(machine, costs, receivers + 1);
    let lnvc = e.add_lnvc();
    for _ in 0..receivers {
        let rcv = e.add_broadcast_receiver(lnvc);
        e.add_proc(Box::new(SinkReceiver {
            lnvc,
            kind: RecvKind::Broadcast(rcv),
        }));
    }
    e.add_proc(Box::new(StreamSender {
        lnvc,
        len,
        remaining: msgs,
    }));
    e.run()
}

/// Runs the `random` benchmark: `procs` fully connected processes, each
/// sending `msgs_per_proc` messages of `len` bytes to random destinations
/// and draining its own LNVC after each send.  Figure 6 plots
/// [`EngineReport::send_throughput`] against `procs`.
pub fn run_random(
    machine: &MachineConfig,
    costs: &CostModel,
    len: usize,
    procs: u32,
    msgs_per_proc: u64,
    seed: u64,
) -> EngineReport {
    let mut e = engine_for(machine, costs, procs);
    let lnvcs: Vec<usize> = (0..procs).map(|_| e.add_lnvc()).collect();
    for me in 0..procs as usize {
        e.add_proc(Box::new(RandomDriver {
            own_lnvc: lnvcs[me],
            all_lnvcs: lnvcs.clone(),
            me,
            len,
            remaining: msgs_per_proc,
            draining: false,
            rng: SmallRng::seed_from_u64(seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }));
    }
    e.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineConfig, CostModel) {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        (m, c)
    }

    #[test]
    fn base_throughput_rises_with_length_and_saturates() {
        // Figure 3's shape: monotone increase, asymptote.
        let (m, c) = setup();
        let t16 = run_base(&m, &c, 16, 50).send_throughput();
        let t256 = run_base(&m, &c, 256, 50).send_throughput();
        let t1024 = run_base(&m, &c, 1024, 50).send_throughput();
        let t2048 = run_base(&m, &c, 2048, 50).send_throughput();
        assert!(t16 < t256 && t256 < t1024 && t1024 < t2048);
        // Saturation: doubling 1024 → 2048 gains much less than 2×.
        assert!(t2048 < 1.5 * t1024, "t1024={t1024:.0} t2048={t2048:.0}");
        // Paper's asymptote neighbourhood (~25 KB/s at 2 KB).
        assert!(
            (15_000.0..40_000.0).contains(&t2048),
            "2 KB base throughput {t2048:.0} far from the paper's ~25 KB/s"
        );
    }

    #[test]
    fn base_delivers_exactly_what_was_sent() {
        let (m, c) = setup();
        let r = run_base(&m, &c, 128, 40);
        assert_eq!(r.msgs_sent, 40);
        assert_eq!(r.msgs_received, 40);
        assert_eq!(r.bytes_sent, 40 * 128);
    }

    #[test]
    fn fcfs_large_messages_bottlenecked_by_sender() {
        // Figure 4: 1024-byte throughput roughly flat in receiver count.
        let (m, c) = setup();
        let t1 = run_fcfs(&m, &c, 1024, 1, 60).send_throughput();
        let t8 = run_fcfs(&m, &c, 1024, 8, 60).send_throughput();
        let ratio = t8 / t1;
        assert!(
            (0.5..1.6).contains(&ratio),
            "1 KB fcfs should be sender-bound: t1={t1:.0} t8={t8:.0}"
        );
        // Paper's magnitude: ~40-50 KB/s.
        assert!((25_000.0..80_000.0).contains(&t8), "t8={t8:.0}");
    }

    #[test]
    fn fcfs_small_messages_decline_with_contention() {
        // Figure 4: 16-byte curve *decreases* as receivers are added.
        let (m, c) = setup();
        let t2 = run_fcfs(&m, &c, 16, 2, 300).send_throughput();
        let t16 = run_fcfs(&m, &c, 16, 16, 300).send_throughput();
        assert!(
            t16 < t2,
            "contention must hurt small messages: t2={t2:.0} t16={t16:.0}"
        );
    }

    #[test]
    fn broadcast_effective_throughput_scales_with_receivers() {
        // Figure 5: delivered throughput grows with receiver count…
        let (m, c) = setup();
        let t1 = run_broadcast(&m, &c, 1024, 1, 40).delivered_throughput();
        let t8 = run_broadcast(&m, &c, 1024, 8, 40).delivered_throughput();
        let t16 = run_broadcast(&m, &c, 1024, 16, 40).delivered_throughput();
        assert!(t8 > 3.0 * t1, "t1={t1:.0} t8={t8:.0}");
        assert!(t16 > t8);
        // …to the paper's magnitude: 687,245 B/s at 16 × 1024.
        assert!(
            (300_000.0..1_200_000.0).contains(&t16),
            "16-receiver broadcast {t16:.0} B/s far from paper's ~687 KB/s"
        );
    }

    #[test]
    fn broadcast_beats_fcfs_effectively() {
        let (m, c) = setup();
        let f = run_fcfs(&m, &c, 1024, 8, 40).delivered_throughput();
        let b = run_broadcast(&m, &c, 1024, 8, 40).delivered_throughput();
        assert!(b > 2.0 * f, "fcfs={f:.0} broadcast={b:.0}");
    }

    #[test]
    fn random_throughput_grows_then_pages() {
        // Figure 6: 1024-byte curve rises with processes, then virtual
        // memory overhead bites above ~10 processes.
        let (m, c) = setup();
        let t2 = run_random(&m, &c, 1024, 2, 60, 7).send_throughput();
        let t12 = run_random(&m, &c, 1024, 12, 60, 7).send_throughput();
        let t20 = run_random(&m, &c, 1024, 20, 60, 7).send_throughput();
        assert!(t12 > t2, "concurrency should help: t2={t2:.0} t12={t12:.0}");
        assert!(
            t20 < t12,
            "paging must bite past the peak: t12={t12:.0} t20={t20:.0}"
        );
    }

    #[test]
    fn random_small_messages_do_not_page() {
        let (m, c) = setup();
        let t8 = run_random(&m, &c, 8, 8, 40, 7).send_throughput();
        let t16 = run_random(&m, &c, 8, 16, 40, 7).send_throughput();
        assert!(
            t16 > 0.7 * t8,
            "8-byte messages should not collapse: t8={t8:.0} t16={t16:.0}"
        );
    }

    #[test]
    fn random_conserves_messages() {
        let (m, c) = setup();
        let r = run_random(&m, &c, 64, 6, 25, 42);
        assert_eq!(r.msgs_sent, 6 * 25);
        assert!(r.msgs_received <= r.msgs_sent);
        // Nearly everything should be drained (final drains happen after
        // the last send in each process).
        assert!(r.msgs_received as f64 >= 0.5 * r.msgs_sent as f64);
    }

    #[test]
    fn deterministic_under_seed() {
        let (m, c) = setup();
        let a = run_random(&m, &c, 256, 10, 20, 1234).elapsed_cycles;
        let b = run_random(&m, &c, 256, 10, 20, 1234).elapsed_cycles;
        assert_eq!(a, b);
    }
}
