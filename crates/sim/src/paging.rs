//! Virtual-memory overhead model.
//!
//! The paper (§4, discussing Figure 6): "When a large number of processes
//! are transmitting large messages, MPF must allocate a large amount of
//! memory for message buffers.  The larger the memory requirements for
//! message transfer, the more susceptible MPF performance is to virtual
//! memory overheads.  For 1024-byte messages, paging overhead increases
//! rapidly for more than 10 processes … Paging overheads are also
//! significant for 256-byte messages but do not occur until there are 20
//! active processes."
//!
//! # The model
//!
//! The machine's resident budget is `user_mem_bytes()`.  The working set
//! has three parts:
//!
//! 1. `per_process_ws × processes` — process images, stacks, page tables;
//! 2. queued message bytes × an allocator amplification factor;
//! 3. **page windows**: with 10-byte blocks recycled LIFO from a shared
//!    free list, each block of a message can land on a different page, so
//!    every in-flight message pins `blocks × page_size` of residency.  A
//!    *sending* process streaming 1 KB messages cycles through ≈ 103
//!    pages per message; we charge a depth-`WINDOW_DEPTH` pipeline of the
//!    running average window per **active sender** (receivers allocate
//!    nothing).  This term is what makes the cliff's position depend on
//!    message *size* in the all-senders `random` benchmark — ≈ 12
//!    processes at 1024 B, ≈ 20 at 256 B, never at 8 B, the paper's
//!    Figure 6 ordering — while the single-sender `fcfs`/`broadcast`
//!    benchmarks never page, however many receivers they add.
//!
//! When the working set exceeds the budget, each page touched by a copy
//! pays an expected fault cost; under thrash the per-fault cost itself
//! grows (backing-store queueing), giving the *rapid* increase the paper
//! reports rather than a gentle knee.

use crate::costs::CostModel;
use crate::machine::MachineConfig;

/// In-flight message windows charged per process (send pipeline depth).
const WINDOW_DEPTH: f64 = 8.0;
/// Allocator amplification on queued payload bytes.
const QUEUE_AMPLIFICATION: u64 = 8;

/// Deterministic paging-overhead model.
#[derive(Debug)]
pub struct PagingModel {
    resident_budget: u64,
    per_process_ws: u64,
    processes: u64,
    /// Bytes currently held in message buffers.
    buffer_bytes: u64,
    /// Exponential running average of the per-message page window.
    avg_window: f64,
    /// Distinct processes that have sent (window pipelines are theirs).
    senders: std::collections::HashSet<usize>,
    /// Peak working set seen (diagnostic).
    peak_working_set: u64,
}

impl PagingModel {
    /// Model for `processes` active processes on `machine`.
    pub fn new(machine: &MachineConfig, processes: u32) -> Self {
        Self {
            resident_budget: machine.user_mem_bytes(),
            per_process_ws: machine.per_process_ws,
            processes: processes as u64,
            buffer_bytes: 0,
            avg_window: 0.0,
            senders: std::collections::HashSet::new(),
            peak_working_set: 0,
        }
    }

    /// Current working-set estimate in bytes.
    pub fn working_set(&self) -> u64 {
        self.per_process_ws * self.processes
            + self.buffer_bytes * QUEUE_AMPLIFICATION
            + (self.senders.len() as f64 * WINDOW_DEPTH * self.avg_window) as u64
    }

    /// Overcommit ratio: 0 when resident, growing past 0 as the working
    /// set exceeds the budget.
    pub fn overcommit(&self) -> f64 {
        let ws = self.working_set();
        if ws <= self.resident_budget {
            0.0
        } else {
            (ws - self.resident_budget) as f64 / self.resident_budget as f64
        }
    }

    /// Records `len` payload bytes entering message buffers, pinning a
    /// page window of `window_bytes` (from [`CostModel::window_bytes`])
    /// in `sender`'s pipeline.
    pub fn alloc(&mut self, len: usize, window_bytes: u64, sender: usize) {
        self.buffer_bytes += len as u64;
        if window_bytes > 0 {
            self.senders.insert(sender);
            self.avg_window = 0.9 * self.avg_window + 0.1 * window_bytes as f64;
        }
        self.peak_working_set = self.peak_working_set.max(self.working_set());
    }

    /// Records `len` bytes reclaimed (message fully consumed).
    pub fn free(&mut self, len: usize) {
        self.buffer_bytes = self.buffer_bytes.saturating_sub(len as u64);
    }

    /// Expected fault cycles for a copy touching `len` payload bytes.
    pub fn fault_cycles(&self, costs: &CostModel, len: usize) -> u64 {
        let over = self.overcommit();
        if over == 0.0 {
            return 0;
        }
        let p_fault = (over * 2.0).min(1.0);
        // Thrash amplification: fault service slows as the backing store
        // queues up.
        let per_fault = costs.page_fault as f64 * (1.0 + 4.0 * over);
        let pages = costs.pages_touched(len) as f64;
        (p_fault * pages * per_fault) as u64
    }

    /// Peak working set observed (diagnostic).
    pub fn peak_working_set(&self) -> u64 {
        self.peak_working_set
    }

    /// Current buffered bytes (diagnostic).
    pub fn buffer_bytes(&self) -> u64 {
        self.buffer_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup(processes: u32) -> (PagingModel, CostModel) {
        let m = MachineConfig::balance21000();
        (PagingModel::new(&m, processes), CostModel::calibrated(&m))
    }

    /// Every process sends (the fully connected `random` pattern).
    fn stream_all(pm: &mut PagingModel, costs: &CostModel, len: usize, msgs: usize, procs: u32) {
        for i in 0..msgs {
            pm.alloc(len, costs.window_bytes(len), i % procs as usize);
        }
    }

    #[test]
    fn few_processes_never_fault() {
        let (mut pm, costs) = setup(4);
        stream_all(&mut pm, &costs, 1024, 50, 4);
        assert_eq!(pm.overcommit(), 0.0);
        assert_eq!(pm.fault_cycles(&costs, 1024), 0);
    }

    #[test]
    fn single_sender_never_pages_regardless_of_receivers() {
        // The paper's fcfs/broadcast benchmarks: one sender, up to 16
        // receivers — no paging, whatever the message size.
        let (mut pm, costs) = setup(17);
        for _ in 0..500 {
            pm.alloc(1024, costs.window_bytes(1024), 0);
            pm.free(1024);
        }
        assert_eq!(pm.fault_cycles(&costs, 1024), 0);
    }

    #[test]
    fn cliff_position_depends_on_message_size() {
        // The paper's Figure 6 ordering: 1 KB messages page beyond ~10-14
        // processes; 256 B only near 20; 8 B never.
        let m = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&m);
        let faulting_at = |len: usize| -> Option<u32> {
            for procs in 2..=20 {
                let mut pm = PagingModel::new(&m, procs);
                stream_all(&mut pm, &costs, len, 30.max(procs as usize * 2), procs);
                if pm.fault_cycles(&costs, len) > 0 {
                    return Some(procs);
                }
            }
            None
        };
        let kb = faulting_at(1024).expect("1 KB must hit the cliff");
        assert!(
            (10..=16).contains(&kb),
            "1 KB cliff at {kb}, paper says just past 10"
        );
        let small = faulting_at(256);
        assert!(
            small.is_none() || small.unwrap() >= 18,
            "256 B should only page near 20 processes (got {small:?})"
        );
        assert_eq!(faulting_at(8), None, "8 B messages never page");
    }

    #[test]
    fn fault_cost_grows_with_message_size_and_overcommit() {
        let (mut pm, costs) = setup(20);
        stream_all(&mut pm, &costs, 1024, 40, 20);
        let small = pm.fault_cycles(&costs, 64);
        let large = pm.fault_cycles(&costs, 1024);
        assert!(large > small, "more pages touched, more faults");
        // Push deeper into thrash: per-copy cost must grow superlinearly
        // (the paper's "increases rapidly").
        let before = pm.fault_cycles(&costs, 1024);
        stream_all(&mut pm, &costs, 1024, 400, 20);
        let after = pm.fault_cycles(&costs, 1024);
        assert!(after > before);
    }

    #[test]
    fn free_shrinks_working_set() {
        let (mut pm, costs) = setup(20);
        pm.alloc(10_000, costs.window_bytes(10_000), 0);
        let ws = pm.working_set();
        pm.free(10_000);
        assert!(pm.working_set() < ws);
        assert_eq!(pm.buffer_bytes(), 0);
        assert!(pm.peak_working_set() >= ws);
    }

    #[test]
    fn overcommit_monotone_in_processes() {
        let m = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&m);
        let mut a = PagingModel::new(&m, 10);
        let mut b = PagingModel::new(&m, 20);
        stream_all(&mut a, &costs, 1024, 30, 10);
        stream_all(&mut b, &costs, 1024, 40, 20);
        assert!(b.overcommit() >= a.overcommit());
    }
}
