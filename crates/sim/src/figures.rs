//! One entry point per paper figure, with the paper's own parameters.
//!
//! Each function returns labelled series of `(x, y)` points — exactly what
//! the figures plot — for the `mpf-bench` harness binaries to print and
//! for EXPERIMENTS.md to compare against the paper.

use crate::apps_model;
use crate::costs::CostModel;
use crate::machine::MachineConfig;
use crate::workloads;

/// A labelled data series (one curve of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label, e.g. `"16 byte messages"`.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

/// Messages per simulated measurement; large enough to amortize startup,
/// small enough to keep the harness fast.
const MSGS: u64 = 200;

/// Figure 3 — `base`: throughput (bytes/s) vs message length (bytes),
/// loop-back LNVC, single process.
pub fn fig3_base(machine: &MachineConfig, costs: &CostModel) -> Series {
    let lengths = [
        16usize, 32, 64, 128, 256, 512, 768, 1024, 1280, 1536, 1792, 2048,
    ];
    Series {
        label: "base loop-back".to_string(),
        points: lengths
            .iter()
            .map(|&len| {
                let r = workloads::run_base(machine, costs, len, MSGS.min(100));
                (len as f64, r.send_throughput())
            })
            .collect(),
    }
}

/// Figure 4 — `fcfs`: throughput vs number of receiving processes, for
/// 16-, 128- and 1024-byte messages.
pub fn fig4_fcfs(machine: &MachineConfig, costs: &CostModel) -> Vec<Series> {
    fanout(machine, costs, false)
}

/// Figure 5 — `broadcast`: effective throughput vs number of receiving
/// processes, for 16-, 128- and 1024-byte messages.
pub fn fig5_broadcast(machine: &MachineConfig, costs: &CostModel) -> Vec<Series> {
    fanout(machine, costs, true)
}

fn fanout(machine: &MachineConfig, costs: &CostModel, broadcast: bool) -> Vec<Series> {
    let receiver_counts = [1u32, 2, 4, 8, 12, 16];
    [16usize, 128, 1024]
        .iter()
        .map(|&len| Series {
            label: format!("{len} byte messages"),
            points: receiver_counts
                .iter()
                .map(|&n| {
                    let y = if broadcast {
                        workloads::run_broadcast(machine, costs, len, n, MSGS)
                            .delivered_throughput()
                    } else {
                        workloads::run_fcfs(machine, costs, len, n, MSGS).send_throughput()
                    };
                    (n as f64, y)
                })
                .collect(),
        })
        .collect()
}

/// Figure 6 — `random`: throughput vs number of processes, for 1-, 8-,
/// 64-, 256- and 1024-byte messages, fully connected FCFS LNVCs, random
/// destinations.
pub fn fig6_random(machine: &MachineConfig, costs: &CostModel, seed: u64) -> Vec<Series> {
    let proc_counts = [2u32, 4, 6, 8, 10, 12, 14, 16, 18, 20];
    [1usize, 8, 64, 256, 1024]
        .iter()
        .map(|&len| Series {
            label: format!("{len} byte messages"),
            points: proc_counts
                .iter()
                .map(|&p| {
                    let r = workloads::run_random(machine, costs, len, p, 60, seed);
                    (p as f64, r.send_throughput())
                })
                .collect(),
        })
        .collect()
}

/// Figure 7 — Gauss-Jordan speedup vs processes for 32², 48², 64² and 96²
/// matrices (analytic Balance model; the native implementation lives in
/// `mpf-apps`).
pub fn fig7_gauss(costs: &CostModel) -> Vec<Series> {
    let procs = [1usize, 2, 4, 6, 8, 10, 12, 14, 16];
    [32usize, 48, 64, 96]
        .iter()
        .map(|&n| Series {
            label: format!("{n}x{n} matrix"),
            points: procs
                .iter()
                .map(|&p| (p as f64, apps_model::gj_speedup(costs, n, p)))
                .collect(),
        })
        .collect()
}

/// Figure 8 — SOR per-iteration speedup vs processor-grid dimension N for
/// 9², 17², 33² and 65² problems, relative to the 4-process solver.
pub fn fig8_sor(costs: &CostModel) -> Vec<Series> {
    let dims = [1usize, 2, 3, 4];
    [65usize, 33, 17, 9]
        .iter()
        .map(|&grid| Series {
            label: format!("{grid} x {grid} problem"),
            points: dims
                .iter()
                .map(|&n| (n as f64, apps_model::sor_per_iter_speedup(costs, grid, n)))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineConfig, CostModel) {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        (m, c)
    }

    #[test]
    fn fig3_is_monotone_saturating() {
        let (m, c) = setup();
        let s = fig3_base(&m, &c);
        assert_eq!(s.points.len(), 12);
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1, "throughput must not decline with length");
        }
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(last > 3.0 * first, "large messages must beat small ones");
    }

    #[test]
    fn fig4_has_three_curves_over_receiver_counts() {
        let (m, c) = setup();
        let series = fig4_fcfs(&m, &c);
        assert_eq!(series.len(), 3);
        for s in &series {
            assert_eq!(s.points.len(), 6);
        }
        // 1024-byte curve dominates the 16-byte curve everywhere.
        let small = &series[0];
        let large = &series[2];
        for (a, b) in small.points.iter().zip(&large.points) {
            assert!(b.1 > a.1);
        }
    }

    #[test]
    fn fig5_scales_beyond_fig4() {
        let (m, c) = setup();
        let fcfs = fig4_fcfs(&m, &c);
        let bcast = fig5_broadcast(&m, &c);
        // At 16 receivers and 1024 bytes, broadcast's effective throughput
        // dwarfs fcfs (paper: 687 KB/s vs ~45 KB/s).
        let f = fcfs[2].points.last().unwrap().1;
        let b = bcast[2].points.last().unwrap().1;
        assert!(b > 5.0 * f, "fcfs={f:.0} broadcast={b:.0}");
    }

    #[test]
    fn fig6_large_messages_peak_then_decline() {
        let (m, c) = setup();
        let series = fig6_random(&m, &c, 7);
        let kb = series.last().unwrap(); // 1024-byte curve
        let peak =
            kb.points
                .iter()
                .cloned()
                .fold((0.0f64, 0.0f64), |acc, p| if p.1 > acc.1 { p } else { acc });
        let last = *kb.points.last().unwrap();
        assert!(
            peak.0 <= 14.0,
            "peak should come before 16 procs, at {}",
            peak.0
        );
        assert!(last.1 < peak.1, "throughput must decline after the peak");
    }

    #[test]
    fn fig7_bigger_matrices_win() {
        let (_, c) = setup();
        let series = fig7_gauss(&c);
        let s32 = series[0].points.last().unwrap().1;
        let s96 = series[3].points.last().unwrap().1;
        assert!(s96 > s32);
    }

    #[test]
    fn fig8_order_matches_problem_size() {
        let (_, c) = setup();
        let series = fig8_sor(&c);
        // At N=4, larger problems show larger per-iteration speedup.
        let at4: Vec<f64> = series.iter().map(|s| s.points.last().unwrap().1).collect();
        assert!(
            at4[0] > at4[1] && at4[1] > at4[2] && at4[2] > at4[3],
            "{at4:?}"
        );
    }
}
