//! The per-processor write-through cache (8 KB on the Balance 21000).
//!
//! "Each processor has a 8K byte, write-through cache" (§4).  Two things
//! follow for MPF:
//!
//! 1. **Every store crosses the bus** — write-through means the receive
//!    copy's destination writes and the send copy's block writes are bus
//!    traffic no matter how warm the cache is.  That is why the paper can
//!    say "memory bandwidth is the performance limiting factor".
//! 2. **Reads miss on first touch** of each line; MPF's 10-byte blocks
//!    straddle lines, so chained-block traversal has poor locality.
//!
//! [`WriteThroughCache`] is a faithful direct-mapped model with hit/miss
//! accounting; [`copy_cost`] prices a payload copy through it.  The
//! engine's [`crate::costs::CostModel`] uses a flat per-byte figure for
//! speed; the test `flat_copy_cost_is_consistent_with_cache_model`
//! pins the two models against each other so the calibration cannot
//! silently drift from the microarchitecture story.

/// A direct-mapped, write-through, no-write-allocate cache model.
#[derive(Debug, Clone)]
pub struct WriteThroughCache {
    line_bytes: u64,
    lines: Vec<Option<u64>>, // tag per set
    hits: u64,
    misses: u64,
}

/// Result of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data served from the cache.
    Hit,
    /// Line fill required (a bus transaction).
    Miss,
}

impl WriteThroughCache {
    /// A cache of `total_bytes` with `line_bytes` lines.
    pub fn new(total_bytes: u64, line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two() && total_bytes.is_multiple_of(line_bytes));
        Self {
            line_bytes,
            lines: vec![None; (total_bytes / line_bytes) as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// The Balance 21000 CPU cache: 8 KB, 16-byte lines.
    pub fn balance21000() -> Self {
        Self::new(8 << 10, 16)
    }

    /// Bytes per line.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// A read of one byte-address; fills the line on miss.
    pub fn read(&mut self, addr: u64) -> Access {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.lines.len();
        if self.lines[set] == Some(line) {
            self.hits += 1;
            Access::Hit
        } else {
            self.lines[set] = Some(line);
            self.misses += 1;
            Access::Miss
        }
    }

    /// A write: write-through (always a bus word transfer), no allocate —
    /// but it updates the line if present, which we model as a hit/miss
    /// statistic only.
    pub fn write(&mut self, addr: u64) -> Access {
        let line = addr / self.line_bytes;
        let set = (line as usize) % self.lines.len();
        if self.lines[set] == Some(line) {
            self.hits += 1;
            Access::Hit
        } else {
            self.misses += 1;
            Access::Miss
        }
    }

    /// Read hits + write hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit ratio over all accesses.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cycle price of one access class on the Balance.
#[derive(Debug, Clone, Copy)]
pub struct AccessCosts {
    /// CPU cycles for a cache-hit load plus loop overhead per byte.
    pub cpu_per_byte: u64,
    /// Extra cycles for a line fill (bus arbitration + transfer).
    pub miss_fill: u64,
    /// Bus cycles per written word (write-through).
    pub write_word: u64,
    /// Bytes per written word.
    pub word_bytes: u64,
}

impl AccessCosts {
    /// Calibrated Balance 21000 figures: a ~1 MIPS CPU spends tens of
    /// cycles per byte in a C `memcpy`-style loop with the MPF block
    /// bounds checks; a 16-byte line fill occupies the 80 MB/s bus for 2
    /// cycles plus arbitration.
    pub fn balance21000() -> Self {
        Self {
            cpu_per_byte: 90,
            miss_fill: 12,
            write_word: 4,
            word_bytes: 4,
        }
    }
}

/// Prices a `len`-byte copy (read source through `cache`, write-through
/// destination) starting at byte address `src`.  Returns
/// `(cpu_cycles, bus_cycles)`.
pub fn copy_cost(
    cache: &mut WriteThroughCache,
    costs: &AccessCosts,
    src: u64,
    len: u64,
) -> (u64, u64) {
    let mut cpu = 0;
    let mut bus = 0;
    for i in 0..len {
        cpu += costs.cpu_per_byte;
        if cache.read(src + i) == Access::Miss {
            cpu += costs.miss_fill;
            bus += costs.miss_fill;
        }
    }
    // Write-through destination: one bus word per word written.
    bus += len.div_ceil(costs.word_bytes) * costs.write_word;
    (cpu, bus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costs::CostModel;
    use crate::machine::MachineConfig;

    #[test]
    fn sequential_reads_hit_within_a_line() {
        let mut c = WriteThroughCache::new(256, 16);
        assert_eq!(c.read(0), Access::Miss);
        for a in 1..16 {
            assert_eq!(c.read(a), Access::Hit, "addr {a}");
        }
        assert_eq!(c.read(16), Access::Miss);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = WriteThroughCache::new(64, 16); // 4 sets
        assert_eq!(c.read(0), Access::Miss);
        assert_eq!(c.read(64), Access::Miss, "same set, different tag");
        assert_eq!(c.read(0), Access::Miss, "original line was evicted");
    }

    #[test]
    fn writes_do_not_allocate() {
        let mut c = WriteThroughCache::new(64, 16);
        assert_eq!(c.write(0), Access::Miss);
        assert_eq!(c.read(0), Access::Miss, "write did not allocate the line");
    }

    #[test]
    fn hit_ratio_accounting() {
        let mut c = WriteThroughCache::new(64, 16);
        c.read(0);
        c.read(1);
        c.read(2);
        assert!((c.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flat_copy_cost_is_consistent_with_cache_model() {
        // The engine's flat per-byte copy price must agree with the
        // microarchitectural model within a factor of two for the message
        // sizes the paper sweeps.
        let machine = MachineConfig::balance21000();
        let flat = CostModel::calibrated(&machine);
        let costs = AccessCosts::balance21000();
        for len in [16u64, 128, 1024, 2048] {
            let mut cache = WriteThroughCache::balance21000();
            let (cpu, _bus) = copy_cost(&mut cache, &costs, 0, len);
            let flat_cpu = flat.copy_cpu_cycles(len as usize);
            let ratio = cpu as f64 / flat_cpu as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "len {len}: cache model {cpu} vs flat {flat_cpu} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn cold_copies_cost_more_bus_than_warm() {
        let costs = AccessCosts::balance21000();
        let mut cache = WriteThroughCache::balance21000();
        let (_, cold_bus) = copy_cost(&mut cache, &costs, 0, 1024);
        let (_, warm_bus) = copy_cost(&mut cache, &costs, 0, 1024);
        assert!(warm_bus < cold_bus, "warm {warm_bus} vs cold {cold_bus}");
    }
}
