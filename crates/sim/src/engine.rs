//! The discrete-event engine.
//!
//! Executes [`crate::driver::Driver`] programs on simulated processors,
//! charging every MPF operation against the machine model:
//!
//! * **Send** = header/block allocation (CPU) + payload copy-in (CPU and
//!   bus occupancy, possibly paging faults) → LNVC lock → link + broadcast
//!   head updates (critical section) → release, wake blocked receivers.
//! * **Receive** = LNVC lock → scan/claim (critical section) → release →
//!   payload copy-out (CPU + bus + faults) → LNVC lock → reclaim → release.
//!   An empty queue blocks the processor on the LNVC's waiter list.
//! * **Locks** are FIFO with a bus RMW per acquisition/handoff; *waiting
//!   processors spin*, and their polling traffic is charged to the bus as
//!   an aggregate tax at each release (waiters × hold-time / poll
//!   interval × poll cost) — the contention mechanism behind Figure 4's
//!   small-message decline, without per-poll event flood.
//! * **The bus** serializes all occupancy requests (copies, RMWs, polls):
//!   concurrent broadcast copies queue against each other, bounding
//!   Figure 5's aggregate throughput.
//! * **Paging**: message-buffer residency is tracked; overcommit charges
//!   expected fault cycles per copy (Figure 6's cliff).
//!
//! The simulation ends when the event queue drains: finished processes
//! have stopped and any still blocked on empty queues will never be woken
//! (which is exactly how the paper's `fcfs`/`broadcast` programs end their
//! measurement window).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::bus::Bus;
use crate::costs::CostModel;
use crate::driver::{Driver, DriverOp, OpResult, RecvKind};
use crate::lnvc::SimLnvc;
use crate::machine::MachineConfig;
use crate::paging::PagingModel;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Call the driver with a result.
    Advance(OpResult),
    /// The processor now holds the lock it requested.
    LockGranted,
    /// End of a critical section.
    CritDone,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Event {
    time: u64,
    seq: u64,
    proc: usize,
    kind: EvKind,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// What a processor is doing between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    /// No operation in flight (next event will be `Advance`).
    Idle,
    /// Send: waiting for / holding the LNVC lock.
    SendCrit { lnvc: usize, len: usize },
    /// Receive: first lock phase (scan/claim).
    RecvCrit {
        lnvc: usize,
        kind: RecvKind,
        try_only: bool,
    },
    /// Receive: second lock phase (reclaim), after the copy.
    ReclaimCrit { lnvc: usize, len: usize },
    /// Blocked on an empty queue.
    WaitingMsg { lnvc: usize, kind: RecvKind },
    /// Stopped.
    Finished,
}

#[derive(Debug, Default, Clone, Copy)]
struct ProcStats {
    msgs_sent: u64,
    msgs_received: u64,
    bytes_sent: u64,
    bytes_received: u64,
    lock_waits: u64,
}

struct Proc {
    driver: Box<dyn Driver>,
    stage: Stage,
    stats: ProcStats,
}

#[derive(Debug, Default)]
struct LockState {
    held: bool,
    /// FIFO of `(processor, ready_at)`: a waiter cannot take the lock
    /// before its own pre-lock work (e.g. the send-side copy) completes.
    queue: std::collections::VecDeque<(usize, u64)>,
    /// When the current holder was granted the lock (for the spin tax).
    acquired_at: u64,
}

/// Simulation results.
#[derive(Debug, Clone)]
pub struct EngineReport {
    /// Total simulated cycles (time of the last event).
    pub elapsed_cycles: u64,
    /// Seconds at the machine's clock.
    pub elapsed_secs: f64,
    /// Messages sent across all processors.
    pub msgs_sent: u64,
    /// Deliveries (a broadcast message counts once per receiver).
    pub msgs_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes delivered.
    pub bytes_received: u64,
    /// Bus utilization over the run.
    pub bus_utilization: f64,
    /// Lock acquisitions that had to queue.
    pub lock_waits: u64,
    /// Peak simulated working set (paging model), bytes.
    pub peak_working_set: u64,
}

impl EngineReport {
    /// Sent-side throughput in bytes/second.
    pub fn send_throughput(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.bytes_sent as f64 / self.elapsed_secs
        }
    }

    /// Delivered ("effective") throughput in bytes/second — the metric of
    /// the paper's Figure 5.
    pub fn delivered_throughput(&self) -> f64 {
        if self.elapsed_secs == 0.0 {
            0.0
        } else {
            self.bytes_received as f64 / self.elapsed_secs
        }
    }
}

/// The event engine.
pub struct Engine {
    machine: MachineConfig,
    costs: CostModel,
    bus: Bus,
    paging: PagingModel,
    locks: Vec<LockState>,
    lnvcs: Vec<SimLnvc>,
    procs: Vec<Proc>,
    events: BinaryHeap<Reverse<Event>>,
    time: u64,
    seq: u64,
}

impl Engine {
    /// Creates an engine for `active_processes` processes on `machine`
    /// (the process count feeds the paging model's working-set estimate).
    pub fn new(machine: MachineConfig, costs: CostModel, active_processes: u32) -> Self {
        let paging = PagingModel::new(&machine, active_processes);
        Self {
            machine,
            costs,
            bus: Bus::new(),
            paging,
            locks: Vec::new(),
            lnvcs: Vec::new(),
            procs: Vec::new(),
            events: BinaryHeap::new(),
            time: 0,
            seq: 0,
        }
    }

    /// Creates a conversation (with its own lock); returns its index.
    pub fn add_lnvc(&mut self) -> usize {
        self.locks.push(LockState::default());
        let lock = self.locks.len() - 1;
        self.lnvcs.push(SimLnvc::new(lock));
        self.lnvcs.len() - 1
    }

    /// Registers a broadcast receiver cursor on `lnvc`.
    pub fn add_broadcast_receiver(&mut self, lnvc: usize) -> usize {
        self.lnvcs[lnvc].add_broadcast_receiver()
    }

    /// Adds a processor running `driver`; returns its index.
    pub fn add_proc(&mut self, driver: Box<dyn Driver>) -> usize {
        self.procs.push(Proc {
            driver,
            stage: Stage::Idle,
            stats: ProcStats::default(),
        });
        self.procs.len() - 1
    }

    fn push(&mut self, time: u64, proc: usize, kind: EvKind) {
        self.seq += 1;
        self.events.push(Reverse(Event {
            time,
            seq: self.seq,
            proc,
            kind,
        }));
    }

    /// Runs the simulation to quiescence and reports.
    pub fn run(mut self) -> EngineReport {
        // Kick every processor off at t = 0.
        for p in 0..self.procs.len() {
            self.push(0, p, EvKind::Advance(OpResult::Start));
        }
        while let Some(Reverse(ev)) = self.events.pop() {
            self.time = self.time.max(ev.time);
            match ev.kind {
                EvKind::Advance(result) => self.advance(ev.proc, ev.time, result),
                EvKind::LockGranted => self.on_lock_granted(ev.proc, ev.time),
                EvKind::CritDone => self.on_crit_done(ev.proc, ev.time),
            }
        }
        let mut report = EngineReport {
            elapsed_cycles: self.time,
            elapsed_secs: self.machine.cycles_to_secs(self.time),
            msgs_sent: 0,
            msgs_received: 0,
            bytes_sent: 0,
            bytes_received: 0,
            bus_utilization: self.bus.utilization(self.time),
            lock_waits: 0,
            peak_working_set: self.paging.peak_working_set(),
        };
        for p in &self.procs {
            report.msgs_sent += p.stats.msgs_sent;
            report.msgs_received += p.stats.msgs_received;
            report.bytes_sent += p.stats.bytes_sent;
            report.bytes_received += p.stats.bytes_received;
            report.lock_waits += p.stats.lock_waits;
        }
        report
    }

    /// Ask the driver for the next operation and launch it.
    fn advance(&mut self, proc: usize, now: u64, result: OpResult) {
        let op = self.procs[proc].driver.next(result);
        match op {
            DriverOp::Stop => {
                self.procs[proc].stage = Stage::Finished;
            }
            DriverOp::Compute(cycles) => {
                self.push(now + cycles, proc, EvKind::Advance(OpResult::Computed));
            }
            DriverOp::Send { lnvc, len } => {
                // Pre-lock work: header setup, block allocation, copy-in.
                self.paging.alloc(len, self.costs.window_bytes(len), proc);
                let fault = self.paging.fault_cycles(&self.costs, len);
                let cpu_start = now + self.costs.send_precopy_cycles(len) + fault;
                let done = self.timed_copy(cpu_start, len);
                self.procs[proc].stage = Stage::SendCrit { lnvc, len };
                let lock = self.lnvcs[lnvc].lock;
                self.request_lock(proc, lock, done);
            }
            DriverOp::Recv { lnvc, kind } => {
                self.procs[proc].stage = Stage::RecvCrit {
                    lnvc,
                    kind,
                    try_only: false,
                };
                let lock = self.lnvcs[lnvc].lock;
                self.request_lock(proc, lock, now + self.costs.recv_setup);
            }
            DriverOp::TryRecv { lnvc, kind } => {
                self.procs[proc].stage = Stage::RecvCrit {
                    lnvc,
                    kind,
                    try_only: true,
                };
                let lock = self.lnvcs[lnvc].lock;
                self.request_lock(proc, lock, now + self.costs.recv_setup);
            }
        }
    }

    /// A payload copy: CPU cost overlapped with bus occupancy; returns the
    /// completion time.
    fn timed_copy(&mut self, start: u64, len: usize) -> u64 {
        let cpu_done = start + self.costs.copy_cpu_cycles(len);
        if len == 0 {
            return cpu_done;
        }
        let bus_done = self.bus.occupy(start, self.costs.copy_bus_cycles(len));
        cpu_done.max(bus_done)
    }

    fn request_lock(&mut self, proc: usize, lock: usize, at: u64) {
        let state = &mut self.locks[lock];
        if state.held || !state.queue.is_empty() {
            state.queue.push_back((proc, at));
            self.procs[proc].stats.lock_waits += 1;
        } else {
            state.held = true;
            let grant = self.bus.occupy(at, self.costs.lock_rmw);
            self.locks[lock].acquired_at = grant;
            self.push(grant, proc, EvKind::LockGranted);
        }
    }

    fn release_lock(&mut self, lock: usize, now: u64) {
        // Spin tax: each queued waiter polled the lock word throughout the
        // hold; charge that bus traffic in aggregate.
        let waiters = self.locks[lock].queue.len() as u64;
        if waiters > 0 {
            let held = now.saturating_sub(self.locks[lock].acquired_at);
            let polls = held / self.costs.spin_poll_interval;
            if polls > 0 {
                self.bus
                    .occupy(now, waiters * polls * self.costs.spin_poll_bus);
            }
        }
        if let Some((next, ready_at)) = self.locks[lock].queue.pop_front() {
            // Handoff: lock stays held, next waiter pays its RMW — but it
            // cannot enter before its own pre-lock work is done.
            let grant = self.bus.occupy(now.max(ready_at), self.costs.lock_rmw);
            self.locks[lock].acquired_at = grant;
            self.push(grant, next, EvKind::LockGranted);
        } else {
            self.locks[lock].held = false;
        }
    }

    fn on_lock_granted(&mut self, proc: usize, now: u64) {
        let crit = match self.procs[proc].stage {
            Stage::SendCrit { lnvc, .. } => {
                self.costs.crit_send
                    + self.lnvcs[lnvc].broadcast_receivers() as u64 * self.costs.per_head_update
            }
            Stage::RecvCrit { lnvc, kind, .. } => {
                // The state cannot change while we hold the lock, so peek:
                // a successful claim pays the full scan/claim cost, a
                // woken receiver finding nothing pays only the short
                // re-check (the herd path).
                let available = match kind {
                    RecvKind::Fcfs => self.lnvcs[lnvc].has_fcfs_message(),
                    RecvKind::Broadcast(rcv) => self.lnvcs[lnvc].has_broadcast_message(rcv),
                };
                if available {
                    self.costs.crit_recv
                } else {
                    self.costs.crit_check
                }
            }
            Stage::ReclaimCrit { lnvc, .. } => {
                // A reclaim that frees nothing (a slower broadcast peer
                // still pins the queue) is a short check-and-exit.
                if self.lnvcs[lnvc].pending_reclaimed() > 0 {
                    self.costs.crit_reclaim
                } else {
                    self.costs.crit_check
                }
            }
            stage => unreachable!("lock granted in stage {stage:?}"),
        };
        self.push(now + crit, proc, EvKind::CritDone);
    }

    fn on_crit_done(&mut self, proc: usize, now: u64) {
        match self.procs[proc].stage {
            Stage::SendCrit { lnvc, len } => {
                self.lnvcs[lnvc].send(len);
                self.procs[proc].stats.msgs_sent += 1;
                self.procs[proc].stats.bytes_sent += len as u64;
                let lock = self.lnvcs[lnvc].lock;
                self.release_lock(lock, now);
                // Wake everything blocked on this conversation (MPF's
                // notify-all); losers will re-block.
                let waiters = std::mem::take(&mut self.lnvcs[lnvc].waiters);
                for w in waiters {
                    let Stage::WaitingMsg { lnvc: wl, kind } = self.procs[w].stage else {
                        unreachable!("waiter in non-waiting stage");
                    };
                    self.procs[w].stage = Stage::RecvCrit {
                        lnvc: wl,
                        kind,
                        try_only: false,
                    };
                    let wlock = self.lnvcs[wl].lock;
                    self.request_lock(w, wlock, now + self.costs.wake_latency);
                }
                self.procs[proc].stage = Stage::Idle;
                self.push(now, proc, EvKind::Advance(OpResult::Sent));
            }
            Stage::RecvCrit {
                lnvc,
                kind,
                try_only,
            } => {
                let got = match kind {
                    RecvKind::Fcfs => self.lnvcs[lnvc].recv_fcfs(),
                    RecvKind::Broadcast(rcv) => self.lnvcs[lnvc].recv_broadcast(rcv),
                };
                let lock = self.lnvcs[lnvc].lock;
                match got {
                    Some(len) => {
                        self.release_lock(lock, now);
                        let fault = self.paging.fault_cycles(&self.costs, len);
                        let done = self.timed_copy(now + fault, len);
                        self.procs[proc].stage = Stage::ReclaimCrit { lnvc, len };
                        self.request_lock(proc, lock, done);
                    }
                    None if try_only => {
                        self.release_lock(lock, now);
                        self.procs[proc].stage = Stage::Idle;
                        self.push(now, proc, EvKind::Advance(OpResult::RecvEmpty));
                    }
                    None => {
                        self.release_lock(lock, now);
                        self.procs[proc].stage = Stage::WaitingMsg { lnvc, kind };
                        self.lnvcs[lnvc].waiters.push(proc);
                        // No event: the processor sleeps until a sender
                        // wakes it (or the simulation quiesces).
                    }
                }
            }
            Stage::ReclaimCrit { lnvc, len } => {
                let freed = self.lnvcs[lnvc].drain_reclaimed();
                self.paging.free(freed as usize);
                let lock = self.lnvcs[lnvc].lock;
                self.release_lock(lock, now);
                self.procs[proc].stats.msgs_received += 1;
                self.procs[proc].stats.bytes_received += len as u64;
                self.procs[proc].stage = Stage::Idle;
                self.push(now, proc, EvKind::Advance(OpResult::RecvGot(len)));
            }
            stage => unreachable!("crit done in stage {stage:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(procs: u32) -> Engine {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        Engine::new(m, c, procs)
    }

    /// One sender, one blocking receiver, M messages.
    #[test]
    fn one_to_one_delivers_all_messages() {
        let mut e = engine(2);
        let l = e.add_lnvc();
        let mut remaining = 10u32;
        e.add_proc(Box::new(move |_res: OpResult| {
            if remaining == 0 {
                return DriverOp::Stop;
            }
            remaining -= 1;
            DriverOp::Send { lnvc: l, len: 100 }
        }));
        e.add_proc(Box::new(move |_res: OpResult| DriverOp::Recv {
            lnvc: l,
            kind: RecvKind::Fcfs,
        }));
        let r = e.run();
        assert_eq!(r.msgs_sent, 10);
        assert_eq!(r.msgs_received, 10);
        assert_eq!(r.bytes_sent, 1000);
        assert_eq!(r.bytes_received, 1000);
        assert!(r.elapsed_cycles > 0);
    }

    #[test]
    fn broadcast_counts_every_delivery() {
        let mut e = engine(3);
        let l = e.add_lnvc();
        let r1 = e.add_broadcast_receiver(l);
        let r2 = e.add_broadcast_receiver(l);
        let mut remaining = 5u32;
        e.add_proc(Box::new(move |_res: OpResult| {
            if remaining == 0 {
                return DriverOp::Stop;
            }
            remaining -= 1;
            DriverOp::Send { lnvc: l, len: 64 }
        }));
        for rcv in [r1, r2] {
            e.add_proc(Box::new(move |_res: OpResult| DriverOp::Recv {
                lnvc: l,
                kind: RecvKind::Broadcast(rcv),
            }));
        }
        let r = e.run();
        assert_eq!(r.msgs_sent, 5);
        assert_eq!(r.msgs_received, 10, "each receiver sees every message");
        assert_eq!(r.bytes_received, 2 * 5 * 64);
    }

    #[test]
    fn try_recv_on_empty_reports_empty() {
        let mut e = engine(1);
        let l = e.add_lnvc();
        let mut state = 0;
        e.add_proc(Box::new(move |res: OpResult| {
            state += 1;
            match state {
                1 => DriverOp::TryRecv {
                    lnvc: l,
                    kind: RecvKind::Fcfs,
                },
                _ => {
                    assert_eq!(res, OpResult::RecvEmpty);
                    DriverOp::Stop
                }
            }
        }));
        let r = e.run();
        assert_eq!(r.msgs_received, 0);
    }

    #[test]
    fn blocked_receiver_never_woken_quiesces() {
        let mut e = engine(1);
        let l = e.add_lnvc();
        e.add_proc(Box::new(move |_res: OpResult| DriverOp::Recv {
            lnvc: l,
            kind: RecvKind::Fcfs,
        }));
        let r = e.run();
        assert_eq!(r.msgs_received, 0, "no sender: simulation quiesces");
    }

    #[test]
    fn deterministic_given_same_setup() {
        let run = || {
            let mut e = engine(2);
            let l = e.add_lnvc();
            let mut remaining = 20u32;
            e.add_proc(Box::new(move |_res: OpResult| {
                if remaining == 0 {
                    return DriverOp::Stop;
                }
                remaining -= 1;
                DriverOp::Send { lnvc: l, len: 256 }
            }));
            e.add_proc(Box::new(move |_res: OpResult| DriverOp::Recv {
                lnvc: l,
                kind: RecvKind::Fcfs,
            }));
            e.run().elapsed_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn contention_slows_the_clock() {
        // More receivers fighting over one LNVC must not make the same
        // message stream finish faster for small messages (lock + bus tax).
        let run = |receivers: usize| {
            let mut e = engine(1 + receivers as u32);
            let l = e.add_lnvc();
            let mut remaining = 200u32;
            e.add_proc(Box::new(move |_res: OpResult| {
                if remaining == 0 {
                    return DriverOp::Stop;
                }
                remaining -= 1;
                DriverOp::Send { lnvc: l, len: 16 }
            }));
            for _ in 0..receivers {
                e.add_proc(Box::new(move |_res: OpResult| DriverOp::Recv {
                    lnvc: l,
                    kind: RecvKind::Fcfs,
                }));
            }
            e.run()
        };
        let few = run(1);
        let many = run(12);
        assert_eq!(few.msgs_received, 200);
        assert_eq!(many.msgs_received, 200);
        assert!(
            many.elapsed_cycles as f64 >= 0.95 * few.elapsed_cycles as f64,
            "12 receivers ({}) should not beat 1 receiver ({}) on tiny messages",
            many.elapsed_cycles,
            few.elapsed_cycles
        );
        assert!(many.lock_waits > few.lock_waits);
    }

    #[test]
    fn compute_takes_time() {
        let mut e = engine(1);
        let mut state = 0;
        e.add_proc(Box::new(move |_res: OpResult| {
            state += 1;
            if state == 1 {
                DriverOp::Compute(12_345)
            } else {
                DriverOp::Stop
            }
        }));
        let r = e.run();
        assert_eq!(r.elapsed_cycles, 12_345);
    }
}
