//! # mpf-sim — a discrete-event model of the Sequent Balance 21000
//!
//! The paper's evaluation ran on hardware we cannot obtain: a 20-processor
//! Sequent Balance 21000 (10 MHz NS32032 CPUs, one 80 MB/s shared bus,
//! 8 KB write-through caches, 16 MB of memory, Dynix paging).  Several of
//! its figure *shapes* are properties of that machine, not of MPF:
//!
//! * Figure 3's throughput asymptote — per-byte copy cost dominating
//!   per-message overhead ("memory bandwidth is the performance limiting
//!   factor");
//! * Figure 4's decline for small messages as receivers are added —
//!   LNVC lock contention, spinning waiters stealing bus cycles;
//! * Figure 5's sub-linear broadcast scaling — concurrent receiver copies
//!   sharing one bus;
//! * Figure 6's throughput collapse above ~10 processes for 1 KB messages
//!   — virtual-memory paging once message buffers outgrow residency.
//!
//! A 2026 host (often with fewer cores than the Balance had processors!)
//! will not reproduce those shapes natively, so this crate rebuilds the
//! machine as a discrete-event simulation and re-runs the paper's four
//! synthetic benchmarks on it:
//!
//! * [`machine`] — the hardware description
//!   ([`machine::MachineConfig::balance21000`]);
//! * [`costs`] — the MPF cost model, derived from machine parameters with
//!   documented formulas and calibrated against the paper's §4 numbers;
//! * [`bus`] — the single shared bus (an occupancy/queueing resource);
//! * [`paging`] — the virtual-memory overhead model;
//! * [`lnvc`] — a functional model of LNVC queues (delivery bookkeeping
//!   only; the real protocol logic lives in `mpf-core`);
//! * [`engine`] — the event engine executing send/receive operations for
//!   simulated processors;
//! * [`driver`] / [`workloads`] — the paper's `base`, `fcfs`, `broadcast`
//!   and `random` benchmark programs;
//! * [`figures`] — one entry point per paper figure, returning the series
//!   the benchmark harness prints;
//! * [`apps_model`] — analytic Balance-21000 execution-time models for
//!   the Gauss-Jordan and SOR applications (Figures 7 and 8).
//!
//! Everything is deterministic given a seed; the `random` benchmark uses
//! `rand` with a fixed-seed generator.

pub mod apps_model;
pub mod bus;
pub mod cache;
pub mod costs;
pub mod driver;
pub mod engine;
pub mod figures;
pub mod lnvc;
pub mod machine;
pub mod paging;
pub mod replay;
pub mod report;
pub mod validate;
pub mod workloads;

pub use costs::CostModel;
pub use engine::{Engine, EngineReport};
pub use machine::MachineConfig;
