//! The shared bus: a serially reusable resource with FCFS queueing.
//!
//! "All processors are connected to shared memory by a shared bus with a
//! 80 Mbyte/s (maximum) transfer rate."  Every payload copy, lock RMW and
//! spin poll occupies the bus; when requests overlap, later ones queue.
//! The queueing delay is what turns N concurrent broadcast copies into the
//! sub-linear aggregate of Figure 5, and what lets spinning receivers slow
//! a working sender down (Figure 4's small-message decline).

/// Simulated-time bus with utilization accounting.
#[derive(Debug, Default)]
pub struct Bus {
    free_at: u64,
    busy_cycles: u64,
    transactions: u64,
}

impl Bus {
    /// New, idle bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `cycles` of bus occupancy starting no earlier than `now`.
    /// Returns the completion time (grant time + occupancy).
    pub fn occupy(&mut self, now: u64, cycles: u64) -> u64 {
        let grant = self.free_at.max(now);
        self.free_at = grant + cycles;
        self.busy_cycles += cycles;
        self.transactions += 1;
        self.free_at
    }

    /// Earliest time a new request would be granted.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Total cycles the bus spent transferring.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Number of occupancy requests served.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Bus utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / horizon as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = Bus::new();
        assert_eq!(b.occupy(100, 10), 110);
        assert_eq!(b.free_at(), 110);
    }

    #[test]
    fn overlapping_requests_queue_fcfs() {
        let mut b = Bus::new();
        assert_eq!(b.occupy(0, 10), 10);
        // Requested at t=5 but the bus is busy until 10.
        assert_eq!(b.occupy(5, 10), 20);
        // Requested long after: no queueing.
        assert_eq!(b.occupy(100, 10), 110);
    }

    #[test]
    fn accounting() {
        let mut b = Bus::new();
        b.occupy(0, 10);
        b.occupy(0, 30);
        assert_eq!(b.busy_cycles(), 40);
        assert_eq!(b.transactions(), 2);
        assert!((b.utilization(100) - 0.4).abs() < 1e-12);
        assert_eq!(b.utilization(0), 0.0);
    }
}
