//! Functional model of LNVC queues for the simulator.
//!
//! The simulator needs just enough delivery bookkeeping to decide *who*
//! gets *which* message *when* — the timing comes from the engine's cost
//! model.  The full protocol implementation (and its tests) live in
//! `mpf-core`; this model mirrors its delivery semantics for the
//! homogeneous LNVCs the paper's benchmarks use.

use std::collections::VecDeque;

/// Receiver protocol (mirror of `mpf::Protocol`, kept local so the
/// simulator does not depend on the library it models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimProtocol {
    /// Each message to exactly one receiver.
    Fcfs,
    /// Every message to every receiver.
    Broadcast,
}

/// A queued message.
#[derive(Debug, Clone)]
struct SimMsg {
    seq: u64,
    len: usize,
    /// FCFS: not yet taken.  Broadcast: receivers still owed.
    fcfs_taken: bool,
    bcast_pending: u32,
}

/// One simulated conversation.
#[derive(Debug)]
pub struct SimLnvc {
    /// Engine lock id guarding this LNVC.
    pub lock: usize,
    queue: VecDeque<SimMsg>,
    next_seq: u64,
    /// Broadcast receiver cursors: next sequence number each will read.
    cursors: Vec<u64>,
    /// Simulated processors blocked waiting for a message here.
    pub waiters: Vec<usize>,
    queued_bytes: u64,
    /// Bytes reclaimed since the last [`SimLnvc::drain_reclaimed`] (the
    /// engine charges reclamation in the second lock phase).
    reclaimed_accum: u64,
}

impl SimLnvc {
    /// New conversation guarded by engine lock `lock`.
    pub fn new(lock: usize) -> Self {
        Self {
            lock,
            queue: VecDeque::new(),
            next_seq: 0,
            cursors: Vec::new(),
            waiters: Vec::new(),
            queued_bytes: 0,
            reclaimed_accum: 0,
        }
    }

    /// Registers a broadcast receiver; returns its cursor index.  The
    /// receiver starts at the tail (sees only later messages), as in
    /// `mpf-core`.
    pub fn add_broadcast_receiver(&mut self) -> usize {
        self.cursors.push(self.next_seq);
        self.cursors.len() - 1
    }

    /// Number of registered broadcast receivers.
    pub fn broadcast_receivers(&self) -> usize {
        self.cursors.len()
    }

    /// Appends a message; returns its sequence number.
    pub fn send(&mut self, len: usize) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push_back(SimMsg {
            seq,
            len,
            fcfs_taken: false,
            bcast_pending: self.cursors.len() as u32,
        });
        self.queued_bytes += len as u64;
        seq
    }

    /// FCFS receive: takes the oldest untaken message.  Returns its length.
    pub fn recv_fcfs(&mut self) -> Option<usize> {
        let msg = self.queue.iter_mut().find(|m| !m.fcfs_taken)?;
        msg.fcfs_taken = true;
        let len = msg.len;
        self.reclaim(true);
        Some(len)
    }

    /// Broadcast receive for cursor `rcv`.  Returns the message length.
    pub fn recv_broadcast(&mut self, rcv: usize) -> Option<usize> {
        let cursor = self.cursors[rcv];
        let msg = self.queue.iter_mut().find(|m| m.seq == cursor)?;
        msg.bcast_pending = msg.bcast_pending.saturating_sub(1);
        let len = msg.len;
        self.cursors[rcv] = cursor + 1;
        self.reclaim(false);
        Some(len)
    }

    /// Drops the fully consumed prefix; returns bytes reclaimed.
    /// `fcfs_mode` selects which disposition ends a message's life (the
    /// paper's benchmarks never mix protocols on one LNVC).
    fn reclaim(&mut self, fcfs_mode: bool) -> u64 {
        let mut freed = 0;
        while let Some(front) = self.queue.front() {
            let consumed = if fcfs_mode {
                front.fcfs_taken
            } else {
                front.bcast_pending == 0
            };
            if !consumed {
                break;
            }
            freed += front.len as u64;
            self.queue.pop_front();
        }
        self.queued_bytes -= freed;
        self.reclaimed_accum += freed;
        freed
    }

    /// Bytes reclaimed since the last drain (consumed by the engine's
    /// reclaim phase to update the paging model).
    pub fn drain_reclaimed(&mut self) -> u64 {
        std::mem::take(&mut self.reclaimed_accum)
    }

    /// Peek at the undrained reclaimed bytes (the engine prices the
    /// reclaim critical section by whether it has work to do).
    pub fn pending_reclaimed(&self) -> u64 {
        self.reclaimed_accum
    }

    /// Queued (unreclaimed) bytes.
    pub fn queued_bytes(&self) -> u64 {
        self.queued_bytes
    }

    /// Queued message count.
    pub fn queued_messages(&self) -> usize {
        self.queue.len()
    }

    /// Whether an FCFS receive would find a message.
    pub fn has_fcfs_message(&self) -> bool {
        self.queue.iter().any(|m| !m.fcfs_taken)
    }

    /// Whether broadcast cursor `rcv` has an unread message.
    pub fn has_broadcast_message(&self, rcv: usize) -> bool {
        self.cursors[rcv] < self.next_seq && self.queue.iter().any(|m| m.seq == self.cursors[rcv])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_exactly_once_in_order() {
        let mut l = SimLnvc::new(0);
        l.send(10);
        l.send(20);
        assert_eq!(l.recv_fcfs(), Some(10));
        assert_eq!(l.recv_fcfs(), Some(20));
        assert_eq!(l.recv_fcfs(), None);
        assert_eq!(l.queued_messages(), 0);
        assert_eq!(l.queued_bytes(), 0);
    }

    #[test]
    fn broadcast_everyone_sees_everything() {
        let mut l = SimLnvc::new(0);
        let a = l.add_broadcast_receiver();
        let b = l.add_broadcast_receiver();
        l.send(5);
        l.send(7);
        assert_eq!(l.recv_broadcast(a), Some(5));
        assert_eq!(l.recv_broadcast(b), Some(5));
        assert_eq!(l.recv_broadcast(a), Some(7));
        assert_eq!(l.queued_messages(), 1, "b has not read message 2");
        assert_eq!(l.recv_broadcast(b), Some(7));
        assert_eq!(l.queued_messages(), 0);
    }

    #[test]
    fn late_broadcast_receiver_starts_at_tail() {
        let mut l = SimLnvc::new(0);
        let a = l.add_broadcast_receiver();
        l.send(1);
        assert_eq!(l.recv_broadcast(a), Some(1));
        let b = l.add_broadcast_receiver();
        assert!(!l.has_broadcast_message(b));
        l.send(2);
        assert!(l.has_broadcast_message(b));
    }

    #[test]
    fn reclaim_waits_for_slowest_broadcast_receiver() {
        let mut l = SimLnvc::new(0);
        let a = l.add_broadcast_receiver();
        let _b = l.add_broadcast_receiver();
        for _ in 0..3 {
            l.send(100);
        }
        for _ in 0..3 {
            l.recv_broadcast(a);
        }
        assert_eq!(l.queued_bytes(), 300, "b pins everything");
    }

    #[test]
    fn check_predicates() {
        let mut l = SimLnvc::new(0);
        assert!(!l.has_fcfs_message());
        l.send(1);
        assert!(l.has_fcfs_message());
        l.recv_fcfs();
        assert!(!l.has_fcfs_message());
    }
}
