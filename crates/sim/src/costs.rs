//! The MPF cost model: how many cycles each piece of the library costs on
//! the simulated machine.
//!
//! Constants are derived from machine parameters where possible and
//! calibrated against the paper's §4 measurements otherwise.  The
//! calibration anchors (all from the paper's text and figures):
//!
//! 1. **Figure 3** (`base`, loop-back send+receive, 10-byte blocks):
//!    small messages run at only a few KB/s (high *fixed* per-message
//!    cost: call overhead, header handling, the blocking-receive wake
//!    path — ≈ 40 k cycles ≈ 4 ms per primitive on the 10 MHz CPU), and
//!    the curve saturates near 25,000 bytes/s at 2 KB.  A 2 KB round trip
//!    is ≈ 82 ms ≈ 820 k cycles; with the fixed ends subtracted, the
//!    marginal cost is ≈ 400 cycles/byte for the round trip: two copies
//!    at ≈ 150 cycles/byte plus ≈ 80 cycles/byte of 10-byte-block
//!    bookkeeping (800 cycles per block allocation/link).
//! 2. **Figure 4** (`fcfs`): 1024-byte throughput ≈ 40–50 KB/s roughly
//!    independent of receiver count — the sender's pipeline (alloc +
//!    copy-in) is the bottleneck once receive copies are offloaded;
//!    16-byte and 128-byte curves *decline* with receivers — every send
//!    wakes the pack, whose serialized critical sections and lock-poll
//!    bus traffic stretch the sender's own lock acquisitions.
//! 3. **Figure 5** (`broadcast`): 687,245 bytes/s effective at 16
//!    receivers × 1024 bytes — receive copies proceed concurrently and
//!    aggregate delivered bandwidth approaches (but does not reach) the
//!    ideal 16× single-stream rate.
//!
//! The numbers are *model inputs*, not claims about the NS32032's exact
//! microarchitecture; EXPERIMENTS.md compares the resulting curves with
//! the paper's.

use crate::machine::MachineConfig;

/// Cycle costs for MPF operations on the simulated machine.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Payload bytes per message block (the paper used 10).
    pub block_payload: usize,
    /// Fixed cost of entering `message_send` (argument checks, free-list
    /// pops for the header).
    pub send_setup: u64,
    /// Per-block cost on the send side: free-list pop, link store, bounds
    /// arithmetic.
    pub per_block_alloc: u64,
    /// Per-byte CPU cost of a payload copy (each side).
    pub copy_cycles_per_byte: u64,
    /// Peak bus throughput in bytes per cycle (from the machine config);
    /// a copy of `n` bytes occupies the bus for `2n / bus_bytes_per_cycle`
    /// cycles (each byte crosses twice: read, then write-through write).
    pub bus_bytes_per_cycle: u64,
    /// Lock acquire/release bus transaction (interlocked RMW).
    pub lock_rmw: u64,
    /// Critical-section cost of linking a message into the FIFO.
    pub crit_send: u64,
    /// Per-broadcast-receiver head-pointer update inside the send
    /// critical section.
    pub per_head_update: u64,
    /// Fixed receive-side cost paid *outside* the lock (call overhead,
    /// buffer staging) before the scan/claim.
    pub recv_setup: u64,
    /// Latency from a sender's notify to a blocked receiver re-entering
    /// the lock path.
    pub wake_latency: u64,
    /// Critical-section cost of a successful receive-side scan/claim.
    pub crit_recv: u64,
    /// Critical-section cost of a woken receiver finding nothing (short
    /// scan, exit) — the thundering-herd re-check path.
    pub crit_check: u64,
    /// Critical-section cost of the post-copy reclaim pass.
    pub crit_reclaim: u64,
    /// How often a spinning waiter re-polls the lock word, in cycles.
    pub spin_poll_interval: u64,
    /// Bus occupancy of one spin poll (the TTAS re-read that misses).
    pub spin_poll_bus: u64,
    /// Cost of one page fault (Dynix fault handling + disk/backing-store
    /// latency amortized by prefetch), in cycles.
    pub page_fault: u64,
    /// Page size (from the machine config).
    pub page_bytes: u64,
}

impl CostModel {
    /// Derives the calibrated cost model for `machine` with the paper's
    /// 10-byte blocks.
    pub fn calibrated(machine: &MachineConfig) -> Self {
        Self::calibrated_with_block(machine, 10)
    }

    /// Derivation with an explicit block size (ablation A1 sweeps this).
    pub fn calibrated_with_block(machine: &MachineConfig, block_payload: usize) -> Self {
        Self {
            block_payload,
            send_setup: 12_000,
            per_block_alloc: 800,
            copy_cycles_per_byte: 150,
            bus_bytes_per_cycle: (machine.bus_bytes_per_sec / machine.cpu_hz).max(1),
            lock_rmw: 100,
            crit_send: 6_000,
            per_head_update: 60,
            recv_setup: 8_000,
            wake_latency: 2_000,
            crit_recv: 4_000,
            crit_check: 1_500,
            crit_reclaim: 6_000,
            spin_poll_interval: 1_000,
            spin_poll_bus: 12,
            // ~4 ms at 10 MHz: Dynix fault service plus amortized backing
            // store traffic (scaled up under thrash, see PagingModel).
            page_fault: 40_000,
            page_bytes: machine.page_bytes,
        }
    }

    /// Blocks needed for a payload.
    pub fn blocks_for(&self, len: usize) -> u64 {
        len.div_ceil(self.block_payload) as u64
    }

    /// CPU cycles for the send-side work outside the critical section
    /// (header setup, block allocation; the copy is charged separately
    /// because it also occupies the bus).
    pub fn send_precopy_cycles(&self, len: usize) -> u64 {
        self.send_setup + self.blocks_for(len) * self.per_block_alloc
    }

    /// CPU cycles of one payload copy (either direction).
    pub fn copy_cpu_cycles(&self, len: usize) -> u64 {
        len as u64 * self.copy_cycles_per_byte
    }

    /// Bus occupancy of one payload copy (each byte crosses twice).
    pub fn copy_bus_cycles(&self, len: usize) -> u64 {
        (2 * len as u64).div_ceil(self.bus_bytes_per_cycle)
    }

    /// Pages touched by a payload of `len` bytes.
    pub fn pages_touched(&self, len: usize) -> u64 {
        (len as u64).div_ceil(self.page_bytes).max(1)
    }

    /// Page-window footprint of one in-flight message: with tiny linked
    /// blocks recycled LIFO from a shared free list, each block of a
    /// message can land on a different page, so a 1 KB message claims up
    /// to ~103 pages of residency — the amplification behind Figure 6's
    /// paging cliff.
    pub fn window_bytes(&self, len: usize) -> u64 {
        if len == 0 {
            0
        } else {
            self.blocks_for(len) * self.page_bytes
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::calibrated(&MachineConfig::balance21000())
    }

    #[test]
    fn paper_block_size_default() {
        assert_eq!(model().block_payload, 10);
        assert_eq!(model().blocks_for(1024), 103);
        assert_eq!(model().blocks_for(0), 0);
    }

    #[test]
    fn base_roundtrip_calibration_anchor() {
        // Anchor 1: a 2 KB loop-back round trip should land near the
        // paper's ~25 KB/s asymptote.  Round trip ≈ send precopy + copy-in
        // + crit sections + copy-out.
        let c = model();
        let len = 2048usize;
        let cycles = c.send_precopy_cycles(len)
            + 2 * c.copy_cpu_cycles(len)
            + c.crit_send
            + c.recv_setup
            + c.crit_recv
            + c.crit_reclaim
            + 6 * c.lock_rmw;
        let secs = cycles as f64 / 10_000_000.0;
        let throughput = len as f64 / secs;
        assert!(
            (18_000.0..35_000.0).contains(&throughput),
            "2 KB loop-back throughput {throughput:.0} B/s should be near the paper's ~25 KB/s"
        );
    }

    #[test]
    fn single_stream_receive_rate_anchor() {
        // Anchor 3: one receiver copying 1024-byte messages should manage
        // ~40-60 KB/s, so 16 broadcast receivers can aggregate to the
        // paper's ~687 KB/s.
        let c = model();
        let len = 1024usize;
        let cycles =
            c.recv_setup + c.copy_cpu_cycles(len) + c.crit_recv + c.crit_reclaim + 4 * c.lock_rmw;
        let throughput = len as f64 / (cycles as f64 / 10_000_000.0);
        assert!(
            (40_000.0..120_000.0).contains(&throughput),
            "per-receiver copy rate {throughput:.0} B/s out of range"
        );
    }

    #[test]
    fn bus_cost_reflects_write_through() {
        let c = model();
        // 8 bytes/cycle peak; two crossings per byte → 1 cycle per 4 bytes.
        assert_eq!(c.bus_bytes_per_cycle, 8);
        assert_eq!(c.copy_bus_cycles(8), 2);
        assert_eq!(c.copy_bus_cycles(1024), 256);
        assert_eq!(c.copy_bus_cycles(1), 1, "partial transfers round up");
    }

    #[test]
    fn pages_touched_rounds_up() {
        let c = model();
        assert_eq!(c.pages_touched(1), 1);
        assert_eq!(c.pages_touched(512), 1);
        assert_eq!(c.pages_touched(513), 2);
    }
}
