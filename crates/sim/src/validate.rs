//! Calibration validation: every quantitative claim the model is fitted
//! to (or predicts), checked in one place.
//!
//! `mpf-bench`'s `paper_stats` binary prints this table; the test suite
//! asserts every row, so a cost-model change that breaks an anchor fails
//! loudly with the offending row.

use crate::costs::CostModel;
use crate::machine::MachineConfig;
use crate::workloads;

/// One paper-vs-model comparison row.
#[derive(Debug, Clone)]
pub struct Anchor {
    /// What is being compared.
    pub name: &'static str,
    /// The paper's value (bytes/second unless noted).
    pub paper: f64,
    /// The model's value.
    pub model: f64,
    /// Accepted multiplicative band (model within `paper/tol ..= paper*tol`).
    pub tolerance: f64,
}

impl Anchor {
    /// Whether the model value lands in the accepted band.
    pub fn holds(&self) -> bool {
        self.model >= self.paper / self.tolerance && self.model <= self.paper * self.tolerance
    }
}

/// Computes every calibration anchor on the given machine.
pub fn anchors(machine: &MachineConfig, costs: &CostModel) -> Vec<Anchor> {
    vec![
        Anchor {
            name: "Fig3 base asymptote, 2 KB loop-back",
            paper: 25_000.0,
            model: workloads::run_base(machine, costs, 2048, 100).send_throughput(),
            tolerance: 1.3,
        },
        Anchor {
            name: "Fig3 base mid-curve, 1 KB loop-back",
            paper: 21_000.0,
            model: workloads::run_base(machine, costs, 1024, 100).send_throughput(),
            tolerance: 1.4,
        },
        Anchor {
            name: "Fig4 fcfs plateau, 1 KB x 16 receivers",
            paper: 43_000.0,
            model: workloads::run_fcfs(machine, costs, 1024, 16, 200).send_throughput(),
            tolerance: 1.5,
        },
        Anchor {
            name: "Fig5 broadcast peak, 1 KB x 16 receivers",
            paper: 687_245.0,
            model: workloads::run_broadcast(machine, costs, 1024, 16, 200).delivered_throughput(),
            tolerance: 2.0,
        },
    ]
}

/// Renders the anchor table.
pub fn render(rows: &[Anchor]) -> String {
    let mut out = String::from(
        "anchor                                            paper        model   band   ok\n",
    );
    for a in rows {
        out.push_str(&format!(
            "{:<48} {:>9.0} {:>12.0}   {:>3.1}x   {}\n",
            a.name,
            a.paper,
            a.model,
            a.tolerance,
            if a.holds() { "yes" } else { "NO" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_anchor_holds() {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        let rows = anchors(&m, &c);
        assert_eq!(rows.len(), 4);
        for a in &rows {
            assert!(
                a.holds(),
                "calibration anchor broken: {} (paper {:.0}, model {:.0}, band {:.1}x)",
                a.name,
                a.paper,
                a.model,
                a.tolerance
            );
        }
    }

    #[test]
    fn render_flags_misses() {
        let rows = vec![Anchor {
            name: "synthetic",
            paper: 100.0,
            model: 500.0,
            tolerance: 2.0,
        }];
        assert!(!rows[0].holds());
        assert!(render(&rows).contains("NO"));
    }
}
