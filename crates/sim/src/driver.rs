//! Driver interface: the "programs" simulated processors run.
//!
//! A driver is a small state machine that emits one MPF operation at a
//! time; the [`crate::engine::Engine`] executes each operation against the
//! machine model (bus, locks, paging) and reports the outcome back through
//! [`OpResult`], whereupon the driver chooses its next step.  The paper's
//! four synthetic benchmarks are drivers in [`crate::workloads`].

/// Outcome of the previously issued operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    /// First call; no operation has run yet.
    Start,
    /// The `Send` completed (message linked into the FIFO).
    Sent,
    /// A `Recv`/`TryRecv` delivered a message of this length.
    RecvGot(usize),
    /// A `TryRecv` found the queue empty.
    RecvEmpty,
    /// A `Compute` finished.
    Computed,
}

/// Receiver identity for receive operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvKind {
    /// FCFS receive (shared head pointer).
    Fcfs,
    /// Broadcast receive with this cursor index (from
    /// [`crate::lnvc::SimLnvc::add_broadcast_receiver`]).
    Broadcast(usize),
}

/// One simulated MPF operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverOp {
    /// `message_send(lnvc, len)`.
    Send {
        /// Target conversation index.
        lnvc: usize,
        /// Payload bytes.
        len: usize,
    },
    /// Blocking `message_receive`.
    Recv {
        /// Conversation index.
        lnvc: usize,
        /// FCFS or broadcast cursor.
        kind: RecvKind,
    },
    /// Non-blocking receive (`check_receive` + `message_receive`).
    TryRecv {
        /// Conversation index.
        lnvc: usize,
        /// FCFS or broadcast cursor.
        kind: RecvKind,
    },
    /// Local computation for this many cycles.
    Compute(u64),
    /// Process exits.
    Stop,
}

/// A simulated program.
pub trait Driver {
    /// Returns the next operation given the previous operation's result.
    fn next(&mut self, last: OpResult) -> DriverOp;
}

/// Blanket impl so closures can serve as quick drivers in tests.
impl<F: FnMut(OpResult) -> DriverOp> Driver for F {
    fn next(&mut self, last: OpResult) -> DriverOp {
        self(last)
    }
}
