//! Analytic Balance-21000 execution-time models for the two applications
//! (Figures 7 and 8).
//!
//! The real applications (with correctness tests) live in `mpf-apps` and
//! run natively.  On a modern host, though, native runs cannot reproduce
//! the paper's *speedups* — the reproduction machine may not even have 16
//! cores, and a 2026 memory hierarchy prices communication differently.
//! These models price one iteration of each algorithm with the simulator's
//! calibrated MPF costs and the machine's arithmetic speed, giving the
//! speedup curves the shapes the paper measured:
//!
//! * **Gauss-Jordan** (Figure 7): "Speedup is greater with larger
//!   matrices… In the extreme, excessive parallelization yields
//!   insufficient computation per iteration, and speedup declines."
//! * **SOR** (Figure 8): "the computation cost for an iteration is
//!   proportional to the area of the sub-grids, and the communication cost
//!   is proportional to their perimeter."  Speedups are relative to the
//!   4-process (2×2) solver, the paper's footnote 6.

use crate::costs::CostModel;

/// Cycles per double-precision floating-point operation.  The Balance
/// 21000's NS32032 relied on slow (largely software-assisted) floating
/// point — hundreds of cycles per double operation — which is why the
/// paper's 96×96 solve is worth parallelizing at all.
pub const CYCLES_PER_FLOP: u64 = 300;
/// Cycles per comparison in the pivot scan.
pub const CYCLES_PER_CMP: u64 = 150;
/// Bytes per matrix element (C `double`).
pub const ELEM_BYTES: usize = 8;

/// Cost of one `message_send(len)` call: pre-lock setup + copy-in +
/// critical section + two lock transactions.
fn send_cost(costs: &CostModel, len: usize) -> u64 {
    costs.send_precopy_cycles(len)
        + costs.copy_cpu_cycles(len)
        + costs.crit_send
        + 2 * costs.lock_rmw
}

/// Cost of one (non-blocking-path) `message_receive(len)` call: two
/// critical sections around the copy-out.
fn recv_cost(costs: &CostModel, len: usize) -> u64 {
    costs.crit_recv + costs.copy_cpu_cycles(len) + costs.crit_reclaim + 4 * costs.lock_rmw
}

/// Sequential Gauss-Jordan time for an `n × n` system, in cycles:
/// for each of `n` pivot columns, scan `n` rows then sweep `n × n`
/// elements (2 flops each).
pub fn gj_sequential_cycles(n: usize) -> u64 {
    let n = n as u64;
    n * (n * CYCLES_PER_CMP + n * n * 2 * CYCLES_PER_FLOP)
}

/// Parallel (MPF, `procs` workers + arbiter) Gauss-Jordan time in cycles.
///
/// Per pivot column: each worker scans its `n/procs` rows and sends its
/// local maximum to the arbiter (FCFS); the arbiter receives `procs`
/// candidates serially, picks the winner, and notifies it; the winner
/// broadcasts the pivot row; every worker then sweeps its rows.
pub fn gj_parallel_cycles(costs: &CostModel, n: usize, procs: usize) -> u64 {
    assert!(procs >= 1);
    let rows_per = (n as u64).div_ceil(procs as u64);
    let candidate = 2 * ELEM_BYTES; // (value, row index)
    let row_bytes = n * ELEM_BYTES;
    let mut total = 0u64;
    for _pivot in 0..n as u64 {
        // Workers scan concurrently.
        let scan = rows_per * CYCLES_PER_CMP;
        // Arbiter drains `procs` candidate messages serially — the
        // serialization the paper blames for FCFS pressure at high P.
        let arbitration = procs as u64
            * (send_cost(costs, candidate) / procs as u64 + recv_cost(costs, candidate))
            + procs as u64 * CYCLES_PER_CMP;
        // Winner notification (one small FCFS message).
        let notify = send_cost(costs, candidate) + recv_cost(costs, candidate);
        // Pivot-row broadcast: one send; receivers copy concurrently, so
        // the critical path is one receive, plus the per-receiver head
        // updates in the send critical section.
        let broadcast = send_cost(costs, row_bytes)
            + (procs as u64) * costs.per_head_update
            + recv_cost(costs, row_bytes);
        // Sweep: each worker updates its rows concurrently.
        let sweep = rows_per * n as u64 * 2 * CYCLES_PER_FLOP;
        total += scan + arbitration + notify + broadcast + sweep;
    }
    total
}

/// Gauss-Jordan speedup (sequential / parallel) — one Figure 7 point.
pub fn gj_speedup(costs: &CostModel, n: usize, procs: usize) -> f64 {
    gj_sequential_cycles(n) as f64 / gj_parallel_cycles(costs, n, procs) as f64
}

/// Flops per SOR grid-point update (5-point stencil + relaxation).
pub const SOR_FLOPS_PER_POINT: u64 = 6;

/// One SOR iteration on an `grid × grid` problem with `n × n` processes,
/// in cycles: subgrid sweep + four boundary exchanges + convergence
/// reporting to the monitor.
pub fn sor_iteration_cycles(costs: &CostModel, grid: usize, n: usize) -> u64 {
    assert!(n >= 1);
    let sub = (grid as u64).div_ceil(n as u64);
    let compute = sub * sub * SOR_FLOPS_PER_POINT * CYCLES_PER_FLOP;
    let edge_bytes = sub as usize * ELEM_BYTES;
    let exchanges = if n == 1 {
        0
    } else {
        // Up to four neighbours; interior processes pay all four on the
        // critical path.
        4 * (send_cost(costs, edge_bytes) + recv_cost(costs, edge_bytes))
    };
    // Convergence: status to the monitor (FCFS), monitor's verdict
    // broadcast back; the monitor drains n² statuses serially but off the
    // worker critical path except the final hand-shake — charge one
    // round trip plus the serial drain amortized across workers.
    let convergence = if n == 1 {
        0
    } else {
        let status = 2 * ELEM_BYTES;
        send_cost(costs, status)
            + recv_cost(costs, status)
            + (n as u64 * n as u64) * recv_cost(costs, status) / (n as u64 * n as u64)
    };
    compute + exchanges + convergence
}

/// Per-iteration speedup relative to the 4-process (2×2) solver — one
/// Figure 8 point ("all speedups are shown relative to the smallest
/// parallel solver: 4 processes").
pub fn sor_per_iter_speedup(costs: &CostModel, grid: usize, n: usize) -> f64 {
    sor_iteration_cycles(costs, grid, 2) as f64 / sor_iteration_cycles(costs, grid, n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;

    fn costs() -> CostModel {
        CostModel::calibrated(&MachineConfig::balance21000())
    }

    #[test]
    fn gj_real_speedup_is_achievable() {
        // "The most important conclusion to be drawn from Figure 7 is that
        // real speedups can be obtained in the MPF environment."
        let c = costs();
        let s = gj_speedup(&c, 96, 8);
        assert!(
            s > 2.0,
            "96×96 on 8 procs should show real speedup, got {s:.2}"
        );
    }

    #[test]
    fn gj_speedup_grows_with_matrix_size() {
        let c = costs();
        for p in [4usize, 8, 16] {
            let s32 = gj_speedup(&c, 32, p);
            let s96 = gj_speedup(&c, 96, p);
            assert!(s96 > s32, "P={p}: s32={s32:.2} s96={s96:.2}");
        }
    }

    #[test]
    fn gj_excessive_parallelism_declines_for_small_matrices() {
        let c = costs();
        let s4 = gj_speedup(&c, 32, 4);
        let s16 = gj_speedup(&c, 32, 16);
        assert!(
            s16 < s4,
            "32×32 at 16 procs should decline: s4={s4:.2} s16={s16:.2}"
        );
    }

    #[test]
    fn gj_speedup_below_linear() {
        let c = costs();
        for (n, p) in [(32usize, 4usize), (64, 8), (96, 16)] {
            let s = gj_speedup(&c, n, p);
            assert!(s < p as f64, "speedup {s:.2} exceeds {p} processors");
        }
    }

    #[test]
    fn sor_large_grids_scale_small_grids_do_not() {
        let c = costs();
        // 65×65: positive scaling 2×2 → 4×4.
        let s65 = sor_per_iter_speedup(&c, 65, 4);
        assert!(s65 > 1.5, "65×65 at 4×4 should scale, got {s65:.2}");
        // 9×9: communication swamps the 2-3 point subgrids.
        let s9 = sor_per_iter_speedup(&c, 9, 4);
        assert!(s9 < s65, "9×9 must scale worse than 65×65");
        assert!(
            s9 < 1.6,
            "9×9 at 4×4 should be communication bound, got {s9:.2}"
        );
    }

    #[test]
    fn sor_baseline_is_identity() {
        let c = costs();
        for grid in [9usize, 17, 33, 65] {
            assert!((sor_per_iter_speedup(&c, grid, 2) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn sor_one_process_pays_no_communication() {
        let c = costs();
        let t1 = sor_iteration_cycles(&c, 33, 1);
        let compute = 33u64 * 33 * SOR_FLOPS_PER_POINT * CYCLES_PER_FLOP;
        assert_eq!(t1, compute);
    }

    #[test]
    fn models_are_deterministic() {
        let c = costs();
        assert_eq!(gj_parallel_cycles(&c, 48, 6), gj_parallel_cycles(&c, 48, 6));
    }
}
