//! Trace replay: re-price a recorded MPF run on the Balance 21000 model.
//!
//! `mpf-core`'s tracer (see `mpf::trace`) records what a native program
//! *did* — which process sent/received how many bytes on which
//! conversation, and how much time passed between its MPF calls.  This
//! module replays such a schedule on the simulated machine: communication
//! is re-priced by the calibrated cost model, and the gaps between a
//! process's operations become `Compute` phases (scaled from host
//! nanoseconds to Balance cycles by a caller-chosen factor).
//!
//! The result answers the paper's own motivating question (§1): *what
//! would this program cost on the other machine?* — a type-architecture
//! estimate backed by a measured schedule rather than a hand model.
//!
//! The format here is deliberately neutral (no dependency on `mpf-core`);
//! `mpf-bench` converts a `TraceLog` into a [`ReplaySchedule`].

use std::collections::BTreeMap;

use crate::costs::CostModel;
use crate::driver::{Driver, DriverOp, OpResult, RecvKind};
use crate::engine::{Engine, EngineReport};
use crate::machine::MachineConfig;

/// One recorded operation of one process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOp {
    /// Local computation for this many simulated cycles.
    Compute(u64),
    /// Send `len` bytes on conversation `lnvc`.
    Send {
        /// Conversation index (dense, per schedule).
        lnvc: usize,
        /// Payload bytes.
        len: usize,
    },
    /// Blocking FCFS receive on `lnvc`.
    RecvFcfs {
        /// Conversation index.
        lnvc: usize,
    },
    /// Blocking broadcast receive on `lnvc` (cursor allocated at build).
    RecvBroadcast {
        /// Conversation index.
        lnvc: usize,
    },
}

/// A complete replayable run: per-process operation lists over a set of
/// conversations.
#[derive(Debug, Clone, Default)]
pub struct ReplaySchedule {
    /// Number of conversations referenced.
    pub lnvcs: usize,
    /// Per-process operation sequences (process = outer index).
    pub procs: Vec<Vec<ReplayOp>>,
}

impl ReplaySchedule {
    /// Builds a schedule from `(pid, at_ns, op)` triples, converting
    /// inter-op gaps within each process into `Compute` phases at
    /// `cycles_per_ns` (e.g. `0.01` maps one host microsecond to ten
    /// Balance cycles).  `pid`/`lnvc` values may be sparse; they are
    /// densified.
    pub fn from_timed_ops(timed: &[(u32, u64, ReplayOp)], cycles_per_ns: f64) -> Self {
        let mut pid_map: BTreeMap<u32, usize> = BTreeMap::new();
        let mut lnvc_map: BTreeMap<usize, usize> = BTreeMap::new();
        for (pid, _, op) in timed {
            let next = pid_map.len();
            pid_map.entry(*pid).or_insert(next);
            if let ReplayOp::Send { lnvc, .. }
            | ReplayOp::RecvFcfs { lnvc }
            | ReplayOp::RecvBroadcast { lnvc } = op
            {
                let next = lnvc_map.len();
                lnvc_map.entry(*lnvc).or_insert(next);
            }
        }
        let mut procs: Vec<Vec<ReplayOp>> = vec![Vec::new(); pid_map.len()];
        let mut last_at: Vec<Option<u64>> = vec![None; pid_map.len()];
        let remap = |op: ReplayOp| match op {
            ReplayOp::Send { lnvc, len } => ReplayOp::Send {
                lnvc: lnvc_map[&lnvc],
                len,
            },
            ReplayOp::RecvFcfs { lnvc } => ReplayOp::RecvFcfs {
                lnvc: lnvc_map[&lnvc],
            },
            ReplayOp::RecvBroadcast { lnvc } => ReplayOp::RecvBroadcast {
                lnvc: lnvc_map[&lnvc],
            },
            other => other,
        };
        for (pid, at, op) in timed {
            let p = pid_map[pid];
            if let Some(prev) = last_at[p] {
                let gap_cycles = ((at.saturating_sub(prev)) as f64 * cycles_per_ns) as u64;
                if gap_cycles > 0 {
                    procs[p].push(ReplayOp::Compute(gap_cycles));
                }
            }
            last_at[p] = Some(*at);
            procs[p].push(remap(*op));
        }
        Self {
            lnvcs: lnvc_map.len(),
            procs,
        }
    }

    /// Total sends across all processes.
    pub fn total_sends(&self) -> usize {
        self.procs
            .iter()
            .flatten()
            .filter(|op| matches!(op, ReplayOp::Send { .. }))
            .count()
    }
}

struct ReplayDriver {
    ops: std::vec::IntoIter<ReplayOp>,
    /// Broadcast cursor per conversation, assigned at engine setup.
    cursors: Vec<Option<usize>>,
}

impl Driver for ReplayDriver {
    fn next(&mut self, _last: OpResult) -> DriverOp {
        match self.ops.next() {
            None => DriverOp::Stop,
            Some(ReplayOp::Compute(c)) => DriverOp::Compute(c),
            Some(ReplayOp::Send { lnvc, len }) => DriverOp::Send { lnvc, len },
            Some(ReplayOp::RecvFcfs { lnvc }) => DriverOp::Recv {
                lnvc,
                kind: RecvKind::Fcfs,
            },
            Some(ReplayOp::RecvBroadcast { lnvc }) => DriverOp::Recv {
                lnvc,
                kind: RecvKind::Broadcast(
                    self.cursors[lnvc].expect("cursor registered for broadcast receiver"),
                ),
            },
        }
    }
}

/// Replays `schedule` on `machine` and returns the simulated report
/// (elapsed Balance cycles, throughput, bus utilization …).
pub fn replay(
    machine: &MachineConfig,
    costs: &CostModel,
    schedule: &ReplaySchedule,
) -> EngineReport {
    let mut engine = Engine::new(machine.clone(), costs.clone(), schedule.procs.len() as u32);
    let lnvcs: Vec<usize> = (0..schedule.lnvcs).map(|_| engine.add_lnvc()).collect();
    for ops in &schedule.procs {
        // Register one broadcast cursor per conversation this process
        // broadcast-receives on.
        let mut cursors: Vec<Option<usize>> = vec![None; schedule.lnvcs];
        for op in ops {
            if let ReplayOp::RecvBroadcast { lnvc } = op {
                if cursors[*lnvc].is_none() {
                    cursors[*lnvc] = Some(engine.add_broadcast_receiver(lnvcs[*lnvc]));
                }
            }
        }
        engine.add_proc(Box::new(ReplayDriver {
            ops: ops.clone().into_iter(),
            cursors,
        }));
    }
    engine.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineConfig, CostModel) {
        let m = MachineConfig::balance21000();
        let c = CostModel::calibrated(&m);
        (m, c)
    }

    #[test]
    fn schedule_from_timed_ops_inserts_compute_gaps() {
        let timed = vec![
            (3u32, 0u64, ReplayOp::Send { lnvc: 9, len: 64 }),
            (3, 10_000, ReplayOp::Send { lnvc: 9, len: 64 }),
            (7, 0, ReplayOp::RecvFcfs { lnvc: 9 }),
            (7, 500, ReplayOp::RecvFcfs { lnvc: 9 }),
        ];
        let s = ReplaySchedule::from_timed_ops(&timed, 0.01);
        assert_eq!(s.lnvcs, 1, "lnvc ids densified");
        assert_eq!(s.procs.len(), 2);
        // Sender: Send, Compute(100), Send.
        assert!(matches!(s.procs[0][1], ReplayOp::Compute(100)));
        assert_eq!(s.total_sends(), 2);
    }

    #[test]
    fn replay_delivers_the_recorded_traffic() {
        let (m, c) = setup();
        let timed: Vec<(u32, u64, ReplayOp)> = (0..20u64)
            .map(|i| (1u32, i * 1_000, ReplayOp::Send { lnvc: 0, len: 128 }))
            .chain((0..20u64).map(|i| (2u32, i * 1_000, ReplayOp::RecvFcfs { lnvc: 0 })))
            .collect();
        let s = ReplaySchedule::from_timed_ops(&timed, 0.0);
        let r = replay(&m, &c, &s);
        assert_eq!(r.msgs_sent, 20);
        assert_eq!(r.msgs_received, 20);
        assert_eq!(r.bytes_received, 20 * 128);
        assert!(r.elapsed_cycles > 0);
    }

    #[test]
    fn replay_broadcast_registers_cursors() {
        let (m, c) = setup();
        let timed = vec![
            (1u32, 0u64, ReplayOp::Send { lnvc: 0, len: 32 }),
            (2, 0, ReplayOp::RecvBroadcast { lnvc: 0 }),
            (3, 0, ReplayOp::RecvBroadcast { lnvc: 0 }),
        ];
        let s = ReplaySchedule::from_timed_ops(&timed, 0.0);
        let r = replay(&m, &c, &s);
        // Both broadcast receivers must be fed… but the send may precede
        // their registration in wall-clock; cursors are registered before
        // the run, so both see the message.
        assert_eq!(r.msgs_received, 2);
    }

    #[test]
    fn faster_host_gaps_scale_down() {
        let timed = vec![
            (1u32, 0u64, ReplayOp::Send { lnvc: 0, len: 8 }),
            (1, 1_000_000, ReplayOp::Send { lnvc: 0, len: 8 }),
        ];
        let slow = ReplaySchedule::from_timed_ops(&timed, 1.0);
        let fast = ReplaySchedule::from_timed_ops(&timed, 0.001);
        let big = match slow.procs[0][1] {
            ReplayOp::Compute(c) => c,
            _ => panic!(),
        };
        let small = match fast.procs[0][1] {
            ReplayOp::Compute(c) => c,
            _ => panic!(),
        };
        assert!(big > small);
    }
}
