//! Cross-process wait/notify on a shared 32-bit word.
//!
//! The multi-process backend cannot park with `std::thread` primitives —
//! the waiter and the notifier live in different address spaces, sharing
//! only the mapped region.  A futex is exactly that: the kernel keys
//! sleepers by the *physical* page behind a `u32`, so any process that
//! maps the region can wake any other.  On non-Linux hosts these degrade
//! to bounded yield-sleeps (the classic spin/yield fallback), which keeps
//! the same correctness contract: [`futex_wait`] may always return
//! spuriously and callers re-check their predicate.

use std::sync::atomic::AtomicU32;
use std::time::Duration;

use crate::sys;

/// Why [`futex_wait`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitOutcome {
    /// Woken by a notifier (or spuriously) — re-check the predicate.
    Woken,
    /// The word no longer held the expected value at sleep time.
    Stale,
    /// The timeout elapsed.
    TimedOut,
}

/// Sleeps while `*word == expected`, at most `timeout` (forever if
/// `None`).  Safe against lost wakeups: the expected-value check and the
/// sleep are one atomic kernel operation.
pub fn futex_wait(word: &AtomicU32, expected: u32, timeout: Option<Duration>) -> WaitOutcome {
    let ts = timeout.map(|t| sys::Timespec {
        tv_sec: t.as_secs() as i64,
        tv_nsec: t.subsec_nanos() as i64,
    });
    match sys::futex_wait_raw(word.as_ptr(), expected, ts.as_ref()) {
        Ok(()) => WaitOutcome::Woken,
        Err(e) if e == sys::EAGAIN => WaitOutcome::Stale,
        Err(e) if e == sys::ETIMEDOUT => WaitOutcome::TimedOut,
        // EINTR and anything unexpected: treat as spurious wake.
        Err(_) => WaitOutcome::Woken,
    }
}

/// Wakes at most one waiter sleeping on `word`.  Returns how many woke.
pub fn futex_wake_one(word: &AtomicU32) -> u32 {
    sys::futex_wake_raw(word.as_ptr(), 1)
}

/// Wakes every waiter sleeping on `word`.  Returns how many woke.
pub fn futex_wake_all(word: &AtomicU32) -> u32 {
    sys::futex_wake_raw(word.as_ptr(), u32::MAX)
}

/// `true` unless the kernel positively reports the process gone
/// (`ESRCH`).  The liveness primitive behind dead-peer detection.
pub fn process_alive(os_pid: u32) -> bool {
    sys::process_alive(os_pid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;
    use std::sync::Arc;

    #[test]
    fn stale_value_returns_immediately() {
        let word = AtomicU32::new(7);
        let outcome = futex_wait(&word, 6, None);
        // Non-Linux fallback reports Woken; both are immediate returns.
        assert!(matches!(outcome, WaitOutcome::Stale | WaitOutcome::Woken));
    }

    #[test]
    fn timeout_elapses() {
        let word = AtomicU32::new(1);
        let start = std::time::Instant::now();
        let outcome = futex_wait(&word, 1, Some(Duration::from_millis(20)));
        assert!(matches!(
            outcome,
            WaitOutcome::TimedOut | WaitOutcome::Woken
        ));
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn wake_releases_waiter() {
        let word = Arc::new(AtomicU32::new(0));
        let waiter = {
            let word = Arc::clone(&word);
            std::thread::spawn(move || {
                while word.load(Ordering::Acquire) == 0 {
                    futex_wait(&word, 0, Some(Duration::from_millis(50)));
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        word.store(1, Ordering::Release);
        futex_wake_all(&word);
        waiter.join().unwrap();
    }
}
