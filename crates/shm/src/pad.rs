//! Cache-line padding to prevent false sharing between hot shared counters.
//!
//! The Balance 21000 had 8 KB write-through caches; false sharing on a
//! write-through bus turns every neighbour's store into a bus transaction.
//! Modern machines invalidate instead, but the remedy is the same: keep
//! independently-written hot words on separate lines.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (two 64-byte lines, covering adjacent
/// line prefetchers).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

// Compile-time padding contract: a `CachePadded<T>` must always occupy
// (and be aligned to) at least two 64-byte lines, whatever `T` is, so a
// refactor can never silently reintroduce false sharing between two
// adjacent padded cells.
const _: () = assert!(std::mem::align_of::<CachePadded<u8>>() == 128);
const _: () = assert!(std::mem::size_of::<CachePadded<u8>>() == 128);
const _: () = assert!(std::mem::size_of::<CachePadded<[u64; 16]>>() == 128);
const _: () = assert!(std::mem::size_of::<CachePadded<[u64; 17]>>() == 256);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn from_and_default() {
        let c: CachePadded<u32> = 7u32.into();
        assert_eq!(*c, 7);
        let d: CachePadded<u32> = CachePadded::default();
        assert_eq!(*d, 0);
    }
}
