//! Wait/notify for blocking `message_receive()`.
//!
//! The paper's `message_receive()` "is blocking; it returns only after a
//! message has been received."  On the Balance the natural realization was
//! busy-waiting; a modern port parks the thread.  [`WaitQueue`] offers both
//! (plus a yield middle ground) behind one sequence-count protocol, selected
//! at facility-init time (DESIGN.md ablation A3).
//!
//! # Protocol
//!
//! A waiter, *while still holding the lock under which it observed "no
//! message"*, reads a ticket with [`WaitQueue::ticket`], drops the lock,
//! and calls [`WaitQueue::wait`].  A notifier makes its state change under
//! the same lock and then calls [`WaitQueue::notify_all`], which bumps the
//! sequence before waking.  `wait` returns as soon as the sequence differs
//! from the ticket, so a notification between ticket-read and wait is never
//! lost.  Spurious returns are allowed; callers re-check their predicate.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use crate::backoff::Backoff;
use crate::futex;

/// How a blocked receiver waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WaitStrategy {
    /// Busy-wait with exponential backoff — the 1987 idiom.
    Spin,
    /// Spin briefly, then `yield_now` — tolerant of oversubscription
    /// (the paper runs 20 processes plus an arbiter on 20 CPUs).
    #[default]
    Yield,
    /// Park the OS thread until notified.
    Park,
    /// Sleep in the kernel on the sequence word itself.  The only
    /// strategy that can block across address spaces; the multi-process
    /// backend always uses it (with a spin/yield fallback on hosts
    /// without futexes).
    Futex,
}

/// A notify-all wait queue with a monotonically increasing sequence.
#[derive(Debug)]
pub struct WaitQueue {
    seq: AtomicU32,
    /// Number of waiters currently inside a futex sleep; lets
    /// `notify_all` skip the wake syscall when nobody kernel-sleeps.
    futex_waiters: AtomicU32,
    parked: Mutex<Vec<Thread>>,
}

impl Default for WaitQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl WaitQueue {
    /// New queue with sequence 0 and no waiters.
    pub fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
            futex_waiters: AtomicU32::new(0),
            parked: Mutex::new(Vec::new()),
        }
    }

    /// Snapshot of the sequence.  Must be taken before releasing the lock
    /// that protects the waited-on predicate.
    #[inline]
    pub fn ticket(&self) -> u32 {
        self.seq.load(Ordering::Acquire)
    }

    /// Blocks until the sequence moves past `ticket` (or spuriously).
    pub fn wait(&self, ticket: u32, strategy: WaitStrategy) {
        self.wait_deadline(ticket, strategy, None);
    }

    /// Blocks until the sequence moves past `ticket`, the deadline
    /// passes, or spuriously.  Returns `true` if the sequence moved,
    /// `false` on deadline expiry with the sequence unmoved.  A hooked
    /// wait (schedule exploration) ignores the deadline — the harness
    /// runs no wall clock, and scenarios built for determinism pass
    /// `None`.
    pub fn wait_deadline(
        &self,
        ticket: u32,
        strategy: WaitStrategy,
        deadline: Option<Instant>,
    ) -> bool {
        if crate::hooks::wait(self as *const Self as usize, &mut || {
            self.seq.load(Ordering::Acquire) != ticket
        }) {
            return true;
        }
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        // Remaining time, clamped to `cap` — the recurring bound for the
        // strategies that sleep in bounded naps.
        let nap = |cap: Duration| match deadline {
            None => Some(cap),
            Some(d) => Some(d.saturating_duration_since(Instant::now()).min(cap)),
        };
        match strategy {
            WaitStrategy::Spin => {
                let mut backoff = Backoff::new();
                while self.seq.load(Ordering::Acquire) == ticket {
                    if expired() {
                        return false;
                    }
                    backoff.spin();
                }
            }
            WaitStrategy::Yield => {
                let mut backoff = Backoff::new();
                while self.seq.load(Ordering::Acquire) == ticket {
                    if expired() {
                        return false;
                    }
                    backoff.snooze();
                }
            }
            WaitStrategy::Park => {
                loop {
                    if self.seq.load(Ordering::Acquire) != ticket {
                        return true;
                    }
                    if expired() {
                        return false;
                    }
                    self.parked
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(thread::current());
                    if self.seq.load(Ordering::Acquire) != ticket {
                        // Notification raced with registration; our stale
                        // handle will at worst receive a harmless unpark.
                        return true;
                    }
                    // The timeout is a belt-and-braces bound, not the wake
                    // mechanism; notify_all unparks promptly.
                    thread::park_timeout(nap(Duration::from_millis(2)).unwrap());
                }
            }
            WaitStrategy::Futex => {
                self.futex_waiters.fetch_add(1, Ordering::SeqCst);
                while self.seq.load(Ordering::Acquire) == ticket {
                    if expired() {
                        self.futex_waiters.fetch_sub(1, Ordering::SeqCst);
                        return false;
                    }
                    // The futex atomically re-checks `seq == ticket` at
                    // sleep time, so a notify between our check and the
                    // syscall is never lost; the timeout is only a
                    // liveness bound on fallback hosts (and the deadline
                    // clamp).
                    futex::futex_wait(&self.seq, ticket, nap(Duration::from_millis(50)));
                }
                self.futex_waiters.fetch_sub(1, Ordering::SeqCst);
            }
        }
        true
    }

    /// Bumps the sequence and wakes every parked waiter.  Call after the
    /// state change is visible under the predicate's lock.
    pub fn notify_all(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        // An injected notify-drop swallows the wake syscalls but never
        // the sequence bump: waiters recover via their bounded naps, so
        // the fault delays delivery without ever losing it.
        if !crate::faultplane::inject(crate::faultplane::FaultSite::NotifyDrop) {
            if self.futex_waiters.load(Ordering::SeqCst) != 0 {
                futex::futex_wake_all(&self.seq);
            }
            let mut parked = self.parked.lock().unwrap_or_else(|e| e.into_inner());
            for t in parked.drain(..) {
                t.unpark();
            }
        }
        crate::hooks::notify(self as *const Self as usize);
    }

    /// Blocks until *any* of `entries`' sequences moves past its ticket
    /// (or spuriously) — the multiplexed wait behind
    /// `Mpf::wait_any`.  Each `(queue, ticket)` pair must have had its
    /// ticket taken before the caller last checked its predicate, exactly
    /// as for [`WaitQueue::wait`].  Returns immediately for an empty
    /// slice (there is nothing to wait on; callers reject that case
    /// before blocking forever).
    pub fn wait_many(entries: &[(&WaitQueue, u32)], strategy: WaitStrategy) {
        Self::wait_many_deadline(entries, strategy, None);
    }

    /// [`WaitQueue::wait_many`] with a deadline.  Returns `true` if some
    /// sequence moved (or spuriously), `false` on expiry with every
    /// sequence unmoved.  Hooked waits ignore the deadline, as for
    /// [`WaitQueue::wait_deadline`].
    pub fn wait_many_deadline(
        entries: &[(&WaitQueue, u32)],
        strategy: WaitStrategy,
        deadline: Option<Instant>,
    ) -> bool {
        if entries.is_empty() {
            return true;
        }
        let moved = || {
            entries
                .iter()
                .any(|&(q, t)| q.seq.load(Ordering::Acquire) != t)
        };
        let resources: Vec<usize> = entries
            .iter()
            .map(|&(q, _)| q as *const WaitQueue as usize)
            .collect();
        if crate::hooks::wait_multi(&resources, &mut || moved()) {
            return true;
        }
        let expired = || deadline.is_some_and(|d| Instant::now() >= d);
        let nap = |cap: Duration| match deadline {
            None => cap,
            Some(d) => d.saturating_duration_since(Instant::now()).min(cap),
        };
        match strategy {
            WaitStrategy::Spin => {
                let mut backoff = Backoff::new();
                while !moved() {
                    if expired() {
                        return false;
                    }
                    backoff.spin();
                }
            }
            WaitStrategy::Yield => {
                let mut backoff = Backoff::new();
                while !moved() {
                    if expired() {
                        return false;
                    }
                    backoff.snooze();
                }
            }
            WaitStrategy::Park => {
                loop {
                    if moved() {
                        return true;
                    }
                    if expired() {
                        return false;
                    }
                    // Register with every queue; whichever notifies first
                    // unparks us, and the stale registrations at worst
                    // deliver a harmless extra unpark later.
                    for &(q, _) in entries {
                        q.parked
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(thread::current());
                    }
                    if moved() {
                        return true;
                    }
                    thread::park_timeout(nap(Duration::from_millis(2)));
                }
            }
            WaitStrategy::Futex => {
                // A futex word can only sleep on one address; sleep on the
                // first queue with a short bound so notifications on the
                // others are observed within the timeout.  Queue-0 wakes
                // are immediate, like the single-queue path.
                let (q0, t0) = entries[0];
                while !moved() {
                    if expired() {
                        return false;
                    }
                    q0.futex_waiters.fetch_add(1, Ordering::SeqCst);
                    futex::futex_wait(&q0.seq, t0, Some(nap(Duration::from_millis(2))));
                    q0.futex_waiters.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        true
    }
}

/// The in-region counterpart of [`WaitQueue`]: the same sequence-count
/// protocol, reduced to a single shared `u32` that waiters futex-sleep
/// on.  `#[repr(C)]`, position-independent, valid for any bit pattern —
/// safe to place at a fixed offset inside a mapped region and use from
/// any number of processes.
#[derive(Debug, Default)]
#[repr(C)]
pub struct FutexSeq {
    seq: AtomicU32,
}

impl FutexSeq {
    /// New queue with sequence 0.
    pub const fn new() -> Self {
        Self {
            seq: AtomicU32::new(0),
        }
    }

    /// Snapshot of the sequence.  Must be taken before releasing the lock
    /// that protects the waited-on predicate.
    #[inline]
    pub fn ticket(&self) -> u32 {
        self.seq.load(Ordering::Acquire)
    }

    /// Blocks until the sequence moves past `ticket`, the timeout
    /// elapses, or spuriously.  Returns `true` if the sequence moved.
    /// Callers re-check their predicate either way; bounded timeouts are
    /// how the multi-process backend interleaves dead-peer sweeps with
    /// blocking receives.
    pub fn wait(&self, ticket: u32, timeout: Option<Duration>) -> bool {
        if self.seq.load(Ordering::Acquire) != ticket {
            return true;
        }
        // A hooked wait blocks until the sequence moves (the harness runs
        // every peer in-process, so timeout-driven dead-peer sweeps are
        // moot there).
        if crate::hooks::wait(self as *const Self as usize, &mut || {
            self.seq.load(Ordering::Acquire) != ticket
        }) {
            return true;
        }
        futex::futex_wait(&self.seq, ticket, timeout);
        self.seq.load(Ordering::Acquire) != ticket
    }

    /// Bumps the sequence and wakes every sleeping waiter, in every
    /// attached process.
    pub fn notify_all(&self) {
        self.seq.fetch_add(1, Ordering::Release);
        // See `WaitQueue::notify_all`: a dropped wake is recovered by
        // the bounded futex naps every in-region waiter already uses.
        if !crate::faultplane::inject(crate::faultplane::FaultSite::NotifyDrop) {
            futex::futex_wake_all(&self.seq);
        }
        crate::hooks::notify(self as *const Self as usize);
    }
}

// Compile-time layout contract: `FutexSeq` sits inside in-region structs
// whose byte layout is fixed by `mpf-core`'s layout module.
const _: () = assert!(std::mem::size_of::<FutexSeq>() == 4);
const _: () = assert!(std::mem::align_of::<FutexSeq>() == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn wakeup_smoke(strategy: WaitStrategy) {
        let q = Arc::new(WaitQueue::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let hits = Arc::clone(&hits);
            handles.push(thread::spawn(move || {
                let t = q.ticket();
                q.wait(t, strategy);
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // Give waiters a moment to block, then notify.
        thread::sleep(Duration::from_millis(20));
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn spin_wakeup() {
        wakeup_smoke(WaitStrategy::Spin);
    }

    #[test]
    fn yield_wakeup() {
        wakeup_smoke(WaitStrategy::Yield);
    }

    #[test]
    fn park_wakeup() {
        wakeup_smoke(WaitStrategy::Park);
    }

    #[test]
    fn futex_wakeup() {
        wakeup_smoke(WaitStrategy::Futex);
    }

    #[test]
    fn futex_seq_roundtrip() {
        let q = Arc::new(FutexSeq::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            let hits = Arc::clone(&hits);
            handles.push(thread::spawn(move || {
                let t = q.ticket();
                while !q.wait(t, Some(Duration::from_millis(50))) {}
                hits.fetch_add(1, Ordering::SeqCst);
            }));
        }
        thread::sleep(Duration::from_millis(20));
        q.notify_all();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn futex_seq_notify_before_wait_not_lost() {
        let q = FutexSeq::new();
        let t = q.ticket();
        q.notify_all();
        assert!(q.wait(t, None), "sequence already moved");
    }

    fn wait_many_smoke(strategy: WaitStrategy) {
        let a = Arc::new(WaitQueue::new());
        let b = Arc::new(WaitQueue::new());
        let woken_by = {
            let a = Arc::clone(&a);
            let b = Arc::clone(&b);
            thread::spawn(move || {
                let entries = [(&*a, a.ticket()), (&*b, b.ticket())];
                WaitQueue::wait_many(&entries, strategy);
                // Exactly one queue was notified; report which moved.
                usize::from(entries[0].0.ticket() == entries[0].1)
            })
        };
        thread::sleep(Duration::from_millis(20));
        b.notify_all();
        assert_eq!(woken_by.join().unwrap(), 1, "queue b moved, not a");
    }

    #[test]
    fn wait_many_wakes_on_second_queue_park() {
        wait_many_smoke(WaitStrategy::Park);
    }

    #[test]
    fn wait_many_wakes_on_second_queue_futex() {
        wait_many_smoke(WaitStrategy::Futex);
    }

    #[test]
    fn wait_many_wakes_on_second_queue_yield() {
        wait_many_smoke(WaitStrategy::Yield);
    }

    #[test]
    fn wait_many_empty_returns_immediately() {
        WaitQueue::wait_many(&[], WaitStrategy::Park);
    }

    #[test]
    fn wait_many_returns_immediately_if_already_notified() {
        let q = WaitQueue::new();
        let t = q.ticket();
        q.notify_all();
        WaitQueue::wait_many(&[(&q, t)], WaitStrategy::Park);
    }

    #[test]
    fn notify_before_wait_is_not_lost() {
        let q = WaitQueue::new();
        let t = q.ticket();
        q.notify_all();
        // Must return immediately: sequence already moved past the ticket.
        q.wait(t, WaitStrategy::Park);
    }

    #[test]
    fn ticket_reflects_notifications() {
        let q = WaitQueue::new();
        let t0 = q.ticket();
        q.notify_all();
        q.notify_all();
        assert_ne!(q.ticket(), t0);
    }

    #[test]
    fn wait_deadline_expires_without_notify() {
        for strategy in [
            WaitStrategy::Spin,
            WaitStrategy::Yield,
            WaitStrategy::Park,
            WaitStrategy::Futex,
        ] {
            let q = WaitQueue::new();
            let t = q.ticket();
            let dl = Instant::now() + Duration::from_millis(15);
            assert!(!q.wait_deadline(t, strategy, Some(dl)), "{strategy:?}");
            assert!(Instant::now() >= dl, "{strategy:?} returned early");
        }
    }

    #[test]
    fn wait_deadline_notified_returns_true() {
        let q = Arc::new(WaitQueue::new());
        let t = q.ticket();
        let notifier = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                thread::sleep(Duration::from_millis(10));
                q.notify_all();
            })
        };
        let dl = Instant::now() + Duration::from_secs(5);
        assert!(q.wait_deadline(t, WaitStrategy::Futex, Some(dl)));
        notifier.join().unwrap();
    }

    #[test]
    fn wait_many_deadline_expires() {
        let a = WaitQueue::new();
        let b = WaitQueue::new();
        let entries = [(&a, a.ticket()), (&b, b.ticket())];
        let dl = Instant::now() + Duration::from_millis(15);
        assert!(!WaitQueue::wait_many_deadline(
            &entries,
            WaitStrategy::Park,
            Some(dl)
        ));
        assert!(Instant::now() >= dl);
    }

    #[test]
    fn producer_consumer_handshake() {
        let q = Arc::new(WaitQueue::new());
        let value = Arc::new(AtomicUsize::new(0));
        let consumer = {
            let q = Arc::clone(&q);
            let value = Arc::clone(&value);
            thread::spawn(move || loop {
                let t = q.ticket();
                if value.load(Ordering::Acquire) == 42 {
                    return;
                }
                q.wait(t, WaitStrategy::Park);
            })
        };
        thread::sleep(Duration::from_millis(10));
        value.store(42, Ordering::Release);
        q.notify_all();
        consumer.join().unwrap();
    }
}
