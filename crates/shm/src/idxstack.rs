//! Lock-free free list over slot indices (Treiber stack with an ABA tag).
//!
//! The paper's §3.1: "message blocks … are linked into free lists when not
//! in use."  MPF protected those lists with its global lock; we make them
//! lock-free so allocation never serializes senders — the same observation
//! the paper makes in §5 about removing locking where the protocol allows.
//!
//! Links are stored out-of-band in a parallel `next` array indexed by slot,
//! so the payload slots themselves never carry list pointers.  The head
//! packs a 32-bit modification tag with the 32-bit top index to defeat ABA.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Sentinel "no slot" index.
pub const NIL: u32 = u32::MAX;

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    ((tag as u64) << 32) | idx as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// A lock-free stack of slot indices in `0..capacity`.
#[derive(Debug)]
pub struct IndexStack {
    head: AtomicU64,
    next: Box<[AtomicU32]>,
    len: AtomicU32,
}

impl IndexStack {
    /// Creates a stack over `capacity` slots.  If `full`, every index starts
    /// on the stack (the usual "everything free" initial state); otherwise
    /// the stack starts empty.
    pub fn new(capacity: u32, full: bool) -> Self {
        assert!(
            capacity < NIL,
            "capacity must leave room for the NIL sentinel"
        );
        let next: Box<[AtomicU32]> = (0..capacity)
            .map(|i| AtomicU32::new(if full && i + 1 < capacity { i + 1 } else { NIL }))
            .collect();
        let top = if full && capacity > 0 { 0 } else { NIL };
        Self {
            head: AtomicU64::new(pack(0, top)),
            next,
            len: AtomicU32::new(if full { capacity } else { 0 }),
        }
    }

    /// Total number of slots this stack can hold.
    pub fn capacity(&self) -> u32 {
        self.next.len() as u32
    }

    /// Approximate number of indices currently on the stack.
    pub fn len(&self) -> u32 {
        self.len.load(Ordering::Relaxed)
    }

    /// True if (approximately) no indices are available.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes `idx` onto the stack.
    ///
    /// # Panics
    /// If `idx` is out of range.  Pushing an index that is already on the
    /// stack is a logic error that corrupts the list; the typed pools in
    /// [`crate::pool`] guarantee each index is pushed at most once per pop.
    pub fn push(&self, idx: u32) {
        assert!((idx as usize) < self.next.len(), "index out of range");
        crate::hooks::yield_point(crate::hooks::SyncEvent::StackPush(
            self as *const Self as usize,
        ));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            self.next[idx as usize].store(top, Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), idx),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.len.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Err(actual) => head = actual,
            }
        }
    }

    /// Pops an index, or `None` if the stack is empty.
    pub fn pop(&self) -> Option<u32> {
        crate::hooks::yield_point(crate::hooks::SyncEvent::StackPop(
            self as *const Self as usize,
        ));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let (tag, top) = unpack(head);
            if top == NIL {
                return None;
            }
            let next = self.next[top as usize].load(Ordering::Relaxed);
            match self.head.compare_exchange_weak(
                head,
                pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    return Some(top);
                }
                Err(actual) => head = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::thread;

    #[test]
    fn full_stack_pops_every_index_once() {
        let s = IndexStack::new(100, true);
        let mut seen = HashSet::new();
        while let Some(i) = s.pop() {
            assert!(seen.insert(i), "duplicate index {i}");
        }
        assert_eq!(seen.len(), 100);
        assert!(s.is_empty());
    }

    #[test]
    fn empty_stack_pops_none() {
        let s = IndexStack::new(10, false);
        assert_eq!(s.pop(), None);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn push_pop_roundtrip() {
        let s = IndexStack::new(4, false);
        s.push(2);
        s.push(0);
        assert_eq!(s.pop(), Some(0));
        assert_eq!(s.pop(), Some(2));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn lifo_order_single_thread() {
        let s = IndexStack::new(8, false);
        for i in 0..8 {
            s.push(i);
        }
        for i in (0..8).rev() {
            assert_eq!(s.pop(), Some(i));
        }
    }

    #[test]
    #[should_panic(expected = "index out of range")]
    fn push_out_of_range_panics() {
        let s = IndexStack::new(4, false);
        s.push(4);
    }

    #[test]
    fn zero_capacity_is_fine() {
        let s = IndexStack::new(0, true);
        assert_eq!(s.pop(), None);
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    fn concurrent_alloc_free_conserves_indices() {
        const CAP: u32 = 256;
        const THREADS: usize = 8;
        const ITERS: usize = 10_000;
        let s = IndexStack::new(CAP, true);
        thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    let mut held = Vec::new();
                    for i in 0..ITERS {
                        if i % 3 != 2 {
                            if let Some(idx) = s.pop() {
                                held.push(idx);
                            }
                        } else if let Some(idx) = held.pop() {
                            s.push(idx);
                        }
                    }
                    for idx in held {
                        s.push(idx);
                    }
                });
            }
        });
        // All indices must be back, each exactly once.
        let mut seen = HashSet::new();
        while let Some(i) = s.pop() {
            assert!(seen.insert(i), "duplicate index {i} after concurrent run");
        }
        assert_eq!(seen.len(), CAP as usize, "lost indices");
    }

    #[test]
    fn concurrent_pushers_and_poppers_meet_in_the_middle() {
        let s = IndexStack::new(64, true);
        let drained: Vec<u32> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(drained.len(), 64);
        thread::scope(|scope| {
            let (a, b) = drained.split_at(32);
            let s = &s;
            scope.spawn(move || {
                for &i in a {
                    s.push(i);
                }
            });
            scope.spawn(move || {
                for &i in b {
                    s.push(i);
                }
            });
        });
        assert_eq!(s.len(), 64);
    }
}
