//! Per-process crash-persistent causal trace rings.
//!
//! The flight recorder ([`crate::telemetry::FlightRing`]) answers "what
//! were the last 64 things this process did"; the trace ring answers
//! "what happened to *this message*".  Each record carries the message's
//! 64-bit **trace id** (root id assigned at the first send of a causal
//! chain, inherited with an incremented hop count by every send that
//! follows a receive) and its global **stamp** (the region-wide send
//! serial, the message's logical identity), so an offline reader can
//! stitch per-process streams back into causal chains and check the
//! paper's §3 delivery semantics without any cooperation from the —
//! possibly dead — writers.
//!
//! Publication discipline is the flight ring's seqlock: the single writer
//! zeroes `seq`, fills the payload, then publishes `seq = pos + 1`.  A
//! reader (live `mpfstat --trace`, post-mortem `mpf-trace`) validates
//! `seq` before and after copying the payload and skips torn slots; a
//! writer SIGKILLed mid-append leaves `seq == 0` and loses exactly that
//! slot.  Rings are KB-sized (512 records × 48 B) because causal
//! reconstruction needs depth the 64-slot flight ring cannot give.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Records per trace ring.  512 × 48 B keeps the ring at ~24 KB per
/// process — deep enough to hold whole benchmark runs at default sampling.
pub const TRACE_RING_SLOTS: usize = 512;

/// Bytes per trace record (layout contract with [`TraceRecord`]).
pub const TRACE_RECORD_BYTES: usize = 48;

/// Bytes per trace ring: one 64-byte header plus the slot array.
pub const TRACE_RING_BYTES: usize = 64 + TRACE_RING_SLOTS * TRACE_RECORD_BYTES;

// -- event kinds -------------------------------------------------------

/// Message published on a conversation queue (`arg` = payload length,
/// `arg2` = `needs_fcfs << 16 | n_bcast` — the delivery obligations fixed
/// at send time, which the conformance checker audits against).
pub const TR_SEND: u32 = 1;
/// Message staged in a submission ring (`arg` = payload length); its
/// `TR_SEND` follows when the drain publishes it.
pub const TR_ENQUEUE: u32 = 2;
/// A blocked receiver woke with a delivery (`trace` = the chain that woke
/// it).
pub const TR_WAKEUP: u32 = 3;
/// FCFS delivery (`arg` = payload length).
pub const TR_RECV: u32 = 4;
/// BROADCAST delivery (`arg` = payload length).
pub const TR_RECV_B: u32 = 5;
/// Message descriptor and block chain returned to the pools (`arg` =
/// message index).
pub const TR_RECLAIM: u32 = 6;
/// Receiver joined (`arg` = protocol code) — population change marker for
/// the conformance checker.
pub const TR_OPEN_RECV: u32 = 7;
/// Receiver left (`arg` = protocol code).
pub const TR_CLOSE_RECV: u32 = 8;
/// Conversation poisoned by a peer death (`arg` = dead MPF pid).
pub const TR_POISON: u32 = 9;
/// Injected fault acted on by the fault plane (`arg` =
/// [`crate::faultplane::FaultSite::code`], `arg2` = magnitude of the
/// typed error status the fault surfaced as — nonzero for error-class
/// faults, which is the pairing `mpf-trace --check` audits).
pub const TR_FAULT: u32 = 10;

/// Human-readable name of a `TR_*` kind.
pub fn trace_event_name(kind: u32) -> &'static str {
    match kind {
        TR_SEND => "send",
        TR_ENQUEUE => "enqueue",
        TR_WAKEUP => "wakeup",
        TR_RECV => "recv",
        TR_RECV_B => "recv_bcast",
        TR_RECLAIM => "reclaim",
        TR_OPEN_RECV => "open_recv",
        TR_CLOSE_RECV => "close_recv",
        TR_POISON => "poison",
        TR_FAULT => "fault",
        _ => "unknown",
    }
}

/// One in-region trace record.  All-atomic so concurrent reads of a live
/// ring are defined behavior; the seqlock makes them consistent.
#[repr(C)]
#[derive(Debug)]
struct TraceRecord {
    /// Seqlock word: 0 = invalid/mid-write, else `position + 1`.
    seq: AtomicU64,
    /// Wall-clock nanoseconds ([`crate::clock::now_nanos`]).
    tstamp: AtomicU64,
    /// Trace id (0 = untraced); bit 63 is the sampling flag.
    trace: AtomicU64,
    /// Global message stamp (logical identity across processes).
    stamp: AtomicU64,
    /// Event argument (see the `TR_*` docs).
    arg: AtomicU32,
    /// Kind in the low 16 bits, hop count in the high 16.
    kind_hop: AtomicU32,
    /// LNVC index (`u32::MAX` when none).
    lnvc: AtomicU32,
    /// Second argument (`TR_SEND`: delivery obligations).
    arg2: AtomicU32,
}

impl Default for TraceRecord {
    fn default() -> Self {
        Self {
            seq: AtomicU64::new(0),
            tstamp: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            stamp: AtomicU64::new(0),
            arg: AtomicU32::new(0),
            kind_hop: AtomicU32::new(0),
            lnvc: AtomicU32::new(0),
            arg2: AtomicU32::new(0),
        }
    }
}

/// A validated record read out of a trace ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// 1-based logical position in the writer's event stream.
    pub seq: u64,
    /// Wall-clock nanoseconds at record time.
    pub tstamp: u64,
    /// Trace id (sampling bit already stripped; 0 = untraced).
    pub trace: u64,
    /// Global message stamp.
    pub stamp: u64,
    /// Event argument.
    pub arg: u32,
    /// Event kind (`TR_*`).
    pub kind: u32,
    /// Hop count within the causal chain (0 = root send).
    pub hop: u32,
    /// LNVC index (`u32::MAX` when none).
    pub lnvc: u32,
    /// Second event argument.
    pub arg2: u32,
}

/// Per-process single-writer causal trace ring (see module docs).
#[repr(C)]
#[derive(Debug)]
pub struct TraceRing {
    head: AtomicU64,
    /// Events not recorded because the chain fell outside the 1-in-N
    /// trace sample — occupancy math for `mpfstat --trace`.
    skipped: AtomicU64,
    writer_pid: AtomicU32,
    _pad: [u8; 44],
    slots: [TraceRecord; TRACE_RING_SLOTS],
}

impl Default for TraceRing {
    fn default() -> Self {
        Self {
            head: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            writer_pid: AtomicU32::new(0),
            _pad: [0; 44],
            slots: std::array::from_fn(|_| TraceRecord::default()),
        }
    }
}

impl TraceRing {
    /// Tags the ring with its writer's OS pid (for inspectors).
    pub fn set_writer_pid(&self, pid: u32) {
        self.writer_pid.store(pid, Ordering::Relaxed);
    }

    /// OS pid of the process that owned this ring (0 = never used).
    pub fn writer_pid(&self) -> u32 {
        self.writer_pid.load(Ordering::Relaxed)
    }

    /// Total records ever written; `head - TRACE_RING_SLOTS` of them
    /// (saturating) have been overwritten.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Events skipped by sampling.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Books one sampling skip.
    #[inline]
    pub fn note_skipped(&self) {
        self.skipped.fetch_add(1, Ordering::Relaxed);
    }

    /// Appends one record.  **Single-writer**: only the owning process may
    /// call this; wait-free.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    pub fn record_at(
        &self,
        tstamp: u64,
        trace: u64,
        stamp: u64,
        kind: u32,
        hop: u32,
        lnvc: u32,
        arg: u32,
        arg2: u32,
    ) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) % TRACE_RING_SLOTS];
        slot.seq.store(0, Ordering::Release);
        slot.tstamp.store(tstamp, Ordering::Relaxed);
        slot.trace.store(trace, Ordering::Relaxed);
        slot.stamp.store(stamp, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.kind_hop
            .store((kind & 0xffff) | (hop << 16), Ordering::Relaxed);
        slot.lnvc.store(lnvc, Ordering::Relaxed);
        slot.arg2.store(arg2, Ordering::Relaxed);
        slot.seq.store(h + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reads the surviving tail of the ring, oldest first, skipping torn
    /// or never-written slots.  Safe against a live writer (seqlock) and
    /// against a writer that died mid-append (`seq` stays 0).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(TRACE_RING_SLOTS as u64);
        let mut out = Vec::new();
        for pos in start..head {
            let slot = &self.slots[(pos as usize) % TRACE_RING_SLOTS];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != pos + 1 {
                continue; // torn, mid-write, or already overwritten
            }
            let kind_hop = slot.kind_hop.load(Ordering::Relaxed);
            let ev = TraceEvent {
                seq: seq1,
                tstamp: slot.tstamp.load(Ordering::Relaxed),
                trace: slot.trace.load(Ordering::Relaxed) & !(1u64 << 63),
                stamp: slot.stamp.load(Ordering::Relaxed),
                arg: slot.arg.load(Ordering::Relaxed),
                kind: kind_hop & 0xffff,
                hop: kind_hop >> 16,
                lnvc: slot.lnvc.load(Ordering::Relaxed),
                arg2: slot.arg2.load(Ordering::Relaxed),
            };
            let seq2 = slot.seq.load(Ordering::Acquire);
            if seq2 == seq1 {
                out.push(ev);
            }
        }
        out
    }
}

const _: () = {
    assert!(std::mem::size_of::<TraceRecord>() == TRACE_RECORD_BYTES);
    assert!(std::mem::size_of::<TraceRing>() == TRACE_RING_BYTES);
    assert!(TRACE_RING_BYTES.is_multiple_of(64));
    assert!(std::mem::align_of::<TraceRing>() == 8);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_round_trip() {
        let ring = TraceRing::default();
        ring.record_at(100, 7, 42, TR_SEND, 3, 5, 2048, (1 << 16) | 2);
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 1);
        let e = evs[0];
        assert_eq!(
            (e.tstamp, e.trace, e.stamp, e.kind, e.hop, e.lnvc, e.arg, e.arg2),
            (100, 7, 42, TR_SEND, 3, 5, 2048, (1 << 16) | 2)
        );
    }

    #[test]
    fn sampling_bit_is_stripped_on_read() {
        let ring = TraceRing::default();
        ring.record_at(1, (1 << 63) | 9, 0, TR_RECV, 0, 0, 0, 0);
        assert_eq!(ring.snapshot()[0].trace, 9);
    }

    #[test]
    fn wraparound_keeps_latest_records() {
        let ring = TraceRing::default();
        let total = TRACE_RING_SLOTS as u64 + 10;
        for i in 0..total {
            ring.record_at(i, i, i, TR_SEND, 0, 0, 0, 0);
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), TRACE_RING_SLOTS);
        assert_eq!(evs.first().unwrap().stamp, 10);
        assert_eq!(evs.last().unwrap().stamp, total - 1);
    }

    #[test]
    fn torn_slot_is_skipped() {
        let ring = TraceRing::default();
        ring.record_at(1, 1, 1, TR_SEND, 0, 0, 0, 0);
        ring.record_at(2, 2, 2, TR_RECV, 0, 0, 0, 0);
        // Simulate a writer that died mid-append on slot 1.
        ring.slots[1].seq.store(0, Ordering::Release);
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].stamp, 1);
    }

    #[test]
    fn skip_counter_accumulates() {
        let ring = TraceRing::default();
        ring.note_skipped();
        ring.note_skipped();
        assert_eq!(ring.skipped(), 2);
        assert_eq!(ring.head(), 0);
    }
}
