//! Typed slot pools backed by a lock-free free list.
//!
//! All MPF descriptors (message headers, LNVC descriptors, send/receive
//! connection descriptors) live in fixed arrays inside the shared region,
//! sized at `init()` time from `max_lnvcs`/`max_processes` exactly as the
//! paper's §2 describes ("used to estimate the amount of shared memory
//! necessary").  A slot is referenced by its `u32` index — never by
//! pointer — keeping every structure position independent.
//!
//! # Ownership discipline
//!
//! `alloc` transfers logical ownership of a slot to the caller; `free`
//! returns it.  Slots are never deinitialized: `T` is required to be
//! `Default` and slot types use interior mutability (atomics) for their
//! fields, with the owning protocol (usually a per-LNVC lock in `mpf-core`)
//! providing exclusion.  `get` hands out `&T` to any caller; it is the
//! layer above that guarantees only the owner mutates a live slot.

use crate::idxstack::{IndexStack, NIL};

/// A fixed-capacity pool of `T` slots with index handles.
#[derive(Debug)]
pub struct Pool<T> {
    slots: Box<[T]>,
    free: IndexStack,
}

impl<T: Default> Pool<T> {
    /// Creates a pool with `capacity` default-initialized slots, all free.
    pub fn new(capacity: u32) -> Self {
        let slots: Box<[T]> = (0..capacity).map(|_| T::default()).collect();
        Self {
            slots,
            free: IndexStack::new(capacity, true),
        }
    }
}

impl<T> Pool<T> {
    /// Creates a pool whose slots are built by `init(index)`, all free.
    /// Used when slot construction needs configuration (e.g. lock kind).
    pub fn new_with(capacity: u32, mut init: impl FnMut(u32) -> T) -> Self {
        let slots: Box<[T]> = (0..capacity).map(&mut init).collect();
        Self {
            slots,
            free: IndexStack::new(capacity, true),
        }
    }

    /// Total slots.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Approximate number of slots currently allocated.
    pub fn in_use(&self) -> u32 {
        self.capacity() - self.free.len()
    }

    /// Approximate number of free slots.
    pub fn available(&self) -> u32 {
        self.free.len()
    }

    /// Takes a free slot, returning its index, or `None` when exhausted
    /// (the paper's fixed shared-memory budget is a hard limit too).
    pub fn alloc(&self) -> Option<u32> {
        crate::hooks::yield_point(crate::hooks::SyncEvent::Alloc(self as *const Self as usize));
        self.free.pop()
    }

    /// Returns slot `idx` to the free list.
    ///
    /// Logic error (list corruption) if `idx` is not currently allocated;
    /// panics if out of range.
    pub fn free(&self, idx: u32) {
        debug_assert!(idx != NIL);
        crate::hooks::yield_point(crate::hooks::SyncEvent::Free(self as *const Self as usize));
        self.free.push(idx);
    }

    /// Shared access to slot `idx`.  Panics if out of range.
    #[inline]
    pub fn get(&self, idx: u32) -> &T {
        &self.slots[idx as usize]
    }

    /// Iterates over every slot (allocated or free) with its index.
    /// Used by diagnostics and the close-time sweeps.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.slots.iter().enumerate().map(|(i, t)| (i as u32, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::thread;

    #[derive(Default)]
    struct Slot {
        value: AtomicU64,
    }

    #[test]
    fn alloc_until_exhausted() {
        let p: Pool<Slot> = Pool::new(3);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        let c = p.alloc().unwrap();
        assert_eq!(p.alloc(), None);
        assert_eq!(p.in_use(), 3);
        p.free(b);
        assert_eq!(p.alloc(), Some(b));
        let mut all = [a, b, c];
        all.sort_unstable();
        assert_eq!(all, [0, 1, 2]);
    }

    #[test]
    fn slot_state_persists_across_realloc() {
        let p: Pool<Slot> = Pool::new(1);
        let i = p.alloc().unwrap();
        p.get(i).value.store(99, Ordering::Relaxed);
        p.free(i);
        let j = p.alloc().unwrap();
        assert_eq!(i, j);
        // Slots are not reinitialized; owners must reset on alloc.
        assert_eq!(p.get(j).value.load(Ordering::Relaxed), 99);
    }

    #[test]
    fn counters_track_usage() {
        let p: Pool<Slot> = Pool::new(8);
        assert_eq!(p.available(), 8);
        let i = p.alloc().unwrap();
        assert_eq!(p.in_use(), 1);
        p.free(i);
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn concurrent_alloc_free_never_double_allocates() {
        let p: Pool<Slot> = Pool::new(64);
        thread::scope(|s| {
            for t in 0..8u64 {
                let p = &p;
                s.spawn(move || {
                    for round in 0..5_000u64 {
                        if let Some(idx) = p.alloc() {
                            let slot = p.get(idx);
                            let tag = (t << 32) | round;
                            slot.value.store(tag, Ordering::SeqCst);
                            // If another thread owned this slot concurrently
                            // it would have overwritten our tag.
                            assert_eq!(slot.value.load(Ordering::SeqCst), tag);
                            p.free(idx);
                        }
                    }
                });
            }
        });
        assert_eq!(p.in_use(), 0);
    }

    #[test]
    fn iter_visits_all_slots() {
        let p: Pool<Slot> = Pool::new(5);
        assert_eq!(p.iter().count(), 5);
        let indices: Vec<u32> = p.iter().map(|(i, _)| i).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }
}
