//! In-region telemetry: shared counters, log2-bucket histograms, and
//! per-process single-writer flight-recorder rings.
//!
//! Everything here is `#[repr(C)]`, offset-addressed, and built from plain
//! atomics so it can live *inside* the shared region carved by
//! `RegionLayout` — cross-process readable, crash-persistent, and safe to
//! inspect read-only from a process that never took part in the session
//! (the `mpfstat` inspector).  Design rules:
//!
//! * **Counters** are one relaxed `fetch_add` on the hot path.  Facility
//!   counters sit in their own 64-byte cells ([`PadCell`]) so two processes
//!   bumping different counters never share a cache line.
//! * **Histograms** ([`Histogram`]) use power-of-two buckets: value `v`
//!   lands in bucket `64 - v.leading_zeros()` (capped), so recording is a
//!   couple of ALU ops plus one relaxed add.  Percentiles are computed from
//!   a snapshot, never in-region.
//! * **Flight rings** ([`FlightRing`]) are strictly single-writer: each
//!   process owns the ring in its own process-slot position and is the only
//!   writer, following the wait-free SPSC discipline (Torquati; see
//!   PAPERS.md).  Readers — concurrent or post-mortem — validate each
//!   record with a seqlock-style before/after sequence check and simply
//!   skip torn slots.  A record's `seq` is zero while it is being written,
//!   so a reader can never mistake a half-written record for a valid one,
//!   even if the writer was SIGKILLed mid-store.
//!
//! None of this module knows about LNVCs or facilities; it is the raw
//! instrumentation substrate that `mpf-core` and `mpf-ipc` place via their
//! region layouts.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Number of power-of-two histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Bytes of one [`Histogram`]: count + sum + max + 32 buckets.
pub const HISTOGRAM_BYTES: usize = 8 * 3 + 8 * HISTOGRAM_BUCKETS;

/// Bytes of one [`FacilityTelemetry`].
pub const FACILITY_TELEMETRY_BYTES: usize = 1344;

/// Bytes of one [`LnvcTelemetry`].
pub const LNVC_TELEMETRY_BYTES: usize = 384;

/// Records kept per process flight ring (power of two).
pub const FLIGHT_RING_SLOTS: usize = 64;

/// Bytes of one [`FlightRing`]: 64-byte header + fixed-slot records.
pub const FLIGHT_RING_BYTES: usize = 64 + FLIGHT_RING_SLOTS * 32;

// ---------------------------------------------------------------------------
// Flight-recorder event kinds
// ---------------------------------------------------------------------------

/// `open_send` completed; `arg` = 0.
pub const EV_OPEN_SEND: u32 = 1;
/// `open_receive` completed; `arg` = protocol code.
pub const EV_OPEN_RECV: u32 = 2;
/// `close_send` completed.
pub const EV_CLOSE_SEND: u32 = 3;
/// `close_receive` completed.
pub const EV_CLOSE_RECV: u32 = 4;
/// `message_send` completed; `arg` = payload length.
pub const EV_SEND: u32 = 5;
/// `message_receive` delivered; `arg` = payload length.
pub const EV_RECV: u32 = 6;
/// A receive found nothing and is about to block.
pub const EV_RECV_BLOCK: u32 = 7;
/// A send hit pool exhaustion and is about to wait.
pub const EV_SEND_BLOCK: u32 = 8;
/// Reclamation freed messages; `arg` = messages freed.
pub const EV_RECLAIM: u32 = 9;
/// An LNVC descriptor lock was contended.
pub const EV_LOCK_CONTEND: u32 = 10;
/// A dead peer's connections were swept; `arg` = the dead mpf pid.
pub const EV_SWEEP_DEAD: u32 = 11;
/// An LNVC was poisoned by a peer death; `arg` = the culprit mpf pid.
pub const EV_POISONED: u32 = 12;

/// Human-readable name for a flight-recorder event kind.
pub fn event_name(kind: u32) -> &'static str {
    match kind {
        EV_OPEN_SEND => "open_send",
        EV_OPEN_RECV => "open_recv",
        EV_CLOSE_SEND => "close_send",
        EV_CLOSE_RECV => "close_recv",
        EV_SEND => "send",
        EV_RECV => "recv",
        EV_RECV_BLOCK => "recv_block",
        EV_SEND_BLOCK => "send_block",
        EV_RECLAIM => "reclaim",
        EV_LOCK_CONTEND => "lock_contend",
        EV_SWEEP_DEAD => "sweep_dead",
        EV_POISONED => "poisoned",
        _ => "unknown",
    }
}

/// Wall-clock nanoseconds since the Unix epoch.  Used for flight-recorder
/// timestamps and send→receive latency because it is the one clock every
/// process attached to the region shares.  Delegates to the calibrated
/// cycle-counter clock ([`crate::clock`]), which falls back to
/// `SystemTime` when the hardware counter is unstable or absent.
#[inline]
pub fn now_nanos() -> u64 {
    crate::clock::now_nanos()
}

// ---------------------------------------------------------------------------
// PadCell: one counter per cache line
// ---------------------------------------------------------------------------

/// A single `AtomicU64` padded to its own 64-byte line.
///
/// Unlike `CachePadded` (128-byte aligned, for heap use) this has **align
/// 8** and explicit tail padding, so it can be placed at any 64-byte region
/// offset without over-alignment constraints the region carver cannot
/// honour.
#[repr(C)]
#[derive(Debug)]
pub struct PadCell {
    value: AtomicU64,
    _pad: [u8; 56],
}

impl Default for PadCell {
    fn default() -> Self {
        Self {
            value: AtomicU64::new(0),
            _pad: [0; 56],
        }
    }
}

impl PadCell {
    /// Adds one, relaxed.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`, relaxed.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value, relaxed.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

/// Log2-bucket histogram: bucket `b >= 1` counts values in
/// `[2^(b-1), 2^b - 1]`; bucket 0 counts zeros.  Values past the last
/// bucket are clamped into it (the tracked `max` keeps the true extreme).
#[repr(C)]
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Adds `n` to `c` with a plain load+store instead of a locked RMW.
///
/// Sound only while the caller is the sole writer of `c` — in practice,
/// while holding the LNVC descriptor lock that serialises updates to a
/// [`LnvcTelemetry`] block.  Readers still see untorn 64-bit values; they
/// just race the increment, exactly as they would a `fetch_add`.
#[inline]
pub fn bump(c: &AtomicU64, n: u64) {
    c.store(c.load(Ordering::Relaxed).wrapping_add(n), Ordering::Relaxed);
}

/// Bucket index for `v` (shared by writer and snapshot percentile math).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Largest value bucket `b` can represent (before clamping).
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// Records one observation.  All stores relaxed; torn cross-field reads
    /// only make a concurrent snapshot momentarily inconsistent, never
    /// corrupt.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        // Plain load first: once warmed up a new maximum is rare, and the
        // load avoids the RMW (a cmpxchg loop) on every observation.
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// [`record`](Self::record) for a histogram whose writes are already
    /// serialised by an external lock: plain load+store ([`bump`]) instead
    /// of locked RMWs.  Used for the per-LNVC latency histogram, which is
    /// only written under the LNVC descriptor lock.
    #[inline]
    pub fn record_locked(&self, v: u64) {
        bump(&self.count, 1);
        bump(&self.sum, v);
        if v > self.max.load(Ordering::Relaxed) {
            self.max.store(v, Ordering::Relaxed);
        }
        bump(&self.buckets[bucket_index(v)], 1);
    }

    /// Copies the current state out of the region.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`], with percentile math.
#[derive(Clone, Copy, Debug)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistSnapshot {
    /// Value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (clamped to the observed max).
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other` into `self` (summing per-process telemetry shards).
    pub fn absorb(&mut self, other: &HistSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (b, &c) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += c;
        }
    }

    /// Counts accumulated since `earlier` (monotone counters; `max` is
    /// kept from `self` since a running maximum cannot be differenced).
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            buckets: std::array::from_fn(|i| self.buckets[i].saturating_sub(earlier.buckets[i])),
        }
    }
}

// ---------------------------------------------------------------------------
// Facility + per-LNVC telemetry blocks
// ---------------------------------------------------------------------------

/// Region-global counters, one cache line each, plus message-size and
/// send→receive latency histograms.  Written by every attached process;
/// all operations are single relaxed RMWs.
#[repr(C)]
#[derive(Debug, Default)]
pub struct FacilityTelemetry {
    /// `message_send` completions.
    pub sends: PadCell,
    /// `message_receive` deliveries.
    pub receives: PadCell,
    /// Payload bytes accepted from senders.
    pub bytes_in: PadCell,
    /// Payload bytes copied out to receivers.
    pub bytes_out: PadCell,
    /// Times a receive blocked (once per blocking call, not per nap).
    pub recv_waits: PadCell,
    /// Times a send waited on pool exhaustion.
    pub send_waits: PadCell,
    /// Messages reclaimed (prefix + sweep reclamation).
    pub reclaims: PadCell,
    /// Conversations created.
    pub lnvcs_created: PadCell,
    /// Conversations deleted.
    pub lnvcs_deleted: PadCell,
    /// LNVC descriptor lock acquisitions that found the lock held.
    pub lock_contended: PadCell,
    /// Dead-peer sweeps that found at least one corpse.
    pub sweeps: PadCell,
    /// Peers detected dead and swept.
    pub peers_died: PadCell,
    /// Payload sizes of accepted sends.
    pub size_hist: Histogram,
    /// Send→receive latency in nanoseconds (stamped at send, observed at
    /// delivery).
    pub latency_hist: Histogram,
    _pad: [u8; 16],
}

impl FacilityTelemetry {
    /// Copies every counter and histogram out of the region.
    pub fn snapshot(&self) -> TelSnapshot {
        TelSnapshot {
            sends: self.sends.get(),
            receives: self.receives.get(),
            bytes_in: self.bytes_in.get(),
            bytes_out: self.bytes_out.get(),
            recv_waits: self.recv_waits.get(),
            send_waits: self.send_waits.get(),
            reclaims: self.reclaims.get(),
            lnvcs_created: self.lnvcs_created.get(),
            lnvcs_deleted: self.lnvcs_deleted.get(),
            lock_contended: self.lock_contended.get(),
            sweeps: self.sweeps.get(),
            peers_died: self.peers_died.get(),
            size_hist: self.size_hist.snapshot(),
            latency_hist: self.latency_hist.snapshot(),
        }
    }
}

/// Point-in-time copy of [`FacilityTelemetry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TelSnapshot {
    /// See [`FacilityTelemetry::sends`].
    pub sends: u64,
    /// See [`FacilityTelemetry::receives`].
    pub receives: u64,
    /// See [`FacilityTelemetry::bytes_in`].
    pub bytes_in: u64,
    /// See [`FacilityTelemetry::bytes_out`].
    pub bytes_out: u64,
    /// See [`FacilityTelemetry::recv_waits`].
    pub recv_waits: u64,
    /// See [`FacilityTelemetry::send_waits`].
    pub send_waits: u64,
    /// See [`FacilityTelemetry::reclaims`].
    pub reclaims: u64,
    /// See [`FacilityTelemetry::lnvcs_created`].
    pub lnvcs_created: u64,
    /// See [`FacilityTelemetry::lnvcs_deleted`].
    pub lnvcs_deleted: u64,
    /// See [`FacilityTelemetry::lock_contended`].
    pub lock_contended: u64,
    /// See [`FacilityTelemetry::sweeps`].
    pub sweeps: u64,
    /// See [`FacilityTelemetry::peers_died`].
    pub peers_died: u64,
    /// See [`FacilityTelemetry::size_hist`].
    pub size_hist: HistSnapshot,
    /// See [`FacilityTelemetry::latency_hist`].
    pub latency_hist: HistSnapshot,
}

impl TelSnapshot {
    /// Adds `other` into `self` — used to sum the per-process facility
    /// telemetry shards into one facility-wide view.
    pub fn absorb(&mut self, other: &TelSnapshot) {
        self.sends += other.sends;
        self.receives += other.receives;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.recv_waits += other.recv_waits;
        self.send_waits += other.send_waits;
        self.reclaims += other.reclaims;
        self.lnvcs_created += other.lnvcs_created;
        self.lnvcs_deleted += other.lnvcs_deleted;
        self.lock_contended += other.lock_contended;
        self.sweeps += other.sweeps;
        self.peers_died += other.peers_died;
        self.size_hist.absorb(&other.size_hist);
        self.latency_hist.absorb(&other.latency_hist);
    }

    /// Activity between `earlier` and `self` (counter-wise saturating
    /// difference; histogram handled by [`HistSnapshot::diff`]).
    pub fn diff(&self, earlier: &TelSnapshot) -> TelSnapshot {
        TelSnapshot {
            sends: self.sends.saturating_sub(earlier.sends),
            receives: self.receives.saturating_sub(earlier.receives),
            bytes_in: self.bytes_in.saturating_sub(earlier.bytes_in),
            bytes_out: self.bytes_out.saturating_sub(earlier.bytes_out),
            recv_waits: self.recv_waits.saturating_sub(earlier.recv_waits),
            send_waits: self.send_waits.saturating_sub(earlier.send_waits),
            reclaims: self.reclaims.saturating_sub(earlier.reclaims),
            lnvcs_created: self.lnvcs_created.saturating_sub(earlier.lnvcs_created),
            lnvcs_deleted: self.lnvcs_deleted.saturating_sub(earlier.lnvcs_deleted),
            lock_contended: self.lock_contended.saturating_sub(earlier.lock_contended),
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            peers_died: self.peers_died.saturating_sub(earlier.peers_died),
            size_hist: self.size_hist.diff(&earlier.size_hist),
            latency_hist: self.latency_hist.diff(&earlier.latency_hist),
        }
    }
}

/// Per-conversation counters and latency histogram.  Fields written under
/// the LNVC descriptor lock in practice, but readers (snapshots, the
/// inspector) take no lock, so everything stays atomic.
#[repr(C)]
#[derive(Debug)]
pub struct LnvcTelemetry {
    /// Messages enqueued on this conversation.
    pub sends: AtomicU64,
    /// Deliveries made from this conversation.
    pub receives: AtomicU64,
    /// Payload bytes enqueued.
    pub bytes_in: AtomicU64,
    /// Payload bytes delivered.
    pub bytes_out: AtomicU64,
    /// Blocking receives on this conversation.
    pub recv_waits: AtomicU64,
    /// Messages reclaimed from this conversation's queue.
    pub reclaims: AtomicU64,
    /// High-water mark of queued messages.
    pub depth_hwm: AtomicU64,
    _pad0: [u8; 8],
    /// Send→receive latency in nanoseconds.
    pub latency: Histogram,
    _pad1: [u8; 40],
}

impl Default for LnvcTelemetry {
    fn default() -> Self {
        Self {
            sends: AtomicU64::new(0),
            receives: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            recv_waits: AtomicU64::new(0),
            reclaims: AtomicU64::new(0),
            depth_hwm: AtomicU64::new(0),
            _pad0: [0; 8],
            latency: Histogram::default(),
            _pad1: [0; 40],
        }
    }
}

impl LnvcTelemetry {
    /// Raises the queue-depth high-water mark to at least `depth`.
    /// Caller holds the LNVC lock, so load+store suffices.
    #[inline]
    pub fn note_depth(&self, depth: u64) {
        if depth > self.depth_hwm.load(Ordering::Relaxed) {
            self.depth_hwm.store(depth, Ordering::Relaxed);
        }
    }

    /// Resets every counter; called when an LNVC slot is recycled so a new
    /// conversation does not inherit its predecessor's numbers.
    pub fn reset(&self) {
        self.sends.store(0, Ordering::Relaxed);
        self.receives.store(0, Ordering::Relaxed);
        self.bytes_in.store(0, Ordering::Relaxed);
        self.bytes_out.store(0, Ordering::Relaxed);
        self.recv_waits.store(0, Ordering::Relaxed);
        self.reclaims.store(0, Ordering::Relaxed);
        self.depth_hwm.store(0, Ordering::Relaxed);
        self.latency.count.store(0, Ordering::Relaxed);
        self.latency.sum.store(0, Ordering::Relaxed);
        self.latency.max.store(0, Ordering::Relaxed);
        for b in &self.latency.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// Copies the current state out of the region.
    pub fn snapshot(&self) -> LnvcTelSnapshot {
        LnvcTelSnapshot {
            sends: self.sends.load(Ordering::Relaxed),
            receives: self.receives.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            recv_waits: self.recv_waits.load(Ordering::Relaxed),
            reclaims: self.reclaims.load(Ordering::Relaxed),
            depth_hwm: self.depth_hwm.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// Point-in-time copy of [`LnvcTelemetry`].
#[derive(Clone, Copy, Debug, Default)]
pub struct LnvcTelSnapshot {
    /// See [`LnvcTelemetry::sends`].
    pub sends: u64,
    /// See [`LnvcTelemetry::receives`].
    pub receives: u64,
    /// See [`LnvcTelemetry::bytes_in`].
    pub bytes_in: u64,
    /// See [`LnvcTelemetry::bytes_out`].
    pub bytes_out: u64,
    /// See [`LnvcTelemetry::recv_waits`].
    pub recv_waits: u64,
    /// See [`LnvcTelemetry::reclaims`].
    pub reclaims: u64,
    /// See [`LnvcTelemetry::depth_hwm`].
    pub depth_hwm: u64,
    /// See [`LnvcTelemetry::latency`].
    pub latency: HistSnapshot,
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

/// One fixed-size flight-recorder record.
///
/// `seq` doubles as the validity word: zero means "invalid / mid-write".
/// The writer zeroes it (Release), stores the payload fields (Relaxed),
/// then publishes `seq = logical_position + 1` (Release).  A reader that
/// observes the same nonzero `seq` before and after reading the payload
/// has a consistent record; anything else is torn and skipped.
#[repr(C)]
#[derive(Debug)]
pub struct FlightRecord {
    seq: AtomicU64,
    tstamp: AtomicU64,
    arg: AtomicU64,
    kind: AtomicU32,
    lnvc: AtomicU32,
}

impl Default for FlightRecord {
    fn default() -> Self {
        Self {
            seq: AtomicU64::new(0),
            tstamp: AtomicU64::new(0),
            arg: AtomicU64::new(0),
            kind: AtomicU32::new(0),
            lnvc: AtomicU32::new(0),
        }
    }
}

/// A validated record read out of a ring.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlightEvent {
    /// 1-based logical position in the writer's event stream.
    pub seq: u64,
    /// Wall-clock nanoseconds at record time ([`now_nanos`]).
    pub tstamp: u64,
    /// Event argument (length, count, pid — see the `EV_*` docs).
    pub arg: u64,
    /// Event kind (`EV_*`).
    pub kind: u32,
    /// LNVC index the event concerns (`u32::MAX` when none).
    pub lnvc: u32,
}

/// Per-process single-writer event ring.  The owning process appends with
/// [`FlightRing::record`]; anyone may read with [`FlightRing::snapshot`],
/// concurrently or after the writer died.
#[repr(C)]
#[derive(Debug)]
pub struct FlightRing {
    head: AtomicU64,
    writer_pid: AtomicU32,
    _pad: [u8; 52],
    slots: [FlightRecord; FLIGHT_RING_SLOTS],
}

impl Default for FlightRing {
    fn default() -> Self {
        Self {
            head: AtomicU64::new(0),
            writer_pid: AtomicU32::new(0),
            _pad: [0; 52],
            slots: std::array::from_fn(|_| FlightRecord::default()),
        }
    }
}

impl FlightRing {
    /// Tags the ring with its writer's OS pid (for the inspector).
    pub fn set_writer_pid(&self, pid: u32) {
        self.writer_pid.store(pid, Ordering::Relaxed);
    }

    /// OS pid of the process that owned this ring (0 = never used).
    pub fn writer_pid(&self) -> u32 {
        self.writer_pid.load(Ordering::Relaxed)
    }

    /// Total records ever written.
    pub fn head(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// Appends one record, stamping it with [`now_nanos`].  **Single-
    /// writer**: only the owning process may call this; it is wait-free
    /// and lock-free.
    #[inline]
    pub fn record(&self, kind: u32, lnvc: u32, arg: u64) {
        self.record_at(now_nanos(), kind, lnvc, arg);
    }

    /// [`record`](Self::record) with a caller-supplied timestamp, so a hot
    /// path that already read the clock (e.g. to stamp a message) does not
    /// pay a second `clock_gettime` for its flight record.
    #[inline]
    pub fn record_at(&self, tstamp: u64, kind: u32, lnvc: u32, arg: u64) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h as usize) % FLIGHT_RING_SLOTS];
        slot.seq.store(0, Ordering::Release);
        slot.tstamp.store(tstamp, Ordering::Relaxed);
        slot.arg.store(arg, Ordering::Relaxed);
        slot.kind.store(kind, Ordering::Relaxed);
        slot.lnvc.store(lnvc, Ordering::Relaxed);
        slot.seq.store(h + 1, Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Reads the surviving tail of the ring, oldest first, skipping torn
    /// or never-written slots.  Safe against a live writer (seqlock check)
    /// and against a writer that died mid-append (the half-written slot
    /// still has `seq == 0`).
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let head = self.head.load(Ordering::Acquire);
        let start = head.saturating_sub(FLIGHT_RING_SLOTS as u64);
        let mut out = Vec::new();
        for pos in start..head {
            let slot = &self.slots[(pos as usize) % FLIGHT_RING_SLOTS];
            let seq1 = slot.seq.load(Ordering::Acquire);
            if seq1 != pos + 1 {
                continue; // torn, mid-write, or already overwritten
            }
            let ev = FlightEvent {
                seq: seq1,
                tstamp: slot.tstamp.load(Ordering::Relaxed),
                arg: slot.arg.load(Ordering::Relaxed),
                kind: slot.kind.load(Ordering::Relaxed),
                lnvc: slot.lnvc.load(Ordering::Relaxed),
            };
            let seq2 = slot.seq.load(Ordering::Acquire);
            if seq2 == seq1 {
                out.push(ev);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Layout checks
// ---------------------------------------------------------------------------

const _: () = {
    assert!(std::mem::size_of::<PadCell>() == 64);
    assert!(std::mem::align_of::<PadCell>() == 8);
    assert!(std::mem::size_of::<Histogram>() == HISTOGRAM_BYTES);
    assert!(std::mem::size_of::<FacilityTelemetry>() == FACILITY_TELEMETRY_BYTES);
    assert!(FACILITY_TELEMETRY_BYTES.is_multiple_of(64));
    assert!(std::mem::size_of::<LnvcTelemetry>() == LNVC_TELEMETRY_BYTES);
    assert!(LNVC_TELEMETRY_BYTES.is_multiple_of(64));
    assert!(std::mem::size_of::<FlightRecord>() == 32);
    assert!(std::mem::size_of::<FlightRing>() == FLIGHT_RING_BYTES);
    assert!(FLIGHT_RING_BYTES.is_multiple_of(64));
    assert!(std::mem::align_of::<FacilityTelemetry>() == 8);
    assert!(std::mem::align_of::<LnvcTelemetry>() == 8);
    assert!(std::mem::align_of::<FlightRing>() == 8);
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_plus_one() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_cover_their_indices() {
        for v in [0u64, 1, 2, 3, 5, 100, 4096, 1 << 30] {
            let b = bucket_index(v);
            assert!(v <= bucket_upper_bound(b), "v={v} b={b}");
            if b > 0 && b < HISTOGRAM_BUCKETS - 1 {
                assert!(v > bucket_upper_bound(b - 1), "v={v} b={b}");
            }
        }
    }

    #[test]
    fn histogram_counts_and_percentiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.max, 100);
        assert_eq!(s.mean(), 50.5);
        // Rank 50 of 1..=100 lands in bucket 6 ([32,63]): buckets 1..=5
        // hold 31 values, bucket 6 the next 32.
        assert_eq!(s.percentile(0.50), 63);
        assert_eq!(s.percentile(1.0), 100);
        assert_eq!(s.percentile(0.0), 1, "lowest rank lands in bucket 1");
    }

    #[test]
    fn empty_histogram_percentile_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn percentile_clamps_to_observed_max() {
        let h = Histogram::default();
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.percentile(0.99), 1_000_000);
    }

    #[test]
    fn histogram_diff_subtracts_buckets() {
        let h = Histogram::default();
        h.record(10);
        let early = h.snapshot();
        h.record(10);
        h.record(20);
        let late = h.snapshot();
        let d = late.diff(&early);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 30);
        assert_eq!(d.buckets[bucket_index(10)], 1);
        assert_eq!(d.buckets[bucket_index(20)], 1);
    }

    #[test]
    fn flight_ring_keeps_last_slots_worth() {
        let ring = FlightRing::default();
        let total = FLIGHT_RING_SLOTS as u64 + 10;
        for i in 0..total {
            ring.record(EV_SEND, 3, i);
        }
        let evs = ring.snapshot();
        assert_eq!(evs.len(), FLIGHT_RING_SLOTS);
        assert_eq!(evs.first().unwrap().seq, 11, "oldest surviving record");
        assert_eq!(evs.last().unwrap().seq, total);
        assert_eq!(evs.last().unwrap().arg, total - 1);
        assert!(evs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert!(evs.iter().all(|e| e.kind == EV_SEND && e.lnvc == 3));
    }

    #[test]
    fn flight_ring_skips_torn_slot() {
        let ring = FlightRing::default();
        for i in 0..5u64 {
            ring.record(EV_RECV, 0, i);
        }
        // Simulate a writer killed mid-append of record 6: slot zeroed,
        // fields half-written, seq never published.
        let h = ring.head.load(Ordering::Relaxed);
        let slot = &ring.slots[(h as usize) % FLIGHT_RING_SLOTS];
        slot.seq.store(0, Ordering::Release);
        slot.arg.store(999, Ordering::Relaxed);
        let evs = ring.snapshot();
        assert_eq!(evs.len(), 5, "unpublished record is invisible");
        assert_eq!(evs.last().unwrap().arg, 4);
    }

    #[test]
    fn facility_snapshot_diff() {
        let t = FacilityTelemetry::default();
        t.sends.inc();
        t.bytes_in.add(100);
        t.size_hist.record(100);
        let a = t.snapshot();
        t.sends.inc();
        t.receives.inc();
        let b = t.snapshot();
        let d = b.diff(&a);
        assert_eq!(d.sends, 1);
        assert_eq!(d.receives, 1);
        assert_eq!(d.bytes_in, 0);
    }

    #[test]
    fn lnvc_telemetry_reset_clears_everything() {
        let t = LnvcTelemetry::default();
        t.sends.fetch_add(4, Ordering::Relaxed);
        t.note_depth(9);
        t.latency.record(1234);
        t.reset();
        let s = t.snapshot();
        assert_eq!(s.sends, 0);
        assert_eq!(s.depth_hwm, 0);
        assert_eq!(s.latency.count, 0);
    }

    #[test]
    fn event_names_are_distinct() {
        let kinds = [
            EV_OPEN_SEND,
            EV_OPEN_RECV,
            EV_CLOSE_SEND,
            EV_CLOSE_RECV,
            EV_SEND,
            EV_RECV,
            EV_RECV_BLOCK,
            EV_SEND_BLOCK,
            EV_RECLAIM,
            EV_LOCK_CONTEND,
            EV_SWEEP_DEAD,
            EV_POISONED,
        ];
        let names: std::collections::HashSet<_> = kinds.iter().map(|&k| event_name(k)).collect();
        assert_eq!(names.len(), kinds.len());
        assert_eq!(event_name(0), "unknown");
    }
}
