//! A genuine OS shared-memory region, attachable by name.
//!
//! The paper's MPF ran as a group of Unix processes all mapping one
//! physical shared-memory region.  [`ShmRegion`] is that region: a file
//! in `/dev/shm` (tmpfs — pages never touch a disk) created by the
//! initializing process and `mmap`ed `MAP_SHARED` by every participant.
//! Because each process maps it at a different virtual address, nothing
//! stored inside may be a pointer; the whole facility above this is
//! offset-addressed (see `mpf-core`'s `layout` module), so a base pointer
//! plus the layout is all a peer needs.
//!
//! On hosts without the syscall layer ([`crate::sys::HAVE_SYSCALLS`] is
//! false) regions are heap-backed: fully functional within one process
//! (threads), with [`ShmRegion::attach`] reporting unsupported.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::PathBuf;

use crate::sys;

/// Longest accepted region name.
pub const MAX_REGION_NAME: usize = 64;

/// One mapped (or heap-emulated) shared region.
#[derive(Debug)]
pub struct ShmRegion {
    base: *mut u8,
    len: usize,
    backing: Backing,
}

#[derive(Debug)]
enum Backing {
    /// A real `MAP_SHARED` mapping of `file`; `unlink` names the path to
    /// remove on drop (the creator cleans up, attachers do not).
    Mmap {
        #[allow(dead_code)] // held to keep the fd (and thus fstat) valid
        file: File,
        unlink: Option<PathBuf>,
    },
    /// Heap fallback; the allocation owns the bytes `base` points into.
    Heap(#[allow(dead_code)] Box<[u8]>),
}

// SAFETY: the region is raw shared memory; every access goes through
// unsafe accessors whose contracts delegate synchronization to the
// caller (the MPF protocol), exactly as with `StridedArena`.
unsafe impl Send for ShmRegion {}
unsafe impl Sync for ShmRegion {}

fn region_dir() -> PathBuf {
    let shm = PathBuf::from("/dev/shm");
    if shm.is_dir() {
        shm
    } else {
        std::env::temp_dir()
    }
}

fn validate_name(name: &str) -> io::Result<()> {
    let ok = !name.is_empty()
        && name.len() <= MAX_REGION_NAME
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.' | ':'));
    if ok {
        Ok(())
    } else {
        Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("invalid region name {name:?} (1..={MAX_REGION_NAME} of [A-Za-z0-9._:-])"),
        ))
    }
}

/// Filesystem path backing region `name`.
pub fn region_path(name: &str) -> PathBuf {
    region_dir().join(format!("mpf-region-{name}"))
}

impl ShmRegion {
    /// Creates and maps a new named region of `len` zeroed bytes.  Fails
    /// with [`io::ErrorKind::AlreadyExists`] if the name is taken.  The
    /// creator owns the name: dropping this region unlinks it.
    pub fn create(name: &str, len: usize) -> io::Result<Self> {
        validate_name(name)?;
        if !sys::HAVE_SYSCALLS {
            return Ok(Self::anon(len));
        }
        let path = region_path(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.set_len(len as u64)?;
        Self::map(file, len, Some(path))
    }

    /// Maps an existing named region created by another process.
    /// Attachers never unlink the name.
    pub fn attach(name: &str) -> io::Result<Self> {
        validate_name(name)?;
        if !sys::HAVE_SYSCALLS {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no mmap syscalls on this host; multi-process attach unavailable",
            ));
        }
        let path = region_path(name);
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "region exists but has not been sized yet",
            ));
        }
        Self::map(file, len, None)
    }

    /// Maps an existing named region **read-only** — the inspector's
    /// attach: works on a live session or on the leftover region of a
    /// crashed one, and can not perturb either (the mapping has no write
    /// permission, so even a buggy reader faults instead of corrupting).
    ///
    /// All `at`/`bytes_at` accesses through the returned handle must be
    /// reads; the hook layer is not engaged (an observer is not a
    /// participant).
    pub fn attach_readonly(name: &str) -> io::Result<Self> {
        validate_name(name)?;
        if !sys::HAVE_SYSCALLS {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "no mmap syscalls on this host; multi-process attach unavailable",
            ));
        }
        let path = region_path(name);
        let file = OpenOptions::new().read(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WouldBlock,
                "region exists but has not been sized yet",
            ));
        }
        use std::os::fd::AsRawFd;
        // SAFETY: `file` is open, sized to `len`, and stored in the
        // backing so it outlives the mapping.
        let base = unsafe { sys::mmap_shared_ro(file.as_raw_fd(), len) }
            .map_err(io::Error::from_raw_os_error)?;
        Ok(Self {
            base,
            len,
            backing: Backing::Mmap { file, unlink: None },
        })
    }

    /// A second, independent mapping of the same named region *within
    /// this process* — lands at a different base address, which is how
    /// the position-independence tests exercise offset addressing.
    pub fn attach_again(&self) -> io::Result<Self> {
        match &self.backing {
            Backing::Mmap {
                unlink: Some(p), ..
            } => {
                let file = OpenOptions::new().read(true).write(true).open(p)?;
                Self::map(file, self.len, None)
            }
            _ => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "only a named, creator-owned mapping can be re-attached",
            )),
        }
    }

    /// Anonymous single-process region (heap-backed, zeroed).  The
    /// portable fallback, also handy for unit tests.
    pub fn anon(len: usize) -> Self {
        let mut heap = vec![0u8; len.max(1)].into_boxed_slice();
        let base = heap.as_mut_ptr();
        Self {
            base,
            len,
            backing: Backing::Heap(heap),
        }
    }

    fn map(file: File, len: usize, unlink: Option<PathBuf>) -> io::Result<Self> {
        use std::os::fd::AsRawFd;
        // SAFETY: `file` is open, sized to `len`, and stored in the
        // backing so it outlives the mapping.
        let base = unsafe { sys::mmap_shared(file.as_raw_fd(), len) }
            .map_err(io::Error::from_raw_os_error)?;
        // Let the hook layer give in-region primitives a
        // mapping-independent identity: two mappings of the same backing
        // file must resolve a given lock or futex word to the same
        // resource id even though their base addresses differ.
        crate::hooks::register_region(base, len, region_key(&file)?);
        Ok(Self {
            base,
            len,
            backing: Backing::Mmap { file, unlink },
        })
    }

    /// Base address of this process's mapping.  Never store this (or any
    /// pointer derived from it) inside the region.
    pub fn base(&self) -> *mut u8 {
        self.base
    }

    /// Region length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True for zero-length regions (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this handle created (and will unlink) the name.
    pub fn is_owner(&self) -> bool {
        matches!(
            &self.backing,
            Backing::Mmap {
                unlink: Some(_),
                ..
            }
        )
    }

    /// Leaves the backing name in place on drop (the region outlives this
    /// handle for other processes to attach).
    pub fn persist(&mut self) {
        if let Backing::Mmap { unlink, .. } = &mut self.backing {
            *unlink = None;
        }
    }

    /// A typed reference to the object at byte `offset`.
    ///
    /// # Safety
    /// `T` must be valid for the bytes at `offset` (in-region structs are
    /// `#[repr(C)]` with atomic fields, valid for any bit pattern), the
    /// offset must be `align_of::<T>()`-aligned, and all concurrent
    /// access must go through atomics or caller-provided exclusion.
    pub unsafe fn at<T>(&self, offset: usize) -> &T {
        assert!(
            offset + std::mem::size_of::<T>() <= self.len,
            "region access out of bounds: offset {offset}, size {}, region {}",
            std::mem::size_of::<T>(),
            self.len
        );
        let ptr = self.base.add(offset);
        assert_eq!(
            ptr as usize % std::mem::align_of::<T>(),
            0,
            "misaligned region access at offset {offset}"
        );
        &*(ptr as *const T)
    }

    /// Raw pointer to `len` bytes at `offset` (bounds-checked).
    ///
    /// # Safety
    /// Concurrent access must be coordinated by the caller.
    pub unsafe fn bytes_at(&self, offset: usize, len: usize) -> *mut u8 {
        assert!(
            offset + len <= self.len,
            "region access out of bounds: offset {offset}, len {len}, region {}",
            self.len
        );
        self.base.add(offset)
    }
}

/// Identity of the file backing a mapping — the same for every mapping of
/// one region, distinct across regions.
#[cfg(unix)]
fn region_key(file: &File) -> io::Result<u64> {
    use std::os::unix::fs::MetadataExt;
    let md = file.metadata()?;
    Ok(md.dev().wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ md.ino())
}

/// Without Unix file identity every mapping gets its own key; aliasing
/// detection degrades to none, matching the platform's `attach` support.
#[cfg(not(unix))]
fn region_key(_file: &File) -> io::Result<u64> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    Ok(NEXT.fetch_add(1, Ordering::Relaxed))
}

impl Drop for ShmRegion {
    fn drop(&mut self) {
        if let Backing::Mmap { unlink, .. } = &self.backing {
            crate::hooks::unregister_region(self.base);
            // SAFETY: `(base, len)` is the live mapping created in `map`;
            // dropping self invalidates all references derived from it by
            // the `at`/`bytes_at` contracts.
            unsafe { sys::munmap(self.base, self.len) };
            if let Some(path) = unlink {
                let _ = std::fs::remove_file(path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn unique(tag: &str) -> String {
        static NEXT: AtomicU32 = AtomicU32::new(0);
        format!(
            "test-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        )
    }

    #[test]
    fn create_attach_share_bytes() {
        if !sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique("share");
        let a = ShmRegion::create(&name, 4096).unwrap();
        let b = ShmRegion::attach(&name).unwrap();
        // SAFETY: offsets in bounds; one writer, then one reader.
        unsafe {
            a.bytes_at(100, 1).write(0x5A);
            assert_eq!(b.bytes_at(100, 1).read(), 0x5A);
        }
        // Atomics are shared too.
        let wa: &AtomicU32 = unsafe { a.at(256) };
        let wb: &AtomicU32 = unsafe { b.at(256) };
        wa.store(77, Ordering::Release);
        assert_eq!(wb.load(Ordering::Acquire), 77);
    }

    #[test]
    fn creator_unlinks_on_drop() {
        if !sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique("unlink");
        let path = region_path(&name);
        {
            let _r = ShmRegion::create(&name, 4096).unwrap();
            assert!(path.exists());
        }
        assert!(!path.exists());
        assert!(ShmRegion::attach(&name).is_err());
    }

    #[test]
    fn double_create_rejected() {
        if !sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique("dup");
        let _a = ShmRegion::create(&name, 4096).unwrap();
        let err = ShmRegion::create(&name, 4096).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
    }

    #[test]
    fn attach_again_maps_at_new_base() {
        if !sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique("twice");
        let a = ShmRegion::create(&name, 8192).unwrap();
        let b = a.attach_again().unwrap();
        assert_ne!(a.base(), b.base(), "two mappings, two base addresses");
        unsafe {
            a.bytes_at(4096, 1).write(9);
            assert_eq!(b.bytes_at(4096, 1).read(), 9);
        }
    }

    #[test]
    fn readonly_attach_observes_writes() {
        if !sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique("ro");
        let a = ShmRegion::create(&name, 4096).unwrap();
        let ro = ShmRegion::attach_readonly(&name).unwrap();
        assert!(!ro.is_owner());
        let wa: &AtomicU32 = unsafe { a.at(128) };
        wa.store(41, Ordering::Release);
        let wr: &AtomicU32 = unsafe { ro.at(128) };
        assert_eq!(wr.load(Ordering::Acquire), 41);
    }

    #[test]
    fn heap_fallback_works() {
        let r = ShmRegion::anon(1024);
        assert_eq!(r.len(), 1024);
        assert!(!r.is_owner());
        unsafe {
            r.bytes_at(0, 1).write(1);
            assert_eq!(r.bytes_at(0, 1).read(), 1);
        }
    }

    #[test]
    fn bad_names_rejected() {
        assert!(ShmRegion::create("", 64).is_err());
        assert!(ShmRegion::create("../evil", 64).is_err());
        assert!(ShmRegion::create("has space", 64).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_at_panics() {
        let r = ShmRegion::anon(16);
        let _: &AtomicU32 = unsafe { r.at(16) };
    }
}
