//! Calibrated cycle-counter clock.
//!
//! Telemetry and trace timestamps want wall-clock nanoseconds that every
//! process attached to a region agrees on, but reading `SystemTime` costs
//! a `clock_gettime` (vDSO at best, a syscall at worst) on every sampled
//! send and receive.  On x86_64 (`rdtsc`) and aarch64 (`cntvct_el0`) the
//! hardware gives us a raw counter readable in a few cycles; this module
//! calibrates that counter against the OS monotonic clock **once per
//! process** and from then on converts raw reads into epoch nanoseconds
//! with one multiply and one shift.
//!
//! Calibration (see DESIGN.md, "Clock calibration"):
//!
//! 1. Anchor: read (wall nanoseconds, raw counter) back to back.
//! 2. Measure the tick rate against `Instant` (CLOCK_MONOTONIC) over two
//!    consecutive ~0.5 ms windows.
//! 3. If the two windows disagree by more than 5 %, or the counter ever
//!    runs backwards, the counter is judged **unstable** (old cores with
//!    non-invariant TSC, VM migration) and the process permanently falls
//!    back to `SystemTime` — correctness first, speed when safe.
//!
//! The conversion is `anchor_wall + (ticks - anchor_ticks) * mult >> 24`
//! in 128-bit arithmetic, so it cannot overflow within the lifetime of a
//! region.  Each process anchors independently; cross-process timestamp
//! skew is bounded by calibration error (~µs over typical runs) and the
//! offline conformance checker therefore orders events by logical stamp,
//! never by timestamp (timestamps are for humans and Perfetto).

use std::sync::OnceLock;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Fixed-point shift of the ticks→nanoseconds multiplier.
const CLOCK_SHIFT: u32 = 24;

#[derive(Debug, Clone, Copy)]
struct Calibration {
    /// Wall-clock nanoseconds at the anchor point.
    anchor_wall: u64,
    /// Raw counter value at the anchor point.
    anchor_ticks: u64,
    /// Nanoseconds per tick in `2^-24` fixed point.
    mult: u64,
}

/// Reads the raw cycle counter, or `None` on architectures without one.
#[inline]
fn raw_ticks() -> Option<u64> {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `rdtsc` is unprivileged and has no memory effects.
        Some(unsafe { core::arch::x86_64::_rdtsc() })
    }
    #[cfg(target_arch = "aarch64")]
    {
        let v: u64;
        // SAFETY: `cntvct_el0` is the EL0-readable virtual counter.
        unsafe {
            core::arch::asm!("mrs {v}, cntvct_el0", v = out(reg) v, options(nomem, nostack));
        }
        Some(v)
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        None
    }
}

fn wall_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64)
}

/// One-shot calibration; `None` means "use the SystemTime fallback".
fn calibrate_once() -> Option<Calibration> {
    let anchor_ticks = raw_ticks()?;
    let anchor_wall = wall_nanos();
    let start = Instant::now();
    let spin_until = |d: Duration| {
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    };
    spin_until(Duration::from_micros(500));
    let t1 = raw_ticks()?;
    let e1 = start.elapsed().as_nanos() as u64;
    spin_until(Duration::from_micros(1000));
    let t2 = raw_ticks()?;
    let e2 = start.elapsed().as_nanos() as u64;
    if t1 <= anchor_ticks || t2 <= t1 || e2 <= e1 {
        return None; // counter not monotonic at this granularity
    }
    let r1 = e1 as f64 / (t1 - anchor_ticks) as f64;
    let r2 = (e2 - e1) as f64 / (t2 - t1) as f64;
    if !r1.is_finite() || !r2.is_finite() || (r1 - r2).abs() / r1.max(r2) > 0.05 {
        return None; // rate unstable across windows
    }
    let ns_per_tick = e2 as f64 / (t2 - anchor_ticks) as f64;
    let mult = (ns_per_tick * (1u64 << CLOCK_SHIFT) as f64) as u64;
    (mult != 0).then_some(Calibration {
        anchor_wall,
        anchor_ticks,
        mult,
    })
}

static CAL: OnceLock<Option<Calibration>> = OnceLock::new();

/// Forces calibration now (it otherwise happens lazily on the first
/// [`now_nanos`]).  Facilities call this at region create/attach so the
/// ~1.5 ms spin never lands on a message hot path.  Returns `true` when
/// the cycle counter is in use, `false` on the `SystemTime` fallback.
pub fn calibrate() -> bool {
    CAL.get_or_init(calibrate_once).is_some()
}

/// Whether this process is on the calibrated cycle counter (diagnostic;
/// does not trigger calibration).
pub fn is_calibrated() -> bool {
    matches!(CAL.get(), Some(Some(_)))
}

/// Wall-clock nanoseconds since the Unix epoch, via the calibrated cycle
/// counter when stable, else `SystemTime`.
#[inline]
pub fn now_nanos() -> u64 {
    match CAL.get_or_init(calibrate_once) {
        Some(c) => {
            let t = raw_ticks().unwrap_or(c.anchor_ticks);
            let dt = t.wrapping_sub(c.anchor_ticks);
            c.anchor_wall + ((dt as u128 * c.mult as u128) >> CLOCK_SHIFT) as u64
        }
        None => wall_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_enough() {
        calibrate();
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a, "calibrated clock ran backwards: {a} -> {b}");
    }

    #[test]
    fn tracks_wall_clock() {
        calibrate();
        let wall = wall_nanos();
        let ours = now_nanos();
        // Same epoch, within a generous second (covers slow CI and the
        // fallback path identically).
        let diff = wall.abs_diff(ours);
        assert!(diff < 1_000_000_000, "clock {diff} ns from wall time");
    }

    #[test]
    fn elapsed_matches_instant() {
        calibrate();
        let i0 = Instant::now();
        let n0 = now_nanos();
        std::thread::sleep(Duration::from_millis(20));
        let elapsed_ns = i0.elapsed().as_nanos() as u64;
        let ours = now_nanos() - n0;
        // Within 20% of CLOCK_MONOTONIC over a 20 ms window.
        assert!(
            ours.abs_diff(elapsed_ns) < elapsed_ns / 5 + 2_000_000,
            "measured {ours} ns vs monotonic {elapsed_ns} ns"
        );
    }
}
