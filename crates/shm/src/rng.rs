//! Small, dependency-free pseudo-random number generator.
//!
//! The benchmarks and property tests need reproducible randomness (the
//! paper's `random` benchmark draws destinations per send), not
//! cryptographic quality.  [`SmallRng`] is SplitMix64 — Steele, Lea &
//! Flood's output function over a Weyl sequence — which passes BigCrush
//! for this generator size and seeds well from any 64-bit value.

use std::ops::{Range, RangeInclusive};

/// A SplitMix64 generator.  Deterministic for a given seed on every
/// platform; one `u64` of state.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed (all seeds are valid).
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)` (53 random mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample from `range` (see [`SampleRange`] for the supported
    /// range types).  Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift (the
    /// modulo bias is negligible at these sample counts, but rejection
    /// keeps the generator exactly uniform).
    fn bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection sampling over the widening multiply.
        let zone = bound.wrapping_neg() % bound;
        loop {
            let (hi, lo) = {
                let wide = self.next_u64() as u128 * bound as u128;
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= zone {
                return hi;
            }
        }
    }
}

/// Ranges [`SmallRng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample.
    fn sample(self, rng: &mut SmallRng) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SmallRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + rng.bounded((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample(self, rng: &mut SmallRng) -> u32 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as u32
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut SmallRng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut SmallRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn bounded_hits_every_value() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
