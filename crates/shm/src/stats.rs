//! Lightweight shared counters for instrumentation.
//!
//! The paper's performance analysis ("detailed measurements show that, for
//! large messages, LNVC updates are of negligible cost … message copying
//! costs dominate") needs the library to attribute time and traffic.  These
//! counters are cache-padded so the instrumentation does not itself create
//! the contention it measures.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::pad::CachePadded;

/// A relaxed, cache-padded monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: CachePadded<AtomicU64>,
}

impl Counter {
    /// Zeroed counter.
    pub const fn new() -> Self {
        Self {
            value: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Resets to zero (between benchmark phases).
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn inc_add_get_reset() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        let c = Counter::new();
        thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
