//! # mpf-shm — shared-memory multiprocessor substrate
//!
//! MPF (Malony, Reed, McGuire; ICPP 1987) is "completely portable between
//! shared memory multiprocessors that provide locking and memory sharing
//! between concurrently executing processes."  This crate is that substrate,
//! built from scratch in safe-by-construction Rust:
//!
//! * [`arena::StridedArena`] — a fixed shared byte region carved into
//!   equal-size slots, addressed by **index, not pointer**.  On the Sequent
//!   Balance 21000 the MPF shared region was a range of physical memory
//!   mapped into each Unix process at a potentially different virtual
//!   address, so every internal link had to be position independent.  We
//!   keep that discipline: all cross-"process" references in this workspace
//!   are `u32` slot indices.
//! * [`pool::Pool`] — typed slot pools with a lock-free free list, the
//!   "free list of linked message blocks … created in shared memory" of the
//!   paper's §3.1.
//! * [`idxstack::IndexStack`] — the free list itself: a Treiber stack over
//!   slot indices with an ABA tag.
//! * [`lock::ShmLock`] — the synchronization primitive: test-and-test-and-set
//!   spin lock with exponential backoff (the Balance's ALM atomic-lock-memory
//!   equivalent), a FIFO ticket lock, and an OS mutex, selectable at run time
//!   (ablation A2 in DESIGN.md).
//! * [`waitq::WaitQueue`] — wait/notify used by the blocking
//!   `message_receive()`; spin, yield, park and futex strategies
//!   (ablation A3).
//! * [`hooks`] — the sync-event hook layer: every lock, wait queue, pool
//!   and free list reports to an optional thread-local [`hooks::SyncHook`],
//!   the seam the `mpf-check` schedule-exploration harness drives.
//! * [`process`] — the paper's "group of Unix processes" realized as scoped
//!   OS threads carrying [`process::ProcessId`]s.
//! * [`barrier::SpinBarrier`] — sense-reversing barrier used by the
//!   shared-memory baseline applications and the benchmark harness.
//!
//! The genuine multi-process substrate lives here too:
//!
//! * [`sys`] — a four-syscall layer (`mmap`/`munmap`/`futex`/`kill`) with
//!   portable fallbacks; the workspace builds with no external crates.
//! * [`region::ShmRegion`] — a named, `mmap`ed OS shared-memory region
//!   any process can attach.
//! * [`futex`] — cross-process wait/notify on shared words.
//! * [`lock::FutexLock`] / [`lock::IpcLock`] — `#[repr(C)]` in-region
//!   locks; `IpcLock` adds holder identity and dead-peer recovery.
//! * [`waitq::FutexSeq`] — the in-region wait queue.
//! * [`ring::AioRing`] — io_uring-style SPSC descriptor ring with a futex
//!   doorbell, the substrate of the batched/async `mpf-aio` layer.
//!
//! Nothing in this crate knows about messages or LNVCs; it only provides
//! "shared memory allocation and synchronization", the two facilities the
//! paper names as its portability boundary.

pub mod arena;
pub mod backoff;
pub mod barrier;
pub mod clock;
pub mod faultplane;
pub mod futex;
pub mod hooks;
pub mod idxstack;
pub mod lock;
pub mod pad;
pub mod pool;
pub mod process;
pub mod region;
pub mod ring;
pub mod rng;
pub mod stats;
pub mod sys;
pub mod telemetry;
pub mod tracering;
pub mod waitq;

pub use arena::StridedArena;
pub use backoff::Backoff;
pub use barrier::SpinBarrier;
pub use faultplane::{FaultConfig, FaultGuard, FaultSite, FaultStats};
pub use hooks::{HookGuard, HookedMutex, SyncEvent, SyncHook};
pub use idxstack::{IndexStack, NIL};
pub use lock::{FutexLock, IpcAcquire, IpcLock, LockKind, ShmLock, ShmLockGuard};
pub use pad::CachePadded;
pub use pool::Pool;
pub use process::{run_processes, run_processes_collect, ProcessId};
pub use region::ShmRegion;
pub use ring::{AioRing, RingEntry, AIO_RING_BYTES, AIO_RING_ENTRY_BYTES, AIO_RING_SLOTS};
pub use rng::SmallRng;
pub use stats::Counter;
pub use telemetry::{
    FacilityTelemetry, FlightEvent, FlightRing, HistSnapshot, Histogram, LnvcTelSnapshot,
    LnvcTelemetry, TelSnapshot,
};
pub use tracering::{TraceEvent, TraceRing, TRACE_RING_BYTES, TRACE_RING_SLOTS};
pub use waitq::{FutexSeq, WaitQueue, WaitStrategy};
