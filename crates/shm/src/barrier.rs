//! Sense-reversing spin barrier.
//!
//! Used by the shared-memory baseline applications (the paradigm MPF is
//! compared against) and by benchmark harnesses to align phase starts.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

use crate::backoff::Backoff;

/// A reusable barrier for a fixed party count.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: u32,
    count: AtomicU32,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// Barrier for `parties` participants.  `parties` must be ≥ 1.
    pub fn new(parties: u32) -> Self {
        assert!(parties >= 1, "barrier needs at least one party");
        Self {
            parties,
            count: AtomicU32::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> u32 {
        self.parties
    }

    /// Blocks until all parties arrive.  Returns `true` for exactly one
    /// caller per phase (the "leader", last to arrive), mirroring
    /// `std::sync::Barrier`.
    pub fn wait(&self) -> bool {
        let phase_sense = !self.sense.load(Ordering::Relaxed);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(phase_sense, Ordering::Release);
            true
        } else {
            let mut backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != phase_sense {
                backoff.snooze();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn single_party_never_blocks() {
        let b = SpinBarrier::new(1);
        assert!(b.wait());
        assert!(b.wait());
    }

    #[test]
    fn exactly_one_leader_per_phase() {
        const PARTIES: u32 = 6;
        const PHASES: usize = 50;
        let b = SpinBarrier::new(PARTIES);
        let leaders = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for _ in 0..PHASES {
                        if b.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(leaders.load(Ordering::Relaxed), PHASES);
    }

    #[test]
    fn phases_are_totally_ordered() {
        const PARTIES: u32 = 4;
        const PHASES: usize = 100;
        let b = SpinBarrier::new(PARTIES);
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..PARTIES {
                s.spawn(|| {
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::SeqCst);
                        b.wait();
                        // After the barrier, every party of this phase has
                        // incremented: the count is a multiple boundary.
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(seen >= (phase + 1) * PARTIES as usize);
                        b.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), PHASES * PARTIES as usize);
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_panics() {
        let _ = SpinBarrier::new(0);
    }
}
