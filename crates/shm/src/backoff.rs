//! Exponential backoff for spin loops.
//!
//! Busy-wait synchronization on a shared bus is the Balance 21000's native
//! idiom, but naive spinning saturates the bus (the paper's Figure 4 decline
//! is exactly this contention).  Bounded exponential backoff keeps retries
//! cheap without starving the lock holder.

use std::hint;
use std::thread;

/// Number of doublings spent issuing `spin_loop` hints before escalating to
/// `thread::yield_now`.
const SPIN_LIMIT: u32 = 6;
/// Number of doublings before [`Backoff::is_completed`] suggests parking.
const YIELD_LIMIT: u32 = 10;

/// Per-spin-loop backoff state.  Create one per acquisition attempt.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Fresh backoff (first wait will be a single pause).
    pub const fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets to the initial state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Spin-only wait: `2^step` pause hints, capped.  Use inside
    /// lock-acquire loops where the critical section is known to be short.
    pub fn spin(&mut self) {
        for _ in 0..1u32 << self.step.min(SPIN_LIMIT) {
            hint::spin_loop();
        }
        if self.step <= SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Wait appropriate for condition loops: spins while cheap, then yields
    /// the CPU so an oversubscribed run (more processes than processors,
    /// as in the paper's 20-process runs) still makes progress.
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..1u32 << self.step {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once backoff has escalated far enough that the caller should
    /// block (park) instead of continuing to poll.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escalates_to_completed() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
    }

    #[test]
    fn reset_restarts() {
        let mut b = Backoff::new();
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        b.reset();
        assert!(!b.is_completed());
    }

    #[test]
    fn spin_caps_step() {
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        // spin() never escalates past the spin limit + 1.
        assert!(!b.is_completed());
    }
}
