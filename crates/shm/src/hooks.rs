//! Sync-event hooks: the instrumentation seam for deterministic schedule
//! exploration (the `mpf-check` harness).
//!
//! Every blocking or racy primitive in this crate — lock acquire/release,
//! wait-queue wait/notify, pool alloc/free, free-list push/pop — consults a
//! thread-local [`SyncHook`] before touching the real synchronization
//! machinery.  A test harness installs a hook on each "logical process"
//! thread; the hook serializes execution, turning every call site into a
//! scheduling decision it can permute, and models blocking (a hooked wait
//! parks the logical process until the matching notify) so exploration
//! never burns CPU in spin loops.
//!
//! Production cost is one relaxed atomic load per call site
//! ([`enabled`]): the thread-local is only consulted while at least one
//! hook is installed anywhere in the process.
//!
//! Resources are identified by the address of the primitive (`self as
//! *const _ as usize`) — stable for the primitive's lifetime and unique
//! per instance.  The one wrinkle is multiply-mapped shared regions: the
//! same in-region primitive has a different address in every mapping, so
//! [`ShmRegion`](crate::region::ShmRegion) registers its mappings here and
//! the entry points below rewrite in-region addresses to a
//! mapping-independent `(region, offset)` id before the hook sees them.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// A non-blocking instrumentation point: something racy happened (or is
/// about to).  Carries the address of the structure involved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncEvent {
    /// A pool slot allocation attempt.
    Alloc(usize),
    /// A pool slot free.
    Free(usize),
    /// A lock-free index-stack push.
    StackPush(usize),
    /// A lock-free index-stack pop.
    StackPop(usize),
}

impl SyncEvent {
    /// The address of the structure the event concerns.
    pub fn resource(&self) -> usize {
        match *self {
            SyncEvent::Alloc(r)
            | SyncEvent::Free(r)
            | SyncEvent::StackPush(r)
            | SyncEvent::StackPop(r) => r,
        }
    }

    /// The same event with its resource rewritten to the canonical id.
    fn canonicalized(self) -> Self {
        match self {
            SyncEvent::Alloc(r) => SyncEvent::Alloc(canon(r)),
            SyncEvent::Free(r) => SyncEvent::Free(canon(r)),
            SyncEvent::StackPush(r) => SyncEvent::StackPush(canon(r)),
            SyncEvent::StackPop(r) => SyncEvent::StackPop(canon(r)),
        }
    }
}

// --- Multi-mapping resource canonicalization ------------------------------
//
// Address-as-identity breaks when one shared region is mapped more than
// once in the same process (`ShmRegion::attach_again`, which backs
// `IpcMpf::attach_view`): the same in-region lock or futex sequence word
// has a different virtual address in every mapping, so a notify issued
// through one view would never match a waiter parked through another and
// a harness would report a bogus deadlock.  `ShmRegion` registers every
// live mapping here, keyed by the backing file's identity; the entry
// points below rewrite any address inside a registered mapping to a
// synthetic id — tag bit 63 (never set in a user-space address), a
// per-region token, and the offset within the region — identical across
// all mappings of that region.

struct RegionSpan {
    base: usize,
    len: usize,
    key: u64,
    token: u64,
}

static REGION_SPANS: Mutex<Vec<RegionSpan>> = Mutex::new(Vec::new());
static NEXT_REGION_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Registers a live mapping of a shared region.  All mappings of the same
/// underlying region must pass the same `key` (e.g. the backing file's
/// device/inode pair); `base`/`len` describe this particular mapping.
pub fn register_region(base: *const u8, len: usize, key: u64) {
    let mut spans = REGION_SPANS.lock().unwrap_or_else(|e| e.into_inner());
    let token = spans
        .iter()
        .find(|s| s.key == key)
        .map(|s| s.token)
        .unwrap_or_else(|| NEXT_REGION_TOKEN.fetch_add(1, Ordering::Relaxed));
    spans.push(RegionSpan {
        base: base as usize,
        len,
        key,
        token,
    });
}

/// Unregisters the mapping at `base`; call before unmapping so a reused
/// address range cannot inherit the old region's identity.
pub fn unregister_region(base: *const u8) {
    let mut spans = REGION_SPANS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(i) = spans.iter().position(|s| s.base == base as usize) {
        spans.swap_remove(i);
    }
}

/// Rewrites an in-region address to its mapping-independent id; addresses
/// outside every registered mapping (heap primitives) pass through
/// unchanged.  Offsets get 40 bits (regions are nowhere near 1 TiB) and
/// the token the 23 bits above, under the always-set tag bit.
fn canon(resource: usize) -> usize {
    let spans = REGION_SPANS.lock().unwrap_or_else(|e| e.into_inner());
    for s in spans.iter() {
        if resource >= s.base && resource - s.base < s.len {
            return (1 << 63) | ((s.token as usize & 0x7F_FFFF) << 40) | (resource - s.base);
        }
    }
    resource
}

/// The scheduler interface a harness implements.
///
/// Contract for implementations:
///
/// * `lock_acquire` must call `try_lock` until it returns `true` and only
///   then return; between failed attempts it should deschedule the calling
///   logical process until `lock_release` fires for the same resource.
/// * `wait`/`wait_multi` must return only once `ready` returns `true`,
///   descheduling the caller between checks until `notify` fires for one
///   of the resources.  `ready` is re-checked after every wake, so the
///   sequence-count protocol's "no lost wakeups" property is preserved.
/// * `yield_point`, `lock_release` and `notify` are preemption
///   opportunities; the hook may switch to another logical process before
///   returning.
pub trait SyncHook {
    /// A potential preemption point with no blocking semantics.
    fn yield_point(&self, ev: SyncEvent);
    /// Acquire the lock at `resource` by retrying `try_lock`.
    fn lock_acquire(&self, resource: usize, try_lock: &mut dyn FnMut() -> bool);
    /// The lock at `resource` was just released.
    fn lock_release(&self, resource: usize);
    /// Block until `ready` holds for the wait queue at `resource`.
    fn wait(&self, resource: usize, ready: &mut dyn FnMut() -> bool);
    /// Block until `ready` holds for any of the wait queues in `resources`.
    fn wait_multi(&self, resources: &[usize], ready: &mut dyn FnMut() -> bool);
    /// The wait queue at `resource` was notified.
    fn notify(&self, resource: usize);
}

/// Number of hooks installed process-wide; the fast-path gate.
static INSTALLED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static TLS_HOOK: RefCell<Option<Rc<dyn SyncHook>>> = const { RefCell::new(None) };
}

/// True while any thread has a hook installed.  Call sites check this
/// before paying for the thread-local lookup.
#[inline(always)]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Installs `hook` on the current thread; the returned guard uninstalls it
/// on drop (including on panic, so an aborted exploration run cannot leave
/// a dangling hook behind).
#[must_use = "the hook is uninstalled when the guard drops"]
pub fn install(hook: Rc<dyn SyncHook>) -> HookGuard {
    TLS_HOOK.with(|h| {
        let prev = h.borrow_mut().replace(hook);
        assert!(prev.is_none(), "a sync hook is already installed here");
    });
    INSTALLED.fetch_add(1, Ordering::Relaxed);
    HookGuard { _priv: () }
}

/// Uninstalls the current thread's hook when dropped.
#[derive(Debug)]
pub struct HookGuard {
    _priv: (),
}

impl Drop for HookGuard {
    fn drop(&mut self) {
        let prev = TLS_HOOK.with(|h| h.borrow_mut().take());
        if prev.is_some() {
            INSTALLED.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

#[inline]
fn current() -> Option<Rc<dyn SyncHook>> {
    TLS_HOOK.try_with(|h| h.borrow().clone()).ok().flatten()
}

/// Reports `ev` to the current thread's hook, if any.
#[inline]
pub fn yield_point(ev: SyncEvent) {
    if enabled() {
        if let Some(h) = current() {
            h.yield_point(ev.canonicalized());
        }
    }
}

/// Routes a lock acquisition through the hook.  Returns `true` if a hook
/// handled it (the lock is then held); `false` means the caller must run
/// its normal acquisition path.
#[inline]
pub fn lock_acquire(resource: usize, try_lock: &mut dyn FnMut() -> bool) -> bool {
    if enabled() {
        if let Some(h) = current() {
            h.lock_acquire(canon(resource), try_lock);
            return true;
        }
    }
    false
}

/// Reports a lock release to the hook, if any.
#[inline]
pub fn lock_release(resource: usize) {
    if enabled() {
        if let Some(h) = current() {
            h.lock_release(canon(resource));
        }
    }
}

/// Routes a blocking wait through the hook.  Returns `true` if a hook
/// handled it (`ready` then holds); `false` means the caller must run its
/// normal waiting path.
#[inline]
pub fn wait(resource: usize, ready: &mut dyn FnMut() -> bool) -> bool {
    if enabled() {
        if let Some(h) = current() {
            h.wait(canon(resource), ready);
            return true;
        }
    }
    false
}

/// Multi-queue variant of [`wait`].
#[inline]
pub fn wait_multi(resources: &[usize], ready: &mut dyn FnMut() -> bool) -> bool {
    if enabled() {
        if let Some(h) = current() {
            let canonical: Vec<usize> = resources.iter().map(|&r| canon(r)).collect();
            h.wait_multi(&canonical, ready);
            return true;
        }
    }
    false
}

/// Reports a notify to the hook, if any.
#[inline]
pub fn notify(resource: usize) {
    if enabled() {
        if let Some(h) = current() {
            h.notify(canon(resource));
        }
    }
}

/// A `std::sync::Mutex` that participates in hook scheduling.
///
/// The facility's name registry is an in-process `Mutex`; under the
/// harness an uninstrumented mutex would let a descheduled logical
/// process hold it while the scheduled one blocks on it in the OS —
/// wedging the whole exploration.  This wrapper routes acquisition
/// through [`lock_acquire`] (via `try_lock`) so the harness can model
/// the blocking, and reports the release from its guard.
#[derive(Debug, Default)]
pub struct HookedMutex<T> {
    inner: Mutex<T>,
}

impl<T> HookedMutex<T> {
    /// Creates a new hooked mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: Mutex::new(value),
        }
    }

    /// Acquires the mutex.  Poisoning is shrugged off (callers keep their
    /// data consistent per-operation, as with [`crate::lock::ShmLock`]).
    pub fn lock(&self) -> HookedMutexGuard<'_, T> {
        let resource = self as *const Self as usize;
        if enabled() {
            if let Some(h) = current() {
                let mut slot = None;
                h.lock_acquire(resource, &mut || match self.inner.try_lock() {
                    Ok(g) => {
                        slot = Some(g);
                        true
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        slot = Some(p.into_inner());
                        true
                    }
                    Err(TryLockError::WouldBlock) => false,
                });
                let guard = slot.expect("hook returned without acquiring");
                return HookedMutexGuard {
                    inner: Some(guard),
                    resource,
                };
            }
        }
        HookedMutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
            resource,
        }
    }
}

/// RAII guard for [`HookedMutex`]; reports the release to the hook layer
/// after the underlying mutex is unlocked.
#[derive(Debug)]
pub struct HookedMutexGuard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    resource: usize,
}

impl<T> std::ops::Deref for HookedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already released")
    }
}

impl<T> std::ops::DerefMut for HookedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already released")
    }
}

impl<T> Drop for HookedMutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real mutex before telling the hook, so the logical
        // process scheduled next can actually take it.
        drop(self.inner.take());
        lock_release(self.resource);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    /// A recording hook that never deschedules (single-thread smoke).
    struct Recorder {
        events: RefCell<Vec<String>>,
    }

    impl SyncHook for Recorder {
        fn yield_point(&self, ev: SyncEvent) {
            self.events.borrow_mut().push(format!("{ev:?}"));
        }
        fn lock_acquire(&self, _resource: usize, try_lock: &mut dyn FnMut() -> bool) {
            self.events.borrow_mut().push("acquire".into());
            while !try_lock() {
                std::thread::yield_now();
            }
        }
        fn lock_release(&self, _resource: usize) {
            self.events.borrow_mut().push("release".into());
        }
        fn wait(&self, _resource: usize, ready: &mut dyn FnMut() -> bool) {
            self.events.borrow_mut().push("wait".into());
            while !ready() {
                std::thread::yield_now();
            }
        }
        fn wait_multi(&self, _resources: &[usize], ready: &mut dyn FnMut() -> bool) {
            self.events.borrow_mut().push("wait_multi".into());
            while !ready() {
                std::thread::yield_now();
            }
        }
        fn notify(&self, _resource: usize) {
            self.events.borrow_mut().push("notify".into());
        }
    }

    #[test]
    fn install_gates_and_uninstalls_on_drop() {
        assert!(!enabled() || INSTALLED.load(Ordering::Relaxed) > 0);
        let hook = Rc::new(Recorder {
            events: RefCell::new(Vec::new()),
        });
        {
            let _g = install(hook.clone());
            assert!(enabled());
            yield_point(SyncEvent::Alloc(1));
            assert_eq!(hook.events.borrow().len(), 1);
        }
        yield_point(SyncEvent::Alloc(2));
        assert_eq!(hook.events.borrow().len(), 1, "uninstalled after drop");
    }

    #[test]
    fn hook_routes_primitives() {
        let hook = Rc::new(Recorder {
            events: RefCell::new(Vec::new()),
        });
        let _g = install(hook.clone());
        let lock = crate::lock::ShmLock::new(crate::lock::LockKind::Spin);
        drop(lock.lock());
        let q = crate::waitq::WaitQueue::new();
        let t = q.ticket();
        q.notify_all();
        q.wait(t, crate::waitq::WaitStrategy::Spin);
        let evs = hook.events.borrow().clone();
        assert!(evs.contains(&"acquire".to_string()), "{evs:?}");
        assert!(evs.contains(&"release".to_string()), "{evs:?}");
        assert!(evs.contains(&"notify".to_string()), "{evs:?}");
        assert!(evs.contains(&"wait".to_string()), "{evs:?}");
    }

    /// Two registered mappings of the same region key resolve an address
    /// at the same offset to the same canonical id; unregistered
    /// addresses pass through untouched.
    #[test]
    fn aliased_mappings_share_resource_ids() {
        struct Capture {
            seen: RefCell<Vec<usize>>,
        }
        impl SyncHook for Capture {
            fn yield_point(&self, _ev: SyncEvent) {}
            fn lock_acquire(&self, _r: usize, try_lock: &mut dyn FnMut() -> bool) {
                while !try_lock() {}
            }
            fn lock_release(&self, _r: usize) {}
            fn wait(&self, _r: usize, ready: &mut dyn FnMut() -> bool) {
                while !ready() {}
            }
            fn wait_multi(&self, _rs: &[usize], ready: &mut dyn FnMut() -> bool) {
                while !ready() {}
            }
            fn notify(&self, resource: usize) {
                self.seen.borrow_mut().push(resource);
            }
        }
        let a = vec![0u8; 128].into_boxed_slice();
        let b = vec![0u8; 128].into_boxed_slice();
        register_region(a.as_ptr(), 128, 0xD00D_F00D);
        register_region(b.as_ptr(), 128, 0xD00D_F00D);
        let hook = Rc::new(Capture {
            seen: RefCell::new(Vec::new()),
        });
        {
            let _g = install(hook.clone());
            notify(a.as_ptr() as usize + 40);
            notify(b.as_ptr() as usize + 40);
            notify(0x1000);
        }
        unregister_region(a.as_ptr());
        unregister_region(b.as_ptr());
        let seen = hook.seen.borrow();
        assert_eq!(seen[0], seen[1], "same offset, same region → same id");
        assert_ne!(seen[0], a.as_ptr() as usize + 40, "rewritten, not raw");
        assert_ne!(seen[0] & (1 << 63), 0, "canonical ids carry the tag bit");
        assert_eq!(seen[2], 0x1000, "non-region addresses pass through");
    }

    #[test]
    fn hooked_mutex_roundtrip_without_hook() {
        let m = HookedMutex::new(AtomicU32::new(0));
        m.lock().store(7, Ordering::Relaxed);
        assert_eq!(m.lock().load(Ordering::Relaxed), 7);
    }

    #[test]
    fn hooked_mutex_routes_through_hook() {
        let hook = Rc::new(Recorder {
            events: RefCell::new(Vec::new()),
        });
        let _g = install(hook.clone());
        let m = HookedMutex::new(3u32);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 4);
        let evs = hook.events.borrow().clone();
        assert!(evs.iter().filter(|e| *e == "acquire").count() >= 2);
        assert!(evs.iter().filter(|e| *e == "release").count() >= 1);
    }
}
