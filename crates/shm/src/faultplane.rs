//! Deterministic, seeded fault injection — the in-region fault plane.
//!
//! The soak harness samples chaos with SIGKILL; this module makes the
//! *same fault classes* first-class, seeded, and injectable at the sync
//! seams both backends already route through, so a CI matrix can replay
//! an exact fault sequence and `mpf-trace --check` can audit that every
//! injected fault surfaced as a typed error — never as corruption.
//!
//! Design mirrors [`crate::hooks`]: a process-global plane behind a
//! relaxed-load `enabled()` gate, so the production fast path pays one
//! predictable branch and no atomics traffic when no plane is installed.
//! Unlike hooks the plane is deliberately process-wide (faults must hit
//! every thread of a facility, not just the installing one).
//!
//! ## Fault taxonomy
//!
//! | Site            | Injected effect                | Recovery contract        |
//! |-----------------|--------------------------------|--------------------------|
//! | `NotifyDrop`    | wake syscall swallowed         | bounded naps / deadlines |
//! | `LockStall`     | holder pauses mid-acquire      | peers spin; patience     |
//! | `PoolExhaust`   | allocation reports exhaustion  | typed error / wait+deadline |
//! | `PeerDied`      | receive/send sees a dead peer  | typed error, failover    |
//!
//! The first two are *delay* faults: they must be absorbed silently by
//! the bounded-wait protocol. The last two are *error* faults: they must
//! surface as exactly their typed `MpfError`, and the backend records a
//! `TR_FAULT` trace record at the injection point so the offline checker
//! can prove the pairing.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::rng::SmallRng;

/// Where a fault is injected.  The `u32` codes are stable — they land in
/// `TR_FAULT` trace records and CI reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A `notify_all` whose wake syscall is swallowed (the sequence bump
    /// still happens — the protocol invariant is never violated, only
    /// the prompt wakeup).
    NotifyDrop,
    /// A lock acquisition stalls briefly before proceeding.
    LockStall,
    /// A pool allocation is forced to report exhaustion once.
    PoolExhaust,
    /// A send/receive path observes a (fictitious) dead peer.
    PeerDied,
}

impl FaultSite {
    /// Stable wire code (lands in `TR_FAULT.arg`).
    pub fn code(self) -> u32 {
        match self {
            FaultSite::NotifyDrop => 1,
            FaultSite::LockStall => 2,
            FaultSite::PoolExhaust => 3,
            FaultSite::PeerDied => 4,
        }
    }

    /// Human-readable site name.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::NotifyDrop => "notify_drop",
            FaultSite::LockStall => "lock_stall",
            FaultSite::PoolExhaust => "pool_exhaust",
            FaultSite::PeerDied => "peer_died",
        }
    }

    /// Whether an injection at this site must surface as a typed error
    /// (`false` = delay fault, absorbed by bounded waits).
    pub fn is_error_fault(self) -> bool {
        matches!(self, FaultSite::PoolExhaust | FaultSite::PeerDied)
    }

    /// Inverse of [`Self::code`], for decoding `TR_FAULT.arg` offline.
    pub fn from_code(code: u32) -> Option<Self> {
        match code {
            1 => Some(FaultSite::NotifyDrop),
            2 => Some(FaultSite::LockStall),
            3 => Some(FaultSite::PoolExhaust),
            4 => Some(FaultSite::PeerDied),
            _ => None,
        }
    }
}

/// Per-site injection rates and the seed, set once at install time.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Seed for the plane's deterministic RNG.
    pub seed: u64,
    /// Probability of swallowing a notify's wake.
    pub notify_drop: f64,
    /// Probability of stalling a lock acquisition.
    pub lock_stall: f64,
    /// Probability of forcing a pool allocation to report exhaustion.
    pub pool_exhaust: f64,
    /// Probability of injecting a `PeerDied` on a send/receive.
    pub peer_died: f64,
}

impl FaultConfig {
    /// All rates zero — combine with the `with_*` setters.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            notify_drop: 0.0,
            lock_stall: 0.0,
            pool_exhaust: 0.0,
            peer_died: 0.0,
        }
    }

    /// One rate for every site — the "uniform chaos" matrix entry.
    pub fn uniform(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            notify_drop: rate,
            lock_stall: rate,
            pool_exhaust: rate,
            peer_died: rate,
        }
    }

    pub fn with_notify_drop(mut self, p: f64) -> Self {
        self.notify_drop = p;
        self
    }

    pub fn with_lock_stall(mut self, p: f64) -> Self {
        self.lock_stall = p;
        self
    }

    pub fn with_pool_exhaust(mut self, p: f64) -> Self {
        self.pool_exhaust = p;
        self
    }

    pub fn with_peer_died(mut self, p: f64) -> Self {
        self.peer_died = p;
        self
    }

    /// Parses the `MPF_FAULTS` environment form:
    /// `seed=7,rate=0.01` or per-site
    /// `seed=7,notify=0.02,lock=0.01,pool=0.005,peer=0.001`.
    /// Unknown keys are rejected (`None`) so CI typos fail loudly.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut cfg = FaultConfig::new(0);
        for tok in spec.split(',') {
            let tok = tok.trim();
            if tok.is_empty() {
                continue;
            }
            let (k, v) = tok.split_once('=')?;
            match k.trim() {
                "seed" => cfg.seed = v.trim().parse().ok()?,
                "rate" => {
                    let r: f64 = v.trim().parse().ok()?;
                    cfg.notify_drop = r;
                    cfg.lock_stall = r;
                    cfg.pool_exhaust = r;
                    cfg.peer_died = r;
                }
                "notify" => cfg.notify_drop = v.trim().parse().ok()?,
                "lock" => cfg.lock_stall = v.trim().parse().ok()?,
                "pool" => cfg.pool_exhaust = v.trim().parse().ok()?,
                "peer" => cfg.peer_died = v.trim().parse().ok()?,
                _ => return None,
            }
        }
        Some(cfg)
    }
}

/// Counts of injections actually performed, per site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub notify_drops: u64,
    pub lock_stalls: u64,
    pub pool_exhausts: u64,
    pub peer_died: u64,
}

impl FaultStats {
    /// Total injections across every site.
    pub fn total(&self) -> u64 {
        self.notify_drops + self.lock_stalls + self.pool_exhausts + self.peer_died
    }
}

struct Plane {
    cfg: FaultConfig,
    rng: SmallRng,
}

static INSTALLED: AtomicUsize = AtomicUsize::new(0);
static PLANE: Mutex<Option<Plane>> = Mutex::new(None);
static N_NOTIFY: AtomicU64 = AtomicU64::new(0);
static N_LOCK: AtomicU64 = AtomicU64::new(0);
static N_POOL: AtomicU64 = AtomicU64::new(0);
static N_PEER: AtomicU64 = AtomicU64::new(0);

/// Whether a fault plane is installed.  Relaxed single load — the cost
/// the production path pays at every instrumented site.
#[inline]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Relaxed) != 0
}

/// Uninstalls the plane when dropped.
#[must_use = "dropping the guard uninstalls the fault plane"]
pub struct FaultGuard(());

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *PLANE.lock().unwrap_or_else(|e| e.into_inner()) = None;
        INSTALLED.store(0, Ordering::SeqCst);
    }
}

/// Installs the process-global fault plane.  Panics if one is already
/// installed — overlapping planes would make the seeded sequence
/// meaningless.  Stats counters reset on install.
pub fn install(cfg: FaultConfig) -> FaultGuard {
    let mut plane = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    assert!(plane.is_none(), "a fault plane is already installed");
    *plane = Some(Plane {
        cfg,
        rng: SmallRng::seed_from_u64(cfg.seed),
    });
    N_NOTIFY.store(0, Ordering::Relaxed);
    N_LOCK.store(0, Ordering::Relaxed);
    N_POOL.store(0, Ordering::Relaxed);
    N_PEER.store(0, Ordering::Relaxed);
    INSTALLED.store(1, Ordering::SeqCst);
    FaultGuard(())
}

/// Installs from the `MPF_FAULTS` environment variable, if set and
/// well-formed.  This is how forked soak children and the CI fault
/// matrix opt in without code changes.
pub fn install_from_env() -> Option<FaultGuard> {
    let spec = std::env::var("MPF_FAULTS").ok()?;
    FaultConfig::parse(&spec).map(install)
}

/// Draws the injection decision for `site`.  `false` always when no
/// plane is installed; callers put this behind [`enabled`] themselves
/// only when they need to avoid computing arguments.
#[inline]
pub fn inject(site: FaultSite) -> bool {
    if !enabled() {
        return false;
    }
    inject_slow(site)
}

#[cold]
fn inject_slow(site: FaultSite) -> bool {
    let mut plane = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(p) = plane.as_mut() else {
        return false;
    };
    let rate = match site {
        FaultSite::NotifyDrop => p.cfg.notify_drop,
        FaultSite::LockStall => p.cfg.lock_stall,
        FaultSite::PoolExhaust => p.cfg.pool_exhaust,
        FaultSite::PeerDied => p.cfg.peer_died,
    };
    if rate <= 0.0 || !p.rng.gen_bool(rate) {
        return false;
    }
    match site {
        FaultSite::NotifyDrop => &N_NOTIFY,
        FaultSite::LockStall => &N_LOCK,
        FaultSite::PoolExhaust => &N_POOL,
        FaultSite::PeerDied => &N_PEER,
    }
    .fetch_add(1, Ordering::Relaxed);
    true
}

/// Injections performed since the plane was installed.
pub fn stats() -> FaultStats {
    FaultStats {
        notify_drops: N_NOTIFY.load(Ordering::Relaxed),
        lock_stalls: N_LOCK.load(Ordering::Relaxed),
        pool_exhausts: N_POOL.load(Ordering::Relaxed),
        peer_died: N_PEER.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The plane is process-global; tests in this module serialize on it
    // through `install`'s exclusivity (each takes and drops the guard).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_by_default_and_zero_rate_injects_nothing() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        assert!(!inject(FaultSite::PeerDied));
        let _g = install(FaultConfig::new(1));
        assert!(enabled());
        for _ in 0..100 {
            assert!(!inject(FaultSite::NotifyDrop));
        }
        assert_eq!(stats().total(), 0);
    }

    #[test]
    fn seeded_sequence_is_deterministic() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let draw = |seed| {
            let _g = install(FaultConfig::uniform(seed, 0.3));
            (0..64)
                .map(|_| inject(FaultSite::PoolExhaust))
                .collect::<Vec<_>>()
        };
        let a = draw(42);
        let b = draw(42);
        let c = draw(43);
        assert_eq!(a, b, "same seed, same fault sequence");
        assert_ne!(a, c, "different seed, different sequence");
        assert!(a.iter().any(|&x| x), "rate 0.3 over 64 draws fires");
        assert!(!a.iter().all(|&x| x));
    }

    #[test]
    fn stats_count_per_site() {
        let _t = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _g = install(FaultConfig::new(7).with_lock_stall(1.0));
        for _ in 0..5 {
            assert!(inject(FaultSite::LockStall));
            assert!(!inject(FaultSite::PeerDied));
        }
        let s = stats();
        assert_eq!(s.lock_stalls, 5);
        assert_eq!(s.peer_died, 0);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn env_spec_parses() {
        let cfg = FaultConfig::parse("seed=9,rate=0.5").unwrap();
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.notify_drop, 0.5);
        assert_eq!(cfg.peer_died, 0.5);
        let cfg = FaultConfig::parse("seed=3, notify=0.1, peer=0.2").unwrap();
        assert_eq!(cfg.notify_drop, 0.1);
        assert_eq!(cfg.lock_stall, 0.0);
        assert_eq!(cfg.peer_died, 0.2);
        assert!(FaultConfig::parse("seed=1,bogus=2").is_none());
        assert!(FaultConfig::parse("seed").is_none());
    }

    #[test]
    fn site_codes_are_stable_and_classified() {
        assert_eq!(FaultSite::NotifyDrop.code(), 1);
        assert_eq!(FaultSite::PeerDied.code(), 4);
        assert!(!FaultSite::NotifyDrop.is_error_fault());
        assert!(!FaultSite::LockStall.is_error_fault());
        assert!(FaultSite::PoolExhaust.is_error_fault());
        assert!(FaultSite::PeerDied.is_error_fault());
    }
}
