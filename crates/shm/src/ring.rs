//! io_uring-style submission/completion rings for batched message passing.
//!
//! The paper's primitives are strictly synchronous: every `message_send`
//! takes the LNVC lock and notifies receivers once per message.  At small
//! message sizes that per-message lock/notify traffic dominates (the same
//! observation behind Figure 3's asymptote — and behind modern batched
//! I/O interfaces).  An [`AioRing`] amortises it: a submitter fills a
//! cache-line-padded ring of 32-byte descriptors and rings **one futex
//! doorbell per batch**; a drainer completes the batch into a companion
//! completion ring under a single lock hold.
//!
//! The ring is `#[repr(C)]`, offset-addressed and valid for any zeroed
//! bit pattern, so the multi-process backend carves one submission ring
//! and one completion ring per process slot directly into the shared
//! region (`RegionLayout` segments "aio sq rings" / "aio cq rings"); the
//! thread backend keeps heap instances of the identical struct.
//!
//! # Discipline
//!
//! Single-producer / single-consumer: one side owns `tail` (push), the
//! other owns `head` (pop); the only synchronization is one
//! release/acquire pair per side, exactly like
//! [`crate::waitq::WaitQueue`]'s sequence protocol and the one-to-one
//! channel.  In both backends a ring belongs to one process slot: that
//! process pushes submissions and pops completions; whoever drains
//! (usually the same process, inline) pops submissions and pushes
//! completions.  Observers ([`AioRing::depth`], the region inspector) may
//! read counters from anywhere.
//!
//! Push/pop report [`crate::hooks::SyncEvent::StackPush`]/`StackPop`
//! yield points, so the `mpf-check` harness can permute ring operations
//! against the rest of the facility.

use std::sync::atomic::{AtomicI32, AtomicU32, AtomicU64, Ordering};

use crate::hooks::{self, SyncEvent};
use crate::waitq::FutexSeq;

/// Descriptor slots per ring.  A power of two, fixed so the region layout
/// stays a pure function of the facility configuration.
pub const AIO_RING_SLOTS: usize = 64;
/// Bytes per ring descriptor.
pub const AIO_RING_ENTRY_BYTES: usize = 32;
/// Bytes of the ring header (three padded cache lines: producer cursor,
/// consumer cursor, doorbell + counters).
pub const AIO_RING_HEADER_BYTES: usize = 192;
/// Total bytes of one ring.
pub const AIO_RING_BYTES: usize = AIO_RING_HEADER_BYTES + AIO_RING_SLOTS * AIO_RING_ENTRY_BYTES;

/// One descriptor, by value.  The meaning of the fields is the caller's:
/// the facilities put the LNVC id in `lnvc`, a pool index in `arg0`, the
/// payload length in `arg1`, and a caller-supplied token in `user_data`;
/// `status` carries an `MpfError` status code on completions (0 = ok).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RingEntry {
    /// Caller-owned token, returned untouched on the completion.
    pub user_data: u64,
    /// Causal trace id of the staged message (0 = untraced); carried from
    /// submission to completion so batched sends keep their chains.
    pub trace: u64,
    /// Conversation the descriptor concerns.
    pub lnvc: u32,
    /// First operand (facility-defined; message header index here).
    pub arg0: u32,
    /// Second operand (facility-defined; payload length here).
    pub arg1: u32,
    /// Completion status (0 = success, else an error status code).
    pub status: i32,
}

/// One in-ring descriptor slot.  All-atomic so the struct is valid for
/// any bit pattern and safely shareable across process mappings; the
/// release publish on `tail` (resp. `head`) orders the relaxed field
/// stores.
#[derive(Debug, Default)]
#[repr(C)]
struct Slot {
    user_data: AtomicU64,
    trace: AtomicU64,
    lnvc: AtomicU32,
    arg0: AtomicU32,
    arg1: AtomicU32,
    status: AtomicI32,
}

/// A bounded SPSC descriptor ring with a futex doorbell and counters.
#[derive(Debug)]
#[repr(C)]
pub struct AioRing {
    /// Producer cursor: descriptors pushed since reset.  Own line.
    tail: AtomicU32,
    _pad_tail: [u32; 15],
    /// Consumer cursor: descriptors popped since reset.  Own line.
    head: AtomicU32,
    _pad_head: [u32; 15],
    /// The doorbell a drainer sleeps on; rung once per batch.
    doorbell: FutexSeq,
    _pad_db: u32,
    /// Times the doorbell was rung (batches, not descriptors).
    doorbells: AtomicU64,
    /// Descriptors ever pushed (monotonic; `tail` mirrors it).
    enqueued: AtomicU64,
    /// Descriptors ever popped (monotonic; `head` mirrors it).
    dequeued: AtomicU64,
    _pad_tail2: [u64; 4],
    entries: [Slot; AIO_RING_SLOTS],
}

impl Default for AioRing {
    fn default() -> Self {
        Self::new()
    }
}

impl AioRing {
    /// A fresh, empty ring.
    pub fn new() -> Self {
        Self {
            tail: AtomicU32::new(0),
            _pad_tail: [0; 15],
            head: AtomicU32::new(0),
            _pad_head: [0; 15],
            doorbell: FutexSeq::new(),
            _pad_db: 0,
            doorbells: AtomicU64::new(0),
            enqueued: AtomicU64::new(0),
            dequeued: AtomicU64::new(0),
            _pad_tail2: [0; 4],
            entries: std::array::from_fn(|_| Slot::default()),
        }
    }

    /// Resets cursors and counters (region reuse; not for live rings).
    pub fn reset(&self) {
        self.tail.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
        self.doorbells.store(0, Ordering::Relaxed);
        self.enqueued.store(0, Ordering::Relaxed);
        self.dequeued.store(0, Ordering::Relaxed);
    }

    /// Descriptor capacity.
    pub const fn capacity(&self) -> usize {
        AIO_RING_SLOTS
    }

    /// Descriptors currently queued (push-side view).
    pub fn depth(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head) as usize
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.depth() == 0
    }

    /// True when a push would fail.
    pub fn is_full(&self) -> bool {
        self.depth() >= AIO_RING_SLOTS
    }

    /// Attempts to push `e`; `false` when the ring is full.  Does **not**
    /// ring the doorbell — submitters push a whole batch, then call
    /// [`AioRing::ring_doorbell`] once.
    pub fn try_push(&self, e: RingEntry) -> bool {
        hooks::yield_point(SyncEvent::StackPush(self as *const Self as usize));
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) as usize >= AIO_RING_SLOTS {
            return false;
        }
        let slot = &self.entries[tail as usize % AIO_RING_SLOTS];
        slot.user_data.store(e.user_data, Ordering::Relaxed);
        slot.trace.store(e.trace, Ordering::Relaxed);
        slot.lnvc.store(e.lnvc, Ordering::Relaxed);
        slot.arg0.store(e.arg0, Ordering::Relaxed);
        slot.arg1.store(e.arg1, Ordering::Relaxed);
        slot.status.store(e.status, Ordering::Relaxed);
        // The release publish transfers the slot's relaxed stores to the
        // consumer's acquire load of `tail`.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Attempts to pop the oldest descriptor; `None` when empty.
    pub fn try_pop(&self) -> Option<RingEntry> {
        hooks::yield_point(SyncEvent::StackPop(self as *const Self as usize));
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if tail == head {
            return None;
        }
        let slot = &self.entries[head as usize % AIO_RING_SLOTS];
        let e = RingEntry {
            user_data: slot.user_data.load(Ordering::Relaxed),
            trace: slot.trace.load(Ordering::Relaxed),
            lnvc: slot.lnvc.load(Ordering::Relaxed),
            arg0: slot.arg0.load(Ordering::Relaxed),
            arg1: slot.arg1.load(Ordering::Relaxed),
            status: slot.status.load(Ordering::Relaxed),
        };
        // Release returns slot ownership to the producer.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        self.dequeued.fetch_add(1, Ordering::Relaxed);
        Some(e)
    }

    /// Rings the doorbell: one sequence bump + futex wake for the whole
    /// batch pushed since the last ring.
    pub fn ring_doorbell(&self) {
        self.doorbells.fetch_add(1, Ordering::Relaxed);
        self.doorbell.notify_all();
    }

    /// The doorbell word, for drainers that sleep on it.
    pub fn doorbell(&self) -> &FutexSeq {
        &self.doorbell
    }

    /// Times the doorbell has been rung.
    pub fn doorbell_count(&self) -> u64 {
        self.doorbells.load(Ordering::Relaxed)
    }

    /// Descriptors ever pushed.
    pub fn total_enqueued(&self) -> u64 {
        self.enqueued.load(Ordering::Relaxed)
    }

    /// Descriptors ever popped.
    pub fn total_dequeued(&self) -> u64 {
        self.dequeued.load(Ordering::Relaxed)
    }
}

// Compile-time layout contract: the byte constants above are what
// `RegionLayout` carves; a drifted struct must fail the build, not corrupt
// a region.
const _: () = assert!(std::mem::size_of::<Slot>() == AIO_RING_ENTRY_BYTES);
const _: () = assert!(std::mem::size_of::<AioRing>() == AIO_RING_BYTES);
const _: () = assert!(std::mem::align_of::<AioRing>() <= 8);
const _: () = assert!(AIO_RING_SLOTS.is_power_of_two());
const _: () = assert!(AIO_RING_BYTES.is_multiple_of(64));

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u64) -> RingEntry {
        RingEntry {
            user_data: n,
            trace: n.wrapping_mul(7),
            lnvc: n as u32,
            arg0: (n * 2) as u32,
            arg1: (n * 3) as u32,
            status: 0,
        }
    }

    #[test]
    fn fifo_roundtrip() {
        let r = AioRing::new();
        assert!(r.is_empty());
        for i in 0..10 {
            assert!(r.try_push(e(i)));
        }
        assert_eq!(r.depth(), 10);
        for i in 0..10 {
            assert_eq!(r.try_pop(), Some(e(i)));
        }
        assert_eq!(r.try_pop(), None);
        assert_eq!(r.total_enqueued(), 10);
        assert_eq!(r.total_dequeued(), 10);
    }

    #[test]
    fn push_fails_when_full() {
        let r = AioRing::new();
        for i in 0..AIO_RING_SLOTS as u64 {
            assert!(r.try_push(e(i)));
        }
        assert!(r.is_full());
        assert!(!r.try_push(e(999)), "65th push must fail");
        assert_eq!(r.try_pop(), Some(e(0)));
        assert!(r.try_push(e(999)), "space after a pop");
    }

    #[test]
    fn cursors_survive_wraparound() {
        let r = AioRing::new();
        for round in 0..10_000u64 {
            assert!(r.try_push(e(round)));
            assert_eq!(r.try_pop(), Some(e(round)));
        }
        assert!(r.is_empty());
        assert_eq!(r.total_enqueued(), 10_000);
    }

    #[test]
    fn doorbell_counts_batches_not_entries() {
        let r = AioRing::new();
        let t = r.doorbell().ticket();
        for i in 0..8 {
            assert!(r.try_push(e(i)));
        }
        r.ring_doorbell();
        assert_eq!(r.doorbell_count(), 1);
        assert!(r.doorbell().wait(t, None), "doorbell moved the sequence");
    }

    #[test]
    fn reset_clears_state() {
        let r = AioRing::new();
        r.try_push(e(1));
        r.ring_doorbell();
        r.try_pop();
        r.reset();
        assert!(r.is_empty());
        assert_eq!(r.doorbell_count(), 0);
        assert_eq!(r.total_enqueued(), 0);
        assert_eq!(r.total_dequeued(), 0);
    }

    #[test]
    fn spsc_cross_thread_stream() {
        let r = AioRing::new();
        const N: u64 = 100_000;
        std::thread::scope(|s| {
            s.spawn(|| {
                for i in 0..N {
                    while !r.try_push(e(i)) {
                        std::hint::spin_loop();
                    }
                }
            });
            for i in 0..N {
                let got = loop {
                    if let Some(g) = r.try_pop() {
                        break g;
                    }
                    std::hint::spin_loop();
                };
                assert_eq!(got, e(i), "order and integrity at {i}");
            }
        });
        assert!(r.is_empty());
    }
}
