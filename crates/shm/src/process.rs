//! The paper's "group of Unix processes", realized as scoped OS threads.
//!
//! MPF parallel programs on the Balance 21000 were Unix processes sharing a
//! mapped region.  Threads give us the same shared region with the same
//! explicit-identity discipline: every participant carries a [`ProcessId`]
//! and all MPF calls name the calling process, exactly as the C interface
//! (`process_id` first argument) requires.

use std::num::NonZeroU32;

/// Identity of an MPF "process" (a participant in conversations).
///
/// Wraps a non-zero id so `Option<ProcessId>` is free and an uninitialized
/// zero in the shared region can never masquerade as a real process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(NonZeroU32);

impl ProcessId {
    /// Creates a process id from a non-zero raw value.
    pub fn new(raw: u32) -> Option<Self> {
        NonZeroU32::new(raw).map(Self)
    }

    /// Process id `index + 1`; convenient for loop-spawned workers.
    pub fn from_index(index: usize) -> Self {
        Self(NonZeroU32::new(index as u32 + 1).expect("index + 1 overflowed"))
    }

    /// Raw non-zero value.
    pub fn raw(self) -> u32 {
        self.0.get()
    }

    /// The zero-based index this id was created from.
    pub fn index(self) -> usize {
        (self.0.get() - 1) as usize
    }
}

impl std::fmt::Display for ProcessId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Runs `n` processes, each executing `body(pid)`, and joins them all.
///
/// Panics propagate: if any process panics, this function panics after all
/// others have been joined (scoped-thread semantics).
pub fn run_processes<F>(n: usize, body: F)
where
    F: Fn(ProcessId) + Sync,
{
    std::thread::scope(|s| {
        for i in 0..n {
            let body = &body;
            s.spawn(move || body(ProcessId::from_index(i)));
        }
    });
}

/// Like [`run_processes`] but collects each process's return value,
/// ordered by process index.
pub fn run_processes_collect<F, T>(n: usize, body: F) -> Vec<T>
where
    F: Fn(ProcessId) -> T + Sync,
    T: Send,
{
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let body = &body;
                s.spawn(move || body(ProcessId::from_index(i)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("process panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn ids_are_distinct_and_indexed() {
        let ids = run_processes_collect(8, |pid| pid);
        for (i, pid) in ids.iter().enumerate() {
            assert_eq!(pid.index(), i);
            assert_eq!(pid.raw(), i as u32 + 1);
        }
    }

    #[test]
    fn zero_raw_id_rejected() {
        assert!(ProcessId::new(0).is_none());
        assert!(ProcessId::new(1).is_some());
    }

    #[test]
    fn option_process_id_is_free() {
        assert_eq!(
            std::mem::size_of::<Option<ProcessId>>(),
            std::mem::size_of::<u32>()
        );
    }

    #[test]
    fn run_processes_runs_all() {
        let count = AtomicU32::new(0);
        run_processes(16, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn collect_preserves_order() {
        let squares = run_processes_collect(10, |pid| pid.index() * pid.index());
        assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn display_format() {
        assert_eq!(ProcessId::from_index(0).to_string(), "P1");
    }
}
