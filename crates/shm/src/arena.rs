//! The shared byte region for message payloads.
//!
//! MPF allocated one contiguous shared-memory region at `init()` and carved
//! message blocks out of it.  [`StridedArena`] is that region: a fixed byte
//! buffer divided into equal-stride slots.  Slot payloads are reached by
//! index; a slot's bytes are written by exactly one owner before the slot is
//! published (linked into a message under the LNVC lock, or the queue
//! pointer is released), after which any number of readers may copy from it
//! concurrently — the concurrency that gives the paper's Figure 5 its
//! super-single-stream broadcast throughput.

use std::cell::UnsafeCell;

/// Fixed shared byte region divided into `slots` slots of `stride` bytes.
#[derive(Debug)]
pub struct StridedArena {
    data: Box<[UnsafeCell<u8>]>,
    stride: usize,
}

// SAFETY: all access to the underlying bytes goes through the unsafe
// `write`/`read` methods whose contracts delegate exclusion and ordering to
// the caller (the MPF message/block protocol).
unsafe impl Sync for StridedArena {}
unsafe impl Send for StridedArena {}

impl StridedArena {
    /// Allocates a region of `slots * stride` zeroed bytes.
    pub fn new(slots: u32, stride: usize) -> Self {
        assert!(stride > 0, "stride must be non-zero");
        let len = slots as usize * stride;
        let data: Box<[UnsafeCell<u8>]> = (0..len).map(|_| UnsafeCell::new(0)).collect();
        Self { data, stride }
    }

    /// Bytes per slot.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of slots.
    pub fn slots(&self) -> u32 {
        (self.data.len() / self.stride) as u32
    }

    /// Total bytes in the region (the paper's "amount of shared memory
    /// necessary" estimate, for reporting).
    pub fn bytes(&self) -> usize {
        self.data.len()
    }

    #[inline]
    fn base(&self, slot: u32, offset: usize, len: usize) -> *mut u8 {
        let start = slot as usize * self.stride + offset;
        assert!(
            offset + len <= self.stride && (slot as usize) < self.slots() as usize,
            "arena access out of bounds: slot {slot}, offset {offset}, len {len}, stride {}",
            self.stride
        );
        self.data[start].get()
    }

    /// Copies `src` into slot `slot` starting at `offset`.
    ///
    /// # Safety
    /// The caller must own the slot (no concurrent writer, no concurrent
    /// reader) — in MPF, the slot has been popped from the block free list
    /// and not yet linked into a published message.
    pub unsafe fn write(&self, slot: u32, offset: usize, src: &[u8]) {
        let dst = self.base(slot, offset, src.len());
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst, src.len());
    }

    /// Lends the first `len` bytes of slot `slot` as a borrowed slice.
    ///
    /// # Safety
    /// Same contract as [`StridedArena::read`], plus: no writer may exist
    /// for the duration of `f` (the slice aliases the region).
    pub unsafe fn with_slice(&self, slot: u32, len: usize, f: &mut impl FnMut(&[u8])) {
        let ptr = self.base(slot, 0, len) as *const u8;
        f(std::slice::from_raw_parts(ptr, len));
    }

    /// Copies from slot `slot` starting at `offset` into `dst`.
    ///
    /// # Safety
    /// The caller must hold a happens-after edge from the owning write
    /// (in MPF, the acquire of the LNVC lock or queue pointer under which
    /// the message was published) and the slot must not be concurrently
    /// written.
    pub unsafe fn read(&self, slot: u32, offset: usize, dst: &mut [u8]) {
        let src = self.base(slot, offset, dst.len());
        std::ptr::copy_nonoverlapping(src as *const u8, dst.as_mut_ptr(), dst.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::thread;

    #[test]
    fn write_read_roundtrip() {
        let a = StridedArena::new(4, 16);
        let payload = [1u8, 2, 3, 4, 5];
        unsafe { a.write(2, 3, &payload) };
        let mut out = [0u8; 5];
        unsafe { a.read(2, 3, &mut out) };
        assert_eq!(out, payload);
    }

    #[test]
    fn slots_do_not_alias() {
        let a = StridedArena::new(3, 8);
        unsafe {
            a.write(0, 0, &[0xAA; 8]);
            a.write(1, 0, &[0xBB; 8]);
            a.write(2, 0, &[0xCC; 8]);
        }
        for (slot, byte) in [(0u32, 0xAAu8), (1, 0xBB), (2, 0xCC)] {
            let mut out = [0u8; 8];
            unsafe { a.read(slot, 0, &mut out) };
            assert!(out.iter().all(|&b| b == byte), "slot {slot} corrupted");
        }
    }

    #[test]
    fn geometry_reporting() {
        let a = StridedArena::new(10, 10);
        assert_eq!(a.stride(), 10);
        assert_eq!(a.slots(), 10);
        assert_eq!(a.bytes(), 100);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn overrun_within_slot_panics() {
        let a = StridedArena::new(2, 8);
        unsafe { a.write(0, 4, &[0u8; 5]) };
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_slot_panics() {
        let a = StridedArena::new(2, 8);
        let mut out = [0u8; 1];
        unsafe { a.read(2, 0, &mut out) };
    }

    #[test]
    fn publish_then_concurrent_readers() {
        let a = StridedArena::new(1, 64);
        let ready = AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(|| {
                unsafe { a.write(0, 0, &[7u8; 64]) };
                ready.store(true, Ordering::Release);
            });
            for _ in 0..4 {
                s.spawn(|| {
                    while !ready.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    let mut out = [0u8; 64];
                    unsafe { a.read(0, 0, &mut out) };
                    assert!(out.iter().all(|&b| b == 7));
                });
            }
        });
    }
}
