//! Mutual-exclusion primitives for the shared region.
//!
//! The paper's §3.1: "a synchronization lock for mutual exclusive access to
//! the LNVC descriptor".  On the Balance 21000 this was a busy-wait lock on
//! the bus's atomic lock memory.  We provide three interchangeable
//! realizations (DESIGN.md ablation A2):
//!
//! * [`SpinLock`] — test-and-test-and-set with exponential backoff; the
//!   closest analogue of the 1987 primitive.
//! * [`TicketLock`] — FIFO-fair; trades throughput for fairness, which
//!   matters for the FCFS receiver pools in Figure 4 style workloads.
//! * [`FutexLock`] — kernel-assisted sleeping lock (what a modern port
//!   would use); also the only kind that blocks efficiently *across
//!   processes*, since the futex is keyed by the physical page.
//!
//! All lock types are `#[repr(C)]` over atomics, so any of them may be
//! placed inside a shared-memory region and used from several address
//! spaces.  [`IpcLock`] extends [`FutexLock`]'s protocol with holder
//! identity and a generation counter, the hooks the multi-process
//! backend's dead-peer recovery needs (a crashed holder's lock can be
//! detected, broken, and the protected structure poisoned instead of
//! deadlocking every survivor).
//!
//! Every variant counts contended acquisitions so benchmarks can report
//! how much of a throughput dip is lock contention (the paper attributes
//! the 16/128-byte declines in Figure 4 to "increased LNVC contention").

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

use crate::backoff::Backoff;
use crate::futex;

/// Which lock implementation to use for region-internal mutual exclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockKind {
    /// Test-and-test-and-set spin lock with exponential backoff (default;
    /// closest to the 1987 substrate).
    #[default]
    Spin,
    /// FIFO ticket lock.
    Ticket,
    /// Kernel-assisted sleeping lock ([`FutexLock`]).
    Os,
}

/// Test-and-test-and-set spin lock with exponential backoff.
#[derive(Debug, Default)]
#[repr(C)]
pub struct SpinLock {
    locked: AtomicBool,
    contended: AtomicU64,
}

impl SpinLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
            contended: AtomicU64::new(0),
        }
    }

    /// Attempts to acquire without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires, spinning with backoff.  The read-only inner loop keeps the
    /// lock word in-cache so retries do not occupy the bus.
    pub fn lock(&self) {
        if crate::hooks::lock_acquire(self as *const Self as usize, &mut || self.try_lock()) {
            return;
        }
        if self.try_lock() {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self.try_lock() {
                return;
            }
        }
    }

    /// Releases.  Caller must hold the lock.
    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
        crate::hooks::lock_release(self as *const Self as usize);
    }

    /// Number of acquisitions that did not succeed on the first attempt.
    pub fn contended_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// FIFO ticket lock: acquirers take a ticket and wait for it to be served.
#[derive(Debug, Default)]
#[repr(C)]
pub struct TicketLock {
    next: AtomicU32,
    serving: AtomicU32,
    contended: AtomicU64,
}

impl TicketLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        Self {
            next: AtomicU32::new(0),
            serving: AtomicU32::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        self.next
            .compare_exchange(
                serving,
                serving.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Acquires in FIFO order.
    ///
    /// Under a schedule-exploration hook the acquisition goes through
    /// [`TicketLock::try_lock`] instead, so FIFO hand-off degenerates to
    /// whatever order the harness scheduler picks — acceptable, since the
    /// harness's whole point is to permute acquisition order.
    pub fn lock(&self) {
        if crate::hooks::lock_acquire(self as *const Self as usize, &mut || self.try_lock()) {
            return;
        }
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if self.serving.load(Ordering::Acquire) == ticket {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
    }

    /// Releases.  Caller must hold the lock.
    pub fn unlock(&self) {
        let serving = self.serving.load(Ordering::Relaxed);
        self.serving
            .store(serving.wrapping_add(1), Ordering::Release);
        crate::hooks::lock_release(self as *const Self as usize);
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// Kernel-assisted sleeping lock (Drepper's three-state futex mutex).
///
/// States: 0 free, 1 held, 2 held with (possible) sleepers.  Contended
/// acquirers sleep in the kernel instead of burning a CPU, and because
/// the futex is keyed by physical page, waiters in *other processes*
/// mapping the same region sleep and wake correctly too.  On hosts
/// without futexes the wait degrades to a bounded yield-sleep.
#[derive(Debug, Default)]
#[repr(C)]
pub struct FutexLock {
    state: AtomicU32,
    contended: AtomicU64,
}

impl FutexLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Attempts to acquire without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires, sleeping in the kernel while contended.
    pub fn lock(&self) {
        if crate::hooks::lock_acquire(self as *const Self as usize, &mut || self.try_lock()) {
            return;
        }
        if self.try_lock() {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        // Mark contended and sleep until handed 0.
        while self.state.swap(2, Ordering::Acquire) != 0 {
            futex::futex_wait(&self.state, 2, Some(Duration::from_millis(50)));
        }
    }

    /// Releases.  Caller must hold the lock.
    pub fn unlock(&self) {
        if self.state.swap(0, Ordering::Release) == 2 {
            futex::futex_wake_one(&self.state);
        }
        crate::hooks::lock_release(self as *const Self as usize);
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// Outcome of an [`IpcLock`] acquisition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IpcAcquire {
    /// Acquired a healthy lock.
    Clean,
    /// Acquired, but the lock is poisoned: a previous holder died inside
    /// the critical section, so the protected structure may be torn.
    Poisoned,
}

/// The in-region lock of the multi-process backend: [`FutexLock`]'s
/// protocol plus holder identity, a break generation, and a poison flag.
///
/// Deadlock robustness: an acquirer that waits longer than its patience
/// asks a caller-supplied liveness oracle about the recorded holder.  If
/// the holder is dead, the acquirer *breaks* the lock — poisons it,
/// bumps the generation, force-releases — and acquisition proceeds.  The
/// poison flag tells every later acquirer that the protected state may
/// be mid-update (the facility layer then fails the conversation with a
/// peer-death error instead of computing garbage).
#[derive(Debug, Default)]
#[repr(C)]
pub struct IpcLock {
    state: AtomicU32,
    /// MPF process id (raw, non-zero) of the current holder; 0 when free.
    owner: AtomicU32,
    /// Bumped each time the lock is forcibly broken.
    generation: AtomicU32,
    /// Sticky: set when a holder died inside the critical section.
    poisoned: AtomicU32,
}

/// How long an [`IpcLock`] acquirer waits between liveness probes.
pub const IPC_LOCK_PATIENCE: Duration = Duration::from_millis(20);

impl IpcLock {
    /// New, unlocked, unpoisoned.
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
            owner: AtomicU32::new(0),
            generation: AtomicU32::new(0),
            poisoned: AtomicU32::new(0),
        }
    }

    /// Attempts to acquire without waiting; records `me` as holder.
    pub fn try_lock(&self, me: u32) -> bool {
        if self
            .state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            self.owner.store(me, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Acquires as process `me`.  `is_alive` maps a recorded holder id to
    /// liveness; it is consulted only after [`IPC_LOCK_PATIENCE`] of
    /// fruitless waiting.  Returns whether the lock was clean.
    pub fn lock(&self, me: u32, is_alive: impl Fn(u32) -> bool) -> IpcAcquire {
        self.lock_traced(me, is_alive).0
    }

    /// Like [`Self::lock`], additionally reporting whether the acquirer
    /// found the lock held (`true` = contended) — the telemetry layer's
    /// contention signal.  The lock itself carries no counter: its 16-byte
    /// `#[repr(C)]` layout is part of the frozen region ABI.  Under a
    /// schedule-exploration hook, blocking is modeled by the scheduler and
    /// reported as uncontended.
    pub fn lock_traced(&self, me: u32, is_alive: impl Fn(u32) -> bool) -> (IpcAcquire, bool) {
        // Under a schedule-exploration hook, peers are threads of one
        // process but can still *model* death: the harness marks a
        // victim's slot dead, so the oracle is consulted on every failed
        // try (no wall-clock patience — the scheduler already controls
        // when this retry runs).
        if crate::hooks::lock_acquire(self as *const Self as usize, &mut || {
            if self.try_lock(me) {
                return true;
            }
            let holder = self.owner.load(Ordering::Relaxed);
            if holder != 0 && holder != me && !is_alive(holder) {
                self.break_dead_holder(holder);
                return self.try_lock(me);
            }
            false
        }) {
            return (
                if self.is_poisoned() {
                    IpcAcquire::Poisoned
                } else {
                    IpcAcquire::Clean
                },
                false,
            );
        }
        if crate::faultplane::inject(crate::faultplane::FaultSite::LockStall) {
            // Injected acquire stall: long enough that peers observe a
            // slow holder, far shorter than IPC_LOCK_PATIENCE so a live
            // staller is never mistaken for a corpse.
            std::thread::sleep(IPC_LOCK_PATIENCE / 10);
        }
        let mut contended = false;
        if !self.try_lock(me) {
            contended = true;
            loop {
                if self.state.swap(2, Ordering::Acquire) == 0 {
                    self.owner.store(me, Ordering::Relaxed);
                    break;
                }
                futex::futex_wait(&self.state, 2, Some(IPC_LOCK_PATIENCE));
                let holder = self.owner.load(Ordering::Relaxed);
                if holder != 0 && holder != me && !is_alive(holder) {
                    self.break_dead_holder(holder);
                }
            }
        }
        (
            if self.is_poisoned() {
                IpcAcquire::Poisoned
            } else {
                IpcAcquire::Clean
            },
            contended,
        )
    }

    /// Breaks a lock whose recorded holder is known dead: poison, bump
    /// generation, force-release, wake everyone.  Idempotent — exactly
    /// one concurrent breaker wins the owner CAS.
    fn break_dead_holder(&self, holder: u32) {
        if self
            .owner
            .compare_exchange(holder, 0, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            // The poison word doubles as the culprit record: any nonzero
            // value means poisoned, and a value other than `u32::MAX`
            // names the dead holder's owner id.
            self.poisoned.store(holder, Ordering::Release);
            self.generation.fetch_add(1, Ordering::Release);
            self.state.store(0, Ordering::Release);
            futex::futex_wake_all(&self.state);
        }
    }

    /// Releases.  Caller must hold the lock.
    pub fn unlock(&self) {
        self.owner.store(0, Ordering::Relaxed);
        if self.state.swap(0, Ordering::Release) == 2 {
            futex::futex_wake_one(&self.state);
        }
        crate::hooks::lock_release(self as *const Self as usize);
    }

    /// Marks the protected structure as possibly torn (also set by
    /// [`IpcLock::lock`] when it breaks a dead holder's lock).
    pub fn poison(&self) {
        self.poisoned.store(u32::MAX, Ordering::Release);
    }

    /// Returns the lock to its pristine free state (clears poison; keeps
    /// the break generation, which is monotonic).  Only sound while no
    /// other process can reach the protected structure — e.g. when a
    /// deleted descriptor slot is reactivated under the allocation lock.
    pub fn reset(&self) {
        self.owner.store(0, Ordering::Relaxed);
        self.poisoned.store(0, Ordering::Relaxed);
        self.state.store(0, Ordering::Release);
    }

    /// Whether a holder ever died inside the critical section.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire) != 0
    }

    /// Owner id of the dead holder whose lock was broken, when known
    /// (`None` if unpoisoned or poisoned via [`IpcLock::poison`]).
    pub fn poison_culprit(&self) -> Option<u32> {
        match self.poisoned.load(Ordering::Acquire) {
            0 | u32::MAX => None,
            holder => Some(holder),
        }
    }

    /// Times the lock has been forcibly broken.
    pub fn generation(&self) -> u32 {
        self.generation.load(Ordering::Acquire)
    }

    /// Recorded holder (0 when free) — diagnostic.
    pub fn holder(&self) -> u32 {
        self.owner.load(Ordering::Relaxed)
    }
}

/// A region lock with a run-time-selected implementation.
///
/// LNVC descriptors embed one of these; the kind is fixed at
/// [`ShmLock::new`] time from the facility configuration.
pub enum ShmLock {
    /// TTAS spin lock.
    Spin(SpinLock),
    /// FIFO ticket lock.
    Ticket(TicketLock),
    /// Kernel-assisted sleeping lock.
    Os(FutexLock),
}

impl std::fmt::Debug for ShmLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            ShmLock::Spin(_) => "Spin",
            ShmLock::Ticket(_) => "Ticket",
            ShmLock::Os(_) => "Os",
        };
        f.debug_struct("ShmLock")
            .field("kind", &kind)
            .field("contended", &self.contended_count())
            .finish()
    }
}

impl Default for ShmLock {
    fn default() -> Self {
        ShmLock::Spin(SpinLock::new())
    }
}

impl ShmLock {
    /// Creates an unlocked lock of the requested kind.
    pub fn new(kind: LockKind) -> Self {
        match kind {
            LockKind::Spin => ShmLock::Spin(SpinLock::new()),
            LockKind::Ticket => ShmLock::Ticket(TicketLock::new()),
            LockKind::Os => ShmLock::Os(FutexLock::new()),
        }
    }

    /// Acquires; the guard releases on drop.
    pub fn lock(&self) -> ShmLockGuard<'_> {
        match self {
            ShmLock::Spin(l) => l.lock(),
            ShmLock::Ticket(l) => l.lock(),
            ShmLock::Os(l) => l.lock(),
        }
        ShmLockGuard { lock: self }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> Option<ShmLockGuard<'_>> {
        let ok = match self {
            ShmLock::Spin(l) => l.try_lock(),
            ShmLock::Ticket(l) => l.try_lock(),
            ShmLock::Os(l) => l.try_lock(),
        };
        // `then` (not `then_some`): the guard must only exist — and thus
        // only ever unlock on drop — if the acquisition succeeded.
        ok.then(|| ShmLockGuard { lock: self })
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        match self {
            ShmLock::Spin(l) => l.contended_count(),
            ShmLock::Ticket(l) => l.contended_count(),
            ShmLock::Os(l) => l.contended_count(),
        }
    }

    fn unlock(&self) {
        match self {
            ShmLock::Spin(l) => l.unlock(),
            ShmLock::Ticket(l) => l.unlock(),
            ShmLock::Os(l) => l.unlock(),
        }
    }
}

/// RAII guard; releases the [`ShmLock`] on drop.
#[derive(Debug)]
pub struct ShmLockGuard<'a> {
    lock: &'a ShmLock,
}

impl Drop for ShmLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

// Compile-time layout contracts.  These types are placed inside shared
// regions at offsets computed from these exact sizes and alignments; a
// refactor that changed them would silently corrupt every cross-process
// layout (and could reintroduce false sharing the carve was sized
// against), so the build fails instead.
const _: () = assert!(std::mem::size_of::<SpinLock>() == 16);
const _: () = assert!(std::mem::align_of::<SpinLock>() == 8);
const _: () = assert!(std::mem::size_of::<TicketLock>() == 16);
const _: () = assert!(std::mem::align_of::<TicketLock>() == 8);
const _: () = assert!(std::mem::size_of::<FutexLock>() == 16);
const _: () = assert!(std::mem::align_of::<FutexLock>() == 8);
const _: () = assert!(std::mem::size_of::<IpcLock>() == 16);
const _: () = assert!(std::mem::align_of::<IpcLock>() == 4);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    struct Wrap(std::cell::UnsafeCell<usize>);
    unsafe impl Sync for Wrap {}
    impl Wrap {
        fn ptr(&self) -> *mut usize {
            self.0.get()
        }
    }

    fn hammer(lock: &ShmLock, threads: usize, iters: usize) -> usize {
        let counter = AtomicUsize::new(0);
        let wrap = Wrap(std::cell::UnsafeCell::new(0usize));
        thread::scope(|s| {
            for _ in 0..threads {
                let wrap = &wrap;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        let _g = lock.lock();
                        // SAFETY: mutual exclusion provided by the lock.
                        unsafe { *wrap.ptr() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        unsafe { *wrap.ptr() }
    }

    #[test]
    fn spin_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Spin);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Ticket);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn os_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Os);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Os] {
            let lock = ShmLock::new(kind);
            let g = lock.lock();
            assert!(lock.try_lock().is_none(), "{kind:?}");
            drop(g);
            assert!(lock.try_lock().is_some(), "{kind:?}");
        }
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = ShmLock::new(LockKind::Spin);
        drop(lock.lock());
        drop(lock.lock());
    }

    #[test]
    fn contention_counter_counts_forced_contention() {
        for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Os] {
            let lock = ShmLock::new(kind);
            let entered = AtomicUsize::new(0);
            thread::scope(|s| {
                let g = lock.lock();
                let handle = s.spawn(|| {
                    entered.fetch_add(1, Ordering::SeqCst);
                    let _g = lock.lock(); // must contend: main holds it
                });
                while entered.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
                thread::sleep(std::time::Duration::from_millis(10));
                drop(g);
                handle.join().unwrap();
            });
            assert!(lock.contended_count() > 0, "{kind:?}");
        }
    }

    #[test]
    fn raw_spin_try_lock_semantics() {
        let l = SpinLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn raw_futex_lock_semantics() {
        let l = FutexLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn ipc_lock_mutual_exclusion() {
        let lock = IpcLock::new();
        let counter = AtomicUsize::new(0);
        let wrap = Wrap(std::cell::UnsafeCell::new(0usize));
        thread::scope(|s| {
            for t in 0..4u32 {
                let wrap = &wrap;
                let counter = &counter;
                let lock = &lock;
                s.spawn(move || {
                    for _ in 0..5_000 {
                        assert_eq!(lock.lock(t + 1, |_| true), IpcAcquire::Clean);
                        // SAFETY: mutual exclusion provided by the lock.
                        unsafe { *wrap.ptr() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                });
            }
        });
        assert_eq!(unsafe { *wrap.ptr() }, 20_000);
        assert!(!lock.is_poisoned());
    }

    #[test]
    fn ipc_lock_breaks_dead_holder_and_poisons() {
        let lock = IpcLock::new();
        // "Process 7" acquires and then dies without unlocking.
        assert!(lock.try_lock(7));
        assert_eq!(lock.holder(), 7);
        let gen_before = lock.generation();
        // Survivor (process 2) acquires with an oracle that knows 7 died.
        let acq = lock.lock(2, |pid| pid != 7);
        assert_eq!(acq, IpcAcquire::Poisoned);
        assert_eq!(lock.holder(), 2);
        assert!(lock.is_poisoned());
        assert_eq!(lock.poison_culprit(), Some(7));
        assert_eq!(lock.generation(), gen_before + 1);
        lock.unlock();
        // Poison is sticky for later acquirers.
        assert_eq!(lock.lock(3, |_| true), IpcAcquire::Poisoned);
        lock.unlock();
    }

    #[test]
    fn ipc_lock_live_holder_is_waited_for() {
        let lock = IpcLock::new();
        let released = AtomicUsize::new(0);
        thread::scope(|s| {
            assert!(lock.try_lock(1));
            let handle = s.spawn(|| {
                // Holder is alive: must block until the real unlock, well
                // past several patience windows.
                assert_eq!(lock.lock(2, |_| true), IpcAcquire::Clean);
                assert_eq!(released.load(Ordering::SeqCst), 1);
                lock.unlock();
            });
            thread::sleep(IPC_LOCK_PATIENCE * 3);
            released.store(1, Ordering::SeqCst);
            lock.unlock();
            handle.join().unwrap();
        });
        assert!(!lock.is_poisoned());
    }

    #[test]
    fn raw_ticket_try_lock_semantics() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn ticket_lock_is_fifo_under_sequential_use() {
        let l = TicketLock::new();
        for _ in 0..1000 {
            l.lock();
            l.unlock();
        }
        assert_eq!(l.contended_count(), 0);
    }
}
