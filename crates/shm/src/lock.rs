//! Mutual-exclusion primitives for the shared region.
//!
//! The paper's §3.1: "a synchronization lock for mutual exclusive access to
//! the LNVC descriptor".  On the Balance 21000 this was a busy-wait lock on
//! the bus's atomic lock memory.  We provide three interchangeable
//! realizations (DESIGN.md ablation A2):
//!
//! * [`SpinLock`] — test-and-test-and-set with exponential backoff; the
//!   closest analogue of the 1987 primitive.
//! * [`TicketLock`] — FIFO-fair; trades throughput for fairness, which
//!   matters for the FCFS receiver pools in Figure 4 style workloads.
//! * OS mutex (`parking_lot::RawMutex`) — what a modern port would use.
//!
//! Every variant counts contended acquisitions so benchmarks can report
//! how much of a throughput dip is lock contention (the paper attributes
//! the 16/128-byte declines in Figure 4 to "increased LNVC contention").

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

use parking_lot::lock_api::RawMutex as _;

use crate::backoff::Backoff;

/// Which lock implementation to use for region-internal mutual exclusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockKind {
    /// Test-and-test-and-set spin lock with exponential backoff (default;
    /// closest to the 1987 substrate).
    #[default]
    Spin,
    /// FIFO ticket lock.
    Ticket,
    /// Operating-system mutex (`parking_lot`).
    Os,
}

/// Test-and-test-and-set spin lock with exponential backoff.
#[derive(Debug, Default)]
pub struct SpinLock {
    locked: AtomicBool,
    contended: AtomicU64,
}

impl SpinLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        Self {
            locked: AtomicBool::new(false),
            contended: AtomicU64::new(0),
        }
    }

    /// Attempts to acquire without waiting.
    #[inline]
    pub fn try_lock(&self) -> bool {
        self.locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    /// Acquires, spinning with backoff.  The read-only inner loop keeps the
    /// lock word in-cache so retries do not occupy the bus.
    pub fn lock(&self) {
        if self.try_lock() {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        loop {
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self.try_lock() {
                return;
            }
        }
    }

    /// Releases.  Caller must hold the lock.
    #[inline]
    pub fn unlock(&self) {
        self.locked.store(false, Ordering::Release);
    }

    /// Number of acquisitions that did not succeed on the first attempt.
    pub fn contended_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// FIFO ticket lock: acquirers take a ticket and wait for it to be served.
#[derive(Debug, Default)]
pub struct TicketLock {
    next: AtomicU32,
    serving: AtomicU32,
    contended: AtomicU64,
}

impl TicketLock {
    /// New, unlocked.
    pub const fn new() -> Self {
        Self {
            next: AtomicU32::new(0),
            serving: AtomicU32::new(0),
            contended: AtomicU64::new(0),
        }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> bool {
        let serving = self.serving.load(Ordering::Relaxed);
        self.next
            .compare_exchange(
                serving,
                serving.wrapping_add(1),
                Ordering::Acquire,
                Ordering::Relaxed,
            )
            .is_ok()
    }

    /// Acquires in FIFO order.
    pub fn lock(&self) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        if self.serving.load(Ordering::Acquire) == ticket {
            return;
        }
        self.contended.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
    }

    /// Releases.  Caller must hold the lock.
    pub fn unlock(&self) {
        let serving = self.serving.load(Ordering::Relaxed);
        self.serving
            .store(serving.wrapping_add(1), Ordering::Release);
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

/// A region lock with a run-time-selected implementation.
///
/// LNVC descriptors embed one of these; the kind is fixed at
/// [`ShmLock::new`] time from the facility configuration.
pub enum ShmLock {
    /// TTAS spin lock.
    Spin(SpinLock),
    /// FIFO ticket lock.
    Ticket(TicketLock),
    /// OS mutex.
    Os(parking_lot::RawMutex, AtomicU64),
}

impl std::fmt::Debug for ShmLock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match self {
            ShmLock::Spin(_) => "Spin",
            ShmLock::Ticket(_) => "Ticket",
            ShmLock::Os(..) => "Os",
        };
        f.debug_struct("ShmLock")
            .field("kind", &kind)
            .field("contended", &self.contended_count())
            .finish()
    }
}

impl Default for ShmLock {
    fn default() -> Self {
        ShmLock::Spin(SpinLock::new())
    }
}

impl ShmLock {
    /// Creates an unlocked lock of the requested kind.
    pub fn new(kind: LockKind) -> Self {
        match kind {
            LockKind::Spin => ShmLock::Spin(SpinLock::new()),
            LockKind::Ticket => ShmLock::Ticket(TicketLock::new()),
            LockKind::Os => ShmLock::Os(parking_lot::RawMutex::INIT, AtomicU64::new(0)),
        }
    }

    /// Acquires; the guard releases on drop.
    pub fn lock(&self) -> ShmLockGuard<'_> {
        match self {
            ShmLock::Spin(l) => l.lock(),
            ShmLock::Ticket(l) => l.lock(),
            ShmLock::Os(l, contended) => {
                if !l.try_lock() {
                    contended.fetch_add(1, Ordering::Relaxed);
                    l.lock();
                }
            }
        }
        ShmLockGuard { lock: self }
    }

    /// Attempts to acquire without waiting.
    pub fn try_lock(&self) -> Option<ShmLockGuard<'_>> {
        let ok = match self {
            ShmLock::Spin(l) => l.try_lock(),
            ShmLock::Ticket(l) => l.try_lock(),
            ShmLock::Os(l, _) => l.try_lock(),
        };
        // `then` (not `then_some`): the guard must only exist — and thus
        // only ever unlock on drop — if the acquisition succeeded.
        ok.then(|| ShmLockGuard { lock: self })
    }

    /// Number of acquisitions that had to wait.
    pub fn contended_count(&self) -> u64 {
        match self {
            ShmLock::Spin(l) => l.contended_count(),
            ShmLock::Ticket(l) => l.contended_count(),
            ShmLock::Os(_, c) => c.load(Ordering::Relaxed),
        }
    }

    fn unlock(&self) {
        match self {
            ShmLock::Spin(l) => l.unlock(),
            ShmLock::Ticket(l) => l.unlock(),
            // SAFETY: only ShmLockGuard::drop calls this, and a guard is
            // only created after a successful acquisition on this lock.
            ShmLock::Os(l, _) => unsafe { l.unlock() },
        }
    }
}

/// RAII guard; releases the [`ShmLock`] on drop.
#[derive(Debug)]
pub struct ShmLockGuard<'a> {
    lock: &'a ShmLock,
}

impl Drop for ShmLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    struct Wrap(std::cell::UnsafeCell<usize>);
    unsafe impl Sync for Wrap {}
    impl Wrap {
        fn ptr(&self) -> *mut usize {
            self.0.get()
        }
    }

    fn hammer(lock: &ShmLock, threads: usize, iters: usize) -> usize {
        let counter = AtomicUsize::new(0);
        let wrap = Wrap(std::cell::UnsafeCell::new(0usize));
        thread::scope(|s| {
            for _ in 0..threads {
                let wrap = &wrap;
                let counter = &counter;
                s.spawn(move || {
                    for _ in 0..iters {
                        let _g = lock.lock();
                        // SAFETY: mutual exclusion provided by the lock.
                        unsafe { *wrap.ptr() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        unsafe { *wrap.ptr() }
    }

    #[test]
    fn spin_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Spin);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn ticket_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Ticket);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn os_lock_mutual_exclusion() {
        let lock = ShmLock::new(LockKind::Os);
        assert_eq!(hammer(&lock, 4, 5_000), 20_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Os] {
            let lock = ShmLock::new(kind);
            let g = lock.lock();
            assert!(lock.try_lock().is_none(), "{kind:?}");
            drop(g);
            assert!(lock.try_lock().is_some(), "{kind:?}");
        }
    }

    #[test]
    fn guard_releases_on_drop() {
        let lock = ShmLock::new(LockKind::Spin);
        drop(lock.lock());
        drop(lock.lock());
    }

    #[test]
    fn contention_counter_counts_forced_contention() {
        for kind in [LockKind::Spin, LockKind::Ticket, LockKind::Os] {
            let lock = ShmLock::new(kind);
            let entered = AtomicUsize::new(0);
            thread::scope(|s| {
                let g = lock.lock();
                let handle = s.spawn(|| {
                    entered.fetch_add(1, Ordering::SeqCst);
                    let _g = lock.lock(); // must contend: main holds it
                });
                while entered.load(Ordering::SeqCst) == 0 {
                    std::hint::spin_loop();
                }
                thread::sleep(std::time::Duration::from_millis(10));
                drop(g);
                handle.join().unwrap();
            });
            assert!(lock.contended_count() > 0, "{kind:?}");
        }
    }

    #[test]
    fn raw_spin_try_lock_semantics() {
        let l = SpinLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn raw_ticket_try_lock_semantics() {
        let l = TicketLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
        l.unlock();
    }

    #[test]
    fn ticket_lock_is_fifo_under_sequential_use() {
        let l = TicketLock::new();
        for _ in 0..1000 {
            l.lock();
            l.unlock();
        }
        assert_eq!(l.contended_count(), 0);
    }
}
