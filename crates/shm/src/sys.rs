//! Minimal raw-syscall layer (Linux x86_64 / aarch64).
//!
//! The container this reproduction builds in has no `libc` crate, and the
//! multi-process backend needs exactly four facilities `std` does not
//! expose: `mmap`/`munmap` for mapping a named region, `futex` for
//! cross-process wait/notify, and `kill(pid, 0)` for peer-liveness probes.
//! Each is a single instruction-level syscall wrapper here; everything
//! else (opening, sizing and unlinking the backing file) goes through
//! `std::fs`.
//!
//! On other platforms the module compiles to conservative fallbacks: no
//! mapping (callers fall back to heap memory), futexes degrade to
//! yield-sleeps, and every probed process is presumed alive.

/// `true` when real `mmap`/`futex`/`kill` syscalls are available.
pub const HAVE_SYSCALLS: bool = cfg!(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
));

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const MMAP: usize = 9;
    pub const MUNMAP: usize = 11;
    pub const KILL: usize = 62;
    pub const FUTEX: usize = 202;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const MMAP: usize = 222;
    pub const MUNMAP: usize = 215;
    pub const KILL: usize = 129;
    pub const FUTEX: usize = 98;
}

/// Raw six-argument syscall.  Returns the kernel's raw result: `-errno`
/// on failure.
///
/// # Safety
/// The caller must uphold the contract of the specific syscall.
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "syscall",
        inlateout("rax") nr as isize => ret,
        in("rdi") a1,
        in("rsi") a2,
        in("rdx") a3,
        in("r10") a4,
        in("r8") a5,
        in("r9") a6,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack)
    );
    ret
}

/// Raw six-argument syscall.  Returns the kernel's raw result: `-errno`
/// on failure.
///
/// # Safety
/// The caller must uphold the contract of the specific syscall.
#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub unsafe fn syscall6(
    nr: usize,
    a1: usize,
    a2: usize,
    a3: usize,
    a4: usize,
    a5: usize,
    a6: usize,
) -> isize {
    let ret: isize;
    core::arch::asm!(
        "svc 0",
        inlateout("x0") a1 as isize => ret,
        in("x1") a2,
        in("x2") a3,
        in("x3") a4,
        in("x4") a5,
        in("x5") a6,
        in("x8") nr,
        options(nostack)
    );
    ret
}

/// `ESRCH`: no such process.
pub const ESRCH: i32 = 3;
/// `EINTR`: interrupted.
pub const EINTR: i32 = 4;
/// `EAGAIN`: futex word did not hold the expected value.
pub const EAGAIN: i32 = 11;
/// `ETIMEDOUT`: futex wait timed out.
pub const ETIMEDOUT: i32 = 110;

/// `struct timespec` as the futex syscall expects it.
#[repr(C)]
pub struct Timespec {
    /// Seconds.
    pub tv_sec: i64,
    /// Nanoseconds.
    pub tv_nsec: i64,
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod real {
    use super::{nr, syscall6, Timespec};

    const PROT_READ: usize = 1;
    const PROT_WRITE: usize = 2;
    const MAP_SHARED: usize = 0x01;

    const FUTEX_WAIT: usize = 0;
    const FUTEX_WAKE: usize = 1;

    /// Maps `len` bytes of `fd` shared read/write.  Returns the mapping
    /// address or `Err(errno)`.
    ///
    /// # Safety
    /// `fd` must be an open file descriptor at least `len` bytes long for
    /// the lifetime of the mapping.
    pub unsafe fn mmap_shared(fd: i32, len: usize) -> Result<*mut u8, i32> {
        let ret = syscall6(
            nr::MMAP,
            0,
            len,
            PROT_READ | PROT_WRITE,
            MAP_SHARED,
            fd as usize,
            0,
        );
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *mut u8)
        }
    }

    /// Maps `len` bytes of `fd` shared **read-only** — the inspector's
    /// attach mode: observing a region must not be able to perturb it.
    ///
    /// # Safety
    /// `fd` must be an open file descriptor at least `len` bytes long for
    /// the lifetime of the mapping.
    pub unsafe fn mmap_shared_ro(fd: i32, len: usize) -> Result<*mut u8, i32> {
        let ret = syscall6(nr::MMAP, 0, len, PROT_READ, MAP_SHARED, fd as usize, 0);
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *mut u8)
        }
    }

    /// Unmaps a region previously returned by [`mmap_shared`].
    ///
    /// # Safety
    /// `(ptr, len)` must be exactly a live mapping; no references into it
    /// may outlive this call.
    pub unsafe fn munmap(ptr: *mut u8, len: usize) {
        let _ = syscall6(nr::MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }

    /// `FUTEX_WAIT` (process-shared): sleeps while `*word == expected`.
    /// Returns `Ok(())` on wake, `Err(errno)` on mismatch/timeout/signal.
    pub fn futex_wait_raw(
        word: *const u32,
        expected: u32,
        timeout: Option<&Timespec>,
    ) -> Result<(), i32> {
        let ts = timeout.map_or(0usize, |t| t as *const Timespec as usize);
        // SAFETY: `word` points at a live u32 (the atomic the caller
        // holds a reference to); the kernel only reads it.
        let ret = unsafe {
            syscall6(
                nr::FUTEX,
                word as usize,
                FUTEX_WAIT,
                expected as usize,
                ts,
                0,
                0,
            )
        };
        if ret < 0 {
            Err(-ret as i32)
        } else {
            Ok(())
        }
    }

    /// `FUTEX_WAKE` (process-shared): wakes up to `n` waiters.  Returns
    /// the number woken.
    pub fn futex_wake_raw(word: *const u32, n: u32) -> u32 {
        // SAFETY: the kernel only uses the address as a key.
        let ret = unsafe { syscall6(nr::FUTEX, word as usize, FUTEX_WAKE, n as usize, 0, 0, 0) };
        ret.max(0) as u32
    }

    /// `kill(pid, 0)` liveness probe, with a zombie check on top:
    /// `kill` succeeds on a zombie, but a zombie has already exited —
    /// it will never release a lock or drain a queue — so for dead-peer
    /// detection it must count as dead.  (A dead peer lingers as a
    /// zombie whenever its parent has not reaped it yet; notably when
    /// the observer IS the unreaping parent.)
    pub fn process_alive(os_pid: u32) -> bool {
        // SAFETY: signal 0 delivers nothing; it only checks existence.
        let ret = unsafe { syscall6(nr::KILL, os_pid as usize, 0, 0, 0, 0, 0) };
        if -ret as i32 == super::ESRCH {
            return false;
        }
        // `/proc/<pid>/stat` is `pid (comm) state ...`; comm may contain
        // anything, so the state letter is the first field after the
        // LAST ')'.  Unreadable stat (procfs unmounted, pid raced away)
        // counts as alive: never poison on a guess.
        match std::fs::read_to_string(format!("/proc/{os_pid}/stat")) {
            Ok(stat) => match stat.rfind(')') {
                Some(i) => stat[i + 1..].trim_start().as_bytes().first() != Some(&b'Z'),
                None => true,
            },
            Err(_) => true,
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod real {
    use super::Timespec;

    /// Portable stub: no mapping support; callers use heap regions.
    ///
    /// # Safety
    /// Trivially safe — always fails.
    pub unsafe fn mmap_shared(_fd: i32, _len: usize) -> Result<*mut u8, i32> {
        Err(super::EAGAIN)
    }

    /// Portable stub: no mapping support.
    ///
    /// # Safety
    /// Trivially safe — always fails.
    pub unsafe fn mmap_shared_ro(_fd: i32, _len: usize) -> Result<*mut u8, i32> {
        Err(super::EAGAIN)
    }

    /// Portable stub; nothing to unmap.
    ///
    /// # Safety
    /// Trivially safe — no-op.
    pub unsafe fn munmap(_ptr: *mut u8, _len: usize) {}

    /// Portable stub: behaves as a bounded yield-sleep.
    pub fn futex_wait_raw(
        _word: *const u32,
        _expected: u32,
        _timeout: Option<&Timespec>,
    ) -> Result<(), i32> {
        std::thread::sleep(std::time::Duration::from_micros(100));
        Ok(())
    }

    /// Portable stub: there are no kernel waiters.
    pub fn futex_wake_raw(_word: *const u32, _n: u32) -> u32 {
        0
    }

    /// Portable stub: presume alive (never poison on a guess).
    pub fn process_alive(_os_pid: u32) -> bool {
        true
    }
}

pub use real::{
    futex_wait_raw, futex_wake_raw, mmap_shared, mmap_shared_ro, munmap, process_alive,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn own_process_is_alive() {
        assert!(process_alive(std::process::id()));
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn nonexistent_process_is_dead() {
        // PID numbers this large are unreachable under default
        // kernel.pid_max (4 194 304).
        assert!(!process_alive(4_100_000 + (std::process::id() % 1000)));
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn futex_mismatch_returns_eagain() {
        let word = 5u32;
        let err = futex_wait_raw(&word as *const u32, 4, None).unwrap_err();
        assert_eq!(err, EAGAIN);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn futex_timeout_elapses() {
        let word = 5u32;
        let ts = Timespec {
            tv_sec: 0,
            tv_nsec: 1_000_000,
        };
        let err = futex_wait_raw(&word as *const u32, 5, Some(&ts)).unwrap_err();
        assert!(err == ETIMEDOUT || err == EINTR, "errno {err}");
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn mmap_roundtrip_through_a_file() {
        use std::io::Write;
        use std::os::fd::AsRawFd;
        let path = std::env::temp_dir().join(format!("mpf-sys-test-{}", std::process::id()));
        let mut f = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .unwrap();
        f.write_all(&[0u8; 4096]).unwrap();
        // SAFETY: the file is 4096 bytes and outlives the mapping.
        let ptr = unsafe { mmap_shared(f.as_raw_fd(), 4096) }.unwrap();
        // SAFETY: fresh private-to-this-test shared mapping.
        unsafe {
            ptr.write(0xAB);
            assert_eq!(ptr.read(), 0xAB);
            munmap(ptr, 4096);
        }
        let _ = std::fs::remove_file(&path);
    }
}
