//! End-to-end tests for the waker-based async surface over both
//! backends: futures pend without burning CPU, wake on real traffic,
//! exercise flow control, and interoperate with the sync primitives.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_aio::{block_on, AsyncIpc, AsyncMpf, Executor};
use mpf_ipc::IpcMpf;

fn unique_name(tag: &str) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "aio-async-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

#[test]
fn recv_pends_then_wakes_on_delayed_send() {
    let m = Arc::new(Mpf::init(MpfConfig::new(8, 4)).unwrap());
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let b = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(1));

    let tx = a.open_send("delayed").unwrap();
    let rx = b.open_receive("delayed", Protocol::Fcfs).unwrap();

    let sender = thread::spawn(move || {
        thread::sleep(Duration::from_millis(30));
        block_on(a.send(tx, b"took a while".to_vec())).unwrap();
    });

    let msg = block_on(b.recv(rx)).unwrap();
    assert_eq!(msg, b"took a while");
    sender.join().unwrap();
}

#[test]
fn select_any_returns_whichever_delivers_first() {
    let m = Arc::new(Mpf::init(MpfConfig::new(8, 4)).unwrap());
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let b = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(1));

    let tx_west = a.open_send("west").unwrap();
    let _tx_east = a.open_send("east").unwrap();
    let rx_east = b.open_receive("east", Protocol::Fcfs).unwrap();
    let rx_west = b.open_receive("west", Protocol::Fcfs).unwrap();

    // Already-ready conversation wins without pending.
    block_on(a.send(tx_west, b"immediate".to_vec())).unwrap();
    let (id, msg) = block_on(b.select_any(&[rx_east, rx_west])).unwrap();
    assert_eq!(id, rx_west);
    assert_eq!(msg, b"immediate");

    // Nothing ready: the select pends, then wakes on the east arrival.
    let sender = thread::spawn(move || {
        thread::sleep(Duration::from_millis(30));
        block_on(a.send(_tx_east, b"late".to_vec())).unwrap();
    });
    let (id, msg) = block_on(b.select_any(&[rx_east, rx_west])).unwrap();
    assert_eq!(id, rx_east);
    assert_eq!(msg, b"late");
    sender.join().unwrap();
}

#[test]
fn send_pends_until_a_receive_frees_capacity() {
    // Two messages fill the pool; the third send must wait for a
    // receive on the other side.
    let cfg = MpfConfig::new(4, 2)
        .with_block_payload(16)
        .with_total_blocks(8)
        .with_max_messages(2);
    let m = Arc::new(Mpf::init(cfg).unwrap());
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let p1 = ProcessId::from_index(1);

    let tx = a.open_send("narrow").unwrap();
    let rx = m.open_receive(p1, "narrow", Protocol::Fcfs).unwrap();

    let drainer = {
        let m = Arc::clone(&m);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(40));
            let mut buf = [0u8; 16];
            assert_eq!(m.message_receive(p1, rx, &mut buf).unwrap(), 4);
        })
    };

    block_on(async {
        a.send(tx, b"one!".to_vec()).await.unwrap();
        a.send(tx, b"two!".to_vec()).await.unwrap();
        // Pool is now exhausted; this pends until the drainer receives.
        a.send(tx, b"three".to_vec()).await.unwrap();
    });
    drainer.join().unwrap();

    let mut buf = [0u8; 16];
    assert_eq!(m.message_receive(p1, rx, &mut buf).unwrap(), 4);
    assert_eq!(m.message_receive(p1, rx, &mut buf).unwrap(), 5);
    assert_eq!(&buf[..5], b"three");
}

#[test]
fn executor_drives_many_concurrent_tasks() {
    let m = Arc::new(Mpf::init(MpfConfig::new(16, 8)).unwrap());
    let server = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));

    const CLIENTS: usize = 6;
    let exec = Executor::new();
    let mut handles = Vec::new();
    for i in 0..CLIENTS {
        let client = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(1 + i));
        let name = format!("lane-{i}");
        let rx = client.open_receive(&name, Protocol::Fcfs).unwrap();
        handles.push(exec.spawn(async move {
            let msg = client.recv(rx).await.unwrap();
            (i, msg)
        }));
    }

    // Every receiver is registered before any message exists; the
    // reactor wakes each as its lane fills.
    let producer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(20));
        for i in 0..CLIENTS {
            let tx = server.open_send(&format!("lane-{i}")).unwrap();
            block_on(server.send(tx, format!("payload-{i}").into_bytes())).unwrap();
        }
    });

    exec.run();
    producer.join().unwrap();
    for h in handles {
        let (i, msg) = h.join();
        assert_eq!(msg, format!("payload-{i}").into_bytes());
    }
}

#[test]
fn async_recv_over_the_shared_memory_region() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let cfg = MpfConfig::new(8, 4)
        .with_block_payload(64)
        .with_total_blocks(64)
        .with_max_messages(32)
        .with_max_connections(16);
    let creator = Arc::new(IpcMpf::create(&unique_name("region"), &cfg).unwrap());
    let peer = Arc::new(creator.attach_view().unwrap());

    let rx = creator.open_receive("uplink", Protocol::Fcfs).unwrap();
    let tx = peer.open_send("uplink").unwrap();

    let sender = {
        let peer = Arc::clone(&peer);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            peer.message_send(tx, b"crossed the region").unwrap();
        })
    };

    let facility = AsyncIpc::new(Arc::clone(&creator));
    let msg = block_on(facility.recv(rx)).unwrap();
    assert_eq!(msg, b"crossed the region");
    sender.join().unwrap();

    // Round-trip the other way with the async send path.
    let rx2 = peer.open_receive("downlink", Protocol::Fcfs).unwrap();
    let tx2 = creator.open_send("downlink").unwrap();
    block_on(facility.send(tx2, b"pong".to_vec())).unwrap();
    let mut buf = [0u8; 64];
    let n = peer
        .message_receive_timeout(rx2, &mut buf, Duration::from_secs(5))
        .unwrap();
    assert_eq!(&buf[..n], b"pong");
}

#[test]
fn ipc_send_pends_until_capacity_frees() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    // One block, one message: the second async send must wait until the
    // receiver drains the first (covers the ipc reactor's poll-driven
    // sender retry, since the region has no free signal).
    let cfg = MpfConfig::new(4, 4)
        .with_block_payload(32)
        .with_total_blocks(1)
        .with_max_messages(8)
        .with_max_connections(16);
    let creator = Arc::new(IpcMpf::create(&unique_name("narrow"), &cfg).unwrap());

    let tx = creator.open_send("strait").unwrap();
    let rx = creator.open_receive("strait", Protocol::Fcfs).unwrap();

    let drainer = {
        let c = Arc::clone(&creator);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(40));
            let mut buf = [0u8; 32];
            assert_eq!(
                c.message_receive_timeout(rx, &mut buf, Duration::from_secs(5))
                    .unwrap(),
                5
            );
        })
    };

    let facility = AsyncIpc::new(Arc::clone(&creator));
    block_on(async {
        facility.send(tx, b"first".to_vec()).await.unwrap();
        facility.send(tx, b"second".to_vec()).await.unwrap();
    });
    drainer.join().unwrap();

    let mut buf = [0u8; 32];
    let n = creator
        .message_receive_timeout(rx, &mut buf, Duration::from_secs(5))
        .unwrap();
    assert_eq!(&buf[..n], b"second");
}

#[test]
fn deadline_futures_time_out_with_typed_error() {
    use std::time::Instant;

    let m = Arc::new(Mpf::init(MpfConfig::new(8, 4)).unwrap());
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let _tx = a.open_send("dl-quiet").unwrap();
    let rx = a.open_receive("dl-quiet", Protocol::Fcfs).unwrap();

    let start = Instant::now();
    let err = block_on(a.recv(rx).timeout(Duration::from_millis(50))).unwrap_err();
    assert_eq!(err, mpf::MpfError::TimedOut);
    assert!(start.elapsed() >= Duration::from_millis(50));

    // The select-any combinator carries the same bound.
    let err = block_on(a.select_any(&[rx]).timeout(Duration::from_millis(50))).unwrap_err();
    assert_eq!(err, mpf::MpfError::TimedOut);
}

#[test]
fn deadline_recv_delivers_when_send_races_expiry() {
    let m = Arc::new(Mpf::init(MpfConfig::new(8, 4)).unwrap());
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let b = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(1));
    let tx = a.open_send("dl-race").unwrap();
    let rx = b.open_receive("dl-race", Protocol::Fcfs).unwrap();

    let sender = {
        let m = Arc::clone(&m);
        thread::spawn(move || {
            thread::sleep(Duration::from_millis(40));
            m.message_send(ProcessId::from_index(0), tx, b"in time")
                .unwrap();
        })
    };
    let msg = block_on(b.recv(rx).timeout(Duration::from_secs(30))).unwrap();
    assert_eq!(msg, b"in time");
    sender.join().unwrap();
}

#[test]
fn send_future_times_out_under_exhaustion_then_recovers() {
    let m = Arc::new(
        Mpf::init(
            MpfConfig::new(8, 4)
                .with_block_payload(64)
                .with_total_blocks(4)
                .with_max_messages(4),
        )
        .unwrap(),
    );
    let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
    let tx = a.open_send("dl-full").unwrap();
    let rx = m
        .open_receive(ProcessId::from_index(1), "dl-full", Protocol::Fcfs)
        .unwrap();
    for i in 0..4 {
        m.message_send(ProcessId::from_index(0), tx, &[i; 64])
            .unwrap();
    }

    let err = block_on(a.send(tx, vec![9; 64]).timeout(Duration::from_millis(60))).unwrap_err();
    assert_eq!(err, mpf::MpfError::TimedOut);

    // Draining one message frees capacity; the same send now completes
    // well inside its bound, proving the timeout staged nothing sticky.
    let mut buf = [0u8; 64];
    m.message_receive(ProcessId::from_index(1), rx, &mut buf)
        .unwrap();
    block_on(a.send(tx, vec![9; 64]).timeout(Duration::from_secs(30))).unwrap();
}
