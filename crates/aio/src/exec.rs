//! Tiny std-only executor.
//!
//! Two entry points: [`block_on`] drives a single future on the calling
//! thread (parking between polls), and [`Executor`] drives any number of
//! spawned tasks on one thread with a FIFO run queue.  Wakers are the
//! ordinary [`std::task::Waker`] machinery — [`crate::reactor::Reactor`]
//! holds them and fires them from its own thread, which unparks
//! `block_on` or re-queues the task here.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

/// Waker that unparks the thread blocked in [`block_on`].
struct Unpark(Thread);

impl Wake for Unpark {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives one future to completion on the calling thread.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(Unpark(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return v,
            Poll::Pending => thread::park(),
        }
    }
}

/// [`block_on`] with a deadline: returns `None` (dropping the future) if
/// it is still pending at `deadline`.  The dropped future's reactor
/// registration may fire a late wake; that only sets this thread's park
/// token, which the next `block_on`-family call absorbs as one spurious
/// poll.  This is the seam request/reply clients use for per-attempt
/// timeouts.
pub fn block_on_deadline<F: Future>(fut: F, deadline: Instant) -> Option<F::Output> {
    let mut fut = std::pin::pin!(fut);
    let waker = Waker::from(Arc::new(Unpark(thread::current())));
    let mut cx = Context::from_waker(&waker);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(v) => return Some(v),
            Poll::Pending => {
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                thread::park_timeout(deadline - now);
            }
        }
    }
}

/// [`block_on_deadline`] with a relative timeout.
pub fn block_on_timeout<F: Future>(fut: F, timeout: Duration) -> Option<F::Output> {
    block_on_deadline(fut, Instant::now() + timeout)
}

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

/// One spawned task: the future lives behind a mutex so a wake arriving
/// while the executor is mid-poll re-queues the task instead of polling
/// it from two threads at once.
struct Task {
    fut: Mutex<Option<BoxFuture>>,
    shared: Weak<Shared>,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(shared) = self.shared.upgrade() {
            shared.push(self);
        }
    }
}

struct Inner {
    ready: VecDeque<Arc<Task>>,
    /// Spawned tasks that have not yet completed; `run` returns at zero.
    live: usize,
}

struct Shared {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Shared {
    fn push(&self, task: Arc<Task>) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.ready.push_back(task);
        drop(inner);
        self.cv.notify_one();
    }
}

/// Handle to a spawned task's result; valid after [`Executor::run`].
pub struct JoinHandle<T> {
    cell: Arc<Mutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    /// Takes the result.  Panics if the task has not completed — call
    /// [`Executor::run`] first.
    pub fn join(self) -> T {
        self.cell
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .expect("task not finished; run the executor to completion first")
    }
}

/// Single-threaded run-to-completion executor over a FIFO queue.
#[derive(Default)]
pub struct Executor {
    shared: Arc<Shared>,
}

impl Default for Shared {
    fn default() -> Self {
        Shared {
            inner: Mutex::new(Inner {
                ready: VecDeque::new(),
                live: 0,
            }),
            cv: Condvar::new(),
        }
    }
}

impl Executor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a future; it first runs inside [`Executor::run`].
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let cell = Arc::new(Mutex::new(None));
        let out = Arc::clone(&cell);
        let wrapped: BoxFuture = Box::pin(async move {
            let v = fut.await;
            *out.lock().unwrap_or_else(|e| e.into_inner()) = Some(v);
        });
        let task = Arc::new(Task {
            fut: Mutex::new(Some(wrapped)),
            shared: Arc::downgrade(&self.shared),
        });
        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.live += 1;
        inner.ready.push_back(task);
        drop(inner);
        self.shared.cv.notify_one();
        JoinHandle { cell }
    }

    /// Polls ready tasks (sleeping when none are) until every spawned
    /// task has completed.
    pub fn run(&self) {
        loop {
            let task = {
                let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                loop {
                    if inner.live == 0 {
                        return;
                    }
                    if let Some(t) = inner.ready.pop_front() {
                        break t;
                    }
                    inner = self
                        .shared
                        .cv
                        .wait(inner)
                        .unwrap_or_else(|e| e.into_inner());
                }
            };
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            let mut slot = task.fut.lock().unwrap_or_else(|e| e.into_inner());
            // `None` means the task already completed and this is a
            // stale queue entry from a late wake.
            if let Some(mut fut) = slot.take() {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {
                        let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
                        inner.live -= 1;
                    }
                    Poll::Pending => *slot = Some(fut),
                }
            }
        }
    }
}
