//! Async wrappers over the two MPF backends.
//!
//! [`AsyncMpf`] wraps the in-process facility (`mpf::Mpf`), [`AsyncIpc`]
//! the multi-process one (`mpf_ipc::IpcMpf`).  Both hand out the same
//! three futures — [`RecvFuture`], [`SendFuture`], [`SelectAny`] — and
//! own one [`Reactor`] thread that multiplexes every pending future over
//! the backend's futex/waitq layer (see the reactor module for the
//! lost-wakeup-free ticket protocol).

use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mpf::{LnvcId, Mpf, MpfError, ProcessId, Protocol, Result};
use mpf_ipc::{IpcLnvcId, IpcMpf};
use mpf_shm::waitq::{WaitQueue, WaitStrategy};

use crate::reactor::{Backend, Reactor};

// ----------------------------------------------------------------------
// Backends
// ----------------------------------------------------------------------

/// In-process (thread) backend: signals are heap wait queues, so the
/// reactor's wait is a single `wait_many` over every registered
/// conversation plus the memory queue plus its own wake channel.
pub struct ThreadBackend {
    mpf: Arc<Mpf>,
    pid: ProcessId,
}

impl Backend for ThreadBackend {
    type Id = LnvcId;

    fn try_recv(&self, id: LnvcId) -> Result<Option<Vec<u8>>> {
        self.mpf.try_message_receive_vec(self.pid, id)
    }

    fn try_send(&self, id: LnvcId, payload: &[u8]) -> Result<bool> {
        self.mpf.try_message_send(self.pid, id, payload)
    }

    fn recv_ticket(&self, id: LnvcId) -> Result<u32> {
        self.mpf.recv_signal_ticket(id)
    }

    fn mem_ticket(&self) -> u32 {
        self.mpf.mem_signal_ticket()
    }

    fn has_mem_signal(&self) -> bool {
        true
    }

    fn wait(
        &self,
        recv: &[(LnvcId, u32)],
        mem: Option<u32>,
        wake: (&WaitQueue, u32),
        until: Option<Instant>,
    ) {
        self.mpf.wait_signals_deadline(recv, mem, Some(wake), until);
    }
}

/// Multi-process backend: receive signals live in the shared region
/// (`FutexSeq`), which can only park on one address at a time, so the
/// reactor naps on the first registered conversation's futex with a
/// bounded timeout and re-scans.  There is no region-wide free signal —
/// pending senders are re-polled at nap cadence instead, with the
/// send-only nap backing off exponentially under sustained pool
/// pressure (`send_nap_us`).
pub struct IpcBackend {
    ipc: Arc<IpcMpf>,
    /// Current send-retry nap in microseconds for waits where only
    /// pending senders are outstanding.  Starts at [`SEND_NAP_MIN_US`],
    /// doubles after each fruitless send-only nap up to
    /// [`SEND_NAP_MAX_US`], and resets on any successful `try_send` —
    /// bounded backoff instead of a tight fixed-cadence retry loop
    /// burning a core while the pools stay exhausted.
    send_nap_us: AtomicU64,
}

/// Upper bound on how long the ipc reactor sleeps between scans while
/// receive interests it cannot park on directly (other conversations)
/// are outstanding.
const IPC_NAP: Duration = Duration::from_millis(2);

/// First send-only retry nap: quick enough that a transient pool blip
/// costs well under a millisecond of extra latency.
const SEND_NAP_MIN_US: u64 = 200;

/// Send-only retry nap ceiling under sustained pool pressure.
const SEND_NAP_MAX_US: u64 = 20_000;

impl Backend for IpcBackend {
    type Id = IpcLnvcId;

    fn try_recv(&self, id: IpcLnvcId) -> Result<Option<Vec<u8>>> {
        self.ipc.try_message_receive_vec(id)
    }

    fn try_send(&self, id: IpcLnvcId, payload: &[u8]) -> Result<bool> {
        let r = self.ipc.try_message_send(id, payload);
        if matches!(r, Ok(true)) {
            // Capacity exists again; retry promptly next time.
            self.send_nap_us.store(SEND_NAP_MIN_US, Ordering::Relaxed);
        }
        r
    }

    fn recv_ticket(&self, id: IpcLnvcId) -> Result<u32> {
        self.ipc.recv_signal_ticket(id)
    }

    fn mem_ticket(&self) -> u32 {
        0
    }

    fn has_mem_signal(&self) -> bool {
        false
    }

    fn wait(
        &self,
        recv: &[(IpcLnvcId, u32)],
        mem: Option<u32>,
        wake: (&WaitQueue, u32),
        until: Option<Instant>,
    ) {
        // Every nap below is already bounded; the earliest registered
        // timer just tightens the bound so expiry fires on time.
        let clamp = |nap: Duration| {
            until.map_or(nap, |at| {
                nap.min(at.saturating_duration_since(Instant::now()))
            })
        };
        if let Some(&(id, ticket)) = recv.first() {
            // Park on the first conversation's in-region futex; the
            // bounded timeout keeps the other interests live.  Receive
            // traffic implies the pools are moving, so pending senders
            // riding on this wait keep the fast fixed cadence.
            self.ipc.wait_recv_signal(id, ticket, clamp(IPC_NAP));
        } else if mem.is_some() {
            // Only senders are blocked and nothing in the region can
            // signal a free: poll with exponential backoff so sustained
            // pool pressure costs naps, not a spinning core.
            let nap = self.send_nap_us.load(Ordering::Relaxed);
            std::thread::sleep(clamp(Duration::from_micros(nap)));
            self.send_nap_us
                .store((nap * 2).min(SEND_NAP_MAX_US), Ordering::Relaxed);
        } else {
            // Only the reactor's own (process-local) wake channel or a
            // timer can fire: park until a registration or shutdown
            // bumps the queue, or the earliest timer expires.
            wake.0.wait_deadline(wake.1, WaitStrategy::Park, until);
        }
    }
}

// ----------------------------------------------------------------------
// Reactor lifetime
// ----------------------------------------------------------------------

/// Owns the reactor thread; dropping the last clone of a facility stops
/// and joins it.
struct Driver<B: Backend> {
    reactor: Arc<Reactor<B>>,
    thread: Option<JoinHandle<()>>,
}

impl<B: Backend> Driver<B> {
    fn start(backend: Arc<B>) -> Self {
        let (reactor, thread) = Reactor::start(backend);
        Driver {
            reactor,
            thread: Some(thread),
        }
    }
}

impl<B: Backend> Drop for Driver<B> {
    fn drop(&mut self) {
        self.reactor.stop();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

// ----------------------------------------------------------------------
// Futures
// ----------------------------------------------------------------------

/// Resolves to the next message on one conversation.
pub struct RecvFuture<B: Backend> {
    reactor: Arc<Reactor<B>>,
    id: B::Id,
}

impl<B: Backend> Future for RecvFuture<B> {
    type Output = Result<Vec<u8>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Ticket before the try: traffic landing in between has already
        // moved the sequence, so the reactor fires us on its next scan.
        let ticket = match self.reactor.backend.recv_ticket(self.id) {
            Ok(t) => t,
            Err(e) => return Poll::Ready(Err(e)),
        };
        match self.reactor.backend.try_recv(self.id) {
            Ok(Some(msg)) => Poll::Ready(Ok(msg)),
            Ok(None) => {
                self.reactor.register_recv(self.id, ticket, cx.waker());
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// Resolves when the owned payload has been enqueued on the
/// conversation; pends (with flow control) while the region's message
/// or block pool is exhausted.
pub struct SendFuture<B: Backend> {
    reactor: Arc<Reactor<B>>,
    id: B::Id,
    payload: Vec<u8>,
}

impl<B: Backend> Future for SendFuture<B> {
    type Output = Result<()>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let ticket = self.reactor.backend.mem_ticket();
        match self.reactor.backend.try_send(self.id, &self.payload) {
            Ok(true) => Poll::Ready(Ok(())),
            Ok(false) => {
                self.reactor.register_send(ticket, cx.waker());
                Poll::Pending
            }
            Err(e) => Poll::Ready(Err(e)),
        }
    }
}

/// A future bounded by a wall-clock deadline: resolves to the inner
/// result if it completes first, or [`MpfError::TimedOut`] once the
/// deadline passes.  Built by the `.deadline(at)` combinator on
/// [`RecvFuture`], [`SendFuture`] and [`SelectAny`]; the reactor holds
/// the expiry as a timer registration, so the wake needs no extra
/// thread and no polling executor — plain [`crate::block_on`] works.
///
/// The inner future is polled *before* the clock check, so a completion
/// racing the deadline resolves, not times out.
pub struct Deadline<B: Backend, F> {
    reactor: Arc<Reactor<B>>,
    inner: F,
    at: Instant,
}

impl<B: Backend, T, F> Future for Deadline<B, F>
where
    F: Future<Output = Result<T>> + Unpin,
{
    type Output = Result<T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = &mut *self;
        match Pin::new(&mut this.inner).poll(cx) {
            Poll::Ready(r) => Poll::Ready(r),
            Poll::Pending => {
                if Instant::now() >= this.at {
                    return Poll::Ready(Err(MpfError::TimedOut));
                }
                this.reactor.register_timer(this.at, cx.waker());
                Poll::Pending
            }
        }
    }
}

macro_rules! deadline_combinator {
    ($future:ident) => {
        impl<B: Backend> $future<B> {
            /// Bounds this future by a wall-clock deadline
            /// ([`MpfError::TimedOut`] once it passes).
            pub fn deadline(self, at: Instant) -> Deadline<B, Self> {
                Deadline {
                    reactor: Arc::clone(&self.reactor),
                    inner: self,
                    at,
                }
            }

            /// [`deadline`](Self::deadline) with a relative timeout.
            pub fn timeout(self, after: Duration) -> Deadline<B, Self> {
                self.deadline(Instant::now() + after)
            }
        }
    };
}

deadline_combinator!(RecvFuture);
deadline_combinator!(SendFuture);
deadline_combinator!(SelectAny);

/// Resolves to `(conversation, message)` for whichever registered
/// conversation delivers first.
pub struct SelectAny<B: Backend> {
    reactor: Arc<Reactor<B>>,
    ids: Vec<B::Id>,
}

impl<B: Backend> Future for SelectAny<B> {
    type Output = Result<(B::Id, Vec<u8>)>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // All tickets first, then all tries: a message arriving at any
        // conversation after its ticket was sampled re-wakes us.
        let mut tickets = Vec::with_capacity(self.ids.len());
        for &id in &self.ids {
            match self.reactor.backend.recv_ticket(id) {
                Ok(t) => tickets.push(t),
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
        for &id in &self.ids {
            match self.reactor.backend.try_recv(id) {
                Ok(Some(msg)) => return Poll::Ready(Ok((id, msg))),
                Ok(None) => {}
                Err(e) => return Poll::Ready(Err(e)),
            }
        }
        for (&id, &ticket) in self.ids.iter().zip(&tickets) {
            self.reactor.register_recv(id, ticket, cx.waker());
        }
        Poll::Pending
    }
}

// ----------------------------------------------------------------------
// Public facades
// ----------------------------------------------------------------------

macro_rules! future_ctors {
    ($backend:ty, $id:ty) => {
        /// Receives the next message on `id`.
        pub fn recv(&self, id: $id) -> RecvFuture<$backend> {
            RecvFuture {
                reactor: Arc::clone(&self.driver.reactor),
                id,
            }
        }

        /// Sends `payload` on `id`, pending while the region is full.
        pub fn send(&self, id: $id, payload: Vec<u8>) -> SendFuture<$backend> {
            SendFuture {
                reactor: Arc::clone(&self.driver.reactor),
                id,
                payload,
            }
        }

        /// Receives from whichever of `ids` delivers first.
        pub fn select_any(&self, ids: &[$id]) -> SelectAny<$backend> {
            assert!(
                !ids.is_empty(),
                "select_any needs at least one conversation"
            );
            SelectAny {
                reactor: Arc::clone(&self.driver.reactor),
                ids: ids.to_vec(),
            }
        }
    };
}

/// Async facade over the in-process facility, bound to one logical
/// process.  Clones share the reactor thread.
#[derive(Clone)]
pub struct AsyncMpf {
    mpf: Arc<Mpf>,
    pid: ProcessId,
    driver: Arc<Driver<ThreadBackend>>,
}

impl AsyncMpf {
    /// Wraps `mpf` for logical process `pid`, starting the reactor.
    pub fn new(mpf: Arc<Mpf>, pid: ProcessId) -> Self {
        let backend = Arc::new(ThreadBackend {
            mpf: Arc::clone(&mpf),
            pid,
        });
        AsyncMpf {
            mpf,
            pid,
            driver: Arc::new(Driver::start(backend)),
        }
    }

    /// The wrapped facility, for the sync primitives.
    pub fn facility(&self) -> &Arc<Mpf> {
        &self.mpf
    }

    pub fn pid(&self) -> ProcessId {
        self.pid
    }

    pub fn open_send(&self, name: &str) -> Result<LnvcId> {
        self.mpf.open_send(self.pid, name)
    }

    pub fn open_receive(&self, name: &str, protocol: Protocol) -> Result<LnvcId> {
        self.mpf.open_receive(self.pid, name, protocol)
    }

    pub fn close_send(&self, id: LnvcId) -> Result<()> {
        self.mpf.close_send(self.pid, id)
    }

    pub fn close_receive(&self, id: LnvcId) -> Result<()> {
        self.mpf.close_receive(self.pid, id)
    }

    future_ctors!(ThreadBackend, LnvcId);
}

/// Async facade over the multi-process facility.  Clones share the
/// reactor thread.
#[derive(Clone)]
pub struct AsyncIpc {
    ipc: Arc<IpcMpf>,
    driver: Arc<Driver<IpcBackend>>,
}

impl AsyncIpc {
    /// Wraps an attached region view, starting the reactor.
    pub fn new(ipc: Arc<IpcMpf>) -> Self {
        let backend = Arc::new(IpcBackend {
            ipc: Arc::clone(&ipc),
            send_nap_us: AtomicU64::new(SEND_NAP_MIN_US),
        });
        AsyncIpc {
            ipc,
            driver: Arc::new(Driver::start(backend)),
        }
    }

    /// The wrapped region view, for the sync primitives.
    pub fn facility(&self) -> &Arc<IpcMpf> {
        &self.ipc
    }

    pub fn open_send(&self, name: &str) -> Result<IpcLnvcId> {
        self.ipc.open_send(name)
    }

    pub fn open_receive(&self, name: &str, protocol: Protocol) -> Result<IpcLnvcId> {
        self.ipc.open_receive(name, protocol)
    }

    pub fn close_send(&self, id: IpcLnvcId) -> Result<()> {
        self.ipc.close_send(id)
    }

    pub fn close_receive(&self, id: IpcLnvcId) -> Result<()> {
        self.ipc.close_receive(id)
    }

    future_ctors!(IpcBackend, IpcLnvcId);
}
