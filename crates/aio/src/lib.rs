//! # mpf-aio — waker-based async API for MPF
//!
//! The paper's primitives block the calling process; a 2020s program
//! wants to `await` them.  This crate adds that surface without touching
//! the facilities' internals and without any external dependency:
//!
//! * [`AsyncMpf`] / [`AsyncIpc`] wrap the thread and multi-process
//!   backends with [`AsyncMpf::recv`], [`AsyncMpf::send`], and
//!   [`AsyncMpf::select_any`] futures;
//! * each facade owns one **reactor** thread whose single waiter
//!   multiplexes every registered conversation over the existing
//!   futex/waitq layer — futures take a signal ticket *before* their
//!   non-blocking attempt, so a message landing between the attempt and
//!   the registration can delay a wake but never lose one;
//! * [`block_on`] and [`Executor`] are a tiny std-only driver pair —
//!   enough to run the futures without pulling in an async runtime.
//!
//! Batched submission/completion rings (the other half of the amortised
//! I/O story) live on the facilities themselves: `Mpf::send_batch`,
//! `IpcMpf::send_batch`, and friends.
//!
//! ```
//! use std::sync::Arc;
//! use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
//! use mpf_aio::{block_on, AsyncMpf};
//!
//! let m = Arc::new(Mpf::init(MpfConfig::new(8, 4)).unwrap());
//! let a = AsyncMpf::new(Arc::clone(&m), ProcessId::from_index(0));
//! let b = AsyncMpf::new(m, ProcessId::from_index(1));
//!
//! let tx = a.open_send("chat").unwrap();
//! let rx = b.open_receive("chat", Protocol::Fcfs).unwrap();
//!
//! block_on(async {
//!     a.send(tx, b"hello".to_vec()).await.unwrap();
//!     assert_eq!(b.recv(rx).await.unwrap(), b"hello");
//! });
//! ```

pub mod exec;
pub mod facility;
pub mod reactor;

pub use exec::{block_on, block_on_deadline, block_on_timeout, Executor, JoinHandle};
pub use facility::{
    AsyncIpc, AsyncMpf, Deadline, IpcBackend, RecvFuture, SelectAny, SendFuture, ThreadBackend,
};
pub use reactor::Backend;
