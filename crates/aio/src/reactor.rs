//! The reactor: one thread per async facility whose single waiter
//! multiplexes every registered interest over the existing futex/waitq
//! layer.
//!
//! ## Lost-wakeup-free protocol
//!
//! A future takes the signal's sequence **ticket before** attempting the
//! non-blocking operation.  If the operation would block it registers
//! `(interest, ticket, waker)` here.  Traffic that lands between the try
//! and the registration has already moved the sequence past the stored
//! ticket, so the reactor's next scan fires the waker immediately
//! instead of sleeping on it.  Registration bumps the reactor's own wake
//! queue, and the reactor samples that queue's ticket before each scan —
//! the same protocol one level up — so a registration landing mid-scan
//! cuts the following wait short.
//!
//! Wakes are allowed to be spurious (futures re-poll and re-register);
//! they are never allowed to be lost.

use std::fmt::Debug;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::task::Waker;
use std::thread::JoinHandle;
use std::time::Instant;

use mpf::Result;
use mpf_shm::waitq::WaitQueue;

/// What the reactor needs from a facility.  Implemented for the thread
/// backend (`mpf::Mpf`) and the multi-process backend
/// (`mpf_ipc::IpcMpf`).
pub trait Backend: Send + Sync + 'static {
    /// Conversation handle (`LnvcId` or `IpcLnvcId`).
    type Id: Copy + PartialEq + Send + Sync + Debug + 'static;

    /// Non-blocking receive; `Ok(None)` when nothing is deliverable.
    fn try_recv(&self, id: Self::Id) -> Result<Option<Vec<u8>>>;
    /// Non-blocking send; `Ok(false)` when the region is exhausted and
    /// the caller should retry after capacity frees.
    fn try_send(&self, id: Self::Id, payload: &[u8]) -> Result<bool>;
    /// Current sequence of `id`'s receive signal.
    fn recv_ticket(&self, id: Self::Id) -> Result<u32>;
    /// Current sequence of the sender flow-control (memory) signal.
    fn mem_ticket(&self) -> u32;
    /// Whether [`Backend::mem_ticket`] is a real signal.  When `false`
    /// the reactor re-fires pending senders after every bounded wait
    /// instead of watching the ticket.
    fn has_mem_signal(&self) -> bool;
    /// Blocks until any of the signals may have fired: a listed receive
    /// queue moves past its ticket, the memory signal moves past `mem`,
    /// or the reactor's `wake` queue moves past its ticket.  Bounded
    /// waits (returning early with nothing fired) are fine.  `until` is
    /// the earliest registered timer deadline: the wait must return by
    /// then (give or take scheduler latency) so the reactor can fire it.
    fn wait(
        &self,
        recv: &[(Self::Id, u32)],
        mem: Option<u32>,
        wake: (&WaitQueue, u32),
        until: Option<Instant>,
    );
}

struct State<Id> {
    recv: Vec<(Id, u32, Waker)>,
    send: Vec<(u32, Waker)>,
    /// Deadline registrations from `Deadline`-wrapped futures: fired (and
    /// dropped) once `Instant::now()` passes the stored instant.
    timers: Vec<(Instant, Waker)>,
}

pub(crate) struct Reactor<B: Backend> {
    pub(crate) backend: Arc<B>,
    state: Mutex<State<B::Id>>,
    wake: WaitQueue,
    shutdown: AtomicBool,
}

impl<B: Backend> Reactor<B> {
    pub(crate) fn start(backend: Arc<B>) -> (Arc<Self>, JoinHandle<()>) {
        let reactor = Arc::new(Reactor {
            backend,
            state: Mutex::new(State {
                recv: Vec::new(),
                send: Vec::new(),
                timers: Vec::new(),
            }),
            wake: WaitQueue::new(),
            shutdown: AtomicBool::new(false),
        });
        let r = Arc::clone(&reactor);
        let thread = std::thread::Builder::new()
            .name("mpf-aio-reactor".into())
            .spawn(move || r.run())
            .expect("spawn mpf-aio reactor thread");
        (reactor, thread)
    }

    /// Registers interest in `id`'s receive signal moving past `ticket`.
    pub(crate) fn register_recv(&self, id: B::Id, ticket: u32, waker: &Waker) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.recv.push((id, ticket, waker.clone()));
        drop(st);
        self.wake.notify_all();
    }

    /// Registers interest in the memory signal moving past `ticket`.
    pub(crate) fn register_send(&self, ticket: u32, waker: &Waker) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.send.push((ticket, waker.clone()));
        drop(st);
        self.wake.notify_all();
    }

    /// Registers a wake at `at` (a `Deadline` future's expiry).  The
    /// wake is allowed to be late by one scheduler quantum and, like
    /// every reactor wake, allowed to be spurious — the wrapped future
    /// re-checks the clock on poll.
    pub(crate) fn register_timer(&self, at: Instant, waker: &Waker) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.timers.push((at, waker.clone()));
        drop(st);
        self.wake.notify_all();
    }

    pub(crate) fn stop(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.wake.notify_all();
    }

    fn run(&self) {
        let poll_sends = !self.backend.has_mem_signal();
        while !self.shutdown.load(Ordering::Acquire) {
            // Sampled before the scan so a registration landing mid-scan
            // makes the wait below return immediately.
            let wake_ticket = self.wake.ticket();
            let mut fired: Vec<Waker> = Vec::new();
            let (recv_wait, mem_wait, next_timer) = {
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                st.recv.retain(|(id, ticket, waker)| {
                    match self.backend.recv_ticket(*id) {
                        Ok(cur) if cur == *ticket => true,
                        // Moved — or the conversation is gone, in which
                        // case the future surfaces the error on re-poll.
                        _ => {
                            fired.push(waker.clone());
                            false
                        }
                    }
                });
                if !poll_sends {
                    let mem_now = self.backend.mem_ticket();
                    st.send.retain(|(ticket, waker)| {
                        if mem_now == *ticket {
                            true
                        } else {
                            fired.push(waker.clone());
                            false
                        }
                    });
                }
                // Fire expired timers; the earliest survivor bounds the
                // wait below.
                let now = Instant::now();
                st.timers.retain(|(at, waker)| {
                    if now >= *at {
                        fired.push(waker.clone());
                        false
                    } else {
                        true
                    }
                });
                (
                    st.recv
                        .iter()
                        .map(|&(id, ticket, _)| (id, ticket))
                        .collect::<Vec<_>>(),
                    st.send.first().map(|&(ticket, _)| ticket),
                    st.timers.iter().map(|&(at, _)| at).min(),
                )
            };
            let woke_any = !fired.is_empty();
            for w in fired {
                w.wake();
            }
            if woke_any {
                continue;
            }
            self.backend
                .wait(&recv_wait, mem_wait, (&self.wake, wake_ticket), next_timer);
            if poll_sends && mem_wait.is_some() {
                // No region-wide free signal: re-fire pending senders
                // after each bounded wait so they retry at nap cadence
                // rather than spinning.
                let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
                let pending = std::mem::take(&mut st.send);
                drop(st);
                for (_, w) in pending {
                    w.wake();
                }
            }
        }
    }
}
