//! Schedule-exploration scenarios for the paper's §5 channel variants:
//! the synchronous [`Rendezvous`] exchange and the one-to-one lock-free
//! ring.  Both skip the general LNVC machinery, so they get their own
//! conservation checks: every rendezvous pairs exactly one sender with
//! one receiver, and the SPSC ring delivers every frame exactly once in
//! FIFO order, under every explored interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use mpf::one2one::one2one;
use mpf::sync_channel::Rendezvous;
use mpf_check::{explore_dfs, explore_random, Case, ExploreOpts};

type Proc = Box<dyn FnOnce() + Send>;

/// One sender offers two messages through a rendezvous while two
/// receivers race for them: each message must be copied exactly once,
/// each receiver gets exactly one, and no offer is left dangling.
fn rendezvous_case() -> Case {
    let r = Arc::new(Rendezvous::default());
    let got: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let sender = {
        let r = Arc::clone(&r);
        Box::new(move || {
            r.send(b"alpha");
            r.send(b"beta");
        }) as Proc
    };
    let receiver = || {
        let (r, got) = (Arc::clone(&r), Arc::clone(&got));
        Box::new(move || {
            let mut buf = [0u8; 16];
            let n = r.recv(&mut buf).expect("rendezvous recv");
            got.lock().unwrap().push(buf[..n].to_vec());
        }) as Proc
    };
    let procs = vec![sender, receiver(), receiver()];
    let (r, got) = (Arc::clone(&r), Arc::clone(&got));
    Case {
        procs,
        death: None,
        check: Box::new(move || {
            if r.check() {
                return Err("offer left dangling after both receives".into());
            }
            let mut seen = got.lock().unwrap().clone();
            seen.sort();
            if seen != vec![b"alpha".to_vec(), b"beta".to_vec()] {
                return Err(format!("rendezvous duplicated or lost a message: {seen:?}"));
            }
            Ok(())
        }),
    }
}

#[test]
fn rendezvous_pairs_each_offer_exactly_once_dfs() {
    let opts = ExploreOpts::new("rendezvous-exactly-once").max_schedules(300);
    explore_dfs(&opts, rendezvous_case).assert_ok();
}

#[test]
fn rendezvous_pairs_each_offer_exactly_once_random() {
    let opts = ExploreOpts::new("rendezvous-exactly-once-pct").max_schedules(300);
    explore_random(&opts, 0x5EC5, rendezvous_case).assert_ok();
}

/// SPSC ring smaller than the traffic: the producer must block mid-burst
/// (hooked wait on the consumer's cursor) and every frame must come out
/// exactly once, in order, through the wrap-around.
fn one2one_case() -> Case {
    // Capacity 16 holds two 3-byte frames (4-byte header each): the
    // third send can only proceed once the consumer frees a slot.
    let (mut tx, mut rx) = one2one(16);
    let received: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
    let producer = Box::new(move || {
        for i in 0..4u8 {
            tx.send(&[i; 3]).expect("o2o send");
        }
    }) as Proc;
    let consumer = {
        let received = Arc::clone(&received);
        Box::new(move || {
            let mut buf = [0u8; 8];
            for _ in 0..4 {
                let n = rx.recv(&mut buf).expect("o2o recv");
                received.lock().unwrap().push(buf[..n].to_vec());
            }
            if rx.peek_len().is_some() {
                panic!("ring should be empty after the full drain");
            }
        }) as Proc
    };
    Case {
        procs: vec![producer, consumer],
        death: None,
        check: Box::new(move || {
            let seen = received.lock().unwrap().clone();
            let want: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 3]).collect();
            if seen != want {
                return Err(format!("FIFO broken or frames lost: {seen:?}"));
            }
            Ok(())
        }),
    }
}

#[test]
fn one2one_fifo_exactly_once_dfs() {
    let opts = ExploreOpts::new("one2one-fifo").max_schedules(300);
    explore_dfs(&opts, one2one_case).assert_ok();
}

#[test]
fn one2one_fifo_exactly_once_random() {
    let opts = ExploreOpts::new("one2one-fifo-pct").max_schedules(300);
    explore_random(&opts, 0x0201, one2one_case).assert_ok();
}

/// Producer and consumer race try-ops with no blocking at all: whatever
/// the schedule, the consumer's count plus the frames left in the ring
/// must equal the frames the producer managed to push.
fn one2one_try_case() -> Case {
    let (mut tx, rx) = one2one(16);
    let pushed = Arc::new(AtomicUsize::new(0));
    let popped = Arc::new(AtomicUsize::new(0));
    let producer = {
        let pushed = Arc::clone(&pushed);
        Box::new(move || {
            for i in 0..4u8 {
                if tx.try_send(&[i; 3]).expect("o2o try_send") {
                    pushed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }) as Proc
    };
    let rx = Arc::new(Mutex::new(rx));
    let consumer = {
        let (rx, popped) = (Arc::clone(&rx), Arc::clone(&popped));
        Box::new(move || {
            let mut rx = rx.lock().unwrap();
            let mut buf = [0u8; 8];
            for _ in 0..4 {
                if rx.try_recv(&mut buf).expect("o2o try_recv").is_some() {
                    popped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }) as Proc
    };
    Case {
        procs: vec![producer, consumer],
        death: None,
        check: Box::new(move || {
            // Frames still queued when the consumer gave up are counted
            // here, after both sides have quiesced — not lost.
            let mut rx = rx.lock().unwrap();
            let mut buf = [0u8; 8];
            let mut left = 0;
            while rx.try_recv(&mut buf).expect("final drain").is_some() {
                left += 1;
            }
            let (p, c) = (
                pushed.load(Ordering::Relaxed),
                popped.load(Ordering::Relaxed),
            );
            if c + left != p {
                return Err(format!(
                    "frame conservation broken: {p} in, {} out",
                    c + left
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn one2one_try_ops_conserve_frames() {
    let opts = ExploreOpts::new("one2one-try-conservation").max_schedules(300);
    explore_dfs(&opts, one2one_try_case).assert_ok();
    explore_random(&opts, 0x7ae0, one2one_try_case).assert_ok();
}
