//! Schedule-exploration scenarios for the in-process facility (`Mpf`).
//!
//! Each scenario builds a fresh facility per schedule, races a small set of
//! logical processes through a known-racy path, and checks the final state
//! with [`Mpf::check_invariants`] plus scenario-specific conservation
//! assertions.  Failures print a replayable schedule id (a DFS choice list
//! or a PCT seed).
//!
//! Budgets are sized so that the suite explores well over a thousand
//! distinct schedules at the default `MPF_CHECK_SCHEDULE_SCALE=1`; the
//! nightly CI run raises the scale for a deeper sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpf::{ExhaustPolicy, Mpf, MpfConfig, ProcessId, Protocol};
use mpf_check::{explore_dfs, explore_random, Case, ExploreOpts};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

type Proc = Box<dyn FnOnce() + Send>;

/// The headline regression: a sender races the departure of the last FCFS
/// receiver while a BROADCAST receiver keeps the conversation alive.
///
/// Before the obligation re-evaluation fix in `close_receive`, any schedule
/// in which a send enqueued while the FCFS receiver was still connected and
/// the FCFS receiver then closed left the message permanently owed to a
/// receiver class with no members: the broadcast receiver read it, but it
/// could never be reclaimed, and the blocks stayed pinned until the
/// conversation died.  The invariant audit reports exactly that.  Recorded
/// against this tree with the `clear_fcfs_obligations` branch in
/// `close_receive` reverted:
///
/// ```text
/// mpf-check case 'fcfs-obligation-leak' failed on schedule 1 of 1:
///   final-state check failed: LNVC 'leak' (slot 0): message 0 (stamp 0)
///   awaits an FCFS delivery but no FCFS receiver is connected and
///   broadcast receivers keep the LNVC alive
///   schedule: Choices([0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
///                      0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0])
///   replay:   replay_choices(&opts, &[0, 0, ...], make)
/// mpf-check case 'fcfs-obligation-leak-pct' failed on schedule 2 of 2:
///   ... schedule: Seed(20974)   replay: replay_seed(&opts, 20974, make)
/// ```
///
/// The very first DFS schedule — the sender runs to completion, then the
/// FCFS close, then the broadcast reads — already exhibits the bug, and
/// PCT seed 20974 (base 0x51ED + 1) reproduces it independently.  With the
/// fix, the full DFS tree and the seeded sweep pass; these tests keep both
/// as regressions.
fn leak_case() -> Case {
    let cfg = MpfConfig::new(4, 4)
        .with_total_blocks(64)
        .with_block_payload(16)
        .with_max_messages(16);
    let total = cfg.total_blocks;
    let mpf = Arc::new(Mpf::init(cfg).expect("init"));
    let tx = mpf.open_send(p(0), "leak").expect("open_send");
    let rf = mpf
        .open_receive(p(1), "leak", Protocol::Fcfs)
        .expect("open fcfs");
    let rb = mpf
        .open_receive(p(2), "leak", Protocol::Broadcast)
        .expect("open bcast");

    let sender = {
        let mpf = Arc::clone(&mpf);
        Box::new(move || {
            mpf.message_send(p(0), tx, b"first").expect("send 1");
            mpf.message_send(p(0), tx, b"second").expect("send 2");
        }) as Proc
    };
    let fcfs_closer = {
        let mpf = Arc::clone(&mpf);
        Box::new(move || {
            mpf.close_receive(p(1), rf).expect("close fcfs");
        }) as Proc
    };
    let bcast_reader = {
        let mpf = Arc::clone(&mpf);
        Box::new(move || {
            for _ in 0..2 {
                mpf.message_receive_vec(p(2), rb).expect("bcast recv");
            }
        }) as Proc
    };
    Case {
        procs: vec![sender, fcfs_closer, bcast_reader],
        death: None,
        check: Box::new(move || {
            mpf.check_invariants()?;
            if mpf.free_blocks() != total {
                return Err(format!(
                    "blocks pinned after all messages were read: {} free of {}",
                    mpf.free_blocks(),
                    total
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn fcfs_obligation_leak_dfs() {
    let opts = ExploreOpts::new("fcfs-obligation-leak").max_schedules(400);
    let report = explore_dfs(&opts, leak_case);
    report.assert_ok();
    assert!(report.schedules >= 2, "{report:?}");
}

#[test]
fn fcfs_obligation_leak_random() {
    let opts = ExploreOpts::new("fcfs-obligation-leak-pct").max_schedules(600);
    let report = explore_random(&opts, 0x51ED, leak_case);
    report.assert_ok();
    assert_eq!(report.schedules, opts.budget());
}

/// Two FCFS receivers race one pre-queued message: exactly one of them may
/// get it, under every interleaving of the claim path.
#[test]
fn concurrent_fcfs_receivers_race_one_message() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(32)
            .with_max_messages(8);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let tx = mpf.open_send(p(0), "race").expect("open_send");
        let r1 = mpf
            .open_receive(p(1), "race", Protocol::Fcfs)
            .expect("open r1");
        let r2 = mpf
            .open_receive(p(2), "race", Protocol::Fcfs)
            .expect("open r2");
        mpf.message_send(p(0), tx, b"only").expect("seed send");
        let got = Arc::new(AtomicUsize::new(0));
        let receiver = |pid: usize, id| {
            let (mpf, got) = (Arc::clone(&mpf), Arc::clone(&got));
            Box::new(move || {
                let mut buf = [0u8; 16];
                if mpf
                    .try_message_receive(p(pid), id, &mut buf)
                    .expect("try_recv")
                    .is_some()
                {
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }) as Proc
        };
        let procs = vec![receiver(1, r1), receiver(2, r2)];
        let got = Arc::clone(&got);
        Case {
            procs,
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                let n = got.load(Ordering::Relaxed);
                if n != 1 {
                    return Err(format!("FCFS message delivered {n} times, want exactly 1"));
                }
                if mpf.free_blocks() != total {
                    return Err("blocks leaked after exactly-once delivery".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("fcfs-exactly-once").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0xACE, make).assert_ok();
}

/// One broadcast receiver closes with messages unread while its peer is
/// still reading them: the departing receiver's claims must be released
/// under every interleaving, and everything reclaimed once the reader is
/// done.
#[test]
fn broadcast_close_with_unread_vs_concurrent_reads() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(64)
            .with_block_payload(16)
            .with_max_messages(16);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let tx = mpf.open_send(p(0), "bcast").expect("open_send");
        let r1 = mpf
            .open_receive(p(1), "bcast", Protocol::Broadcast)
            .expect("open r1");
        let r2 = mpf
            .open_receive(p(2), "bcast", Protocol::Broadcast)
            .expect("open r2");
        for i in 0..3u8 {
            mpf.message_send(p(0), tx, &[i; 24]).expect("seed send");
        }
        let reader = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for _ in 0..3 {
                    mpf.message_receive_vec(p(1), r1).expect("recv");
                }
            }) as Proc
        };
        let closer = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                mpf.close_receive(p(2), r2).expect("close");
            }) as Proc
        };
        Case {
            procs: vec![reader, closer],
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                if mpf.free_blocks() != total {
                    return Err(format!(
                        "unread-close left blocks pinned: {} free of {}",
                        mpf.free_blocks(),
                        total
                    ));
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("broadcast-unread-close").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0xBCA5, make).assert_ok();
}

/// Sends race the teardown of the whole conversation (both sides closing).
/// Whatever interleaving runs, teardown must delete the LNVC and return
/// every block — including backlog that was never received.
#[test]
fn send_races_delete() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(32)
            .with_max_messages(8);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let tx = mpf.open_send(p(0), "doomed").expect("open_send");
        let rx = mpf
            .open_receive(p(1), "doomed", Protocol::Fcfs)
            .expect("open recv");
        let sender = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for i in 0..2u8 {
                    mpf.message_send(p(0), tx, &[i; 8]).expect("send");
                }
                mpf.close_send(p(0), tx).expect("close_send");
            }) as Proc
        };
        let receiver_closer = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                let mut buf = [0u8; 16];
                let _ = mpf.try_message_receive(p(1), rx, &mut buf).expect("try");
                mpf.close_receive(p(1), rx).expect("close_receive");
            }) as Proc
        };
        Case {
            procs: vec![sender, receiver_closer],
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                if mpf.live_lnvcs() != 0 {
                    return Err("conversation survived both sides closing".into());
                }
                if mpf.free_blocks() != total {
                    return Err(format!(
                        "teardown leaked blocks: {} free of {}",
                        mpf.free_blocks(),
                        total
                    ));
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("send-vs-delete").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0xDE1E7E, make).assert_ok();
}

/// Flow control in a tiny region: the sender must block on exhausted
/// blocks and be woken by the receiver's frees — under every explored
/// interleaving, with no lost wakeup (which the harness would report as a
/// deadlock).
#[test]
fn flow_control_wakeups_under_pressure() {
    let make = || {
        let cfg = MpfConfig::new(2, 2)
            .with_total_blocks(4)
            .with_block_payload(16)
            .with_max_messages(4)
            .with_exhaust_policy(ExhaustPolicy::Wait);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let tx = mpf.open_send(p(0), "pressure").expect("open_send");
        let rx = mpf
            .open_receive(p(1), "pressure", Protocol::Fcfs)
            .expect("open recv");
        let sender = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                // Each message spans 2 of the 4 blocks: the third send can
                // only proceed once the receiver frees one.
                for i in 0..4u8 {
                    mpf.message_send(p(0), tx, &[i; 20]).expect("send");
                }
            }) as Proc
        };
        let receiver = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for _ in 0..4 {
                    mpf.message_receive_vec(p(1), rx).expect("recv");
                }
            }) as Proc
        };
        Case {
            procs: vec![sender, receiver],
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                if mpf.free_blocks() != total {
                    return Err("flow-controlled traffic leaked blocks".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("flow-control").max_schedules(200);
    explore_dfs(&opts, make).assert_ok();
    // Pool alloc/free preemption points matter here: the block-exhaustion
    // window is exactly between an alloc attempt and the wait.
    let fine = ExploreOpts::new("flow-control-fine")
        .max_schedules(200)
        .preempt_events(true);
    explore_random(&fine, 0xF10, make).assert_ok();
}

/// Conversation churn: one side repeatedly opens, uses, and closes the
/// conversation while the other does the same.  Exercises create/delete
/// racing traffic; the registry and descriptor pools must end empty.
#[test]
fn open_close_churn_vs_traffic() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(32)
            .with_max_messages(8);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let churn_sender = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for i in 0..2u8 {
                    let tx = mpf.open_send(p(0), "churn").expect("open_send");
                    mpf.message_send(p(0), tx, &[i; 8]).expect("send");
                    mpf.close_send(p(0), tx).expect("close_send");
                }
            }) as Proc
        };
        let churn_receiver = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for _ in 0..2 {
                    let rx = mpf
                        .open_receive(p(1), "churn", Protocol::Fcfs)
                        .expect("open_receive");
                    let mut buf = [0u8; 16];
                    let _ = mpf.try_message_receive(p(1), rx, &mut buf).expect("try");
                    mpf.close_receive(p(1), rx).expect("close_receive");
                }
            }) as Proc
        };
        Case {
            procs: vec![churn_sender, churn_receiver],
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                if mpf.live_lnvcs() != 0 {
                    return Err("churn left a conversation alive".into());
                }
                if mpf.free_blocks() != total {
                    return Err("churn leaked blocks".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("open-close-churn").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0xC4A1, make).assert_ok();
}

/// Telemetry conservation under permuted schedules: however one sender
/// and two competing FCFS receivers interleave, the in-region counters
/// must agree with the final facility state — every send counted exactly
/// once, every delivery exactly once, bytes in = bytes out, every freed
/// message a counted reclaim, and no corpses left queued.  A counter
/// update outside the right critical section (or a double count on a
/// retry path) shows up here as a schedule-dependent mismatch.
#[test]
fn telemetry_conserved_under_schedules() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(64)
            .with_block_payload(16)
            .with_max_messages(16);
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let tx = mpf.open_send(p(0), "meter").expect("open_send");
        let r1 = mpf
            .open_receive(p(1), "meter", Protocol::Fcfs)
            .expect("open r1");
        let r2 = mpf
            .open_receive(p(2), "meter", Protocol::Fcfs)
            .expect("open r2");
        let sender = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for i in 0..4u8 {
                    mpf.message_send(p(0), tx, &[i; 24]).expect("send");
                }
            }) as Proc
        };
        let reader = |pid: usize, id| {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for _ in 0..2 {
                    mpf.message_receive_vec(p(pid), id).expect("recv");
                }
            }) as Proc
        };
        let procs = vec![sender, reader(1, r1), reader(2, r2)];
        Case {
            procs,
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                let t = mpf.telemetry_snapshot();
                if t.sends != 4 || t.receives != 4 {
                    return Err(format!(
                        "send/receive counters drifted: {} sent, {} received, want 4/4",
                        t.sends, t.receives
                    ));
                }
                if t.bytes_in != 96 || t.bytes_out != 96 {
                    return Err(format!(
                        "byte conservation broken: {} in, {} out, want 96/96",
                        t.bytes_in, t.bytes_out
                    ));
                }
                if t.size_hist.count != 4 || t.latency_hist.count != 4 {
                    return Err(format!(
                        "histogram samples drifted: {} sizes, {} latencies, want 4/4",
                        t.size_hist.count, t.latency_hist.count
                    ));
                }
                if t.reclaims != 4 {
                    return Err(format!(
                        "reclaim count drifted: {} freed, want 4 (one per message)",
                        t.reclaims
                    ));
                }
                let lt = mpf.lnvc_telemetry(tx).map_err(|e| e.to_string())?;
                if lt.sends != 4 || lt.receives != 4 {
                    return Err(format!(
                        "per-LNVC counters drifted: {}/{}, want 4/4",
                        lt.sends, lt.receives
                    ));
                }
                if lt.depth_hwm == 0 || lt.depth_hwm > 4 {
                    return Err(format!("depth high-water {} outside 1..=4", lt.depth_hwm));
                }
                let rec = mpf.reclaimable();
                if rec != Default::default() {
                    return Err(format!("corpses left after full drain: {rec:?}"));
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("telemetry-conserved").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0x7E1E, make).assert_ok();
}

/// Batched submission under permuted schedules: two senders push a batch
/// each through their submission/completion rings while a receiver drains
/// the conversation.  Batch conservation is the invariant — every
/// submitted descriptor completes exactly once (tokens in order, all
/// successful), the rings end empty, and the message pools balance.
#[test]
fn aio_batch_conservation_under_schedules() {
    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(64)
            .with_block_payload(16)
            .with_max_messages(16);
        let total = cfg.total_blocks;
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let rx = mpf
            .open_receive(p(2), "ring", Protocol::Fcfs)
            .expect("open recv");
        let batch_sender = |pid: usize| {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                let tx = mpf.open_send(p(pid), "ring").expect("open send");
                let payloads: Vec<Vec<u8>> =
                    (0..3u8).map(|i| vec![pid as u8 * 10 + i; 8]).collect();
                let refs: Vec<&[u8]> = payloads.iter().map(|v| v.as_slice()).collect();
                let completions = mpf.send_batch(p(pid), tx, &refs).expect("send_batch");
                assert_eq!(completions.len(), 3, "whole batch completes");
                for (i, c) in completions.iter().enumerate() {
                    assert!(c.ok(), "completion {i} failed: status {}", c.status);
                    assert_eq!(c.user_data, i as u64, "tokens in submission order");
                }
            }) as Proc
        };
        let received = Arc::new(AtomicUsize::new(0));
        let receiver = {
            let (mpf, received) = (Arc::clone(&mpf), Arc::clone(&received));
            Box::new(move || {
                let mut got = 0;
                while got < 6 {
                    let msgs = mpf.recv_batch(p(2), rx, 6 - got).expect("recv_batch");
                    for m in &msgs {
                        assert_eq!(m.len(), 8, "frame length survives the ring");
                    }
                    got += msgs.len();
                }
                received.store(got, Ordering::Relaxed);
            }) as Proc
        };
        let procs = vec![batch_sender(0), batch_sender(1), receiver];
        let received = Arc::clone(&received);
        Case {
            procs,
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                if received.load(Ordering::Relaxed) != 6 {
                    return Err("receiver finished short of both batches".into());
                }
                for pid in 0..2 {
                    let st = mpf.aio_stats(p(pid)).map_err(|e| e.to_string())?;
                    if st.submitted != 3 || st.drained != 3 || st.completed != 3 || st.reaped != 3 {
                        return Err(format!(
                            "batch conservation broken for process {pid}: \
                             {}/{}/{}/{} submitted/drained/completed/reaped, want 3 each",
                            st.submitted, st.drained, st.completed, st.reaped
                        ));
                    }
                    if st.sq_depth != 0 || st.cq_depth != 0 {
                        return Err(format!(
                            "rings not empty for process {pid}: sq {} cq {}",
                            st.sq_depth, st.cq_depth
                        ));
                    }
                }
                if mpf.free_blocks() != total {
                    return Err("batched traffic leaked blocks".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("aio-batch-conservation").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0xA10, make).assert_ok();
}

/// Trace-event conservation: under every schedule, the causal record the
/// trace rings retain must tell a complete, conformance-clean story — one
/// `TR_SEND` per message, each paired with exactly one delivery, each
/// reclaim after its delivery, and replies continuing the request's chain
/// at hop 1.  A trace stamped outside the send critical section, or a
/// ring write racing the delivery it describes, shows up here as a
/// schedule-dependent violation from the offline checker.
#[test]
fn trace_conservation_under_schedules() {
    use mpf_shm::tracering::{TR_RECLAIM, TR_RECV, TR_SEND};

    let make = || {
        let cfg = MpfConfig::new(4, 4)
            .with_total_blocks(64)
            .with_block_payload(16)
            .with_max_messages(16);
        let mpf = Arc::new(Mpf::init(cfg).expect("init"));
        let req_tx = mpf.open_send(p(0), "req").expect("open req tx");
        let req_rx = mpf
            .open_receive(p(1), "req", Protocol::Fcfs)
            .expect("open req rx");
        let rep_tx = mpf.open_send(p(1), "rep").expect("open rep tx");
        let rep_rx = mpf
            .open_receive(p(0), "rep", Protocol::Fcfs)
            .expect("open rep rx");
        let requester = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                // Both roots go out before any reply is read, so neither
                // request can accidentally continue the other's chain.
                for i in 0..2u8 {
                    mpf.message_send(p(0), req_tx, &[i; 8]).expect("send req");
                }
                for _ in 0..2 {
                    mpf.message_receive_vec(p(0), rep_rx).expect("recv rep");
                }
            }) as Proc
        };
        let responder = {
            let mpf = Arc::clone(&mpf);
            Box::new(move || {
                for _ in 0..2 {
                    let m = mpf.message_receive_vec(p(1), req_rx).expect("recv req");
                    mpf.message_send(p(1), rep_tx, &m).expect("send rep");
                }
            }) as Proc
        };
        let procs = vec![requester, responder];
        Case {
            procs,
            death: None,
            check: Box::new(move || {
                mpf.check_invariants()?;
                let log = mpf_trace::TraceLog::from_mpf(&mpf);
                let report = log.check();
                if !report.is_clean() {
                    return Err(format!("conformance violations: {:?}", report.violations));
                }
                if report.messages != 4 || report.deliveries != 4 {
                    return Err(format!(
                        "traced message conservation broken: {} messages, {} deliveries, want 4/4",
                        report.messages, report.deliveries
                    ));
                }
                let chains = log.chains();
                if chains.len() != 2 {
                    return Err(format!("want 2 request/reply chains, got {}", chains.len()));
                }
                for chain in &chains {
                    if chain.hops() != 2 {
                        return Err(format!("chain lost a hop: {chain:?}"));
                    }
                    let count = |k: u32| chain.events.iter().filter(|r| r.ev.kind == k).count();
                    if count(TR_SEND) != 2 || count(TR_RECV) != 2 || count(TR_RECLAIM) != 2 {
                        return Err(format!(
                            "chain event conservation broken ({}/{}/{} send/recv/reclaim): {chain:?}",
                            count(TR_SEND),
                            count(TR_RECV),
                            count(TR_RECLAIM),
                        ));
                    }
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("trace-conservation").max_schedules(300);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0x7ACE, make).assert_ok();
}

/// The schedule counts above must add up: this is the floor the PR CI run
/// is expected to clear ("≥ 1000 distinct schedules across the suite").
/// Random exploration always runs its full budget, so the guaranteed
/// minimum is the sum of the random budgets alone: 600 + 300 + 300 + 300 +
/// 200 + 300 + 300 + 300 + 300 = 2900.
#[test]
fn suite_budget_floor() {
    let budgets = [600usize, 300, 300, 300, 200, 300, 300, 300, 300];
    assert!(budgets.iter().sum::<usize>() >= 1000);
}
